#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, release build, full test suite.
# Run from the repo root before every merge; CI runs the same sequence.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> dstrace smoke run (both modes, validated output)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for mode in ccsm ds; do
  cargo run --release -q -p ds-runner --bin dstrace -- \
    --bench VA --input small --mode "$mode" \
    --format jsonl --check --out "$smoke_dir/va-$mode.jsonl"
  cargo run --release -q -p ds-runner --bin dstrace -- \
    --bench VA --input small --mode "$mode" \
    --format chrome --check --window 1000 --out "$smoke_dir/va-$mode.json"
  test -s "$smoke_dir/va-$mode.jsonl"
  test -s "$smoke_dir/va-$mode.json"
  # The windowed chrome trace must carry the pulse counter tracks.
  grep -q '"args":{"name":"pulse"}' "$smoke_dir/va-$mode.json"
done

echo "==> dstrace epoch-window validation"
cargo run --release -q -p ds-runner --bin dstrace -- \
  --bench VA --input small --format epochs --check \
  --out "$smoke_dir/va-epochs.csv"
test -s "$smoke_dir/va-epochs.csv"

echo "==> dsxray smoke run (both modes, invariants checked)"
cargo run --release -q -p ds-runner --bin dsxray -- \
  --bench VA --input small --check --out "$smoke_dir/va-xray.txt"
test -s "$smoke_dir/va-xray.txt"

echo "==> dslens reconciliation audit (full catalog, both modes)"
cargo run --release -q -p ds-runner --bin dslens -- --check

echo "==> dsprof invariant audit (profiler never perturbs simulated cycles)"
# Re-runs VA at every probe level and with the profiler off: simulated
# cycles must be bit-identical across all of them, self-times must sum
# to <= wall, and shed levels must report exactly-zero tax buckets.
cargo run --release -q -p ds-runner --bin dsprof -- --check --bench VA

echo "==> dsprof trend smoke (committed baselines parse and render)"
cargo run --release -q -p ds-runner --bin dsprof -- trend > "$smoke_dir/trend.txt"
test -s "$smoke_dir/trend.txt"
grep -q "geomean" "$smoke_dir/trend.txt" || {
  echo "ci.sh: dsprof trend output is missing the summary table" >&2
  exit 1
}

echo "==> dschaos invariant audit (zero-fault identity + no silent push loss)"
cargo run --release -q -p ds-runner --bin dschaos -- --check --bench VA --quiet

echo "==> dspulse conservation gate (full small catalog, both modes)"
# Every per-window counter series must sum exactly to the final
# RunReport totals, reports must stay bit-identical with pulse
# stripped (fig4 is untouched by sampling), and a seeded fault run
# must surface at least one detected anomaly.
cargo run --release -q -p ds-runner --bin dspulse -- --check

echo "==> dspulse anomaly-report smoke (fault-injected stall/retry storm)"
cargo run --release -q -p ds-runner --bin dspulse -- \
  --bench VA --input small --delay 32000 --seed 7 --format report \
  --out "$smoke_dir/va-pulse-report.txt"
grep -q "anomalies (" "$smoke_dir/va-pulse-report.txt" || {
  echo "ci.sh: fault-injected dspulse run reported no anomalies" >&2
  cat "$smoke_dir/va-pulse-report.txt" >&2
  exit 1
}

echo "==> dschaos fault-sweep smoke (survivable drop rates)"
# Rates above ~256 can sever CPU demand-load replies on VA, which the
# watchdog (correctly) aborts; the smoke sticks to rates VA survives.
cargo run --release -q -p ds-runner --bin dschaos -- \
  --bench VA --rates 0,64,256 --quiet --format csv \
  > "$smoke_dir/va-chaos.csv"
test -s "$smoke_dir/va-chaos.csv"

echo "==> bench.sh schema smoke"
scripts/bench.sh --smoke --out "$smoke_dir/bench-smoke.json"

echo "==> bench_diff.sh regression gate (smoke baseline vs itself)"
scripts/bench_diff.sh "$smoke_dir/bench-smoke.json" "$smoke_dir/bench-smoke.json"

echo "==> perf regression gate (small catalog vs committed BENCH_2026-08-08.json)"
# The simulator is deterministic, so a >5% cycle delta against the
# committed reference baseline is a real behavioral change, not noise.
# Big-input entries are absent from the fresh measurement and reported
# as "dropped" without failing; refresh the committed baseline with
# scripts/bench.sh when a perf change is intentional.
cargo run --release -q -p ds-bench --bin perf_baseline -- \
  --input small --date "$(date +%F)" --out "$smoke_dir/bench-fresh-small.json"
scripts/bench_diff.sh BENCH_2026-08-08.json "$smoke_dir/bench-fresh-small.json"

echo "==> dsserve self-audit (admission, coalescing, store reconciliation)"
cargo run --release -q -p ds-serve --bin dsserve -- --check

echo "==> dsserve smoke gate (service vs batch bytes, cache replay, 429, shutdown)"
dsserve=./target/release/dsserve
serve_cache="$smoke_dir/serve-cache"
"$dsserve" serve --port 0 --port-file "$smoke_dir/serve-addr" \
  --cache "$serve_cache" --workers 2 2> "$smoke_dir/serve.log" &
serve_pid=$!
for _ in $(seq 100); do
  [ -s "$smoke_dir/serve-addr" ] && break
  sleep 0.1
done
[ -s "$smoke_dir/serve-addr" ] || {
  echo "ci.sh: dsserve did not come up" >&2
  cat "$smoke_dir/serve.log" >&2
  exit 1
}
serve_url="http://$(cat "$smoke_dir/serve-addr")"
# Served sweep must be byte-identical to the batch runner...
"$dsserve" submit --url "$serve_url" --bench VA,MM --input small --mode ds \
  > "$smoke_dir/served.json"
cargo run --release -q -p ds-runner --bin dsrun -- \
  --bench VA,MM --input small --mode ds --format json --quiet \
  > "$smoke_dir/batch.json"
cmp "$smoke_dir/served.json" "$smoke_dir/batch.json"
# ...and a repeat submission must be a pure cache replay of it.
"$dsserve" submit --url "$serve_url" --bench VA,MM --input small --mode ds \
  --expect-cached > "$smoke_dir/served-replay.json"
cmp "$smoke_dir/served.json" "$smoke_dir/served-replay.json"
# Repeat stress traffic must actually hit the shared store.
"$dsserve" stress --url "$serve_url" --users 3 --ops 12 --bench VA \
  --require-hits > /dev/null
"$dsserve" shutdown --url "$serve_url"
wait "$serve_pid"

echo "==> dsserve saturation gate (bounded queue answers 429, never hangs)"
"$dsserve" serve --port 0 --port-file "$smoke_dir/sat-addr" \
  --no-cache --workers 1 --queue-limit 1 2> "$smoke_dir/sat.log" &
sat_pid=$!
for _ in $(seq 100); do
  [ -s "$smoke_dir/sat-addr" ] && break
  sleep 0.1
done
sat_url="http://$(cat "$smoke_dir/sat-addr")"
# One full-catalog job occupies the single admission slot for seconds
# on one worker; the immediate second submission must be refused with
# the distinguished exit code for an explicit 429.
"$dsserve" submit --url "$sat_url" --input small --mode ds --no-wait \
  > /dev/null
rc=0
"$dsserve" submit --url "$sat_url" --bench VA --input small --mode ds \
  --no-wait > /dev/null 2>> "$smoke_dir/sat.log" || rc=$?
[ "$rc" -eq 7 ] || {
  echo "ci.sh: expected explicit 429 rejection (exit 7), got exit $rc" >&2
  exit 1
}
# Shutdown abandons the queued backlog instead of draining it.
"$dsserve" shutdown --url "$sat_url"
wait "$sat_pid"

echo "==> ds-anvil crash drill (seeded abort mid-sweep, zero loss, byte-identical)"
# A real dsserve child aborts after a seeded number of journaled task
# completions; the restart must recover the job under its original
# id, rehydrate finished tasks from cache (store accounting proves no
# double-compute), and fold byte-identical results.
"$dsserve" drill --seed 3 --workers 2 --dir "$smoke_dir/drill" \
  2> "$smoke_dir/drill.log" || {
  echo "ci.sh: dsserve drill failed" >&2
  cat "$smoke_dir/drill.log" >&2
  exit 1
}

echo "==> ds-anvil external kill -9 drill (scripts/crash_drill.sh)"
scripts/crash_drill.sh VA,MM > "$smoke_dir/crash-drill.log" 2>&1 || {
  echo "ci.sh: scripts/crash_drill.sh failed" >&2
  cat "$smoke_dir/crash-drill.log" >&2
  exit 1
}

echo "==> dsscope span audit (telescoping, exact reconciliation, zero overhead off)"
# Every small-catalog report must carry a span tree that telescopes
# and reconciles queue + store + sim + overhead exactly against its
# wall clock — and a scope-off rerun must be bit-identical minus the
# tree (fig4 stays untouched by the tracing layer).
cargo run --release -q -p ds-serve --bin dsscope -- --check

echo "==> ds-scope live telemetry gate (watch stream, request log, merged trace)"
"$dsserve" serve --port 0 --port-file "$smoke_dir/scope-addr" \
  --cache "$smoke_dir/scope-cache" --workers 2 \
  --verbose --log-format json 2> "$smoke_dir/scope.log" &
scope_pid=$!
for _ in $(seq 100); do
  [ -s "$smoke_dir/scope-addr" ] && break
  sleep 0.1
done
scope_url="http://$(cat "$smoke_dir/scope-addr")"
scope_job="$("$dsserve" submit --url "$scope_url" --bench VA --input small \
  --mode ds --pulse 1000 --no-wait)"
# The watch stream must carry the span telemetry for a running job,
# interleave pulse windows before each task summary, end with the
# stream-closing done event, and render the live sparkline dashboard
# on stderr.
"$dsserve" watch --url "$scope_url" "$scope_job" \
  > "$smoke_dir/watch.ndjson" 2> "$smoke_dir/watch-spark.txt"
grep -q '"event":"span-open".*"kind":"sim-run"' "$smoke_dir/watch.ndjson"
grep -q '"event":"pulse-window"' "$smoke_dir/watch.ndjson"
grep -q '"event":"task-done".*"pulse_windows"' "$smoke_dir/watch.ndjson"
grep -q '"event":"done"' "$smoke_dir/watch.ndjson"
grep -q "pulse (" "$smoke_dir/watch-spark.txt" || {
  echo "ci.sh: dsserve watch rendered no live pulse sparklines" >&2
  cat "$smoke_dir/watch-spark.txt" >&2
  exit 1
}
# Pulse gauges from the job's last window must now be on /metrics.
"$dsserve" metrics --url "$scope_url" > "$smoke_dir/scope-metrics.json"
grep -q '"pulse"' "$smoke_dir/scope-metrics.json"
grep -q '"window_cycles"' "$smoke_dir/scope-metrics.json"
# The structured request log joins against the span stream by span id.
grep -q '"log":"request".*"path":"/jobs"' "$smoke_dir/scope.log"
# One merged Perfetto trace from the HTTP request down to simulator
# stages (the dstrace chrome track from the smoke above); dsscope
# exits non-zero if any span tree fails its checks.
cargo run --release -q -p ds-serve --bin dsscope -- \
  merge --url "$scope_url" "$scope_job" --trace "$smoke_dir/va-ds.json" \
  --out "$smoke_dir/merged-trace.json" > "$smoke_dir/scope-summary.txt"
test -s "$smoke_dir/merged-trace.json"
grep -q "reconciles:" "$smoke_dir/scope-summary.txt"
"$dsserve" shutdown --url "$scope_url"
wait "$scope_pid"

echo "==> postmortem dump gate (forced timeout ships a flight-record file)"
rc=0
cargo run --release -q -p ds-runner --bin dsrun -- \
  --bench VA --input small --keep-going --timeout 0 \
  --cache "$smoke_dir/pmcache" --format csv \
  > /dev/null 2> "$smoke_dir/pm.log" || rc=$?
[ "$rc" -eq 1 ] || {
  echo "ci.sh: expected exit 1 from a timed-out keep-going run, got $rc" >&2
  exit 1
}
grep -q "postmortem" "$smoke_dir/pm.log"
ls "$smoke_dir"/pmcache/postmortem/VA-small-*.json > /dev/null

echo "==> ci.sh: all gates passed"
