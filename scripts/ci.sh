#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, release build, full test suite.
# Run from the repo root before every merge; CI runs the same sequence.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> ci.sh: all gates passed"
