#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, release build, full test suite.
# Run from the repo root before every merge; CI runs the same sequence.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> dstrace smoke run (both modes, validated output)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for mode in ccsm ds; do
  cargo run --release -q -p ds-runner --bin dstrace -- \
    --bench VA --input small --mode "$mode" \
    --format jsonl --check --out "$smoke_dir/va-$mode.jsonl"
  cargo run --release -q -p ds-runner --bin dstrace -- \
    --bench VA --input small --mode "$mode" \
    --format chrome --check --out "$smoke_dir/va-$mode.json"
  test -s "$smoke_dir/va-$mode.jsonl"
  test -s "$smoke_dir/va-$mode.json"
done

echo "==> dstrace epoch-window validation"
cargo run --release -q -p ds-runner --bin dstrace -- \
  --bench VA --input small --format epochs --check \
  --out "$smoke_dir/va-epochs.csv"
test -s "$smoke_dir/va-epochs.csv"

echo "==> dsxray smoke run (both modes, invariants checked)"
cargo run --release -q -p ds-runner --bin dsxray -- \
  --bench VA --input small --check --out "$smoke_dir/va-xray.txt"
test -s "$smoke_dir/va-xray.txt"

echo "==> dslens reconciliation audit (full catalog, both modes)"
cargo run --release -q -p ds-runner --bin dslens -- --check

echo "==> dschaos invariant audit (zero-fault identity + no silent push loss)"
cargo run --release -q -p ds-runner --bin dschaos -- --check --bench VA --quiet

echo "==> dschaos fault-sweep smoke (survivable drop rates)"
# Rates above ~256 can sever CPU demand-load replies on VA, which the
# watchdog (correctly) aborts; the smoke sticks to rates VA survives.
cargo run --release -q -p ds-runner --bin dschaos -- \
  --bench VA --rates 0,64,256 --quiet --format csv \
  > "$smoke_dir/va-chaos.csv"
test -s "$smoke_dir/va-chaos.csv"

echo "==> bench.sh schema smoke"
scripts/bench.sh --smoke --out "$smoke_dir/bench-smoke.json"

echo "==> bench_diff.sh regression gate (smoke baseline vs itself)"
scripts/bench_diff.sh "$smoke_dir/bench-smoke.json" "$smoke_dir/bench-smoke.json"

echo "==> ci.sh: all gates passed"
