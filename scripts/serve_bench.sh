#!/usr/bin/env bash
# Service throughput sweep: starts a private dsserve instance, runs
# the built-in stress harness at increasing concurrency levels, and
# writes one CSV row per level (ops/sec, p50/p95/p99 op latency,
# store hit rate). The server's in-memory store is retained across
# levels, so the first level pays the simulations and later levels
# measure served-from-cache throughput — the service's steady state.
#
# usage: scripts/serve_bench.sh [--users A,B,...] [--ops N] [--seed S]
#                               [--bench A,B,...] [--out FILE]
#
#   --users A,B,...  concurrency levels to sweep (default: 1,2,4,8)
#   --ops N          HTTP ops per user per level (default: 24)
#   --seed S         stress master seed (default: 1)
#   --bench A,B,...  Table II codes submissions draw from
#                    (default: VA,MM,BS)
#   --out FILE       CSV destination (default: serve_bench.csv)
set -euo pipefail
cd "$(dirname "$0")/.."

users="1,2,4,8"
ops="24"
seed="1"
bench="VA,MM,BS"
out="serve_bench.csv"
while [ $# -gt 0 ]; do
  case "$1" in
    --users|--ops|--seed|--bench|--out)
      flag="$1"
      shift
      [ $# -gt 0 ] || { echo "serve_bench.sh: $flag needs a value" >&2; exit 2; }
      case "$flag" in
        --users) users="$1" ;;
        --ops) ops="$1" ;;
        --seed) seed="$1" ;;
        --bench) bench="$1" ;;
        --out) out="$1" ;;
      esac
      ;;
    *) echo "serve_bench.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

echo "==> building dsserve (release)"
cargo build --release -q -p ds-serve

work_dir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
    ./target/release/dsserve shutdown --url "$url" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$work_dir"
}
trap cleanup EXIT

echo "==> starting private dsserve (ephemeral port, memory-only store)"
./target/release/dsserve serve --port 0 --port-file "$work_dir/addr" \
  --no-cache 2>"$work_dir/serve.log" &
server_pid=$!
for _ in $(seq 100); do
  [ -s "$work_dir/addr" ] && break
  sleep 0.1
done
[ -s "$work_dir/addr" ] || {
  echo "serve_bench.sh: server did not come up" >&2
  cat "$work_dir/serve.log" >&2
  exit 1
}
url="http://$(cat "$work_dir/addr")"
echo "    serving on $url"

echo "users,ops,elapsed_s,ops_per_sec,rejected,errors,p50_us,p95_us,p99_us,max_us,store_requests,store_hits,store_misses,hit_rate" > "$out"
IFS=',' read -ra levels <<< "$users"
for level in "${levels[@]}"; do
  echo "==> stress: $level user(s) x $ops ops"
  ./target/release/dsserve stress --url "$url" --users "$level" \
    --ops "$ops" --seed "$seed" --bench "$bench" --csv >> "$out"
done

echo "==> serve_bench.sh: sweep written to $out"
column -s, -t < "$out" 2>/dev/null || cat "$out"
