#!/usr/bin/env bash
# ds-anvil crash drill, external-kill variant: SIGKILL a live dsserve
# mid-sweep, restart it on the same cache directory, and prove the
# recovery guarantees — zero job loss (original ids still resolve and
# finish), no double-compute (a resubmission is pure cache), and the
# recovery is visible on /metrics.
#
# The in-process variant with exact seeded crash points is
# `dsserve drill`; this script rehearses the same machinery against a
# genuinely external `kill -9` that the process cannot see coming.
set -euo pipefail
cd "$(dirname "$0")/.."

dsserve="${DSSERVE:-./target/release/dsserve}"
[ -x "$dsserve" ] || {
  echo "crash_drill.sh: $dsserve missing; build it first:" >&2
  echo "  cargo build --release -p ds-serve --bin dsserve" >&2
  exit 2
}

bench="${1:-VA,MM,BS}"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
cache="$scratch/cache"

start_server() { # $1 = port file
  "$dsserve" serve --port 0 --port-file "$1" --cache "$cache" \
    --workers 1 --handlers 2 2>> "$scratch/serve.log" &
  server_pid=$!
  for _ in $(seq 100); do
    [ -s "$1" ] && break
    sleep 0.1
  done
  [ -s "$1" ] || {
    echo "crash_drill.sh: server did not come up" >&2
    cat "$scratch/serve.log" >&2
    exit 1
  }
  url="http://$(cat "$1")"
}

echo "==> crash_drill: start, submit two jobs, SIGKILL mid-sweep"
start_server "$scratch/addr-before"
# Two jobs of the same sweep on one worker: the second is queued
# behind the first, so it is guaranteed unfinished when the kill
# lands — the drill never races the worker to completion.
ballast="$("$dsserve" submit --url "$url" --bench "$bench" \
  --input small --mode ds --no-wait)"
probe="$("$dsserve" submit --url "$url" --bench "$bench" \
  --input small --mode ds --no-wait)"
# Wait for the first journaled task completion, then kill with no
# chance to flush, drain, or say goodbye.
for _ in $(seq 300); do
  completed="$("$dsserve" metrics --url "$url" \
    | grep -o '"tasks_completed": *[0-9]*' | grep -o '[0-9]*$' || echo 0)"
  [ "${completed:-0}" -ge 1 ] && break
  sleep 0.1
done
[ "${completed:-0}" -ge 1 ] || {
  echo "crash_drill.sh: no task completed within 30s" >&2
  exit 1
}
kill -9 "$server_pid"
wait "$server_pid" 2> /dev/null || true

echo "==> crash_drill: restart on the same cache; jobs $ballast and $probe must survive"
start_server "$scratch/addr-after"
grep -q "journal replay recovered" "$scratch/serve.log" || {
  echo "crash_drill.sh: restart log reports no journal replay" >&2
  cat "$scratch/serve.log" >&2
  exit 1
}
for job in "$ballast" "$probe"; do
  state=""
  for _ in $(seq 1200); do
    state="$("$dsserve" status --url "$url" "$job" \
      | grep -o '"state": *"[a-z]*"' | head -n 1 || true)"
    case "$state" in *done*) break ;; esac
    sleep 0.1
  done
  case "$state" in
    *done*) echo "    job $job recovered and finished" ;;
    *)
      echo "crash_drill.sh: job $job never finished after recovery (state: $state)" >&2
      exit 1
      ;;
  esac
done

echo "==> crash_drill: no double-compute — resubmission is pure cache"
"$dsserve" submit --url "$url" --bench "$bench" --input small --mode ds \
  --expect-cached > "$scratch/replay.json"
test -s "$scratch/replay.json"
"$dsserve" metrics --url "$url" > "$scratch/metrics.json"
grep -q '"recovered_jobs": 2' "$scratch/metrics.json" || {
  echo "crash_drill.sh: /metrics does not report 2 recovered jobs" >&2
  cat "$scratch/metrics.json" >&2
  exit 1
}

"$dsserve" shutdown --url "$url"
wait "$server_pid"
echo "==> crash_drill: passed (jobs $ballast and $probe survived kill -9)"
