#!/usr/bin/env bash
# Performance-baseline harness: runs the Table II catalog under both
# CCSM and direct store and writes a dated, schema-validated JSON
# baseline (`BENCH_<date>.json` by default; schema documented in
# results/README.md). Compare two baselines to spot perf regressions.
#
# usage: scripts/bench.sh [--smoke] [--out FILE]
#
#   --smoke   run only VA/small (CI schema check, a few seconds)
#   --out F   write to F instead of BENCH_<date>.json
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=""
out=""
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) smoke="--smoke" ;;
    --out)
      shift
      [ $# -gt 0 ] || { echo "bench.sh: --out needs a value" >&2; exit 2; }
      out="$1"
      ;;
    *) echo "bench.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

date_str="$(date +%F)"
[ -n "$out" ] || out="BENCH_${date_str}.json"

echo "==> perf_baseline ${smoke:-(full catalog)} -> $out"
cargo run --release -q -p ds-bench --bin perf_baseline -- \
  ${smoke:+"$smoke"} --date "$date_str" --out "$out"

echo "==> validating $out"
test -s "$out" || { echo "bench.sh: $out is missing or empty" >&2; exit 1; }
for key in '"schema"' '"date"' '"config_fingerprint"' '"benchmarks"' \
           '"geomean_speedup"' '"stages"' '"host"' '"wall_nanos"'; do
  grep -q "$key" "$out" || {
    echo "bench.sh: $out is missing required key $key" >&2
    exit 1
  }
done

echo "==> bench.sh: baseline written to $out"
