#!/usr/bin/env bash
# Baseline comparison harness: diffs two BENCH_<date>.json files
# written by scripts/bench.sh and fails when any benchmark's cycle
# count regressed beyond the tolerance in either mode. Thin wrapper
# over `perf_baseline --diff` so CI and humans share one code path.
#
# usage: scripts/bench_diff.sh OLD.json NEW.json [--tolerance PCT]
#
#   OLD.json         the reference baseline (e.g. last release's)
#   NEW.json         the freshly measured baseline
#   --tolerance PCT  regression threshold in percent (default: 5)
#
# Exit status: 0 when no mode's cycles grew by more than the
# tolerance, 1 on a regression (or unreadable input), 2 on usage
# errors.
set -euo pipefail
cd "$(dirname "$0")/.."

[ $# -ge 2 ] || {
  echo "usage: scripts/bench_diff.sh OLD.json NEW.json [--tolerance PCT]" >&2
  exit 2
}
old="$1"
new="$2"
shift 2

tolerance=""
while [ $# -gt 0 ]; do
  case "$1" in
    --tolerance)
      shift
      [ $# -gt 0 ] || { echo "bench_diff.sh: --tolerance needs a value" >&2; exit 2; }
      tolerance="$1"
      ;;
    *) echo "bench_diff.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

for f in "$old" "$new"; do
  test -s "$f" || { echo "bench_diff.sh: $f is missing or empty" >&2; exit 1; }
done

echo "==> perf_baseline --diff $old $new${tolerance:+ --tolerance $tolerance}"
cargo run --release -q -p ds-bench --bin perf_baseline -- \
  --diff "$old" "$new" ${tolerance:+--tolerance "$tolerance"}
