//! Property-based tests for addresses and the DRAM model.

use proptest::prelude::*;

use ds_mem::{Dram, DramConfig, LineAddr, PhysAddr, VirtAddr, LINE_BYTES, PAGE_BYTES};
use ds_sim::Cycle;

proptest! {
    /// Address decompositions always round-trip.
    #[test]
    fn address_roundtrips(raw in 0u64..(1 << 48)) {
        let va = VirtAddr::new(raw);
        prop_assert_eq!(
            va.page().index() * PAGE_BYTES + va.page_offset(),
            raw
        );
        let pa = PhysAddr::new(raw);
        prop_assert_eq!(pa.page().phys_addr(pa.page_offset()), pa);
        let line = LineAddr::containing(pa);
        prop_assert!(line.base() <= pa);
        prop_assert!(pa.as_u64() < line.base().as_u64() + LINE_BYTES);
    }

    /// Every DRAM access completes after its issue time by at least
    /// the column latency plus burst, and the shared bus serializes:
    /// no two completions are closer than one burst.
    #[test]
    fn dram_completions_are_sane(
        lines in proptest::collection::vec(0u64..4096, 1..80),
        gap in 0u64..10
    ) {
        let cfg = DramConfig::paper_default();
        let (t_cas, t_burst, t_ctrl) = (cfg.t_cas, cfg.t_burst, cfg.t_ctrl);
        let mut dram = Dram::new(cfg);
        let mut now = Cycle::ZERO;
        let mut completions: Vec<u64> = Vec::new();
        for (i, &l) in lines.iter().enumerate() {
            let done = dram.access(now, LineAddr::from_index(l), i % 3 == 0);
            prop_assert!(done.as_u64() >= now.as_u64() + t_ctrl + t_cas + t_burst);
            completions.push(done.as_u64());
            now += gap;
        }
        completions.sort_unstable();
        for w in completions.windows(2) {
            prop_assert!(w[1] - w[0] >= t_burst, "bus double-booked: {w:?}");
        }
        prop_assert_eq!(dram.stats().accesses(), lines.len() as u64);
    }

    /// Row-buffer accounting is exhaustive: every access is exactly one
    /// of hit, conflict, or empty.
    #[test]
    fn dram_row_accounting(lines in proptest::collection::vec(0u64..1 << 20, 1..100)) {
        let mut dram = Dram::new(DramConfig::paper_default());
        for &l in &lines {
            dram.access(Cycle::ZERO, LineAddr::from_index(l), false);
        }
        let s = dram.stats();
        prop_assert_eq!(
            s.row_hits.value() + s.row_conflicts.value() + s.row_empty.value(),
            lines.len() as u64
        );
    }
}
