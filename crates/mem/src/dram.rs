//! Cycle-approximate DRAM model.
//!
//! Models the Table I memory system — 2 GB, one channel, two ranks of
//! eight banks — with per-bank row buffers (open-page policy), bank
//! busy tracking and a shared data-bus serialization point. Requests
//! are serviced first-come-first-served per bank; the controller-level
//! reordering of a real FR-FCFS scheduler is omitted (a second-order
//! effect for the relative CCSM vs. direct-store comparisons this
//! reproduction targets).

use ds_sim::{Counter, Cycle};

use crate::{LineAddr, LINE_BYTES};

/// DRAM geometry and timing parameters (all timings in system cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels (Table I: 1).
    pub channels: u32,
    /// Ranks per channel (Table I: 2).
    pub ranks: u32,
    /// Banks per rank (Table I: 8).
    pub banks_per_rank: u32,
    /// Bytes per DRAM row (row-buffer size).
    pub row_bytes: u64,
    /// Activate-to-read delay (tRCD).
    pub t_rcd: u64,
    /// Precharge delay (tRP).
    pub t_rp: u64,
    /// Column access latency (tCAS/tCL).
    pub t_cas: u64,
    /// Cycles the shared data bus is occupied per line burst.
    pub t_burst: u64,
    /// Fixed controller queueing/decode overhead added to every access.
    pub t_ctrl: u64,
}

impl DramConfig {
    /// The configuration used throughout the paper's evaluation
    /// (Table I: "2GB, 1 channel, 2 ranks, 8 banks @ 1GHz"), with
    /// DDR3-like timings expressed in system cycles.
    pub fn paper_default() -> Self {
        DramConfig {
            channels: 1,
            ranks: 2,
            banks_per_rank: 8,
            row_bytes: 2048,
            t_rcd: 22,
            t_rp: 22,
            t_cas: 22,
            t_burst: 6,
            t_ctrl: 20,
        }
    }

    /// Total number of banks across all ranks and channels.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.ranks * self.banks_per_rank
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if any structural parameter is zero or
    /// `row_bytes` is smaller than a cache line.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ranks == 0 || self.banks_per_rank == 0 {
            return Err("dram geometry fields must be non-zero".to_string());
        }
        if self.row_bytes < LINE_BYTES {
            return Err(format!(
                "row_bytes ({}) must be at least one cache line ({LINE_BYTES})",
                self.row_bytes
            ));
        }
        if !self.row_bytes.is_power_of_two() {
            return Err("row_bytes must be a power of two".to_string());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone)]
pub struct DramStats {
    /// Total read accesses.
    pub reads: Counter,
    /// Total write accesses.
    pub writes: Counter,
    /// Accesses that hit an open row buffer.
    pub row_hits: Counter,
    /// Accesses that required closing a row first.
    pub row_conflicts: Counter,
    /// Accesses to a bank with no open row.
    pub row_empty: Counter,
    /// Total cycles banks spent servicing accesses (sum of each
    /// access's `start..done` interval). Per-bank service intervals
    /// never overlap — `busy_until` serializes a bank — so dividing by
    /// elapsed cycles × bank count gives the mean bank-busy fraction.
    pub busy_cycles: Counter,
}

impl DramStats {
    fn new() -> Self {
        DramStats {
            reads: Counter::new("dram_reads"),
            writes: Counter::new("dram_writes"),
            row_hits: Counter::new("dram_row_hits"),
            row_conflicts: Counter::new("dram_row_conflicts"),
            row_empty: Counter::new("dram_row_empty"),
            busy_cycles: Counter::new("dram_busy_cycles"),
        }
    }

    /// Total accesses of either kind.
    pub fn accesses(&self) -> u64 {
        self.reads.value() + self.writes.value()
    }
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

/// The timing and routing of one DRAM access, for instrumentation:
/// the serviced bank was occupied over `start..done`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccessInfo {
    /// Bank index the line mapped to.
    pub bank: u16,
    /// Whether the access hit the bank's open row buffer.
    pub row_hit: bool,
    /// Cycle the bank began servicing (after queueing and controller
    /// overhead).
    pub start: Cycle,
    /// Absolute completion time (what [`Dram::access`] returns).
    pub done: Cycle,
}

/// The DRAM device array plus its (simplified) controller.
///
/// [`Dram::access`] is the sole entry point: given the current time and
/// a line address it returns the absolute completion time, mutating
/// bank/bus occupancy along the way.
///
/// # Examples
///
/// Row-buffer locality makes back-to-back same-row accesses cheaper:
///
/// ```
/// use ds_mem::{Dram, DramConfig, LineAddr};
/// use ds_sim::Cycle;
///
/// let cfg = DramConfig::paper_default();
/// let banks = u64::from(cfg.total_banks());
/// let mut dram = Dram::new(cfg);
/// let first = dram.access(Cycle::ZERO, LineAddr::from_index(0), false);
/// // The next line in the same bank maps to the same row: a row-buffer
/// // hit, faster than the cold access that had to activate the row.
/// let second = dram.access(first, LineAddr::from_index(banks), false);
/// assert!(second - first < first - Cycle::ZERO);
/// ```
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_free: Cycle,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model with all banks idle and rows closed.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`DramConfig::validate`].
    pub fn new(cfg: DramConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DramConfig: {e}");
        }
        let banks = vec![
            Bank {
                open_row: None,
                busy_until: Cycle::ZERO,
            };
            cfg.total_banks() as usize
        ];
        Dram {
            cfg,
            banks,
            bus_free: Cycle::ZERO,
            stats: DramStats::new(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn map(&self, line: LineAddr) -> (usize, u64) {
        // Line-interleave across banks so streaming accesses spread
        // load, with the row index above the bank bits (a standard
        // RoRaBaCo-style mapping).
        let idx = line.index();
        let banks = u64::from(self.cfg.total_banks());
        let lines_per_row = self.cfg.row_bytes / LINE_BYTES;
        let bank = (idx % banks) as usize;
        let row = idx / (banks * lines_per_row);
        (bank, row)
    }

    /// Performs a line-granularity access, returning its absolute
    /// completion time.
    ///
    /// The access begins when both the target bank and the channel data
    /// bus are free; row-buffer state determines whether a precharge
    /// and/or activate is needed.
    pub fn access(&mut self, now: Cycle, line: LineAddr, is_write: bool) -> Cycle {
        self.access_info(now, line, is_write).done
    }

    /// Like [`Dram::access`] but exposing which bank serviced the
    /// request and over what interval ([`DramAccessInfo`]), for
    /// instrumentation. Identical state mutation — `access` delegates
    /// here.
    pub fn access_info(&mut self, now: Cycle, line: LineAddr, is_write: bool) -> DramAccessInfo {
        if is_write {
            self.stats.writes.incr();
        } else {
            self.stats.reads.incr();
        }
        let (bank_idx, row) = self.map(line);
        let bank = &mut self.banks[bank_idx];

        let start = now.max(bank.busy_until) + self.cfg.t_ctrl;
        let row_hit = matches!(bank.open_row, Some(open) if open == row);
        let array_latency = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits.incr();
                self.cfg.t_cas
            }
            Some(_) => {
                self.stats.row_conflicts.incr();
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            }
            None => {
                self.stats.row_empty.incr();
                self.cfg.t_rcd + self.cfg.t_cas
            }
        };
        bank.open_row = Some(row);

        let data_ready = start + array_latency;
        // Serialize the burst on the shared bus.
        let burst_start = data_ready.max(self.bus_free);
        let done = burst_start + self.cfg.t_burst;
        self.bus_free = done;
        bank.busy_until = done;
        self.stats.busy_cycles.add(done - start);
        DramAccessInfo {
            bank: bank_idx as u16,
            row_hit,
            start,
            done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::paper_default()
    }

    #[test]
    fn paper_default_validates() {
        assert!(cfg().validate().is_ok());
        assert_eq!(cfg().total_banks(), 16);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = cfg();
        c.channels = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.row_bytes = 64;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.row_bytes = 3000;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid DramConfig")]
    fn new_panics_on_invalid_config() {
        let mut c = cfg();
        c.ranks = 0;
        let _ = Dram::new(c);
    }

    #[test]
    fn cold_access_pays_activate() {
        let mut d = Dram::new(cfg());
        let done = d.access(Cycle::ZERO, LineAddr::from_index(0), false);
        let expect = cfg().t_ctrl + cfg().t_rcd + cfg().t_cas + cfg().t_burst;
        assert_eq!(done.as_u64(), expect);
        assert_eq!(d.stats().row_empty.value(), 1);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let c = cfg();
        let banks = u64::from(c.total_banks());
        let lines_per_row = c.row_bytes / LINE_BYTES;

        // Same bank, same row: index 0 and index `banks`.
        let mut d = Dram::new(c.clone());
        let t1 = d.access(Cycle::ZERO, LineAddr::from_index(0), false);
        let hit = d.access(t1, LineAddr::from_index(banks), false);
        assert_eq!(d.stats().row_hits.value(), 1);

        // Same bank, different row: index 0 and a row-crossing index.
        let mut d2 = Dram::new(c);
        let t1b = d2.access(Cycle::ZERO, LineAddr::from_index(0), false);
        let conflict = d2.access(t1b, LineAddr::from_index(banks * lines_per_row), false);
        assert_eq!(d2.stats().row_conflicts.value(), 1);

        assert!(hit - t1 < conflict - t1b);
    }

    #[test]
    fn different_banks_overlap_but_share_bus() {
        let mut d = Dram::new(cfg());
        let t0 = d.access(Cycle::ZERO, LineAddr::from_index(0), false);
        // Bank 1, issued at time zero conceptually: bank work overlaps,
        // only the burst serializes after the first.
        let t1 = d.access(Cycle::ZERO, LineAddr::from_index(1), false);
        assert!(t1 > t0);
        assert!(
            t1 - t0 <= cfg().t_burst,
            "bank-parallel access should only pay bus serialization"
        );
    }

    #[test]
    fn same_bank_serializes_fully() {
        let banks = u64::from(cfg().total_banks());
        let mut d = Dram::new(cfg());
        let t0 = d.access(Cycle::ZERO, LineAddr::from_index(0), false);
        let t1 = d.access(Cycle::ZERO, LineAddr::from_index(banks), false);
        // Second access to the same bank cannot start until the first
        // finishes.
        assert!(t1 - t0 >= cfg().t_cas);
    }

    #[test]
    fn writes_are_counted() {
        let mut d = Dram::new(cfg());
        d.access(Cycle::ZERO, LineAddr::from_index(0), true);
        d.access(Cycle::ZERO, LineAddr::from_index(1), false);
        assert_eq!(d.stats().writes.value(), 1);
        assert_eq!(d.stats().reads.value(), 1);
        assert_eq!(d.stats().accesses(), 2);
    }

    #[test]
    fn busy_cycles_sum_service_intervals() {
        let mut d = Dram::new(cfg());
        let info = d.access_info(Cycle::ZERO, LineAddr::from_index(0), false);
        assert_eq!(d.stats().busy_cycles.value(), info.done - info.start);
        let second = d.access_info(Cycle::ZERO, LineAddr::from_index(1), true);
        assert_eq!(
            d.stats().busy_cycles.value(),
            (info.done - info.start) + (second.done - second.start)
        );
    }

    #[test]
    fn mapping_spreads_consecutive_lines_across_banks() {
        let d = Dram::new(cfg());
        let (b0, _) = d.map(LineAddr::from_index(0));
        let (b1, _) = d.map(LineAddr::from_index(1));
        assert_ne!(b0, b1);
    }
}
