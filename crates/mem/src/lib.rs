//! # ds-mem — addresses and the DRAM substrate
//!
//! Address-space newtypes shared by the whole simulator plus the
//! cycle-approximate DRAM model backing the memory hierarchy of the
//! integrated CPU-GPU system from the paper's Table I
//! (2 GB, 1 channel, 2 ranks, 8 banks).
//!
//! # Examples
//!
//! ```
//! use ds_mem::{Dram, DramConfig, LineAddr, PhysAddr, LINE_BYTES};
//! use ds_sim::Cycle;
//!
//! let line = LineAddr::containing(PhysAddr::new(0x1234));
//! assert_eq!(line.base().as_u64(), 0x1200);
//! assert_eq!(LINE_BYTES, 128);
//!
//! let mut dram = Dram::new(DramConfig::paper_default());
//! let done = dram.access(Cycle::ZERO, line, false);
//! assert!(done > Cycle::ZERO);
//! ```

pub mod addr;
pub mod dram;
pub mod sched;

pub use addr::{LineAddr, PageNum, PhysAddr, VirtAddr, LINE_BYTES, PAGE_BYTES};
pub use dram::{Dram, DramAccessInfo, DramConfig, DramStats};
pub use sched::{DramCompletion, DramRequest, FrFcfsScheduler};
