//! Address-space newtypes.
//!
//! The simulator distinguishes virtual addresses (what programs and the
//! translator see), physical addresses (what caches and DRAM see) and
//! line addresses (the 128-byte coherence granularity of Table I).
//! Newtypes make it a compile error to, e.g., index a cache with a
//! virtual address that never went through the TLB.

use std::fmt;

/// Cache-line size across the whole system (paper §IV.A: "cache line
/// size is 128 bytes across the whole system").
pub const LINE_BYTES: u64 = 128;

/// Page size used by the simulated virtual memory system.
pub const PAGE_BYTES: u64 = 4096;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw address.
            #[inline]
            pub const fn new(a: u64) -> Self {
                $name(a)
            }

            /// The raw address value.
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Returns the address advanced by `bytes`.
            #[inline]
            pub const fn offset(self, bytes: u64) -> Self {
                $name(self.0 + bytes)
            }

            /// Checked advance, `None` on overflow.
            #[inline]
            pub fn checked_offset(self, bytes: u64) -> Option<Self> {
                self.0.checked_add(bytes).map($name)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }
    };
}

addr_newtype! {
    /// A virtual address, as seen by programs, the allocator, the
    /// translator and the TLB.
    ///
    /// ```
    /// use ds_mem::{VirtAddr, PAGE_BYTES};
    ///
    /// let va = VirtAddr::new(0x7f00_0000_1234);
    /// assert_eq!(va.page().index(), 0x7f00_0000_1234 / PAGE_BYTES);
    /// assert_eq!(va.page_offset(), 0x234);
    /// ```
    VirtAddr
}

addr_newtype! {
    /// A physical address, produced by the MMU and consumed by caches
    /// and DRAM.
    PhysAddr
}

impl VirtAddr {
    /// The virtual page containing this address.
    #[inline]
    pub const fn page(self) -> PageNum {
        PageNum(self.0 / PAGE_BYTES)
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }
}

impl PhysAddr {
    /// The physical frame containing this address.
    #[inline]
    pub const fn page(self) -> PageNum {
        PageNum(self.0 / PAGE_BYTES)
    }

    /// Byte offset within the frame.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }
}

/// A virtual page number or physical frame number.
///
/// The page table maps virtual [`PageNum`]s to physical ones; both
/// directions use the same index type because a page number carries no
/// address-space tag once divorced from its offset. Composition helpers
/// on [`VirtAddr`]/[`PhysAddr`] keep the distinction where it matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(u64);

impl PageNum {
    /// Wraps a raw page index.
    #[inline]
    pub const fn new(i: u64) -> Self {
        PageNum(i)
    }

    /// The raw page index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The physical address of byte `offset` within this frame.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `offset >= PAGE_BYTES`.
    #[inline]
    pub fn phys_addr(self, offset: u64) -> PhysAddr {
        debug_assert!(offset < PAGE_BYTES);
        PhysAddr(self.0 * PAGE_BYTES + offset)
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// The address of a 128-byte cache line: a [`PhysAddr`] with the low
/// `log2(LINE_BYTES)` bits dropped.
///
/// Coherence state, MSHRs, the DRAM model and all cache arrays operate
/// at this granularity.
///
/// ```
/// use ds_mem::{LineAddr, PhysAddr};
///
/// let a = LineAddr::containing(PhysAddr::new(0x100));
/// let b = LineAddr::containing(PhysAddr::new(0x17f));
/// let c = LineAddr::containing(PhysAddr::new(0x180));
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// assert_eq!(c.index(), a.index() + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    const SHIFT: u32 = LINE_BYTES.trailing_zeros();

    /// The line containing physical address `pa`.
    #[inline]
    pub const fn containing(pa: PhysAddr) -> Self {
        LineAddr(pa.as_u64() >> Self::SHIFT)
    }

    /// Constructs from a raw line index.
    #[inline]
    pub const fn from_index(i: u64) -> Self {
        LineAddr(i)
    }

    /// The raw line index (physical address divided by [`LINE_BYTES`]).
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The physical address of the first byte of the line.
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << Self::SHIFT)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {:#x}", self.base().as_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_bytes_is_power_of_two() {
        assert!(LINE_BYTES.is_power_of_two());
        assert!(PAGE_BYTES.is_power_of_two());
        const { assert!(PAGE_BYTES.is_multiple_of(LINE_BYTES)) }
    }

    #[test]
    fn virt_addr_page_decomposition() {
        let va = VirtAddr::new(3 * PAGE_BYTES + 17);
        assert_eq!(va.page(), PageNum::new(3));
        assert_eq!(va.page_offset(), 17);
    }

    #[test]
    fn phys_addr_roundtrip_through_page() {
        let pa = PhysAddr::new(5 * PAGE_BYTES + 100);
        assert_eq!(pa.page().phys_addr(pa.page_offset()), pa);
    }

    #[test]
    fn line_addr_granularity() {
        for b in 0..LINE_BYTES {
            assert_eq!(
                LineAddr::containing(PhysAddr::new(b)),
                LineAddr::from_index(0)
            );
        }
        assert_eq!(LineAddr::containing(PhysAddr::new(LINE_BYTES)).index(), 1);
    }

    #[test]
    fn line_base_is_aligned() {
        let l = LineAddr::containing(PhysAddr::new(0xdead_beef));
        assert_eq!(l.base().as_u64() % LINE_BYTES, 0);
        assert!(l.base().as_u64() <= 0xdead_beef);
        assert!(0xdead_beef < l.base().as_u64() + LINE_BYTES);
    }

    #[test]
    fn checked_offset_detects_overflow() {
        assert_eq!(VirtAddr::new(u64::MAX).checked_offset(1), None);
        assert_eq!(VirtAddr::new(10).checked_offset(5), Some(VirtAddr::new(15)));
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(VirtAddr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
        assert_eq!(format!("{:X}", PhysAddr::new(255)), "FF");
        assert_eq!(PageNum::new(2).to_string(), "page#2");
        assert_eq!(LineAddr::from_index(1).to_string(), "line 0x80");
    }
}
