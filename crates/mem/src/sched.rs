//! FR-FCFS request scheduling on top of the bank/bus model.
//!
//! The base [`Dram`] services requests in arrival order.
//! Real memory controllers reorder within a window, preferring requests
//! that hit an open row (first-ready, first-come-first-served). This
//! module provides [`FrFcfsScheduler`], a batching front end that
//! reorders a window of requests row-hit-first before handing them to
//! the device model — used by the `ablate_dram` study to quantify how
//! much controller quality matters to the CCSM-vs-direct-store
//! comparison.

use ds_sim::{Counter, Cycle};

use crate::{Dram, DramConfig, LineAddr, LINE_BYTES};

/// One queued request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRequest {
    /// Requested line.
    pub line: LineAddr,
    /// Read or write.
    pub is_write: bool,
    /// Arrival time at the controller.
    pub arrival: Cycle,
}

/// A completed request with its finish time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCompletion {
    /// The serviced request.
    pub request: DramRequest,
    /// Absolute completion time.
    pub done: Cycle,
}

/// First-ready FCFS scheduler: within the queued window, requests
/// targeting a currently open row are serviced before older requests
/// that would close it, with FCFS as the tie-break. Starvation is
/// bounded by `cap`: a request bypassed `cap` times is forced next.
///
/// # Examples
///
/// ```
/// use ds_mem::{DramConfig, DramRequest, FrFcfsScheduler, LineAddr};
/// use ds_sim::Cycle;
///
/// let mut sched = FrFcfsScheduler::new(DramConfig::paper_default(), 8);
/// // A row-hit request queued behind a row-miss one gets reordered
/// // in front of it.
/// sched.enqueue(DramRequest {
///     line: LineAddr::from_index(0),
///     is_write: false,
///     arrival: Cycle::ZERO,
/// });
/// let completions = sched.drain(Cycle::ZERO);
/// assert_eq!(completions.len(), 1);
/// ```
#[derive(Debug)]
pub struct FrFcfsScheduler {
    dram: Dram,
    queue: Vec<(DramRequest, u32)>,
    cap: u32,
    reorders: Counter,
    forced: Counter,
}

impl FrFcfsScheduler {
    /// Creates a scheduler over a fresh device model.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero (every request could starve) or the
    /// config is invalid.
    pub fn new(cfg: DramConfig, cap: u32) -> Self {
        assert!(cap > 0, "starvation cap must be non-zero");
        FrFcfsScheduler {
            dram: Dram::new(cfg),
            queue: Vec::new(),
            cap,
            reorders: Counter::new("frfcfs_reorders"),
            forced: Counter::new("frfcfs_forced"),
        }
    }

    /// The underlying device model (for statistics).
    pub fn device(&self) -> &Dram {
        &self.dram
    }

    /// Requests reordered in front of older ones.
    pub fn reorders(&self) -> u64 {
        self.reorders.value()
    }

    /// Requests forced out by the starvation cap.
    pub fn forced(&self) -> u64 {
        self.forced.value()
    }

    /// Number of queued (unserviced) requests.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Adds a request to the window.
    pub fn enqueue(&mut self, request: DramRequest) {
        self.queue.push((request, 0));
    }

    fn row_of(&self, line: LineAddr) -> (u64, u64) {
        let banks = u64::from(self.dram.config().total_banks());
        let lines_per_row = self.dram.config().row_bytes / LINE_BYTES;
        let idx = line.index();
        (idx % banks, idx / (banks * lines_per_row))
    }

    /// Services every queued request, row-hit-first, returning the
    /// completions in service order.
    pub fn drain(&mut self, now: Cycle) -> Vec<DramCompletion> {
        let mut out = Vec::with_capacity(self.queue.len());
        // Track the open row per bank as the device model will see it.
        let mut open: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        while !self.queue.is_empty() {
            // Starved request? Oldest-first scan.
            let forced_idx = self
                .queue
                .iter()
                .position(|&(_, bypassed)| bypassed >= self.cap);
            let pick = forced_idx.unwrap_or_else(|| {
                // First request whose (bank,row) matches an open row;
                // else the oldest (index 0 — queue is arrival-ordered).
                self.queue
                    .iter()
                    .position(|&(r, _)| {
                        let (bank, row) = self.row_of(r.line);
                        open.get(&bank) == Some(&row)
                    })
                    .unwrap_or(0)
            });
            if forced_idx.is_some() {
                self.forced.incr();
            } else if pick != 0 {
                self.reorders.incr();
                for (_, bypassed) in &mut self.queue[..pick] {
                    *bypassed += 1;
                }
            }
            let (request, _) = self.queue.remove(pick);
            let (bank, row) = self.row_of(request.line);
            open.insert(bank, row);
            let start = now.max(request.arrival);
            let done = self.dram.access(start, request.line, request.is_write);
            out.push(DramCompletion { request, done });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(line: u64) -> DramRequest {
        DramRequest {
            line: LineAddr::from_index(line),
            is_write: false,
            arrival: Cycle::ZERO,
        }
    }

    fn banks() -> u64 {
        u64::from(DramConfig::paper_default().total_banks())
    }

    #[test]
    fn row_hits_jump_the_queue() {
        let b = banks();
        let lines_per_row = DramConfig::paper_default().row_bytes / LINE_BYTES;
        let mut s = FrFcfsScheduler::new(DramConfig::paper_default(), 16);
        // Same bank: line 0 (row 0), a row-1 line, then another row-0
        // line that should be serviced second.
        s.enqueue(req(0));
        s.enqueue(req(b * lines_per_row)); // row 1
        s.enqueue(req(b)); // row 0 again
        let done = s.drain(Cycle::ZERO);
        let order: Vec<u64> = done.iter().map(|c| c.request.line.index()).collect();
        assert_eq!(order, vec![0, b, b * lines_per_row]);
        assert_eq!(s.reorders(), 1);
    }

    #[test]
    fn starvation_cap_forces_old_requests() {
        let b = banks();
        let mut s = FrFcfsScheduler::new(DramConfig::paper_default(), 2);
        // One row-1 request buried under many row-0 hits.
        let lines_per_row = DramConfig::paper_default().row_bytes / LINE_BYTES;
        s.enqueue(req(0));
        s.enqueue(req(b * lines_per_row)); // row 1, will be bypassed
        for i in 1..6 {
            s.enqueue(req(b * i % (b * lines_per_row))); // row-0 hits
        }
        let done = s.drain(Cycle::ZERO);
        // The row-1 request must not be last: the cap kicks in after
        // 2 bypasses.
        let pos = done
            .iter()
            .position(|c| c.request.line.index() == b * lines_per_row)
            .unwrap();
        assert!(pos < done.len() - 1, "row-1 request starved to the end");
        assert!(s.forced() >= 1);
    }

    #[test]
    fn reordering_reduces_total_latency() {
        let b = banks();
        let lines_per_row = DramConfig::paper_default().row_bytes / LINE_BYTES;
        // Alternating rows in one bank: FCFS pays a conflict each time,
        // FR-FCFS groups them.
        let pattern: Vec<u64> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    b * (i / 2)
                } else {
                    b * lines_per_row + b * (i / 2)
                }
            })
            .collect();

        let mut fcfs = Dram::new(DramConfig::paper_default());
        let mut t_fcfs = Cycle::ZERO;
        for &l in &pattern {
            t_fcfs = fcfs.access(Cycle::ZERO, LineAddr::from_index(l), false);
        }

        let mut fr = FrFcfsScheduler::new(DramConfig::paper_default(), 16);
        for &l in &pattern {
            fr.enqueue(req(l));
        }
        let t_fr = fr.drain(Cycle::ZERO).last().unwrap().done;
        assert!(
            t_fr < t_fcfs,
            "FR-FCFS ({t_fr}) should beat FCFS ({t_fcfs}) on row-alternating traffic"
        );
    }

    #[test]
    fn drain_preserves_every_request() {
        let mut s = FrFcfsScheduler::new(DramConfig::paper_default(), 4);
        for i in 0..20 {
            s.enqueue(req(i * 7));
        }
        assert_eq!(s.pending(), 20);
        let done = s.drain(Cycle::ZERO);
        assert_eq!(done.len(), 20);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.device().stats().accesses(), 20);
    }

    #[test]
    #[should_panic(expected = "starvation cap")]
    fn zero_cap_panics() {
        let _ = FrFcfsScheduler::new(DramConfig::paper_default(), 0);
    }
}
