//! ds-anvil end-to-end tests: journal replay across real server
//! restarts, torn-tail and quarantine boots, replay-equals-live
//! determinism across worker counts, and idempotent resubmission
//! over loopback HTTP.

use std::path::{Path, PathBuf};
use std::time::Duration;

use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::json::Json;
use ds_runner::Task;
use ds_serve::client::{self, SubmitAnswer};
use ds_serve::http::{client_request, client_request_ext, Request};
use ds_serve::journal::{Journal, JOURNAL_FILE};
use ds_serve::{api, ServeOptions, ServeState, Server};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsserve-anvil-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(cache: &Path, workers: usize) -> ServeOptions {
    ServeOptions {
        workers,
        handlers: 2,
        queue_limit: 8,
        cache_dir: Some(cache.to_path_buf()),
        ..ServeOptions::default()
    }
}

fn start(options: ServeOptions) -> (Server, String) {
    let server = Server::start(options, "127.0.0.1:0").expect("bind loopback");
    let url = format!("http://{}", server.addr());
    (server, url)
}

fn shutdown(url: &str, server: Server) {
    let (status, _) = client_request(
        url,
        "POST",
        "/shutdown",
        Some("{}"),
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(status, 200);
    server.wait();
}

/// The VA small CCSM+DS pair — two tasks, same shape `sweep_body`
/// submits — as a crashed-job task list.
fn va_tasks() -> Vec<Task> {
    let cfg = SystemConfig::paper_default();
    vec![
        Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm),
        Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore),
    ]
}

/// Plants a journal holding one unfinished job — the on-disk state a
/// crashed server leaves behind — and returns the job id.
fn plant_unfinished_job(cache: &Path, id: u64) -> u64 {
    let (journal, recovery) = Journal::open(cache).expect("open journal");
    assert!(recovery.jobs.is_empty());
    journal.job_submitted(id, "", &va_tasks());
    journal.task_started(id, 0);
    id
}

fn fold(doc: &Json) -> String {
    let cfg = SystemConfig::paper_default();
    client::sweep_doc(&cfg, InputSize::Small, Mode::DirectStore, doc)
        .unwrap()
        .doc
}

#[test]
fn a_planted_journal_replays_into_a_served_job_after_restart() {
    let dir = scratch("replay");
    let id = plant_unfinished_job(&dir, 7);

    let (server, url) = start(options(&dir, 2));
    assert_eq!(server.state().recovery.jobs, 1);
    assert_eq!(server.state().recovery.tasks, 2);

    // The recovered job is a first-class job under its original id.
    client::wait_done(&url, id, Duration::from_secs(300)).unwrap();
    let results = client::fetch_results(&url, id).unwrap();
    let recovered = fold(&results);

    // A fresh submission of the same sweep on the same server is pure
    // cache and folds to the same bytes: recovery left no trace in
    // the payload.
    let body = client::sweep_body(
        Some(&["VA".to_string()]),
        InputSize::Small,
        Mode::DirectStore,
    );
    let SubmitAnswer::Accepted { id: id2, .. } = client::submit(&url, &body).unwrap() else {
        panic!("live resubmission rejected");
    };
    assert!(id2 > id, "fresh ids continue past the recovered id");
    client::wait_done(&url, id2, Duration::from_secs(300)).unwrap();
    let live = fold(&client::fetch_results(&url, id2).unwrap());
    assert_eq!(recovered, live, "recovered fold differs from live fold");

    // Once the recovered job finished, the journal compacts away on
    // the next boot: nothing left to recover.
    shutdown(&url, server);
    let after = Journal::peek(&dir);
    assert!(after.jobs.is_empty(), "{after:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_folds_identically_across_worker_counts() {
    let mut folds = Vec::new();
    for workers in [1usize, 3] {
        let dir = scratch(&format!("workers{workers}"));
        let id = plant_unfinished_job(&dir, 11);
        let (server, url) = start(options(&dir, workers));
        client::wait_done(&url, id, Duration::from_secs(300)).unwrap();
        folds.push(fold(&client::fetch_results(&url, id).unwrap()));
        shutdown(&url, server);
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(folds[0], folds[1], "recovery depends on worker count");
}

#[test]
fn a_torn_tail_boot_recovers_the_job_and_reports_it() {
    let dir = scratch("torn");
    let id = plant_unfinished_job(&dir, 5);
    // A crash mid-append leaves a partial final line.
    {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        file.write_all(b"{\"rec\":\"task-don").unwrap();
    }

    let (server, url) = start(options(&dir, 2));
    assert_eq!(server.state().recovery.jobs, 1);
    assert!(server.state().recovery.torn_tail);
    client::wait_done(&url, id, Duration::from_secs(300)).unwrap();

    let (status, text) =
        client_request(&url, "GET", "/metrics", None, Duration::from_secs(10)).unwrap();
    assert_eq!(status, 200);
    let doc = ds_runner::json::parse(&text).unwrap();
    let journal = doc.get("journal").expect("journal block");
    assert_eq!(journal.get("torn_tail"), Some(&Json::Bool(true)));
    assert_eq!(
        journal.get("recovered_jobs").and_then(Json::as_u64),
        Some(1)
    );
    shutdown(&url, server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_corrupt_journal_is_quarantined_and_the_server_still_boots() {
    let dir = scratch("quarantine");
    plant_unfinished_job(&dir, 9);
    // Interior corruption: damage the first line, keep good records
    // after it — not a torn tail, a damaged history.
    let path = dir.join(JOURNAL_FILE);
    let mut text = std::fs::read_to_string(&path).unwrap();
    let first = text.find('\n').unwrap();
    text.replace_range(..first, "{\"rec\":\"garbage\"}");
    std::fs::write(&path, text).unwrap();

    let (server, url) = start(options(&dir, 2));
    assert_eq!(server.state().recovery.jobs, 0);
    assert!(server.state().recovery.quarantined);
    let quarantined: Vec<_> = std::fs::read_dir(dir.join("quarantine"))
        .expect("quarantine directory")
        .collect();
    assert_eq!(quarantined.len(), 1, "one quarantined journal");

    // The boot is degraded, not dead: new jobs flow normally.
    let body = client::sweep_body(
        Some(&["VA".to_string()]),
        InputSize::Small,
        Mode::DirectStore,
    );
    let SubmitAnswer::Accepted { id, .. } = client::submit(&url, &body).unwrap() else {
        panic!("submission rejected after quarantine boot");
    };
    client::wait_done(&url, id, Duration::from_secs(300)).unwrap();
    shutdown(&url, server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn idempotent_resubmission_attaches_over_http() {
    let dir = scratch("idem");
    let (server, url) = start(options(&dir, 2));
    let body = client::sweep_body(
        Some(&["VA".to_string()]),
        InputSize::Small,
        Mode::DirectStore,
    );
    let headers = [("Idempotency-Key".to_string(), "anvil-key-1".to_string())];
    let submit = || {
        client_request_ext(
            &url,
            "POST",
            "/jobs",
            Some(body.as_str()),
            &headers,
            Duration::from_secs(30),
        )
        .unwrap()
    };
    let (status_a, text_a, _) = submit();
    let (status_b, text_b, _) = submit();
    assert_eq!((status_a, status_b), (200, 200));
    let id = |text: &str| {
        ds_runner::json::parse(text)
            .unwrap()
            .get("job")
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert_eq!(id(&text_a), id(&text_b), "retry created a second job");
    let doc_b = ds_runner::json::parse(&text_b).unwrap();
    assert_eq!(doc_b.get("deduplicated"), Some(&Json::Bool(true)));
    client::wait_done(&url, id(&text_a), Duration::from_secs(300)).unwrap();
    shutdown(&url, server);
    let _ = std::fs::remove_dir_all(&dir);
}

fn post_jobs(state: &ServeState, key: &str) -> ds_serve::http::Response {
    api::handle(
        state,
        &Request {
            method: "POST".into(),
            path: "/jobs".into(),
            query: String::new(),
            accept: String::new(),
            idempotency: key.into(),
            body: br#"{"tasks": [{"bench": "VA", "input": "small", "mode": "ds"}]}"#.to_vec(),
        },
    )
}

#[test]
fn saturation_answers_retry_after_and_dedup_still_works_at_the_bound() {
    // State without workers: accepted jobs stay open, so the bound is
    // deterministic.
    let state = ServeState::new(ServeOptions {
        workers: 1,
        handlers: 1,
        queue_limit: 1,
        cache_dir: None,
        ..ServeOptions::default()
    });
    let first = post_jobs(&state, "busy-key");
    assert_eq!(first.status, 200);
    let full = post_jobs(&state, "");
    assert_eq!(full.status, 429);
    assert!(
        full.headers
            .iter()
            .any(|(name, value)| name == "Retry-After" && value.parse::<u64>().is_ok()),
        "429 without Retry-After: {:?}",
        full.headers
    );
    // A retry of the *accepted* submission attaches even though the
    // queue is at its bound — dedup outranks admission.
    let retry = post_jobs(&state, "busy-key");
    assert_eq!(retry.status, 200);
    let doc = ds_runner::json::parse(&retry.body).unwrap();
    assert_eq!(doc.get("deduplicated"), Some(&Json::Bool(true)));
}

#[test]
fn health_distinguishes_liveness_from_readiness_while_recovering() {
    let dir = scratch("health");
    plant_unfinished_job(&dir, 3);
    // No worker threads: the recovered job stays open, so the
    // recovering window is observable.
    let state = ServeState::new(ServeOptions {
        workers: 1,
        handlers: 1,
        queue_limit: 8,
        cache_dir: Some(dir.clone()),
        ..ServeOptions::default()
    });
    assert_eq!(state.recovering(), 1);
    let health = api::handle(
        &state,
        &Request {
            method: "GET".into(),
            path: "/health".into(),
            query: String::new(),
            accept: String::new(),
            idempotency: String::new(),
            body: Vec::new(),
        },
    );
    assert_eq!(health.status, 200, "recovering is alive");
    let doc = ds_runner::json::parse(&health.body).unwrap();
    assert_eq!(doc.get("state").and_then(Json::as_str), Some("recovering"));
    assert_eq!(doc.get("ready"), Some(&Json::Bool(false)));
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    let _ = std::fs::remove_dir_all(&dir);
}
