//! End-to-end service tests over real loopback TCP: concurrent
//! submitters sharing one computation, cross-instance disk-cache
//! reuse, deterministic rejection, and the dsrun-equivalence fold.

use std::time::Duration;

use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::json::Json;
use ds_runner::Runner;
use ds_serve::client::{self, SubmitAnswer};
use ds_serve::http::{client_request, Request};
use ds_serve::{api, ServeOptions, ServeState, Server};

fn mem_options() -> ServeOptions {
    ServeOptions {
        workers: 2,
        handlers: 2,
        queue_limit: 8,
        cache_dir: None,
        ..ServeOptions::default()
    }
}

fn start(options: ServeOptions) -> (Server, String) {
    let server = Server::start(options, "127.0.0.1:0").expect("bind loopback");
    let url = format!("http://{}", server.addr());
    (server, url)
}

/// Submits the VA small sweep, waits, and returns the results doc.
fn run_va_sweep(url: &str) -> Json {
    let body = client::sweep_body(
        Some(&["VA".to_string()]),
        InputSize::Small,
        Mode::DirectStore,
    );
    let SubmitAnswer::Accepted { id, tasks } = client::submit(url, &body).unwrap() else {
        panic!("submission rejected");
    };
    assert_eq!(tasks, 2, "VA sweep is one CCSM+DS pair");
    client::wait_done(url, id, Duration::from_secs(300)).unwrap();
    client::fetch_results(url, id).unwrap()
}

fn provenances(results: &Json) -> Vec<String> {
    results
        .get("results")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|row| {
            row.get("provenance")
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        })
        .collect()
}

fn shutdown(url: &str, server: Server) {
    let (status, _) = client_request(
        url,
        "POST",
        "/shutdown",
        Some("{}"),
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(status, 200);
    server.wait();
}

#[test]
fn concurrent_submitters_share_one_computation_bit_identically() {
    let (server, url) = start(mem_options());

    // Two racing submitters, same two TaskKeys.
    let (doc_a, doc_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run_va_sweep(&url));
        let b = scope.spawn(|| run_va_sweep(&url));
        (a.join().unwrap(), b.join().unwrap())
    });

    // Bit-identical folds: the shared store makes job identity
    // invisible in the payload.
    let cfg = SystemConfig::paper_default();
    let fold = |doc: &Json| {
        client::sweep_doc(&cfg, InputSize::Small, Mode::DirectStore, doc)
            .unwrap()
            .doc
    };
    assert_eq!(fold(&doc_a), fold(&doc_b), "racing submitters diverged");

    // Each unique key computed exactly once across both jobs; the
    // accounting reconciles exactly.
    let stats = server.state().store.stats();
    assert_eq!(stats.requests, 4, "{stats:?}");
    assert_eq!(stats.misses, 2, "two unique tasks => two computations");
    assert_eq!(stats.hits, 2, "the other two requests were served");
    assert!(stats.reconciles(), "{stats:?}");
    let all: Vec<String> = provenances(&doc_a)
        .into_iter()
        .chain(provenances(&doc_b))
        .collect();
    let computed = all.iter().filter(|p| *p == "computed").count();
    assert_eq!(computed, 2, "one computation per unique key: {all:?}");

    shutdown(&url, server);
}

#[test]
fn served_results_match_the_batch_runner_byte_for_byte() {
    let (server, url) = start(mem_options());
    let results = run_va_sweep(&url);
    let cfg = SystemConfig::paper_default();
    let served = client::sweep_doc(&cfg, InputSize::Small, Mode::DirectStore, &results)
        .unwrap()
        .doc;

    // The same sweep, straight through the batch runner.
    let comparisons = Runner::new()
        .jobs(1)
        .progress(false)
        .sweep(&cfg, InputSize::Small, Mode::DirectStore, |b| {
            use ds_core::Scenario as _;
            b.code() == "VA"
        })
        .unwrap();
    let batch = Json::Obj(vec![
        (
            "fingerprint".into(),
            Json::Str(format!("{:016x}", Runner::fingerprint(&cfg))),
        ),
        ("mode".into(), Json::Str(Mode::DirectStore.to_string())),
        (
            "comparisons".into(),
            Json::Arr(
                comparisons
                    .iter()
                    .map(ds_runner::report::comparison_to_json)
                    .collect(),
            ),
        ),
    ])
    .pretty();
    assert_eq!(served, batch, "service and batch runner diverged");
    shutdown(&url, server);
}

#[test]
fn disk_cache_is_shared_across_server_instances() {
    let dir = std::env::temp_dir().join(format!("dsserve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = || ServeOptions {
        cache_dir: Some(dir.clone()),
        ..mem_options()
    };

    // First instance computes and persists.
    let (server_a, url_a) = start(options());
    let doc_a = run_va_sweep(&url_a);
    assert_eq!(server_a.state().store.stats().misses, 2);
    shutdown(&url_a, server_a);

    // A fresh instance (fresh memo) serves the same sweep from disk:
    // zero computations, identical payload.
    let (server_b, url_b) = start(options());
    let doc_b = run_va_sweep(&url_b);
    let stats = server_b.state().store.stats();
    assert_eq!(stats.misses, 0, "disk cache was not reused: {stats:?}");
    assert_eq!(stats.hits, 2, "{stats:?}");
    assert!(
        provenances(&doc_b).iter().all(|p| p == "hit"),
        "{:?}",
        provenances(&doc_b)
    );
    let cfg = SystemConfig::paper_default();
    let fold = |doc: &Json| {
        client::sweep_doc(&cfg, InputSize::Small, Mode::DirectStore, doc)
            .unwrap()
            .doc
    };
    assert_eq!(fold(&doc_a), fold(&doc_b), "cache replay diverged");
    shutdown(&url_b, server_b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturation_answers_429_and_shutdown_answers_429() {
    // No worker pool: drive the API directly so admission state is
    // fully deterministic (nothing ever completes).
    let state = ServeState::new(ServeOptions {
        queue_limit: 1,
        cache_dir: None,
        ..ServeOptions::default()
    });
    let submit = Request {
        method: "POST".into(),
        path: "/jobs".into(),
        query: String::new(),
        accept: String::new(),
        body: br#"{"tasks": [{"bench": "VA", "input": "small", "mode": "ds"}]}"#.to_vec(),
    };
    assert_eq!(api::handle(&state, &submit).status, 200);
    let rejected = api::handle(&state, &submit);
    assert_eq!(rejected.status, 429, "{}", rejected.body);
    assert!(rejected.body.contains("queue full"), "{}", rejected.body);
    assert!(rejected.body.contains("queue_limit"), "{}", rejected.body);

    state.queue.shutdown();
    let refused = api::handle(&state, &submit);
    assert_eq!(refused.status, 429, "{}", refused.body);
    assert!(refused.body.contains("shutting down"), "{}", refused.body);

    let empty = Request {
        body: br#"{"tasks": []}"#.to_vec(),
        ..submit
    };
    assert_eq!(api::handle(&state, &empty).status, 400);
}

#[test]
fn unknown_routes_and_bad_bodies_are_4xx() {
    let state = ServeState::new(ServeOptions {
        cache_dir: None,
        ..ServeOptions::default()
    });
    let get = |path: &str| {
        api::handle(
            &state,
            &Request {
                method: "GET".into(),
                path: path.into(),
                query: String::new(),
                accept: String::new(),
                body: Vec::new(),
            },
        )
    };
    assert_eq!(get("/nope").status, 404);
    assert_eq!(get("/jobs/999").status, 404);
    assert_eq!(get("/jobs/xyz").status, 400);
    assert_eq!(get("/health").status, 200);
    assert_eq!(get("/metrics").status, 200);
    let bad = api::handle(
        &state,
        &Request {
            method: "POST".into(),
            path: "/jobs".into(),
            query: String::new(),
            accept: String::new(),
            body: b"not json".to_vec(),
        },
    );
    assert_eq!(bad.status, 400);
    let wrong_method = api::handle(
        &state,
        &Request {
            method: "DELETE".into(),
            path: "/jobs".into(),
            query: String::new(),
            accept: String::new(),
            body: Vec::new(),
        },
    );
    assert_eq!(wrong_method.status, 405);
}
