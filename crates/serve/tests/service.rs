//! End-to-end service tests over real loopback TCP: concurrent
//! submitters sharing one computation, cross-instance disk-cache
//! reuse, deterministic rejection, and the dsrun-equivalence fold.

use std::time::Duration;

use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::json::Json;
use ds_runner::Runner;
use ds_serve::client::{self, SubmitAnswer};
use ds_serve::http::{client_request, Request};
use ds_serve::{api, ServeOptions, ServeState, Server};

fn mem_options() -> ServeOptions {
    ServeOptions {
        workers: 2,
        handlers: 2,
        queue_limit: 8,
        cache_dir: None,
        ..ServeOptions::default()
    }
}

fn start(options: ServeOptions) -> (Server, String) {
    let server = Server::start(options, "127.0.0.1:0").expect("bind loopback");
    let url = format!("http://{}", server.addr());
    (server, url)
}

/// Submits the VA small sweep, waits, and returns the results doc.
fn run_va_sweep(url: &str) -> Json {
    let body = client::sweep_body(
        Some(&["VA".to_string()]),
        InputSize::Small,
        Mode::DirectStore,
    );
    let SubmitAnswer::Accepted { id, tasks } = client::submit(url, &body).unwrap() else {
        panic!("submission rejected");
    };
    assert_eq!(tasks, 2, "VA sweep is one CCSM+DS pair");
    client::wait_done(url, id, Duration::from_secs(300)).unwrap();
    client::fetch_results(url, id).unwrap()
}

fn provenances(results: &Json) -> Vec<String> {
    results
        .get("results")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|row| {
            row.get("provenance")
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        })
        .collect()
}

fn shutdown(url: &str, server: Server) {
    let (status, _) = client_request(
        url,
        "POST",
        "/shutdown",
        Some("{}"),
        Duration::from_secs(10),
    )
    .unwrap();
    assert_eq!(status, 200);
    server.wait();
}

#[test]
fn concurrent_submitters_share_one_computation_bit_identically() {
    let (server, url) = start(mem_options());

    // Two racing submitters, same two TaskKeys.
    let (doc_a, doc_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run_va_sweep(&url));
        let b = scope.spawn(|| run_va_sweep(&url));
        (a.join().unwrap(), b.join().unwrap())
    });

    // Bit-identical folds: the shared store makes job identity
    // invisible in the payload.
    let cfg = SystemConfig::paper_default();
    let fold = |doc: &Json| {
        client::sweep_doc(&cfg, InputSize::Small, Mode::DirectStore, doc)
            .unwrap()
            .doc
    };
    assert_eq!(fold(&doc_a), fold(&doc_b), "racing submitters diverged");

    // Each unique key computed exactly once across both jobs; the
    // accounting reconciles exactly.
    let stats = server.state().store.stats();
    assert_eq!(stats.requests, 4, "{stats:?}");
    assert_eq!(stats.misses, 2, "two unique tasks => two computations");
    assert_eq!(stats.hits, 2, "the other two requests were served");
    assert!(stats.reconciles(), "{stats:?}");
    let all: Vec<String> = provenances(&doc_a)
        .into_iter()
        .chain(provenances(&doc_b))
        .collect();
    let computed = all.iter().filter(|p| *p == "computed").count();
    assert_eq!(computed, 2, "one computation per unique key: {all:?}");

    shutdown(&url, server);
}

#[test]
fn served_results_match_the_batch_runner_byte_for_byte() {
    let (server, url) = start(mem_options());
    let results = run_va_sweep(&url);
    let cfg = SystemConfig::paper_default();
    let served = client::sweep_doc(&cfg, InputSize::Small, Mode::DirectStore, &results)
        .unwrap()
        .doc;

    // The same sweep, straight through the batch runner.
    let comparisons = Runner::new()
        .jobs(1)
        .progress(false)
        .sweep(&cfg, InputSize::Small, Mode::DirectStore, |b| {
            use ds_core::Scenario as _;
            b.code() == "VA"
        })
        .unwrap();
    let batch = Json::Obj(vec![
        (
            "fingerprint".into(),
            Json::Str(format!("{:016x}", Runner::fingerprint(&cfg))),
        ),
        ("mode".into(), Json::Str(Mode::DirectStore.to_string())),
        (
            "comparisons".into(),
            Json::Arr(
                comparisons
                    .iter()
                    .map(ds_runner::report::comparison_to_json)
                    .collect(),
            ),
        ),
    ])
    .pretty();
    assert_eq!(served, batch, "service and batch runner diverged");
    shutdown(&url, server);
}

#[test]
fn disk_cache_is_shared_across_server_instances() {
    let dir = std::env::temp_dir().join(format!("dsserve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = || ServeOptions {
        cache_dir: Some(dir.clone()),
        ..mem_options()
    };

    // First instance computes and persists.
    let (server_a, url_a) = start(options());
    let doc_a = run_va_sweep(&url_a);
    assert_eq!(server_a.state().store.stats().misses, 2);
    shutdown(&url_a, server_a);

    // A fresh instance (fresh memo) serves the same sweep from disk:
    // zero computations, identical payload.
    let (server_b, url_b) = start(options());
    let doc_b = run_va_sweep(&url_b);
    let stats = server_b.state().store.stats();
    assert_eq!(stats.misses, 0, "disk cache was not reused: {stats:?}");
    assert_eq!(stats.hits, 2, "{stats:?}");
    assert!(
        provenances(&doc_b).iter().all(|p| p == "hit"),
        "{:?}",
        provenances(&doc_b)
    );
    let cfg = SystemConfig::paper_default();
    let fold = |doc: &Json| {
        client::sweep_doc(&cfg, InputSize::Small, Mode::DirectStore, doc)
            .unwrap()
            .doc
    };
    assert_eq!(fold(&doc_a), fold(&doc_b), "cache replay diverged");
    shutdown(&url_b, server_b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturation_answers_429_and_shutdown_answers_429() {
    // No worker pool: drive the API directly so admission state is
    // fully deterministic (nothing ever completes).
    let state = ServeState::new(ServeOptions {
        queue_limit: 1,
        cache_dir: None,
        ..ServeOptions::default()
    });
    let submit = Request {
        method: "POST".into(),
        path: "/jobs".into(),
        query: String::new(),
        accept: String::new(),
        idempotency: String::new(),
        body: br#"{"tasks": [{"bench": "VA", "input": "small", "mode": "ds"}]}"#.to_vec(),
    };
    assert_eq!(api::handle(&state, &submit).status, 200);
    let rejected = api::handle(&state, &submit);
    assert_eq!(rejected.status, 429, "{}", rejected.body);
    assert!(rejected.body.contains("queue full"), "{}", rejected.body);
    assert!(rejected.body.contains("queue_limit"), "{}", rejected.body);

    state.queue.shutdown();
    let refused = api::handle(&state, &submit);
    assert_eq!(refused.status, 429, "{}", refused.body);
    assert!(refused.body.contains("shutting down"), "{}", refused.body);

    let empty = Request {
        body: br#"{"tasks": []}"#.to_vec(),
        ..submit
    };
    assert_eq!(api::handle(&state, &empty).status, 400);
}

/// The live `/jobs/<id>/events` stream on a pulsed job: pulse-window
/// lines for a task all precede that task's `task-done` (which carries
/// the pulse summary), the stream is bounded by the downsampler, and
/// the close delimiter is the final line. The consumer sleeps between
/// lines so the server keeps streaming into a lagging client.
#[test]
fn events_stream_interleaves_pulse_windows_and_closes_cleanly() {
    let (server, url) = start(mem_options());
    let body = client::sweep_body_pulsed(
        Some(&["VA".to_string()]),
        InputSize::Small,
        Mode::DirectStore,
        Some(1000),
    );
    let SubmitAnswer::Accepted { id, tasks } = client::submit(&url, &body).unwrap() else {
        panic!("submission rejected");
    };
    assert_eq!(tasks, 2, "VA sweep is one CCSM+DS pair");

    let mut lines: Vec<Json> = Vec::new();
    let status = client::watch(&url, id, |line| {
        std::thread::sleep(Duration::from_millis(1)); // slow consumer
        lines.push(ds_runner::json::parse(line).expect("every event line is JSON"));
    })
    .unwrap();
    assert_eq!(status, 200);

    let event = |doc: &Json| {
        doc.get("event")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string()
    };
    let task_of = |doc: &Json| doc.get("task").and_then(Json::as_u64);

    // Clean close delimiter: exactly one `done`, and it is last.
    let dones: Vec<usize> = (0..lines.len())
        .filter(|&i| event(&lines[i]) == "done")
        .collect();
    assert_eq!(dones, vec![lines.len() - 1], "done must be the last line");

    let mut sm_ops_total = 0u64;
    for task in 0..tasks {
        let windows: Vec<usize> = (0..lines.len())
            .filter(|&i| event(&lines[i]) == "pulse-window" && task_of(&lines[i]) == Some(task))
            .collect();
        let done_at = (0..lines.len())
            .find(|&i| event(&lines[i]) == "task-done" && task_of(&lines[i]) == Some(task))
            .unwrap_or_else(|| panic!("task {task} never finished"));
        assert!(!windows.is_empty(), "task {task} streamed no pulse windows");
        assert!(
            windows.len() <= ds_serve::server::PULSE_STREAM_WINDOWS,
            "stream not bounded: {} windows",
            windows.len()
        );
        assert!(
            windows.iter().all(|&i| i < done_at),
            "task {task}: pulse windows must precede its task-done"
        );
        // Windows arrive in cycle order and cover disjoint spans.
        let mut last_end = 0u64;
        for &i in &windows {
            let start = lines[i].get("start").and_then(Json::as_u64).unwrap();
            let end = lines[i].get("end").and_then(Json::as_u64).unwrap();
            assert!(start >= last_end && end > start, "windows out of order");
            last_end = end;
            sm_ops_total += lines[i].get("sm_ops").and_then(Json::as_u64).unwrap();
        }
        // The task summary carries the full (pre-downsampling) count.
        let summary = &lines[done_at];
        let full = summary.get("pulse_windows").and_then(Json::as_u64).unwrap();
        assert!(full >= windows.len() as u64, "{full} < {}", windows.len());
        assert!(summary.get("pulse_anomalies").is_some());
    }
    assert!(sm_ops_total > 0, "a VA run must stream SM work");

    // The worker published last-window gauges for /metrics: JSON...
    let (status, text) =
        client_request(&url, "GET", "/metrics", None, Duration::from_secs(10)).unwrap();
    assert_eq!(status, 200);
    let metrics = ds_runner::json::parse(&text).unwrap();
    let pulse = metrics.get("pulse").expect("metrics carry a pulse key");
    assert!(
        pulse.get("windows").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "pulse gauges absent after a pulsed job: {text}"
    );
    // ...and Prometheus exposition.
    let prom = api::handle(
        server.state(),
        &Request {
            method: "GET".into(),
            path: "/metrics".into(),
            query: String::new(),
            accept: "text/plain".into(),
            idempotency: String::new(),
            body: Vec::new(),
        },
    );
    assert_eq!(prom.status, 200);
    assert!(
        prom.body.contains("dsserve_pulse_window_cycles"),
        "{}",
        prom.body
    );

    shutdown(&url, server);
}

/// A quiet stream emits heartbeats at the configured cadence, and a
/// service shutdown closes the stream without a `done` delimiter (the
/// job never completed). Driven against a worker-less state so the
/// job stays queued forever and the stream stays quiet by
/// construction; the consumer reads slowly to prove buffered
/// heartbeats still arrive in order.
#[test]
fn quiet_event_streams_heartbeat_at_the_configured_cadence() {
    use std::io::{BufRead, BufReader};

    let state = ServeState::new(ServeOptions {
        queue_limit: 4,
        cache_dir: None,
        heartbeat: Duration::from_secs(1),
        ..ServeOptions::default()
    });
    let submit = Request {
        method: "POST".into(),
        path: "/jobs".into(),
        query: String::new(),
        accept: String::new(),
        idempotency: String::new(),
        body: br#"{"tasks": [{"bench": "VA", "input": "small", "mode": "ds"}], "pulse": 1000}"#
            .to_vec(),
    };
    let accepted = api::handle(&state, &submit);
    assert_eq!(accepted.status, 200, "{}", accepted.body);
    let id = ds_runner::json::parse(&accepted.body)
        .unwrap()
        .get("job")
        .and_then(Json::as_u64)
        .unwrap();

    // Serve exactly one raw connection with the real stream handler.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let state = state.clone();
        std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            api::stream_events(&state, &mut stream, id, 0)
        })
    };

    let stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    // Skip the HTTP response head.
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line == "\r\n" || line == "\n" {
            break;
        }
        assert!(!line.is_empty(), "header section never ended");
    }

    // Three heartbeats, read lazily (slow consumer).
    let mut beats: Vec<u64> = Vec::new();
    while beats.len() < 3 {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "stream ended early"
        );
        std::thread::sleep(Duration::from_millis(100));
        let doc = ds_runner::json::parse(line.trim()).unwrap();
        let event = doc.get("event").and_then(Json::as_str).unwrap();
        assert_ne!(event, "done", "queued job must not complete");
        if event == "heartbeat" {
            assert_eq!(doc.get("job").and_then(Json::as_u64), Some(id));
            beats.push(doc.get("t_us").and_then(Json::as_u64).unwrap());
        }
    }
    // Cadence: ~1s apart (two 500ms quiet polls), with generous slop
    // for a loaded machine but tight enough to catch a 10s default.
    for pair in beats.windows(2) {
        let gap = pair[1].saturating_sub(pair[0]);
        assert!(
            (800_000..5_000_000).contains(&gap),
            "heartbeat gap {gap}us is off-cadence"
        );
    }

    // Shutdown ends the stream with no done line: the job never ran.
    ds_serve::server::request_shutdown(&state);
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break; // clean EOF, no delimiter
        }
        let doc = ds_runner::json::parse(line.trim()).unwrap();
        assert_ne!(
            doc.get("event").and_then(Json::as_str),
            Some("done"),
            "an aborted stream must not claim completion"
        );
    }
    server.join().unwrap();
}

/// One seeded fault sweep, both telemetry surfaces: a submission that
/// combines a dschaos-style fault plan with a pulse window streams the
/// detected anomalies live on `/jobs/<id>/events`, and the served
/// report carries the same anomaly list (anomaly lines are never
/// downsampled, so the counts must match exactly).
#[test]
fn faulted_pulsed_jobs_stream_the_anomalies_the_report_carries() {
    let (server, url) = start(mem_options());
    // Same plan as the dspulse CLI smoke: delaying the direct net
    // forces push retries without deadlocking the VA readback.
    let body = r#"{"tasks": [{"bench": "VA", "input": "small", "mode": "ds"}],
                   "pulse": 1000,
                   "faults": {"net": "direct", "kind": "delay", "rate": 32000, "seed": 7}}"#;
    let SubmitAnswer::Accepted { id, tasks } = client::submit(&url, body).unwrap() else {
        panic!("submission rejected");
    };
    assert_eq!(tasks, 1);

    let known = [
        "stall-storm",
        "retry-burst",
        "utilization-cliff",
        "livelock-precursor",
    ];
    let mut streamed: Vec<(String, u64, u64)> = Vec::new();
    let mut summary_count = None;
    client::watch(&url, id, |line| {
        let doc = ds_runner::json::parse(line).expect("every event line is JSON");
        match doc.get("event").and_then(Json::as_str) {
            Some("pulse-anomaly") => {
                let kind = doc.get("kind").and_then(Json::as_str).unwrap().to_string();
                assert!(known.contains(&kind.as_str()), "unknown detector {kind:?}");
                streamed.push((
                    kind,
                    doc.get("start").and_then(Json::as_u64).unwrap(),
                    doc.get("end").and_then(Json::as_u64).unwrap(),
                ));
            }
            Some("task-done") => {
                summary_count = doc.get("pulse_anomalies").and_then(Json::as_u64);
            }
            _ => {}
        }
    })
    .unwrap();
    assert!(
        !streamed.is_empty(),
        "a 32000/65535 direct-net delay rate must trip a detector"
    );
    assert_eq!(summary_count, Some(streamed.len() as u64));

    let results = client::fetch_results(&url, id).unwrap();
    let row = &results.get("results").and_then(Json::as_arr).unwrap()[0];
    let reported: Vec<(String, u64, u64)> = row
        .get("report")
        .and_then(|r| r.get("pulse"))
        .and_then(|p| p.get("anomalies"))
        .and_then(Json::as_arr)
        .expect("faulted pulsed report carries an anomaly list")
        .iter()
        .map(|a| {
            (
                a.get("kind").and_then(Json::as_str).unwrap().to_string(),
                a.get("start").and_then(Json::as_u64).unwrap(),
                a.get("end").and_then(Json::as_u64).unwrap(),
            )
        })
        .collect();
    assert_eq!(streamed, reported, "stream and report must agree");

    shutdown(&url, server);
}

#[test]
fn unknown_routes_and_bad_bodies_are_4xx() {
    let state = ServeState::new(ServeOptions {
        cache_dir: None,
        ..ServeOptions::default()
    });
    let get = |path: &str| {
        api::handle(
            &state,
            &Request {
                method: "GET".into(),
                path: path.into(),
                query: String::new(),
                accept: String::new(),
                idempotency: String::new(),
                body: Vec::new(),
            },
        )
    };
    assert_eq!(get("/nope").status, 404);
    assert_eq!(get("/jobs/999").status, 404);
    assert_eq!(get("/jobs/xyz").status, 400);
    assert_eq!(get("/health").status, 200);
    assert_eq!(get("/metrics").status, 200);
    let bad = api::handle(
        &state,
        &Request {
            method: "POST".into(),
            path: "/jobs".into(),
            query: String::new(),
            accept: String::new(),
            idempotency: String::new(),
            body: b"not json".to_vec(),
        },
    );
    assert_eq!(bad.status, 400);
    let wrong_method = api::handle(
        &state,
        &Request {
            method: "DELETE".into(),
            path: "/jobs".into(),
            query: String::new(),
            accept: String::new(),
            idempotency: String::new(),
            body: Vec::new(),
        },
    );
    assert_eq!(wrong_method.status, 405);
}
