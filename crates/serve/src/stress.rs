//! The built-in stress harness: N virtual users hammering the job
//! API over real TCP.
//!
//! Each user is a thread driving a seeded state machine: submit a
//! one-task job, poll it, fetch its results, occasionally probe
//! `/metrics` — every HTTP round trip counts as one *op* and its
//! wall-clock latency lands in one merged [`Histogram`]. Seeds derive
//! from `--seed` with splitmix64, so a stress run is reproducible
//! op-for-op; only the latencies (and the hit/miss split between
//! racing users) vary between machines.
//!
//! The summary reports ops/sec, p50/p95/p99 op latency, and the
//! *store delta* over the run — how many result-store requests the
//! run caused and what fraction were served from cache — read from
//! `/metrics` before and after, so it composes with an already-warm
//! server.

use std::time::{Duration, Instant};

use ds_runner::json::{self, Json};
use ds_sim::Histogram;

use crate::http::client_request;

/// Knobs for one stress run.
#[derive(Debug, Clone)]
pub struct StressOptions {
    /// Virtual users (threads).
    pub users: usize,
    /// HTTP operations per user.
    pub ops: usize,
    /// Master seed; user `i` runs on `splitmix64(seed + i)`.
    pub seed: u64,
    /// Benchmark codes submissions draw from. A short list keeps the
    /// task universe small, so repeat passes and racing users hit the
    /// shared store — which is the point of the exercise.
    pub codes: Vec<String>,
    /// Per-request client timeout.
    pub timeout: Duration,
}

impl Default for StressOptions {
    fn default() -> Self {
        StressOptions {
            users: 4,
            ops: 32,
            seed: 1,
            codes: vec!["VA".into(), "MM".into(), "BS".into()],
            timeout: Duration::from_secs(120),
        }
    }
}

/// What one stress run measured.
#[derive(Debug)]
pub struct StressSummary {
    /// Users that ran.
    pub users: usize,
    /// Total HTTP operations completed.
    pub ops: u64,
    /// Submissions refused with 429 (saturation is a *measured*
    /// outcome here, not an error).
    pub rejected: u64,
    /// Transport-level failures (timeouts, resets).
    pub errors: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Merged per-op latency, microseconds.
    pub latency: Histogram,
    /// Result-store requests the run caused (`/metrics` delta).
    pub store_requests: u64,
    /// Store requests served from cache (hit or coalesced).
    pub store_hits: u64,
    /// Store requests that ran a simulation.
    pub store_misses: u64,
}

/// Header matching [`StressSummary::csv_row`], for sweep scripts.
pub const STRESS_CSV_HEADER: &str = "users,ops,elapsed_s,ops_per_sec,rejected,errors,\
p50_us,p95_us,p99_us,max_us,store_requests,store_hits,store_misses,hit_rate";

impl StressSummary {
    /// One CSV row under [`STRESS_CSV_HEADER`] (`scripts/serve_bench.sh`
    /// accumulates these across concurrency levels).
    pub fn csv_row(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "0".to_string(), |n| n.to_string());
        format!(
            "{},{},{:.3},{:.1},{},{},{},{},{},{},{},{},{},{:.4}",
            self.users,
            self.ops,
            self.elapsed.as_secs_f64(),
            self.ops_per_sec(),
            self.rejected,
            self.errors,
            opt(self.latency.percentile(50.0)),
            opt(self.latency.percentile(95.0)),
            opt(self.latency.percentile(99.0)),
            self.latency.max(),
            self.store_requests,
            self.store_hits,
            self.store_misses,
            self.hit_rate()
        )
    }

    /// Operations per second over the whole run.
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / secs
    }

    /// Cache hit rate of the store traffic this run generated.
    pub fn hit_rate(&self) -> f64 {
        if self.store_requests == 0 {
            return 0.0;
        }
        self.store_hits as f64 / self.store_requests as f64
    }
}

impl std::fmt::Display for StressSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let opt = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |n| n.to_string());
        writeln!(
            f,
            "stress: {} users x {} ops in {:.2}s = {:.1} ops/sec ({} rejected, {} errors)",
            self.users,
            self.ops / (self.users.max(1) as u64),
            self.elapsed.as_secs_f64(),
            self.ops_per_sec(),
            self.rejected,
            self.errors
        )?;
        writeln!(
            f,
            "latency us: p50={} p95={} p99={} max={}",
            opt(self.latency.percentile(50.0)),
            opt(self.latency.percentile(95.0)),
            opt(self.latency.percentile(99.0)),
            self.latency.max()
        )?;
        write!(
            f,
            "store: {} requests, {} hits, {} misses, hit rate {:.1}%",
            self.store_requests,
            self.store_hits,
            self.store_misses,
            self.hit_rate() * 100.0
        )
    }
}

/// The splitmix64 mixer: tiny, seedable, and plenty for op choice.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Store counters scraped from `/metrics`.
fn store_counters(url: &str, timeout: Duration) -> Result<(u64, u64, u64), String> {
    let (status, body) = client_request(url, "GET", "/metrics", None, timeout)?;
    if status != 200 {
        return Err(format!("GET /metrics answered {status}"));
    }
    let doc = json::parse(&body).map_err(|e| format!("bad /metrics JSON: {e}"))?;
    let store = doc.get("store").ok_or("metrics missing \"store\"")?;
    let field = |key: &str| {
        store
            .get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("metrics store missing {key:?}"))
    };
    Ok((field("requests")?, field("hits")?, field("misses")?))
}

/// One virtual user's tally.
struct UserTally {
    latencies_us: Vec<u64>,
    rejected: u64,
    errors: u64,
}

/// The per-user state machine: each op is one HTTP round trip.
fn user_loop(url: &str, options: &StressOptions, user: usize) -> UserTally {
    let mut rng = options.seed.wrapping_add(user as u64);
    let mut tally = UserTally {
        latencies_us: Vec::with_capacity(options.ops),
        rejected: 0,
        errors: 0,
    };
    // (job id, results already fetched?) of the job in flight.
    let mut pending: Option<(u64, bool)> = None;
    for _ in 0..options.ops {
        let roll = splitmix64(&mut rng);
        let (method, path, body);
        match &pending {
            _ if roll.is_multiple_of(8) => {
                (method, path, body) = ("GET", "/metrics".to_string(), None);
            }
            Some((id, false)) => {
                (method, path, body) = ("GET", format!("/jobs/{id}"), None);
            }
            Some((id, true)) => {
                (method, path, body) = ("GET", format!("/jobs/{id}/results"), None);
                pending = None;
            }
            None => {
                let code = &options.codes[(roll as usize / 8) % options.codes.len()];
                let submission = format!(
                    "{{\"tasks\": [{{\"bench\": \"{code}\", \"input\": \"small\", \
                     \"mode\": \"ds\"}}]}}"
                );
                (method, path, body) = ("POST", "/jobs".to_string(), Some(submission));
            }
        }
        let started = Instant::now();
        let answer = client_request(url, method, &path, body.as_deref(), options.timeout);
        tally
            .latencies_us
            .push(started.elapsed().as_micros() as u64);
        match answer {
            Ok((200, text)) => match (method, path.as_str()) {
                ("POST", "/jobs") => {
                    let id = json::parse(&text)
                        .ok()
                        .and_then(|doc| doc.get("job").and_then(Json::as_u64));
                    pending = id.map(|id| (id, false));
                }
                ("GET", p) if p.starts_with("/jobs/") && !p.ends_with("/results") => {
                    let done = json::parse(&text)
                        .ok()
                        .and_then(|doc| doc.get("state").and_then(|s| s.as_str().map(String::from)))
                        .is_some_and(|s| s == "done");
                    if done {
                        if let Some((_, fetched)) = &mut pending {
                            *fetched = true;
                        }
                    }
                }
                _ => {}
            },
            Ok((429, _)) => {
                tally.rejected += 1;
                pending = None;
            }
            Ok(_) => tally.errors += 1,
            Err(_) => tally.errors += 1,
        }
    }
    tally
}

/// Runs the stress harness against a serving `url`.
///
/// # Errors
///
/// Only setup failures (the `/metrics` scrapes) abort the run;
/// per-op failures are tallied in the summary instead.
pub fn run_stress(url: &str, options: &StressOptions) -> Result<StressSummary, String> {
    if options.users == 0 || options.ops == 0 {
        return Err("stress needs at least one user and one op".into());
    }
    if options.codes.is_empty() {
        return Err("stress needs at least one benchmark code".into());
    }
    let (req0, hit0, miss0) = store_counters(url, options.timeout)?;
    let started = Instant::now();
    let tallies: Vec<UserTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.users)
            .map(|user| scope.spawn(move || user_loop(url, options, user)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed();
    let (req1, hit1, miss1) = store_counters(url, options.timeout)?;

    let mut latency = Histogram::new("stress_op_us");
    let mut ops = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    for tally in tallies {
        ops += tally.latencies_us.len() as u64;
        rejected += tally.rejected;
        errors += tally.errors;
        for us in tally.latencies_us {
            latency.record(us);
        }
    }
    Ok(StressSummary {
        users: options.users,
        ops,
        rejected,
        errors,
        elapsed,
        latency,
        store_requests: req1.saturating_sub(req0),
        store_hits: hit1.saturating_sub(hit0),
        store_misses: miss1.saturating_sub(miss0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = 7u64;
        let mut b = 7u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "no collisions in a short run");
    }

    #[test]
    fn summary_math_is_sane() {
        let mut latency = Histogram::new("stress_op_us");
        for v in [100, 200, 300, 400] {
            latency.record(v);
        }
        let s = StressSummary {
            users: 2,
            ops: 4,
            rejected: 1,
            errors: 0,
            elapsed: Duration::from_secs(2),
            latency,
            store_requests: 4,
            store_hits: 3,
            store_misses: 1,
        };
        assert!((s.ops_per_sec() - 2.0).abs() < 1e-9);
        assert!((s.hit_rate() - 0.75).abs() < 1e-9);
        let text = s.to_string();
        assert!(text.contains("hit rate 75.0%"), "{text}");
        let row = s.csv_row();
        assert_eq!(
            row.split(',').count(),
            STRESS_CSV_HEADER.split(',').count(),
            "{row}"
        );
        assert!(row.starts_with("2,4,2.000,2.0,1,0,"), "{row}");
        assert!(row.ends_with(",4,3,1,0.7500"), "{row}");
    }
}
