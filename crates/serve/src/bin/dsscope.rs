//! `dsscope` — correlated span tracing: stitch, summarize, audit.
//!
//! The consumer side of ds-scope. Three commands:
//!
//! ```text
//! dsscope --check [--bench A,B,...] [--jobs N]
//! dsscope summary (--job FILE | --url U JOB)
//! dsscope merge   (--job FILE | --url U JOB) [--trace FILE]...
//!                 [--out FILE]
//! ```
//!
//! * `--check` runs the span audit over the small catalog: every
//!   report carries a span tree, every tree telescopes (children
//!   nest inside parents, sibling durations never exceed the
//!   parent's), every task span reconciles queue + store + sim +
//!   overhead against its wall clock exactly — and turning scope off
//!   reproduces the scope-on reports bit-identically minus the tree
//!   (the fig4 zero-overhead contract).
//! * `summary` prints a per-job span-tree summary with the same
//!   telescoping and reconciliation checks, from a served
//!   `/jobs/<id>/results` document (fetched live or read from a
//!   file).
//! * `merge` additionally stitches the service-level spans and any
//!   `dstrace` Chrome tracks into one Perfetto-loadable trace, so a
//!   single artifact spans HTTP request → job → task →
//!   queue-wait/store-lookup/sim-run → simulator stage events. A
//!   trace rendered with `dstrace --format chrome --window N` also
//!   carries ds-pulse counter tracks and anomaly instants; those
//!   pass through untouched, so the merged artifact shows live
//!   counter ramps under the span tree.
//!
//! Service spans land on pid 5 (the ds-probe Chrome renderer uses
//! pids 0–4 for kernels, DRAM, and the three NoCs, and pid 6 for
//! ds-pulse counter tracks), one thread track per task, so the causal
//! tree reads top-down in the Perfetto UI.

use ds_core::Scenario as _;
use ds_core::{InputSize, Mode, SystemConfig};
use ds_probe::scope::{self, SpanKind, SpanRecord, SpanTree};
use ds_runner::json::{self, Json};
use ds_runner::{span_from_json, sweep_tasks, Runner, TaskOutcome};
use ds_serve::client;

const USAGE: &str = "usage: dsscope <command> [options]

Correlated span tracing over ds-serve jobs and ds-runner reports.

commands:
  --check    audit span trees over the small catalog (exit 1 on any
             telescoping/reconciliation violation or scope overhead)
  summary    print a job's span-tree summary with telescoping checks
  merge      stitch job spans + dstrace Chrome tracks (including
             ds-pulse counter tracks from --window renders) into one
             Perfetto trace

check options:
  --bench A,B,...   only these Table II codes (default: all 22)
  --jobs N          worker threads for the audit sweep

summary/merge options:
  --job FILE        read the /jobs/<id>/results document from FILE
  --url U JOB       fetch it live from server U, job id JOB
  --trace FILE      (merge) a dstrace Chrome JSON to fold in; repeat
                    for more files
  --out FILE        (merge) output path
                    (default: results/dsscope-trace.json)

exit codes: 0 ok; 1 violation or failure; 2 usage";

fn usage_error(message: &str) -> ! {
    eprintln!("dsscope: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("dsscope: {message}");
    std::process::exit(1);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        None => usage_error("missing command"),
        Some("--help" | "-h" | "help") => println!("{USAGE}"),
        Some("--check") => run_check(&argv[1..]),
        Some("summary") => cmd_summary(&argv[1..], false),
        Some("merge") => cmd_summary(&argv[1..], true),
        Some(other) => usage_error(&format!("unknown command {other:?}")),
    }
}

// ---------------------------------------------------------------- check

fn run_check(rest: &[String]) {
    let mut codes: Option<Vec<String>> = None;
    let mut jobs: Option<usize> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bench" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--bench needs a value"));
                codes = Some(v.split(',').map(str::to_string).collect());
            }
            "--jobs" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--jobs needs a value"));
                jobs = v.parse().ok().filter(|n| *n > 0).or_else(|| {
                    usage_error(&format!("--jobs needs a positive integer, got {v:?}"))
                });
            }
            other => usage_error(&format!("unknown check option {other:?}")),
        }
    }

    let cfg = SystemConfig::paper_default();
    let filter = |b: &ds_workloads::Benchmark| {
        codes
            .as_ref()
            .is_none_or(|codes| codes.iter().any(|c| c == b.code()))
    };
    let tasks = sweep_tasks(&cfg, InputSize::Small, Mode::DirectStore, filter);
    if tasks.is_empty() {
        fail("no benchmarks selected (check --bench spelling against Table II)");
    }

    // Pass 1: scope on at full probe level — every report must carry
    // a tree that telescopes and reconciles.
    ds_probe::prof::set_level(ds_probe::ProbeLevel::Full);
    scope::set_enabled(true);
    let mut runner = Runner::new().progress(false);
    if let Some(n) = jobs {
        runner = runner.jobs(n);
    }
    let outcomes = runner.run_tasks_outcomes(&tasks);
    let mut failures = 0usize;
    let mut scoped_va: Option<ds_core::RunReport> = None;
    for (task, outcome) in tasks.iter().zip(&outcomes) {
        let label = format!("{} {} {}", task.code, task.input, task.mode);
        let Some(report) = outcome.report() else {
            eprintln!("dsscope: FAIL {label}: task ended {}", outcome.tag());
            failures += 1;
            continue;
        };
        let Some(tree) = &report.scope else {
            eprintln!("dsscope: FAIL {label}: report carries no span tree with scope on");
            failures += 1;
            continue;
        };
        if let Err(e) = tree.check() {
            eprintln!("dsscope: FAIL {label}: telescoping violation: {e}");
            failures += 1;
            continue;
        }
        let Some(task_span) = tree.find(SpanKind::Task) else {
            eprintln!("dsscope: FAIL {label}: tree has no task span");
            failures += 1;
            continue;
        };
        let Some(rec) = tree.reconcile(task_span.id) else {
            eprintln!("dsscope: FAIL {label}: task span does not reconcile");
            failures += 1;
            continue;
        };
        let sum = rec.queue_us + rec.store_us + rec.sim_us + rec.overhead_us;
        if sum != rec.total_us {
            eprintln!(
                "dsscope: FAIL {label}: queue {} + store {} + sim {} + overhead {} \
                 != total {}",
                rec.queue_us, rec.store_us, rec.sim_us, rec.overhead_us, rec.total_us
            );
            failures += 1;
        }
        if task.code == "VA" && task.mode == Mode::Ccsm {
            scoped_va = Some(report.clone());
        }
    }

    // Pass 2: the zero-overhead contract. With scope off, a fresh
    // runner's report must be bit-identical to the scope-on one minus
    // the tree (Debug formatting is the repo's exhaustive-equality
    // idiom; it covers every field).
    scope::set_enabled(false);
    if let Some(mut scoped) = scoped_va {
        let task = tasks
            .iter()
            .find(|t| t.code == "VA" && t.mode == Mode::Ccsm)
            .expect("VA CCSM was in the sweep");
        let outcome = Runner::new()
            .progress(false)
            .run_tasks_outcomes(std::slice::from_ref(task));
        match outcome.first().and_then(TaskOutcome::report) {
            Some(plain) => {
                if plain.scope.is_some() {
                    eprintln!("dsscope: FAIL VA: report carries a span tree with scope off");
                    failures += 1;
                }
                scoped.scope = None;
                if format!("{plain:?}") != format!("{scoped:?}") {
                    eprintln!(
                        "dsscope: FAIL VA: scope-off report differs from scope-on minus \
                         the tree (scope is not zero-overhead)"
                    );
                    failures += 1;
                }
            }
            None => {
                eprintln!("dsscope: FAIL VA: scope-off rerun produced no report");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        fail(&format!("check FAILED ({failures} violation(s))"));
    }
    println!(
        "dsscope: check passed for {} task(s): span trees telescope, task spans \
         reconcile exactly, and scope-off reports are bit-identical",
        tasks.len()
    );
}

// ------------------------------------------------------- summary/merge

struct TaskSpans {
    label: String,
    outcome: String,
    spans: Vec<SpanRecord>,
}

struct JobSpans {
    job: u64,
    span: u64,
    parent_span: u64,
    tasks: Vec<TaskSpans>,
}

fn load_results_doc(job_file: Option<&str>, url_job: Option<(&str, u64)>) -> Json {
    match (job_file, url_job) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")))
        }
        (None, Some((url, id))) => client::fetch_results(url, id).unwrap_or_else(|e| fail(&e)),
        _ => usage_error("give exactly one of --job FILE or --url U JOB"),
    }
}

fn parse_job_spans(doc: &Json) -> JobSpans {
    let job = doc.get("job").and_then(Json::as_u64).unwrap_or(0);
    let span = doc.get("span").and_then(Json::as_u64).unwrap_or(0);
    let parent_span = doc.get("parent_span").and_then(Json::as_u64).unwrap_or(0);
    let rows = doc
        .get("results")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail("document has no \"results\" array (is this /jobs/<id>/results?)"));
    let tasks = rows
        .iter()
        .map(|row| {
            let label = format!(
                "{} {} {}",
                row.get("bench").and_then(Json::as_str).unwrap_or("?"),
                row.get("input").and_then(Json::as_str).unwrap_or("?"),
                row.get("mode").and_then(Json::as_str).unwrap_or("?"),
            );
            let outcome = row
                .get("outcome")
                .and_then(Json::as_str)
                .unwrap_or("pending")
                .to_string();
            let spans = row
                .get("spans")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .map(|s| span_from_json(s).unwrap_or_else(|e| fail(&e)))
                        .collect()
                })
                .unwrap_or_default();
            TaskSpans {
                label,
                outcome,
                spans,
            }
        })
        .collect();
    JobSpans {
        job,
        span,
        parent_span,
        tasks,
    }
}

/// Builds the full causal tree for one job: a synthetic request span
/// and job span (the results document carries their ids but not their
/// intervals, so they envelope their children) over every task's
/// recorded spans.
fn job_tree(job: &JobSpans) -> SpanTree {
    let mut spans: Vec<SpanRecord> = Vec::new();
    let all: Vec<&SpanRecord> = job.tasks.iter().flat_map(|t| &t.spans).collect();
    let start = all.iter().map(|s| s.start_us).min().unwrap_or(0);
    let end = all.iter().map(|s| s.end_us).max().unwrap_or(0);
    if job.parent_span != 0 {
        spans.push(SpanRecord {
            id: job.parent_span,
            parent: 0,
            kind: SpanKind::Request,
            label: "POST /jobs".into(),
            start_us: start,
            end_us: end,
        });
    }
    if job.span != 0 {
        spans.push(SpanRecord {
            id: job.span,
            parent: job.parent_span,
            kind: SpanKind::Job,
            label: format!("job {}", job.job),
            start_us: start,
            end_us: end,
        });
    }
    for task in &job.tasks {
        spans.extend(task.spans.iter().cloned());
    }
    SpanTree { spans }
}

fn print_summary(job: &JobSpans) -> usize {
    let mut failures = 0usize;
    println!(
        "job {} (span {}, request span {}): {} task(s)",
        job.job,
        job.span,
        job.parent_span,
        job.tasks.len()
    );
    for task in &job.tasks {
        println!("  task {} [{}]", task.label, task.outcome);
        if task.spans.is_empty() {
            println!("    (no spans recorded)");
            continue;
        }
        // Tasks of one job run concurrently, so their spans overlap
        // each other freely — the strict telescoping invariant holds
        // *within* each task's subtree. Root it by detaching the task
        // span from the (absent) job span.
        let mut spans = task.spans.clone();
        if let Some(root) = spans.iter_mut().find(|s| s.kind == SpanKind::Task) {
            root.parent = 0;
        }
        let task_tree = SpanTree { spans };
        match task_tree.check() {
            Ok(()) => println!("    telescoping: ok ({} spans)", task_tree.spans.len()),
            Err(e) => {
                println!("    telescoping: FAIL: {e}");
                failures += 1;
            }
        }
        for line in task_tree.render().lines() {
            println!("    {line}");
        }
        if let Some(root) = task_tree.find(SpanKind::Task) {
            match task_tree.reconcile(root.id) {
                Some(rec)
                    if rec.queue_us + rec.store_us + rec.sim_us + rec.overhead_us
                        == rec.total_us =>
                {
                    println!(
                        "    reconciles: queue {}us + store {}us + sim {}us + \
                         overhead {}us = {}us",
                        rec.queue_us, rec.store_us, rec.sim_us, rec.overhead_us, rec.total_us
                    );
                }
                _ => {
                    println!("    reconciles: FAIL");
                    failures += 1;
                }
            }
        }
    }
    failures
}

/// One Chrome `X` (complete) event.
fn complete_event(name: &str, ts: u64, dur: u64, pid: u64, tid: u64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("cat".into(), Json::Str("dsscope".into())),
        ("ph".into(), Json::Str("X".into())),
        ("ts".into(), Json::Int(ts)),
        ("dur".into(), Json::Int(dur.max(1))),
        ("pid".into(), Json::Int(pid)),
        ("tid".into(), Json::Int(tid)),
    ])
}

fn meta_event(pid: u64, tid: Option<u64>, what: &str, name: &str) -> Json {
    let mut fields = vec![
        ("name".into(), Json::Str(what.into())),
        ("ph".into(), Json::Str("M".into())),
        ("pid".into(), Json::Int(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), Json::Int(tid)));
    }
    fields.push((
        "args".into(),
        Json::Obj(vec![("name".into(), Json::Str(name.into()))]),
    ));
    Json::Obj(fields)
}

/// Service spans sit above the simulator pids (0 = kernels, 1 = DRAM,
/// 2–4 = NoCs in the ds-probe Chrome renderer).
const PID_SCOPE: u64 = 5;

fn merged_trace(job: &JobSpans, trace_files: &[String]) -> Json {
    let mut events = vec![meta_event(PID_SCOPE, None, "process_name", "dsserve spans")];
    events.push(meta_event(PID_SCOPE, Some(0), "thread_name", "request/job"));
    let tree = job_tree(job);
    for span in &tree.spans {
        if matches!(span.kind, SpanKind::Request | SpanKind::Job) {
            events.push(complete_event(
                &format!("{}: {}", span.kind.name(), span.label),
                span.start_us,
                span.duration_us(),
                PID_SCOPE,
                0,
            ));
        }
    }
    for (idx, task) in job.tasks.iter().enumerate() {
        let tid = idx as u64 + 1;
        events.push(meta_event(
            PID_SCOPE,
            Some(tid),
            "thread_name",
            &format!("task {} {}", idx, task.label),
        ));
        for span in &task.spans {
            let name = if span.label.is_empty() {
                span.kind.name().to_string()
            } else {
                format!("{}: {}", span.kind.name(), span.label)
            };
            events.push(complete_event(
                &name,
                span.start_us,
                span.duration_us(),
                PID_SCOPE,
                tid,
            ));
        }
    }
    for path in trace_files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let doc = json::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        let Some(track) = doc.get("traceEvents").and_then(Json::as_arr) else {
            fail(&format!(
                "{path} has no \"traceEvents\" (not a Chrome trace?)"
            ));
        };
        events.extend(track.iter().cloned());
    }
    Json::Obj(vec![
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        (
            "otherData".into(),
            Json::Obj(vec![
                ("generator".into(), Json::Str("dsscope".into())),
                (
                    "note".into(),
                    Json::Str(
                        "service spans (pid 5) tick in host microseconds; simulator \
                         tracks keep their cycle timestamps"
                            .into(),
                    ),
                ),
            ]),
        ),
        ("traceEvents".into(), Json::Arr(events)),
    ])
}

fn cmd_summary(rest: &[String], merge: bool) {
    let mut job_file: Option<String> = None;
    let mut url_job: Option<(String, u64)> = None;
    let mut trace_files: Vec<String> = Vec::new();
    let mut out = "results/dsscope-trace.json".to_string();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--job" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--job needs a file"));
                job_file = Some(v.clone());
            }
            "--url" => {
                let u = it
                    .next()
                    .unwrap_or_else(|| usage_error("--url needs a value"));
                let id = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage_error("--url needs a URL and a job id"));
                url_job = Some((u.clone(), id));
            }
            "--trace" if merge => {
                trace_files.push(
                    it.next()
                        .unwrap_or_else(|| usage_error("--trace needs a file"))
                        .clone(),
                );
            }
            "--out" if merge => {
                out = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out needs a file"))
                    .clone();
            }
            other => usage_error(&format!("unknown option {other:?}")),
        }
    }
    let doc = load_results_doc(
        job_file.as_deref(),
        url_job.as_ref().map(|(u, id)| (u.as_str(), *id)),
    );
    let job = parse_job_spans(&doc);
    let failures = print_summary(&job);
    if merge {
        let trace = merged_trace(&job, &trace_files);
        if let Some(dir) = std::path::Path::new(&out).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
            }
        }
        std::fs::write(&out, trace.pretty())
            .unwrap_or_else(|e| fail(&format!("cannot write {out}: {e}")));
        println!(
            "merged trace: {out} ({} trace file(s) folded in)",
            trace_files.len()
        );
    }
    if failures > 0 {
        fail(&format!("{failures} span check(s) failed"));
    }
}
