//! `dsserve` — simulation as a service.
//!
//! Runs the deterministic simulator behind an HTTP job API with a
//! shared content-addressed result store, and ships its own client
//! and load harness so the whole loop (submit, poll, fetch, stress,
//! audit) works from one binary with zero dependencies.
//!
//! ```text
//! dsserve serve    [--port N] [--addr HOST:PORT] [--port-file PATH]
//!                  [--workers N] [--handlers N] [--queue-limit N]
//!                  [--timeout SECS] [--cache DIR | --no-cache]
//!                  [--verbose]
//! dsserve submit   [--url U] [--bench A,B,...] [--input small|big]
//!                  [--mode ds|ds-only] [--pulse WINDOW] [--no-wait]
//!                  [--expect-cached] [--wait-timeout SECS]
//! dsserve status   [--url U] JOB
//! dsserve results  [--url U] JOB
//! dsserve watch    [--url U] JOB
//! dsserve metrics  [--url U]
//! dsserve stress   [--url U] [--users N] [--ops N] [--seed S]
//!                  [--bench A,B,...] [--require-hits]
//! dsserve shutdown [--url U]
//! dsserve --check
//! ```
//!
//! `submit` prints the *byte-identical* `dsrun --format json`
//! document for the same sweep (CI `cmp`s them), and exits 7 — not 1
//! — when admission control answers 429, so scripts can tell an
//! explicit saturation rejection from a real failure.

use std::time::Duration;

use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::json::Json;
use ds_serve::client::{self, SubmitAnswer};
use ds_serve::http::client_request;
use ds_serve::jobs::{JobQueue, Rejection};
use ds_serve::stress::{run_stress, StressOptions};
use ds_serve::{ServeOptions, Server};

const USAGE: &str = "usage: dsserve <command> [options]

Simulation as a service: an HTTP job API over the deterministic
runner with a shared content-addressed result store.

commands:
  serve      run the service until POST /shutdown
  submit     submit a sweep, wait, print dsrun-identical JSON
  status     print a job's status document
  results    print a job's results document
  watch      tail a job's live telemetry (span-open/close, progress,
             pulse windows) until it completes; one NDJSON event per
             line on stdout, plus live sparkline dashboards on stderr
             for tasks submitted with a pulse window
  metrics    print the /metrics document
  stress     seeded virtual users; ops/sec, p50/p95/p99, hit rate
  shutdown   ask a server to shut down cleanly
  --check    run the service self-audit (exit 1 on violation)

serve options:
  --port N            port on 127.0.0.1 (default: 7878; 0 = ephemeral)
  --addr HOST:PORT    bind address (overrides --port)
  --port-file PATH    write the bound HOST:PORT to PATH once listening
  --workers N         simulation workers (default: DS_RUNNER_JOBS or
                      the machine's available parallelism)
  --handlers N        HTTP handler threads (default: 4)
  --queue-limit N     max open jobs before 429 (default: 64)
  --timeout SECS      per-task wall-clock budget (default: none)
  --cache DIR         on-disk result cache (default: results)
  --no-cache          keep the result store memory-only
  --probe-level LEVEL observability probes kept live: full (default),
                      stages, or minimal; shed levels skip
                      StageTracker/LineLens bookkeeping without
                      touching simulated cycles
  --verbose           log one line per request to stderr: span id,
                      method, path, status, bytes, duration
  --log-format F      request-log shape: text (default) or json

submit options:
  --url U             server base URL (default: http://127.0.0.1:7878)
  --bench A,B,...     only these Table II codes (default: all 22)
  --input small|big   input size (default: small)
  --mode ds|ds-only   direct-store variant (default: ds)
  --pulse WINDOW      enable ds-pulse telemetry at WINDOW cycles per
                      window (the reports carry the time series; watch
                      the job for live sparklines). Pulsed documents
                      are a superset of dsrun's, so the byte-identity
                      contract applies to pulse-free submissions only
  --no-wait           print the job id and exit without waiting
  --expect-cached     fail (exit 1) unless every task was served
                      from cache
  --wait-timeout SECS give up waiting after this long (default: 900)

stress options:
  --url U             server base URL (default: http://127.0.0.1:7878)
  --users N           virtual users (default: 4)
  --ops N             HTTP ops per user (default: 32)
  --seed S            master seed (default: 1)
  --bench A,B,...     codes submissions draw from (default: VA,MM,BS)
  --require-hits      fail (exit 1) unless the run's store hit rate
                      is above zero
  --csv               print one CSV row instead of the text summary
                      (header: see scripts/serve_bench.sh)

exit codes: 0 ok; 1 failure or audit violation; 2 usage;
7 submission explicitly rejected by admission control (429)";

fn usage_error(message: &str) -> ! {
    eprintln!("dsserve: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("dsserve: {message}");
    std::process::exit(1);
}

/// Tiny flag cursor over a subcommand's arguments.
struct Args {
    args: Vec<String>,
    at: usize,
}

impl Args {
    fn new(args: &[String]) -> Self {
        Args {
            args: args.to_vec(),
            at: 0,
        }
    }

    fn next(&mut self) -> Option<String> {
        let arg = self.args.get(self.at).cloned();
        if arg.is_some() {
            self.at += 1;
        }
        arg
    }

    fn value(&mut self, flag: &str) -> String {
        self.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str, what: &str) -> T {
        let v = self.value(flag);
        v.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} needs {what}, got {v:?}")))
    }
}

fn parse_codes(value: &str) -> Vec<String> {
    value
        .split(',')
        .filter(|c| !c.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_input_flag(value: &str) -> InputSize {
    match value {
        "small" => InputSize::Small,
        "big" => InputSize::Big,
        other => usage_error(&format!("unknown input size {other:?}")),
    }
}

fn parse_mode_flag(value: &str) -> Mode {
    match value {
        "ds" => Mode::DirectStore,
        "ds-only" => Mode::DirectStoreOnly,
        other => usage_error(&format!("unknown mode {other:?} (ds or ds-only)")),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        None => usage_error("missing command"),
        Some("--help" | "-h" | "help") => println!("{USAGE}"),
        Some("--check") => run_check(),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("submit") => cmd_submit(&argv[1..]),
        Some("status") => cmd_job_doc(&argv[1..], false),
        Some("results") => cmd_job_doc(&argv[1..], true),
        Some("watch") => cmd_watch(&argv[1..]),
        Some("metrics") => cmd_metrics(&argv[1..]),
        Some("stress") => cmd_stress(&argv[1..]),
        Some("shutdown") => cmd_shutdown(&argv[1..]),
        Some(other) => usage_error(&format!("unknown command {other:?}")),
    }
}

fn cmd_serve(rest: &[String]) {
    let mut options = ServeOptions {
        cache_dir: Some("results".into()),
        ..ServeOptions::default()
    };
    let mut port = 7878u16;
    let mut addr: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = args.parsed("--port", "a port number"),
            "--addr" => addr = Some(args.value("--addr")),
            "--port-file" => port_file = Some(args.value("--port-file")),
            "--workers" => options.workers = args.parsed("--workers", "a positive integer"),
            "--handlers" => options.handlers = args.parsed("--handlers", "a positive integer"),
            "--queue-limit" => {
                options.queue_limit = args.parsed("--queue-limit", "a positive integer");
            }
            "--timeout" => {
                let secs: u64 = args.parsed("--timeout", "positive seconds");
                options.task_timeout = Some(Duration::from_secs(secs.max(1)));
            }
            "--cache" => options.cache_dir = Some(args.value("--cache").into()),
            "--no-cache" => options.cache_dir = None,
            "--probe-level" => {
                let v = args.value("--probe-level");
                // Process-global; set before any worker simulates. The
                // disk store refuses shed-level reports, so the shared
                // cache never sees their empty stage/lens sections.
                let level = ds_probe::ProbeLevel::parse(&v)
                    .unwrap_or_else(|| usage_error(&format!("unknown probe level {v:?}")));
                ds_probe::prof::set_level(level);
            }
            "--verbose" => options.verbose = true,
            "--log-format" => {
                let v = args.value("--log-format");
                options.log_format = ds_serve::server::LogFormat::parse(&v)
                    .unwrap_or_else(|| usage_error(&format!("unknown log format {v:?}")));
            }
            "--help" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown serve option {other:?}")),
        }
    }
    let bind = addr.unwrap_or_else(|| format!("127.0.0.1:{port}"));
    let server =
        Server::start(options, &bind).unwrap_or_else(|e| fail(&format!("cannot bind {bind}: {e}")));
    let bound = server.addr();
    eprintln!("dsserve: serving on http://{bound} (POST /shutdown to stop)");
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{bound}\n"))
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    }
    server.wait();
    eprintln!("dsserve: shut down cleanly");
}

/// Common client flags: `--url` plus whatever `extra` consumes.
fn parse_url(args: &mut Args, arg: &str) -> Option<String> {
    (arg == "--url").then(|| args.value("--url"))
}

const DEFAULT_URL: &str = "http://127.0.0.1:7878";

fn cmd_submit(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut codes: Option<Vec<String>> = None;
    let mut input = InputSize::Small;
    let mut mode = Mode::DirectStore;
    let mut no_wait = false;
    let mut expect_cached = false;
    let mut pulse: Option<u64> = None;
    let mut wait_timeout = Duration::from_secs(900);
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        match arg.as_str() {
            "--bench" => codes = Some(parse_codes(&args.value("--bench"))),
            "--input" => input = parse_input_flag(&args.value("--input")),
            "--mode" => mode = parse_mode_flag(&args.value("--mode")),
            "--pulse" => {
                let window: u64 = args.parsed("--pulse", "a window length in cycles");
                if window == 0 {
                    usage_error("--pulse needs a window of at least 1 cycle");
                }
                pulse = Some(window);
            }
            "--no-wait" => no_wait = true,
            "--expect-cached" => expect_cached = true,
            "--wait-timeout" => {
                wait_timeout =
                    Duration::from_secs(args.parsed("--wait-timeout", "positive seconds"));
            }
            other => usage_error(&format!("unknown submit option {other:?}")),
        }
    }
    let body = client::sweep_body_pulsed(codes.as_deref(), input, mode, pulse);
    let (id, tasks) = match client::submit(&url, &body) {
        Ok(SubmitAnswer::Accepted { id, tasks }) => (id, tasks),
        Ok(SubmitAnswer::Rejected { message }) => {
            eprintln!("dsserve: submission rejected: {message}");
            std::process::exit(7);
        }
        Err(e) => fail(&e),
    };
    eprintln!("dsserve: job {id} accepted ({tasks} tasks)");
    if no_wait {
        println!("{id}");
        return;
    }
    client::wait_done(&url, id, wait_timeout).unwrap_or_else(|e| fail(&e));
    let results = client::fetch_results(&url, id).unwrap_or_else(|e| fail(&e));
    let cfg = SystemConfig::paper_default();
    let out = client::sweep_doc(&cfg, input, mode, &results).unwrap_or_else(|e| fail(&e));
    let cached = out
        .provenances
        .iter()
        .filter(|p| matches!(p.as_str(), "hit" | "coalesced"))
        .count();
    eprintln!(
        "dsserve: job {id} done; {cached}/{} tasks served from cache",
        out.provenances.len()
    );
    if expect_cached && cached != out.provenances.len() {
        fail(&format!(
            "--expect-cached: only {cached}/{} tasks were cache hits",
            out.provenances.len()
        ));
    }
    println!("{}", out.doc);
}

fn cmd_job_doc(rest: &[String], results: bool) {
    let mut url = DEFAULT_URL.to_string();
    let mut job: Option<u64> = None;
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        match arg.parse::<u64>() {
            Ok(id) => job = Some(id),
            Err(_) => usage_error(&format!("unknown option {arg:?} (expected a job id)")),
        }
    }
    let Some(id) = job else {
        usage_error("missing job id");
    };
    let path = if results {
        format!("/jobs/{id}/results")
    } else {
        format!("/jobs/{id}")
    };
    let (status, text) = client_request(&url, "GET", &path, None, client::CLIENT_TIMEOUT)
        .unwrap_or_else(|e| fail(&e));
    print!("{text}");
    if status != 200 {
        std::process::exit(1);
    }
}

fn cmd_watch(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut job: Option<u64> = None;
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        match arg.parse::<u64>() {
            Ok(id) => job = Some(id),
            Err(_) => usage_error(&format!("unknown option {arg:?} (expected a job id)")),
        }
    }
    let Some(id) = job else {
        usage_error("missing job id");
    };
    // Live sparkline state: `pulse-window` events accumulate per task
    // and the task's `task-done` line flushes them as a dashboard
    // block on stderr — stdout stays pure NDJSON for pipelines.
    let mut pulse: std::collections::HashMap<u64, Vec<[u64; 3]>> = std::collections::HashMap::new();
    let mut anomalies: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let status = client::watch(&url, id, |line| {
        println!("{line}");
        let Ok(doc) = ds_runner::json::parse(line) else {
            return;
        };
        let Some(task) = doc.get("task").and_then(Json::as_u64) else {
            return;
        };
        let num = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
        match doc.get("event").and_then(Json::as_str).unwrap_or("") {
            "pulse-window" => pulse.entry(task).or_default().push([
                num("sm_ops"),
                num("pushes_retried"),
                num("queue_depth"),
            ]),
            "pulse-anomaly" => *anomalies.entry(task).or_default() += 1,
            "task-done" => {
                if let Some(rows) = pulse.remove(&task) {
                    render_watch_sparklines(task, &rows, anomalies.remove(&task).unwrap_or(0));
                }
            }
            _ => {}
        }
    })
    .unwrap_or_else(|e| fail(&e));
    if status != 200 {
        std::process::exit(1);
    }
}

/// One completed pulsed task's live dashboard: a sparkline per
/// streamed series, on stderr so stdout stays machine-readable.
fn render_watch_sparklines(task: u64, rows: &[[u64; 3]], anomalies: u64) {
    const SERIES: [&str; 3] = ["sm_ops", "pushes_retried", "queue_depth"];
    eprintln!(
        "dsserve: task {task} pulse ({} streamed window(s), {anomalies} anomaly(ies)):",
        rows.len()
    );
    for (i, name) in SERIES.iter().enumerate() {
        let values: Vec<u64> = rows.iter().map(|r| r[i]).collect();
        eprintln!("  {name:<15} {}", ds_probe::sparkline(&values, 60));
    }
}

fn cmd_metrics(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        usage_error(&format!("unknown metrics option {arg:?}"));
    }
    let (status, text) = client_request(&url, "GET", "/metrics", None, client::CLIENT_TIMEOUT)
        .unwrap_or_else(|e| fail(&e));
    print!("{text}");
    if status != 200 {
        std::process::exit(1);
    }
}

fn cmd_stress(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut options = StressOptions::default();
    let mut require_hits = false;
    let mut csv = false;
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        match arg.as_str() {
            "--users" => options.users = args.parsed("--users", "a positive integer"),
            "--ops" => options.ops = args.parsed("--ops", "a positive integer"),
            "--seed" => options.seed = args.parsed("--seed", "an integer"),
            "--bench" => options.codes = parse_codes(&args.value("--bench")),
            "--require-hits" => require_hits = true,
            "--csv" => csv = true,
            other => usage_error(&format!("unknown stress option {other:?}")),
        }
    }
    let summary = run_stress(&url, &options).unwrap_or_else(|e| fail(&e));
    if csv {
        println!("{}", summary.csv_row());
    } else {
        println!("{summary}");
    }
    if summary.errors > 0 {
        fail(&format!(
            "{} transport errors during stress",
            summary.errors
        ));
    }
    if require_hits && !(summary.store_requests > 0 && summary.store_hits > 0) {
        fail("--require-hits: the run produced no store cache hits");
    }
}

fn cmd_shutdown(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        usage_error(&format!("unknown shutdown option {arg:?}"));
    }
    match client_request(
        &url,
        "POST",
        "/shutdown",
        Some("{}"),
        client::CLIENT_TIMEOUT,
    ) {
        Ok((200, _)) => eprintln!("dsserve: shutdown requested"),
        Ok((status, text)) => fail(&format!("POST /shutdown answered {status}: {text}")),
        Err(e) => fail(&e),
    }
}

/// The self-audit: admission control, store reconciliation, cache
/// determinism, and clean shutdown — all against a real loopback
/// server, no external state touched.
fn run_check() {
    let mut failures = 0usize;
    let mut check = |name: &str, ok: bool, detail: &str| {
        if ok {
            eprintln!("dsserve --check: ok   {name}");
        } else {
            eprintln!("dsserve --check: FAIL {name}: {detail}");
            failures += 1;
        }
    };

    // 1. Admission control is an explicit bound, not a hang: a full
    //    queue answers QueueFull immediately.
    let queue = JobQueue::new(1);
    let cfg = SystemConfig::paper_default();
    let task = ds_runner::Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore);
    let first = queue.submit(vec![task.clone()], 0);
    let second = queue.submit(vec![task.clone()], 0);
    check(
        "admission bound rejects explicitly",
        first.is_ok() && matches!(second, Err(Rejection::QueueFull { .. })),
        &format!("first={first:?} second={second:?}"),
    );
    check(
        "empty submissions are rejected",
        matches!(queue.submit(Vec::new(), 0), Err(Rejection::Empty)),
        "empty task list was admitted",
    );

    // 2. A real loopback server: duplicate tasks inside a job are
    //    coalesced to one computation, a repeat job is pure cache,
    //    and the store accounting reconciles over HTTP.
    let options = ServeOptions {
        workers: 2,
        handlers: 2,
        queue_limit: 4,
        cache_dir: None,
        ..ServeOptions::default()
    };
    let server = Server::start(options, "127.0.0.1:0")
        .unwrap_or_else(|e| fail(&format!("cannot bind loopback: {e}")));
    let url = format!("http://{}", server.addr());
    let body = r#"{"tasks": [
        {"bench": "VA", "input": "small", "mode": "ds"},
        {"bench": "VA", "input": "small", "mode": "ds"}
    ]}"#;
    let run_job = |label: &str| -> Vec<String> {
        match client::submit(&url, body) {
            Ok(SubmitAnswer::Accepted { id, .. }) => {
                if let Err(e) = client::wait_done(&url, id, Duration::from_secs(300)) {
                    fail(&format!("{label}: {e}"));
                }
                let results = client::fetch_results(&url, id)
                    .unwrap_or_else(|e| fail(&format!("{label}: {e}")));
                results
                    .get("results")
                    .and_then(Json::as_arr)
                    .map(|rows| {
                        rows.iter()
                            .map(|r| {
                                r.get("provenance")
                                    .and_then(Json::as_str)
                                    .unwrap_or("missing")
                                    .to_string()
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            }
            other => fail(&format!("{label}: unexpected submit answer {other:?}")),
        }
    };
    let first = run_job("duplicate-task job");
    let computed = first.iter().filter(|p| *p == "computed").count();
    check(
        "duplicate tasks coalesce to one computation",
        first.len() == 2 && computed == 1,
        &format!("provenances {first:?}"),
    );
    let repeat = run_job("repeat job");
    check(
        "repeat submission is pure cache",
        repeat.len() == 2 && repeat.iter().all(|p| p == "hit"),
        &format!("provenances {repeat:?}"),
    );

    let stats = server.state().store.stats();
    check(
        "store accounting reconciles (hits + misses == requests)",
        stats.reconciles(),
        &format!("{stats:?}"),
    );
    check(
        "store counted exactly one computation",
        stats.requests == 4 && stats.misses == 1 && stats.hits == 3,
        &format!("{stats:?}"),
    );

    // 3. Clean shutdown over HTTP: the whole thread family joins.
    match client_request(
        &url,
        "POST",
        "/shutdown",
        Some("{}"),
        Duration::from_secs(10),
    ) {
        Ok((200, _)) => {}
        other => fail(&format!("POST /shutdown: {other:?}")),
    }
    server.wait();
    check("clean shutdown over HTTP", true, "");

    if failures > 0 {
        fail(&format!("{failures} audit check(s) failed"));
    }
    eprintln!("dsserve --check: all checks passed");
}
