//! `dsserve` — simulation as a service.
//!
//! Runs the deterministic simulator behind an HTTP job API with a
//! shared content-addressed result store, and ships its own client
//! and load harness so the whole loop (submit, poll, fetch, stress,
//! audit) works from one binary with zero dependencies.
//!
//! ```text
//! dsserve serve    [--port N] [--addr HOST:PORT] [--port-file PATH]
//!                  [--workers N] [--handlers N] [--queue-limit N]
//!                  [--timeout SECS] [--cache DIR | --no-cache]
//!                  [--no-journal] [--verbose]
//! dsserve submit   [--url U] [--bench A,B,...] [--input small|big]
//!                  [--mode ds|ds-only] [--pulse WINDOW] [--no-wait]
//!                  [--expect-cached] [--wait-timeout SECS]
//!                  [--retries N] [--retry-busy]
//! dsserve status   [--url U] JOB
//! dsserve results  [--url U] JOB
//! dsserve watch    [--url U] JOB
//! dsserve metrics  [--url U]
//! dsserve stress   [--url U] [--users N] [--ops N] [--seed S]
//!                  [--bench A,B,...] [--require-hits]
//! dsserve drill    [--bench A,B,...] [--seed S] [--workers N]
//!                  [--dir DIR] [--keep]
//! dsserve shutdown [--url U]
//! dsserve --check
//! ```
//!
//! `submit` prints the *byte-identical* `dsrun --format json`
//! document for the same sweep (CI `cmp`s them), and exits 7 — not 1
//! — when admission control answers 429, so scripts can tell an
//! explicit saturation rejection from a real failure.
//!
//! ds-anvil: `serve` keeps an append-only job journal next to the
//! result cache and replays it on startup, so a crash (or `kill -9`)
//! loses no accepted job; `drill` rehearses exactly that — crash a
//! real server mid-sweep at a seeded point, restart it, and prove
//! zero job loss, no double-compute, and byte-identical results.
//! SIGTERM/SIGINT drain through the same path as `POST /shutdown`.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ds_core::{InputSize, Mode, SystemConfig};
use ds_runner::json::Json;
use ds_serve::client::{self, RetryPolicy, SubmitAnswer};
use ds_serve::http::client_request;
use ds_serve::jobs::{JobQueue, Rejection};
use ds_serve::journal::Journal;
use ds_serve::stress::{run_stress, StressOptions};
use ds_serve::{ServeOptions, Server};

const USAGE: &str = "usage: dsserve <command> [options]

Simulation as a service: an HTTP job API over the deterministic
runner with a shared content-addressed result store.

commands:
  serve      run the service until POST /shutdown (or SIGTERM/SIGINT,
             which drain through the same path)
  submit     submit a sweep, wait, print dsrun-identical JSON
  status     print a job's status document
  results    print a job's results document
  watch      tail a job's live telemetry (span-open/close, progress,
             pulse windows) until it completes; one NDJSON event per
             line on stdout, plus live sparkline dashboards on stderr
             for tasks submitted with a pulse window
  metrics    print the /metrics document
  stress     seeded virtual users; ops/sec, p50/p95/p99, hit rate
  drill      crash drill: kill a real server mid-sweep at a seeded
             point, restart it, and prove zero job loss, no
             double-compute, and byte-identical results
  shutdown   ask a server to shut down cleanly
  --check    run the service self-audit (exit 1 on violation)

serve options:
  --port N            port on 127.0.0.1 (default: 7878; 0 = ephemeral)
  --addr HOST:PORT    bind address (overrides --port)
  --port-file PATH    write the bound HOST:PORT to PATH once listening
  --workers N         simulation workers (default: DS_RUNNER_JOBS or
                      the machine's available parallelism)
  --handlers N        HTTP handler threads (default: 4)
  --queue-limit N     max open jobs before 429 (default: 64)
  --timeout SECS      per-task wall-clock budget (default: none)
  --cache DIR         on-disk result cache (default: results)
  --no-cache          keep the result store memory-only (also disables
                      the job journal: nothing durable to recover into)
  --no-journal        accept jobs without journaling them (no crash
                      recovery; the cache itself still persists)
  --crash-after-tasks N
                      abort() the process after N completed tasks —
                      the crash-drill hook; never use in production
  --probe-level LEVEL observability probes kept live: full (default),
                      stages, or minimal; shed levels skip
                      StageTracker/LineLens bookkeeping without
                      touching simulated cycles
  --verbose           log one line per request to stderr: span id,
                      method, path, status, bytes, duration
  --log-format F      request-log shape: text (default) or json

submit options:
  --url U             server base URL (default: http://127.0.0.1:7878)
  --bench A,B,...     only these Table II codes (default: all 22)
  --input small|big   input size (default: small)
  --mode ds|ds-only   direct-store variant (default: ds)
  --pulse WINDOW      enable ds-pulse telemetry at WINDOW cycles per
                      window (the reports carry the time series; watch
                      the job for live sparklines). Pulsed documents
                      are a superset of dsrun's, so the byte-identity
                      contract applies to pulse-free submissions only
  --no-wait           print the job id and exit without waiting
  --expect-cached     fail (exit 1) unless every task was served
                      from cache
  --wait-timeout SECS give up waiting after this long (default: 900)
  --retries N         attempts for the submission itself (default: 3);
                      connect errors and 5xx retry with jittered
                      exponential backoff under one Idempotency-Key,
                      so a retry attaches to the job the first attempt
                      created instead of duplicating it
  --retry-busy        also retry 429 (admission refusal), honoring the
                      server's Retry-After; off by default so scripts
                      still see saturation immediately (exit 7)

drill options:
  --bench A,B,...     sweep to drill (default: VA,MM,BS); each bench
                      contributes a CCSM+DS task pair
  --input small|big   input size (default: small)
  --mode ds|ds-only   direct-store variant (default: ds)
  --seed S            picks the crash point (default: 1)
  --workers N         workers for the recovery server (default: 2;
                      the crashing server runs 1 so the crash point
                      is exact)
  --dir DIR           scratch directory (default: target/ds-drill)
  --keep              keep the scratch directory for inspection

stress options:
  --url U             server base URL (default: http://127.0.0.1:7878)
  --users N           virtual users (default: 4)
  --ops N             HTTP ops per user (default: 32)
  --seed S            master seed (default: 1)
  --bench A,B,...     codes submissions draw from (default: VA,MM,BS)
  --require-hits      fail (exit 1) unless the run's store hit rate
                      is above zero
  --csv               print one CSV row instead of the text summary
                      (header: see scripts/serve_bench.sh)

exit codes: 0 ok; 1 failure or audit violation; 2 usage;
7 submission explicitly rejected by admission control (429)";

fn usage_error(message: &str) -> ! {
    eprintln!("dsserve: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn fail(message: &str) -> ! {
    eprintln!("dsserve: {message}");
    std::process::exit(1);
}

/// Tiny flag cursor over a subcommand's arguments.
struct Args {
    args: Vec<String>,
    at: usize,
}

impl Args {
    fn new(args: &[String]) -> Self {
        Args {
            args: args.to_vec(),
            at: 0,
        }
    }

    fn next(&mut self) -> Option<String> {
        let arg = self.args.get(self.at).cloned();
        if arg.is_some() {
            self.at += 1;
        }
        arg
    }

    fn value(&mut self, flag: &str) -> String {
        self.next()
            .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str, what: &str) -> T {
        let v = self.value(flag);
        v.parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} needs {what}, got {v:?}")))
    }
}

fn parse_codes(value: &str) -> Vec<String> {
    value
        .split(',')
        .filter(|c| !c.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_input_flag(value: &str) -> InputSize {
    match value {
        "small" => InputSize::Small,
        "big" => InputSize::Big,
        other => usage_error(&format!("unknown input size {other:?}")),
    }
}

fn parse_mode_flag(value: &str) -> Mode {
    match value {
        "ds" => Mode::DirectStore,
        "ds-only" => Mode::DirectStoreOnly,
        other => usage_error(&format!("unknown mode {other:?} (ds or ds-only)")),
    }
}

/// SIGTERM/SIGINT handling without any dependency: a `signal(2)`
/// handler flips an atomic flag; a monitor thread polls it and drains
/// the server through the same path as `POST /shutdown`. Poll-based
/// because a signal handler itself may only do async-signal-safe work
/// (no locks, no allocation — certainly no queue shutdown).
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static STOP: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        None => usage_error("missing command"),
        Some("--help" | "-h" | "help") => println!("{USAGE}"),
        Some("--check") => run_check(),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("submit") => cmd_submit(&argv[1..]),
        Some("status") => cmd_job_doc(&argv[1..], false),
        Some("results") => cmd_job_doc(&argv[1..], true),
        Some("watch") => cmd_watch(&argv[1..]),
        Some("metrics") => cmd_metrics(&argv[1..]),
        Some("stress") => cmd_stress(&argv[1..]),
        Some("drill") => cmd_drill(&argv[1..]),
        Some("shutdown") => cmd_shutdown(&argv[1..]),
        Some(other) => usage_error(&format!("unknown command {other:?}")),
    }
}

fn cmd_serve(rest: &[String]) {
    let mut options = ServeOptions {
        cache_dir: Some("results".into()),
        ..ServeOptions::default()
    };
    let mut port = 7878u16;
    let mut addr: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => port = args.parsed("--port", "a port number"),
            "--addr" => addr = Some(args.value("--addr")),
            "--port-file" => port_file = Some(args.value("--port-file")),
            "--workers" => options.workers = args.parsed("--workers", "a positive integer"),
            "--handlers" => options.handlers = args.parsed("--handlers", "a positive integer"),
            "--queue-limit" => {
                options.queue_limit = args.parsed("--queue-limit", "a positive integer");
            }
            "--timeout" => {
                let secs: u64 = args.parsed("--timeout", "positive seconds");
                options.task_timeout = Some(Duration::from_secs(secs.max(1)));
            }
            "--cache" => options.cache_dir = Some(args.value("--cache").into()),
            "--no-cache" => options.cache_dir = None,
            "--no-journal" => options.journal = false,
            "--crash-after-tasks" => {
                options.crash_after_tasks =
                    Some(args.parsed("--crash-after-tasks", "a positive task count"));
            }
            "--probe-level" => {
                let v = args.value("--probe-level");
                // Process-global; set before any worker simulates. The
                // disk store refuses shed-level reports, so the shared
                // cache never sees their empty stage/lens sections.
                let level = ds_probe::ProbeLevel::parse(&v)
                    .unwrap_or_else(|| usage_error(&format!("unknown probe level {v:?}")));
                ds_probe::prof::set_level(level);
            }
            "--verbose" => options.verbose = true,
            "--log-format" => {
                let v = args.value("--log-format");
                options.log_format = ds_serve::server::LogFormat::parse(&v)
                    .unwrap_or_else(|| usage_error(&format!("unknown log format {v:?}")));
            }
            "--help" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown serve option {other:?}")),
        }
    }
    let bind = addr.unwrap_or_else(|| format!("127.0.0.1:{port}"));
    let server =
        Server::start(options, &bind).unwrap_or_else(|e| fail(&format!("cannot bind {bind}: {e}")));
    let bound = server.addr();
    let recovery = server.state().recovery;
    if recovery.jobs > 0 {
        eprintln!(
            "dsserve: journal replay recovered {} job(s), {} task(s) ({} already done)",
            recovery.jobs, recovery.tasks, recovery.tasks_done
        );
    }
    eprintln!("dsserve: serving on http://{bound} (POST /shutdown to stop)");
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{bound}\n"))
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    }
    #[cfg(unix)]
    {
        signals::install();
        let state = std::sync::Arc::clone(server.state());
        std::thread::spawn(move || loop {
            if signals::STOP.load(std::sync::atomic::Ordering::SeqCst) {
                eprintln!("dsserve: signal received; draining and shutting down");
                ds_serve::server::request_shutdown(&state);
                return;
            }
            std::thread::sleep(Duration::from_millis(100));
        });
    }
    server.wait();
    eprintln!("dsserve: shut down cleanly");
}

/// Common client flags: `--url` plus whatever `extra` consumes.
fn parse_url(args: &mut Args, arg: &str) -> Option<String> {
    (arg == "--url").then(|| args.value("--url"))
}

const DEFAULT_URL: &str = "http://127.0.0.1:7878";

fn cmd_submit(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut codes: Option<Vec<String>> = None;
    let mut input = InputSize::Small;
    let mut mode = Mode::DirectStore;
    let mut no_wait = false;
    let mut expect_cached = false;
    let mut pulse: Option<u64> = None;
    let mut wait_timeout = Duration::from_secs(900);
    let mut policy = RetryPolicy::default();
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        match arg.as_str() {
            "--bench" => codes = Some(parse_codes(&args.value("--bench"))),
            "--input" => input = parse_input_flag(&args.value("--input")),
            "--mode" => mode = parse_mode_flag(&args.value("--mode")),
            "--pulse" => {
                let window: u64 = args.parsed("--pulse", "a window length in cycles");
                if window == 0 {
                    usage_error("--pulse needs a window of at least 1 cycle");
                }
                pulse = Some(window);
            }
            "--no-wait" => no_wait = true,
            "--expect-cached" => expect_cached = true,
            "--wait-timeout" => {
                wait_timeout =
                    Duration::from_secs(args.parsed("--wait-timeout", "positive seconds"));
            }
            "--retries" => policy.attempts = args.parsed("--retries", "a positive integer"),
            "--retry-busy" => policy.retry_busy = true,
            other => usage_error(&format!("unknown submit option {other:?}")),
        }
    }
    let body = client::sweep_body_pulsed(codes.as_deref(), input, mode, pulse);
    let (id, tasks) = match client::submit_with_retry(&url, &body, &policy) {
        Ok(SubmitAnswer::Accepted { id, tasks }) => (id, tasks),
        Ok(SubmitAnswer::Rejected { message }) => {
            eprintln!("dsserve: submission rejected: {message}");
            std::process::exit(7);
        }
        Err(e) => fail(&e),
    };
    eprintln!("dsserve: job {id} accepted ({tasks} tasks)");
    if no_wait {
        println!("{id}");
        return;
    }
    client::wait_done(&url, id, wait_timeout).unwrap_or_else(|e| fail(&e));
    let results = client::fetch_results(&url, id).unwrap_or_else(|e| fail(&e));
    let cfg = SystemConfig::paper_default();
    let out = client::sweep_doc(&cfg, input, mode, &results).unwrap_or_else(|e| fail(&e));
    let cached = out
        .provenances
        .iter()
        .filter(|p| matches!(p.as_str(), "hit" | "coalesced"))
        .count();
    eprintln!(
        "dsserve: job {id} done; {cached}/{} tasks served from cache",
        out.provenances.len()
    );
    if expect_cached && cached != out.provenances.len() {
        fail(&format!(
            "--expect-cached: only {cached}/{} tasks were cache hits",
            out.provenances.len()
        ));
    }
    println!("{}", out.doc);
}

fn cmd_job_doc(rest: &[String], results: bool) {
    let mut url = DEFAULT_URL.to_string();
    let mut job: Option<u64> = None;
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        match arg.parse::<u64>() {
            Ok(id) => job = Some(id),
            Err(_) => usage_error(&format!("unknown option {arg:?} (expected a job id)")),
        }
    }
    let Some(id) = job else {
        usage_error("missing job id");
    };
    let path = if results {
        format!("/jobs/{id}/results")
    } else {
        format!("/jobs/{id}")
    };
    let (status, text) = client_request(&url, "GET", &path, None, client::CLIENT_TIMEOUT)
        .unwrap_or_else(|e| fail(&e));
    print!("{text}");
    if status != 200 {
        std::process::exit(1);
    }
}

fn cmd_watch(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut job: Option<u64> = None;
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        match arg.parse::<u64>() {
            Ok(id) => job = Some(id),
            Err(_) => usage_error(&format!("unknown option {arg:?} (expected a job id)")),
        }
    }
    let Some(id) = job else {
        usage_error("missing job id");
    };
    // Live sparkline state: `pulse-window` events accumulate per task
    // and the task's `task-done` line flushes them as a dashboard
    // block on stderr — stdout stays pure NDJSON for pipelines.
    let mut pulse: std::collections::HashMap<u64, Vec<[u64; 3]>> = std::collections::HashMap::new();
    let mut anomalies: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let status = client::watch(&url, id, |line| {
        println!("{line}");
        let Ok(doc) = ds_runner::json::parse(line) else {
            return;
        };
        let Some(task) = doc.get("task").and_then(Json::as_u64) else {
            return;
        };
        let num = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
        match doc.get("event").and_then(Json::as_str).unwrap_or("") {
            "pulse-window" => pulse.entry(task).or_default().push([
                num("sm_ops"),
                num("pushes_retried"),
                num("queue_depth"),
            ]),
            "pulse-anomaly" => *anomalies.entry(task).or_default() += 1,
            "task-done" => {
                if let Some(rows) = pulse.remove(&task) {
                    render_watch_sparklines(task, &rows, anomalies.remove(&task).unwrap_or(0));
                }
            }
            _ => {}
        }
    })
    .unwrap_or_else(|e| fail(&e));
    if status != 200 {
        std::process::exit(1);
    }
}

/// One completed pulsed task's live dashboard: a sparkline per
/// streamed series, on stderr so stdout stays machine-readable.
fn render_watch_sparklines(task: u64, rows: &[[u64; 3]], anomalies: u64) {
    const SERIES: [&str; 3] = ["sm_ops", "pushes_retried", "queue_depth"];
    eprintln!(
        "dsserve: task {task} pulse ({} streamed window(s), {anomalies} anomaly(ies)):",
        rows.len()
    );
    for (i, name) in SERIES.iter().enumerate() {
        let values: Vec<u64> = rows.iter().map(|r| r[i]).collect();
        eprintln!("  {name:<15} {}", ds_probe::sparkline(&values, 60));
    }
}

fn cmd_metrics(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        usage_error(&format!("unknown metrics option {arg:?}"));
    }
    let (status, text) = client_request(&url, "GET", "/metrics", None, client::CLIENT_TIMEOUT)
        .unwrap_or_else(|e| fail(&e));
    print!("{text}");
    if status != 200 {
        std::process::exit(1);
    }
}

fn cmd_stress(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut options = StressOptions::default();
    let mut require_hits = false;
    let mut csv = false;
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        match arg.as_str() {
            "--users" => options.users = args.parsed("--users", "a positive integer"),
            "--ops" => options.ops = args.parsed("--ops", "a positive integer"),
            "--seed" => options.seed = args.parsed("--seed", "an integer"),
            "--bench" => options.codes = parse_codes(&args.value("--bench")),
            "--require-hits" => require_hits = true,
            "--csv" => csv = true,
            other => usage_error(&format!("unknown stress option {other:?}")),
        }
    }
    let summary = run_stress(&url, &options).unwrap_or_else(|e| fail(&e));
    if csv {
        println!("{}", summary.csv_row());
    } else {
        println!("{summary}");
    }
    if summary.errors > 0 {
        fail(&format!(
            "{} transport errors during stress",
            summary.errors
        ));
    }
    if require_hits && !(summary.store_requests > 0 && summary.store_hits > 0) {
        fail("--require-hits: the run produced no store cache hits");
    }
}

/// Spawns a real `dsserve serve` child (this same binary) on an
/// ephemeral port, optionally armed to crash after `crash_after`
/// completed tasks. Stderr is inherited so the child's lifecycle
/// lines narrate the drill.
fn spawn_server(
    cache: &Path,
    port_file: &Path,
    workers: usize,
    crash_after: Option<u64>,
) -> std::process::Child {
    let exe = std::env::current_exe()
        .unwrap_or_else(|e| fail(&format!("cannot locate the dsserve binary: {e}")));
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("serve")
        .arg("--port")
        .arg("0")
        .arg("--port-file")
        .arg(port_file)
        .arg("--cache")
        .arg(cache)
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--handlers")
        .arg("2")
        .stdout(std::process::Stdio::null());
    if let Some(k) = crash_after {
        cmd.arg("--crash-after-tasks").arg(k.to_string());
    }
    cmd.spawn()
        .unwrap_or_else(|e| fail(&format!("cannot spawn drill server: {e}")))
}

/// Polls for the child's port file; fails fast if the child dies
/// before it ever listens.
fn wait_port(port_file: &Path, child: &mut std::process::Child) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(port_file) {
            let addr = text.trim();
            if !addr.is_empty() {
                return format!("http://{addr}");
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            fail(&format!("drill server exited before listening: {status}"));
        }
        if Instant::now() >= deadline {
            fail("drill server did not write its port file within 30s");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The seeded crash drill: crash a real server mid-sweep, restart it
/// on the same cache directory, and prove the ds-anvil guarantees —
/// zero job loss (original id still polls), no double-compute (tasks
/// done before the crash rehydrate as store hits), and byte-identical
/// folded results.
fn cmd_drill(rest: &[String]) {
    let mut codes: Vec<String> = ["VA", "MM", "BS"].map(str::to_string).to_vec();
    let mut input = InputSize::Small;
    let mut mode = Mode::DirectStore;
    let mut seed = 1u64;
    let mut workers = 2usize;
    let mut dir = PathBuf::from("target/ds-drill");
    let mut keep = false;
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bench" => codes = parse_codes(&args.value("--bench")),
            "--input" => input = parse_input_flag(&args.value("--input")),
            "--mode" => mode = parse_mode_flag(&args.value("--mode")),
            "--seed" => seed = args.parsed("--seed", "an integer"),
            "--workers" => workers = args.parsed("--workers", "a positive integer"),
            "--dir" => dir = args.value("--dir").into(),
            "--keep" => keep = true,
            other => usage_error(&format!("unknown drill option {other:?}")),
        }
    }
    // Each bench submits a CCSM+DS task pair, so even one bench gives
    // the drill a mid-sweep crash point.
    let total = 2 * codes.len() as u64;
    if total == 0 {
        usage_error("drill needs at least one bench (--bench A,B,...)");
    }
    let mut ok = true;
    let mut check = |name: &str, pass: bool, detail: &str| {
        if pass {
            eprintln!("dsserve drill: ok   {name}");
        } else {
            eprintln!("dsserve drill: FAIL {name}: {detail}");
        }
        ok &= pass;
    };

    let _ = std::fs::remove_dir_all(&dir);
    let cache = dir.join("cache");
    std::fs::create_dir_all(&cache)
        .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", cache.display())));
    let port_file = dir.join("port");
    // Seeded crash point: after k of the sweep's tasks, 1 <= k < total,
    // so the job is always mid-flight when the process dies.
    let k = 1 + ds_runner::fnv1a(format!("ds-drill-{seed}").as_bytes()) % (total - 1);
    let body = client::sweep_body(Some(&codes), input, mode);

    // Phase 1: a 1-worker server (so the crash point is exact) armed
    // to abort() — no destructors, no flushes; the worst honest crash.
    eprintln!("dsserve drill: phase 1 — crash after {k}/{total} task(s)");
    let mut child = spawn_server(&cache, &port_file, 1, Some(k));
    let url = wait_port(&port_file, &mut child);
    let id = match client::submit(&url, &body) {
        Ok(SubmitAnswer::Accepted { id, .. }) => id,
        other => fail(&format!("drill submit: unexpected answer {other:?}")),
    };
    let status = child
        .wait()
        .unwrap_or_else(|e| fail(&format!("waiting for the crashing server: {e}")));
    check(
        "server crashed as planned",
        !status.success(),
        &format!("exited cleanly ({status}) despite --crash-after-tasks"),
    );

    // The journal on disk must already tell the whole story.
    let peeked = Journal::peek(&cache);
    let done = peeked.tasks_done();
    check(
        "journal holds the unfinished job",
        peeked.jobs.len() == 1
            && peeked.jobs[0].id == id
            && peeked.jobs[0].tasks.len() == total as usize,
        &format!(
            "jobs={} (expected job {id} with {total} tasks)",
            peeked.jobs.len()
        ),
    );
    check(
        "journal saw exactly the pre-crash completions",
        done == k as usize,
        &format!("{done} task-done record(s), expected {k}"),
    );

    // Phase 2: restart on the same cache directory; the journal
    // replays, the job keeps its id, and pre-crash tasks rehydrate
    // from the disk cache instead of recomputing.
    eprintln!("dsserve drill: phase 2 — restart and recover");
    let _ = std::fs::remove_file(&port_file);
    let mut child = spawn_server(&cache, &port_file, workers, None);
    let url = wait_port(&port_file, &mut child);
    client::wait_done(&url, id, Duration::from_secs(300))
        .unwrap_or_else(|e| fail(&format!("recovered job {id} never finished: {e}")));
    let results = client::fetch_results(&url, id).unwrap_or_else(|e| fail(&e));
    let cfg = SystemConfig::paper_default();
    let recovered = client::sweep_doc(&cfg, input, mode, &results)
        .unwrap_or_else(|e| fail(&format!("folding recovered results: {e}")));
    let hits = recovered
        .provenances
        .iter()
        .filter(|p| p.as_str() == "hit")
        .count();
    check(
        "pre-crash tasks rehydrated from cache (no double-compute)",
        hits == done,
        &format!("{hits} hit(s), expected {done}"),
    );

    let metrics_doc = match client_request(&url, "GET", "/metrics", None, client::CLIENT_TIMEOUT) {
        Ok((200, text)) => ds_runner::json::parse(&text)
            .unwrap_or_else(|e| fail(&format!("bad /metrics JSON: {e}"))),
        other => fail(&format!("GET /metrics: {other:?}")),
    };
    let num = |path: &[&str]| {
        let mut node = Some(&metrics_doc);
        for key in path {
            node = node.and_then(|n| n.get(key));
        }
        node.and_then(Json::as_u64).unwrap_or(u64::MAX)
    };
    check(
        "store accounting reconciles the recovery",
        num(&["store", "requests"]) == total
            && num(&["store", "hits"]) == done as u64
            && num(&["store", "misses"]) == total - done as u64,
        &format!(
            "requests={} hits={} misses={} (expected {total}/{done}/{})",
            num(&["store", "requests"]),
            num(&["store", "hits"]),
            num(&["store", "misses"]),
            total - done as u64
        ),
    );
    check(
        "/metrics reports the recovery",
        num(&["journal", "recovered_jobs"]) == 1
            && num(&["journal", "recovered_tasks"]) == total
            && num(&["journal", "recovered_tasks_done"]) == done as u64
            && num(&["recovering"]) == 0,
        &format!(
            "journal={:?} recovering={}",
            metrics_doc.get("journal"),
            num(&["recovering"])
        ),
    );

    // Phase 3: the same sweep again is pure cache and folds to the
    // exact same bytes — a crash plus recovery is invisible in the
    // results.
    eprintln!("dsserve drill: phase 3 — resubmission is pure cache, byte-identical");
    let id2 = match client::submit(&url, &body) {
        Ok(SubmitAnswer::Accepted { id, .. }) => id,
        other => fail(&format!("drill resubmit: unexpected answer {other:?}")),
    };
    check("resubmission gets a fresh job id", id2 != id, "id reused");
    client::wait_done(&url, id2, Duration::from_secs(300)).unwrap_or_else(|e| fail(&e));
    let results = client::fetch_results(&url, id2).unwrap_or_else(|e| fail(&e));
    let repeat = client::sweep_doc(&cfg, input, mode, &results).unwrap_or_else(|e| fail(&e));
    check(
        "repeat sweep is pure cache",
        repeat.provenances.iter().all(|p| p == "hit"),
        &format!("provenances {:?}", repeat.provenances),
    );
    check(
        "recovered results byte-identical to the repeat sweep",
        recovered.doc == repeat.doc,
        "folded documents differ",
    );

    match client_request(
        &url,
        "POST",
        "/shutdown",
        Some("{}"),
        Duration::from_secs(10),
    ) {
        Ok((200, _)) => {}
        other => fail(&format!("POST /shutdown: {other:?}")),
    }
    let _ = child.wait();
    if keep {
        eprintln!("dsserve drill: scratch kept at {}", dir.display());
    } else {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if !ok {
        fail("crash drill failed");
    }
    eprintln!(
        "dsserve drill: passed — job {id} survived the crash; \
         {done}/{total} task(s) rehydrated; results byte-identical"
    );
}

fn cmd_shutdown(rest: &[String]) {
    let mut url = DEFAULT_URL.to_string();
    let mut args = Args::new(rest);
    while let Some(arg) = args.next() {
        if let Some(u) = parse_url(&mut args, &arg) {
            url = u;
            continue;
        }
        usage_error(&format!("unknown shutdown option {arg:?}"));
    }
    match client_request(
        &url,
        "POST",
        "/shutdown",
        Some("{}"),
        client::CLIENT_TIMEOUT,
    ) {
        Ok((200, _)) => eprintln!("dsserve: shutdown requested"),
        Ok((status, text)) => fail(&format!("POST /shutdown answered {status}: {text}")),
        Err(e) => fail(&e),
    }
}

/// The self-audit: admission control, store reconciliation, cache
/// determinism, and clean shutdown — all against a real loopback
/// server, no external state touched.
fn run_check() {
    let mut failures = 0usize;
    let mut check = |name: &str, ok: bool, detail: &str| {
        if ok {
            eprintln!("dsserve --check: ok   {name}");
        } else {
            eprintln!("dsserve --check: FAIL {name}: {detail}");
            failures += 1;
        }
    };

    // 1. Admission control is an explicit bound, not a hang: a full
    //    queue answers QueueFull immediately.
    let queue = JobQueue::new(1);
    let cfg = SystemConfig::paper_default();
    let task = ds_runner::Task::new(&cfg, "VA", InputSize::Small, Mode::DirectStore);
    let first = queue.submit(vec![task.clone()], 0);
    let second = queue.submit(vec![task.clone()], 0);
    check(
        "admission bound rejects explicitly",
        first.is_ok() && matches!(second, Err(Rejection::QueueFull { .. })),
        &format!("first={first:?} second={second:?}"),
    );
    check(
        "empty submissions are rejected",
        matches!(queue.submit(Vec::new(), 0), Err(Rejection::Empty)),
        "empty task list was admitted",
    );

    // 2. A real loopback server: duplicate tasks inside a job are
    //    coalesced to one computation, a repeat job is pure cache,
    //    and the store accounting reconciles over HTTP.
    let options = ServeOptions {
        workers: 2,
        handlers: 2,
        queue_limit: 4,
        cache_dir: None,
        ..ServeOptions::default()
    };
    let server = Server::start(options, "127.0.0.1:0")
        .unwrap_or_else(|e| fail(&format!("cannot bind loopback: {e}")));
    let url = format!("http://{}", server.addr());
    let body = r#"{"tasks": [
        {"bench": "VA", "input": "small", "mode": "ds"},
        {"bench": "VA", "input": "small", "mode": "ds"}
    ]}"#;
    let run_job = |label: &str| -> Vec<String> {
        match client::submit(&url, body) {
            Ok(SubmitAnswer::Accepted { id, .. }) => {
                if let Err(e) = client::wait_done(&url, id, Duration::from_secs(300)) {
                    fail(&format!("{label}: {e}"));
                }
                let results = client::fetch_results(&url, id)
                    .unwrap_or_else(|e| fail(&format!("{label}: {e}")));
                results
                    .get("results")
                    .and_then(Json::as_arr)
                    .map(|rows| {
                        rows.iter()
                            .map(|r| {
                                r.get("provenance")
                                    .and_then(Json::as_str)
                                    .unwrap_or("missing")
                                    .to_string()
                            })
                            .collect()
                    })
                    .unwrap_or_default()
            }
            other => fail(&format!("{label}: unexpected submit answer {other:?}")),
        }
    };
    let first = run_job("duplicate-task job");
    let computed = first.iter().filter(|p| *p == "computed").count();
    check(
        "duplicate tasks coalesce to one computation",
        first.len() == 2 && computed == 1,
        &format!("provenances {first:?}"),
    );
    let repeat = run_job("repeat job");
    check(
        "repeat submission is pure cache",
        repeat.len() == 2 && repeat.iter().all(|p| p == "hit"),
        &format!("provenances {repeat:?}"),
    );

    let stats = server.state().store.stats();
    check(
        "store accounting reconciles (hits + misses == requests)",
        stats.reconciles(),
        &format!("{stats:?}"),
    );
    check(
        "store counted exactly one computation",
        stats.requests == 4 && stats.misses == 1 && stats.hits == 3,
        &format!("{stats:?}"),
    );

    // 3. The ds-anvil journal: append/replay round-trip, torn-tail
    //    tolerance, and interior-corruption quarantine, against a
    //    real scratch directory.
    let scratch =
        std::env::temp_dir().join(format!("dsserve-check-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    {
        use std::io::Write as _;
        let (journal, fresh) = Journal::open(&scratch)
            .unwrap_or_else(|e| fail(&format!("cannot open scratch journal: {e}")));
        check(
            "journal starts empty",
            fresh.jobs.is_empty() && !fresh.torn_tail && fresh.quarantined.is_none(),
            &format!("{fresh:?}"),
        );
        let path = journal.path().to_path_buf();
        journal.job_submitted(3, "idem-3", &[task.clone(), task.clone()]);
        journal.task_started(3, 0);
        journal.task_done(3, 0, "ok");
        drop(journal);
        let replay = Journal::peek(&scratch);
        check(
            "journal replays the unfinished job",
            replay.jobs.len() == 1 && replay.jobs[0].id == 3 && replay.jobs[0].completed == 1,
            &format!("{replay:?}"),
        );
        // A mid-append crash leaves a partial final line: truncated,
        // never fatal, and the job is still recovered.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| fail(&format!("cannot reopen scratch journal: {e}")));
        let _ = file.write_all(b"{\"rec\":\"task-do");
        drop(file);
        let torn = Journal::peek(&scratch);
        check(
            "a torn tail is truncated, not fatal",
            torn.torn_tail && torn.jobs.len() == 1,
            &format!("{torn:?}"),
        );
        // Corruption *before* the tail is a different disease: the
        // whole file is quarantined and the server boots empty
        // rather than trusting a damaged history.
        let mut text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read scratch journal: {e}")));
        let first_newline = text.find('\n').unwrap_or(text.len());
        text.replace_range(..first_newline, "{\"rec\":\"garbage\"}");
        std::fs::write(&path, text)
            .unwrap_or_else(|e| fail(&format!("cannot corrupt scratch journal: {e}")));
        let (_journal, after) = Journal::open(&scratch)
            .unwrap_or_else(|e| fail(&format!("cannot reopen scratch journal: {e}")));
        check(
            "interior corruption quarantines the journal",
            after.quarantined.is_some() && after.jobs.is_empty(),
            &format!("{after:?}"),
        );
    }
    let _ = std::fs::remove_dir_all(&scratch);

    // 4. Clean shutdown over HTTP: the whole thread family joins.
    match client_request(
        &url,
        "POST",
        "/shutdown",
        Some("{}"),
        Duration::from_secs(10),
    ) {
        Ok((200, _)) => {}
        other => fail(&format!("POST /shutdown: {other:?}")),
    }
    server.wait();
    check("clean shutdown over HTTP", true, "");

    if failures > 0 {
        fail(&format!("{failures} audit check(s) failed"));
    }
    eprintln!("dsserve --check: all checks passed");
}
