//! The job API: request routing, submission parsing, JSON rendering.
//!
//! ```text
//! POST /jobs               submit tasks or a sweep; 200 {"job": id}
//!                          or 429 when admission control refuses
//! GET  /jobs/<id>          job status and per-task outcome tags
//! GET  /jobs/<id>/results  per-task results with full RunReport JSON
//! GET  /metrics            queue depth, store hit rate, histograms
//! GET  /health             liveness summary
//! POST /shutdown           graceful shutdown
//! ```
//!
//! A submission body is either an explicit task list or a
//! CCSM-vs-direct-store sweep (the `dsrun` shape), with optional
//! config overrides, an optional fault plan, and an optional ds-pulse
//! window (`"pulse": true` for the default window, or a window length
//! in cycles — pulsed reports carry the time series and the job's
//! `/events` stream carries live `pulse-window` / `pulse-anomaly`
//! lines):
//!
//! ```json
//! {"tasks": [{"bench": "VA", "input": "small", "mode": "ccsm"}]}
//! {"sweep": {"bench": ["VA", "MM"], "input": "small", "mode": "ds"},
//!  "config": {"sms": 8}, "faults": {"net": "direct", "kind": "drop",
//!  "rate": 64, "seed": 1}, "pulse": 1000}
//! ```
//!
//! Reports are serialized with the same lossless encoder as the
//! on-disk cache ([`report_to_json`]), so a served result is
//! byte-identical to the batch CLI's rendering of the same run — the
//! property the CI smoke gate asserts with `cmp`.

use std::fmt;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use ds_core::Scenario as _;
use ds_core::{FaultPlan, InputSize, Mode, SystemConfig};
use ds_probe::scope::{self, SpanKind, SpanRecord};
use ds_runner::json::{self, Json};
use ds_runner::report::{parse_input, report_to_json};
use ds_runner::shared::Provenance;
use ds_runner::{span_to_json, sweep_tasks, Task, TaskOutcome};
use ds_workloads::catalog;

use crate::http::{write_response, write_stream_head, Request, Response};
use crate::jobs::JobRecord;
use crate::server::{request_shutdown, span_open_event, ServeState};

/// Routes one request under a fresh span id (for in-process callers;
/// the service's handler loop allocates the span itself and calls
/// [`handle_with_span`] so the id can also ride the response header).
pub fn handle(state: &ServeState, request: &Request) -> Response {
    handle_with_span(state, request, scope::next_span_id())
}

/// Routes one request. Never panics: malformed input is a 4xx JSON
/// error body. `span` is the request's span id — submissions parent
/// their job span on it.
pub fn handle_with_span(state: &ServeState, request: &Request, span: u64) -> Response {
    let started = std::time::Instant::now();
    state.with_metrics(|m| m.requests += 1);
    let path = request.path.trim_end_matches('/');
    let response = match (request.method.as_str(), path) {
        ("POST", "/jobs") => submit(state, request, span),
        ("GET", "/metrics") => metrics(state, request),
        ("GET", "/health") => health(state),
        ("POST", "/shutdown") => {
            request_shutdown(state);
            ok(Json::Obj(vec![("ok".into(), Json::Bool(true))]))
        }
        ("GET", _) if path.starts_with("/jobs/") => job_route(state, path),
        (_, "/jobs" | "/metrics" | "/health" | "/shutdown") => {
            error(405, "method not allowed for this path")
        }
        _ => error(404, &format!("no such endpoint {path:?}")),
    };
    let elapsed = started.elapsed().as_micros() as u64;
    state.with_metrics(|m| match (request.method.as_str(), path) {
        ("POST", "/jobs") => m.submit.record(elapsed),
        ("GET", p) if p.ends_with("/results") => m.results.record(elapsed),
        ("GET", p) if p.starts_with("/jobs/") => m.status.record(elapsed),
        _ => {}
    });
    response
}

fn ok(doc: Json) -> Response {
    Response::json(200, doc.pretty())
}

fn error(status: u16, message: &str) -> Response {
    let doc = Json::Obj(vec![("error".into(), Json::Str(message.into()))]);
    Response::json(status, doc.pretty())
}

/// `GET /jobs/<id>` and `GET /jobs/<id>/results`.
fn job_route(state: &ServeState, path: &str) -> Response {
    let rest = &path["/jobs/".len()..];
    let (id_text, results) = match rest.strip_suffix("/results") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return error(400, &format!("bad job id {id_text:?}"));
    };
    let Some(job) = state.queue.get(id) else {
        return error(404, &format!("no such job {id}"));
    };
    if results {
        job_results(&job)
    } else {
        job_status(&job)
    }
}

pub(crate) fn provenance_name(p: Provenance) -> &'static str {
    match p {
        Provenance::Hit => "hit",
        Provenance::Coalesced => "coalesced",
        Provenance::Computed => "computed",
    }
}

/// The per-task coordinate fields shared by status and results rows.
fn task_fields(task: &Task) -> Vec<(String, Json)> {
    vec![
        ("bench".into(), Json::Str(task.code.clone())),
        ("input".into(), Json::Str(task.input.to_string())),
        ("mode".into(), Json::Str(task.mode.to_string())),
    ]
}

fn job_status(job: &JobRecord) -> Response {
    let (job_state, completed, total) = job.snapshot();
    let results = job.results();
    let tasks: Vec<Json> = job
        .tasks
        .iter()
        .zip(&results)
        .map(|(task, slot)| {
            let mut fields = task_fields(task);
            match slot {
                Some(r) => {
                    fields.push(("outcome".into(), Json::Str(r.outcome.tag().into())));
                    fields.push((
                        "provenance".into(),
                        Json::Str(provenance_name(r.provenance).into()),
                    ));
                }
                None => fields.push(("outcome".into(), Json::Null)),
            }
            Json::Obj(fields)
        })
        .collect();
    ok(Json::Obj(vec![
        ("job".into(), Json::Int(job.id)),
        ("state".into(), Json::Str(job_state.name().into())),
        ("total".into(), Json::Int(total as u64)),
        ("completed".into(), Json::Int(completed as u64)),
        ("tasks".into(), Json::Arr(tasks)),
    ]))
}

fn job_results(job: &JobRecord) -> Response {
    let (job_state, _, _) = job.snapshot();
    let results = job.results();
    let rows: Vec<Json> = job
        .tasks
        .iter()
        .zip(&results)
        .map(|(task, slot)| {
            let mut fields = task_fields(task);
            fields.push((
                "fingerprint".into(),
                Json::Str(format!("{:016x}", task.key().fingerprint)),
            ));
            match slot {
                Some(r) => {
                    fields.push(("outcome".into(), Json::Str(r.outcome.tag().into())));
                    fields.push((
                        "provenance".into(),
                        Json::Str(provenance_name(r.provenance).into()),
                    ));
                    match &r.outcome {
                        TaskOutcome::Ok(report) | TaskOutcome::Degraded(report) => {
                            fields.push(("report".into(), report_to_json(report)));
                        }
                        TaskOutcome::Panicked(msg) | TaskOutcome::Failed(msg) => {
                            fields.push(("detail".into(), Json::Str(msg.clone())));
                        }
                        TaskOutcome::TimedOut => {}
                    }
                    if !r.spans.is_empty() {
                        fields.push((
                            "spans".into(),
                            Json::Arr(r.spans.iter().map(span_to_json).collect()),
                        ));
                    }
                }
                None => fields.push(("outcome".into(), Json::Null)),
            }
            Json::Obj(fields)
        })
        .collect();
    ok(Json::Obj(vec![
        ("job".into(), Json::Int(job.id)),
        ("span".into(), Json::Int(job.span)),
        ("parent_span".into(), Json::Int(job.parent_span)),
        ("state".into(), Json::Str(job_state.name().into())),
        ("results".into(), Json::Arr(rows)),
    ]))
}

fn histogram_json(h: &ds_sim::Histogram) -> Json {
    let opt = |v: Option<u64>| v.map_or(Json::Null, Json::Int);
    Json::Obj(vec![
        ("name".into(), Json::Str(h.name().into())),
        ("samples".into(), Json::Int(h.samples())),
        ("mean".into(), Json::Float(h.mean())),
        ("min".into(), opt(h.min())),
        ("p50".into(), opt(h.percentile(50.0))),
        ("p95".into(), opt(h.percentile(95.0))),
        ("p99".into(), opt(h.percentile(99.0))),
        ("max".into(), Json::Int(h.max())),
    ])
}

/// Whether the client asked for Prometheus text exposition instead of
/// the JSON default: `?format=prom` or an `Accept` header naming
/// `text/plain` (what Prometheus scrapers send).
fn wants_prometheus(request: &Request) -> bool {
    request.query.split('&').any(|p| p == "format=prom")
        || request.accept.to_ascii_lowercase().contains("text/plain")
}

/// `GET /metrics` with content negotiation: JSON by default,
/// Prometheus text exposition format 0.0.4 when asked (see
/// [`wants_prometheus`]).
/// The JSON shape of the pulse-derived gauges (`null` until a pulsed
/// task completes): last-window raw values plus per-cycle rates, so a
/// dashboard can plot NoC utilization and retry pressure without
/// knowing the window length.
fn pulse_json(state: &ServeState) -> Json {
    let Some(p) = state.pulse_gauges() else {
        return Json::Null;
    };
    let per_cycle = |v: u64| Json::Float(v as f64 / p.window.max(1) as f64);
    Json::Obj(vec![
        ("window_cycles".into(), Json::Int(p.window)),
        ("windows".into(), Json::Int(p.windows)),
        ("queue_depth".into(), Json::Int(p.queue_depth)),
        ("noc_msgs".into(), Json::Int(p.noc_msgs)),
        ("noc_util".into(), per_cycle(p.noc_msgs)),
        ("retries".into(), Json::Int(p.retries)),
        ("retry_rate".into(), per_cycle(p.retries)),
        ("anomalies".into(), Json::Int(p.anomalies)),
    ])
}

fn metrics(state: &ServeState, request: &Request) -> Response {
    if wants_prometheus(request) {
        return prometheus_metrics(state);
    }
    let stats = state.store.stats();
    let store = Json::Obj(vec![
        ("requests".into(), Json::Int(stats.requests)),
        ("hits".into(), Json::Int(stats.hits)),
        ("coalesced".into(), Json::Int(stats.coalesced)),
        ("misses".into(), Json::Int(stats.misses)),
        ("failed".into(), Json::Int(stats.failed)),
        ("hit_rate".into(), Json::Float(stats.hit_rate())),
        ("entries".into(), Json::Int(state.store.len() as u64)),
    ]);
    let service = state.with_metrics(|m| {
        Json::Obj(vec![
            ("requests".into(), Json::Int(m.requests)),
            ("rejected".into(), Json::Int(m.rejected)),
            ("jobs_accepted".into(), Json::Int(m.jobs_accepted)),
            ("jobs_completed".into(), Json::Int(m.jobs_completed)),
            ("tasks_completed".into(), Json::Int(m.tasks_completed)),
            ("worker_panics".into(), Json::Int(m.worker_panics)),
            ("workers_respawned".into(), Json::Int(m.workers_respawned)),
            (
                "histograms".into(),
                Json::Arr(m.histograms().iter().map(|h| histogram_json(h)).collect()),
            ),
        ])
    });
    ok(Json::Obj(vec![
        (
            "uptime_ms".into(),
            Json::Int(state.started.elapsed().as_millis() as u64),
        ),
        ("queue_depth".into(), Json::Int(state.queue.depth() as u64)),
        (
            "open_jobs".into(),
            Json::Int(state.queue.open_jobs() as u64),
        ),
        ("queue_limit".into(), Json::Int(state.queue.limit() as u64)),
        ("workers".into(), Json::Int(state.options.workers as u64)),
        ("store".into(), store),
        ("service".into(), service),
        ("journal".into(), journal_json(state)),
        ("recovering".into(), Json::Int(state.recovering() as u64)),
        ("pulse".into(), pulse_json(state)),
    ]))
}

/// The ds-anvil journal/recovery block of the JSON `/metrics` shape
/// (`null` when journaling is off — memory-only store or `--no-journal`).
fn journal_json(state: &ServeState) -> Json {
    let Some(journal) = &state.journal else {
        return Json::Null;
    };
    let stats = journal.stats();
    let recovery = &state.recovery;
    Json::Obj(vec![
        ("records_appended".into(), Json::Int(stats.appended)),
        ("bytes_appended".into(), Json::Int(stats.bytes)),
        ("append_errors".into(), Json::Int(stats.errors)),
        ("recovered_jobs".into(), Json::Int(recovery.jobs as u64)),
        ("recovered_tasks".into(), Json::Int(recovery.tasks as u64)),
        (
            "recovered_tasks_done".into(),
            Json::Int(recovery.tasks_done as u64),
        ),
        ("torn_tail".into(), Json::Bool(recovery.torn_tail)),
        ("quarantined".into(), Json::Bool(recovery.quarantined)),
    ])
}

/// Appends one Prometheus metric with `# HELP` / `# TYPE` metadata.
fn prom_scalar(out: &mut String, name: &str, kind: &str, help: &str, value: impl fmt::Display) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// Appends one [`ds_sim::Histogram`] in Prometheus histogram form:
/// cumulative `_bucket{le=...}` series over the power-of-two bucket
/// boundaries (bucket 0 holds values 0..=1, so `le="1"`; the bucket
/// with floor `f = 2^i` holds `f..=2f-1`, so `le="2f-1"`), a final
/// `+Inf` bucket, then exact `_sum` and `_count`. Empty interior
/// buckets are skipped — the cumulative counts at the emitted
/// boundaries are unchanged.
fn prom_histogram(out: &mut String, name: &str, help: &str, h: &ds_sim::Histogram) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for (floor, count) in h.iter() {
        if count == 0 {
            continue;
        }
        cumulative += count;
        let le = if floor == 0 { 1 } else { 2 * floor as u128 - 1 };
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
        h.samples(),
        h.sum(),
        h.samples()
    ));
}

/// The Prometheus rendering of [`metrics`]: the same gauges and
/// counters as the JSON shape, plus full `_bucket`/`_sum`/`_count`
/// series for every service histogram (the JSON shape only carries
/// their percentile summaries).
fn prometheus_metrics(state: &ServeState) -> Response {
    let stats = state.store.stats();
    let mut out = String::new();
    prom_scalar(
        &mut out,
        "dsserve_uptime_seconds",
        "gauge",
        "Seconds since the service started.",
        format!("{:.3}", state.started.elapsed().as_secs_f64()),
    );
    for (name, help, value) in [
        (
            "dsserve_queue_depth",
            "Open (accepted, unfinished) jobs.",
            state.queue.depth() as u64,
        ),
        (
            "dsserve_open_jobs",
            "Jobs not yet in a terminal state.",
            state.queue.open_jobs() as u64,
        ),
        (
            "dsserve_queue_limit",
            "Admission bound on open jobs.",
            state.queue.limit() as u64,
        ),
        (
            "dsserve_workers",
            "Simulation worker threads.",
            state.options.workers as u64,
        ),
        (
            "dsserve_store_entries",
            "Results held by the shared store.",
            state.store.len() as u64,
        ),
    ] {
        prom_scalar(&mut out, name, "gauge", help, value);
    }
    prom_scalar(
        &mut out,
        "dsserve_store_hit_rate",
        "gauge",
        "Fraction of store requests served without simulating.",
        format!("{:.6}", stats.hit_rate()),
    );
    for (name, help, value) in [
        (
            "dsserve_store_requests_total",
            "Result-store lookups.",
            stats.requests,
        ),
        ("dsserve_store_hits_total", "Store cache hits.", stats.hits),
        (
            "dsserve_store_coalesced_total",
            "Lookups coalesced onto an in-flight computation.",
            stats.coalesced,
        ),
        (
            "dsserve_store_misses_total",
            "Lookups that had to simulate.",
            stats.misses,
        ),
        (
            "dsserve_store_failed_total",
            "Lookups whose computation failed.",
            stats.failed,
        ),
    ] {
        prom_scalar(&mut out, name, "counter", help, value);
    }
    state.with_metrics(|m| {
        for (name, help, value) in [
            (
                "dsserve_http_requests_total",
                "HTTP requests handled (any endpoint).",
                m.requests,
            ),
            (
                "dsserve_rejected_total",
                "Submissions refused by admission control.",
                m.rejected,
            ),
            (
                "dsserve_jobs_accepted_total",
                "Jobs accepted by admission control.",
                m.jobs_accepted,
            ),
            (
                "dsserve_jobs_completed_total",
                "Jobs whose every task finished.",
                m.jobs_completed,
            ),
            (
                "dsserve_tasks_completed_total",
                "Tasks that reached a terminal outcome.",
                m.tasks_completed,
            ),
            (
                "dsserve_worker_panics_total",
                "Tasks whose execution path panicked (isolated per item).",
                m.worker_panics,
            ),
            (
                "dsserve_workers_respawned_total",
                "Worker threads respawned by their supervisor.",
                m.workers_respawned,
            ),
        ] {
            prom_scalar(&mut out, name, "counter", help, value);
        }
        for h in m.histograms() {
            prom_histogram(
                &mut out,
                &format!("dsserve_{}", h.name()),
                "Service latency histogram (microseconds).",
                h,
            );
        }
    });
    prom_scalar(
        &mut out,
        "dsserve_recovering",
        "gauge",
        "Journal-recovered jobs still draining (0 = ready).",
        state.recovering() as u64,
    );
    // Journal series surface only when journaling is on, like the
    // pulse gauges below.
    if let Some(journal) = &state.journal {
        let stats = journal.stats();
        for (name, help, value) in [
            (
                "dsserve_journal_records_total",
                "Journal records appended by this process.",
                stats.appended,
            ),
            (
                "dsserve_journal_bytes_total",
                "Journal bytes appended by this process.",
                stats.bytes,
            ),
            (
                "dsserve_journal_append_errors_total",
                "Journal append/fsync failures (durability degraded).",
                stats.errors,
            ),
        ] {
            prom_scalar(&mut out, name, "counter", help, value);
        }
        let recovery = &state.recovery;
        for (name, help, value) in [
            (
                "dsserve_journal_recovered_jobs",
                "Unfinished jobs re-enqueued from the journal at boot.",
                recovery.jobs as u64,
            ),
            (
                "dsserve_journal_recovered_tasks",
                "Tasks across the jobs recovered at boot.",
                recovery.tasks as u64,
            ),
            (
                "dsserve_journal_torn_tail_truncations",
                "Whether boot truncated a torn final journal record.",
                recovery.torn_tail as u64,
            ),
            (
                "dsserve_journal_quarantines",
                "Whether boot quarantined a corrupt journal.",
                recovery.quarantined as u64,
            ),
        ] {
            prom_scalar(&mut out, name, "gauge", help, value);
        }
    }
    // Pulse-derived gauges surface only once a pulsed task has run —
    // absent series are idiomatic Prometheus (rate() just has no data).
    if let Some(p) = state.pulse_gauges() {
        for (name, help, value) in [
            (
                "dsserve_pulse_window_cycles",
                "ds-pulse window length of the most recent pulsed run.",
                p.window,
            ),
            (
                "dsserve_pulse_last_queue_depth",
                "Event-queue depth gauge in the last pulse window.",
                p.queue_depth,
            ),
            (
                "dsserve_pulse_last_noc_msgs",
                "NoC messages delivered in the last pulse window.",
                p.noc_msgs,
            ),
            (
                "dsserve_pulse_last_retries",
                "Push retries in the last pulse window.",
                p.retries,
            ),
            (
                "dsserve_pulse_anomalies",
                "Anomalies flagged by the most recent pulsed run.",
                p.anomalies,
            ),
        ] {
            prom_scalar(&mut out, name, "gauge", help, value);
        }
        let per_cycle = |v: u64| format!("{:.6}", v as f64 / p.window.max(1) as f64);
        prom_scalar(
            &mut out,
            "dsserve_pulse_noc_util",
            "gauge",
            "NoC messages per cycle in the last pulse window.",
            per_cycle(p.noc_msgs),
        );
        prom_scalar(
            &mut out,
            "dsserve_pulse_retry_rate",
            "gauge",
            "Push retries per cycle in the last pulse window.",
            per_cycle(p.retries),
        );
    }
    Response {
        status: 200,
        body: out,
        content_type: "text/plain; version=0.0.4",
        headers: Vec::new(),
    }
}

/// Parses `/jobs/<id>/events` into the job id (`None` for any other
/// path) — the handler loop routes matches to [`stream_events`].
pub fn events_job_id(path: &str) -> Option<u64> {
    path.strip_prefix("/jobs/")?
        .strip_suffix("/events")?
        .parse()
        .ok()
}

/// `GET /jobs/<id>/events`: live telemetry. Streams the job's event
/// log as close-delimited NDJSON — span-open/close lines, per-task
/// outcome summaries (with the epoch sampler's progress counts), and
/// heartbeats while the job simulates — ending with a `done` line
/// when the job completes. Returns `(status, body bytes written)`
/// for the request log.
pub fn stream_events(
    state: &ServeState,
    stream: &mut TcpStream,
    id: u64,
    span: u64,
) -> (u16, usize) {
    let headers = vec![("X-Dsscope-Span".to_string(), span.to_string())];
    let Some(job) = state.queue.get(id) else {
        let response = error(404, &format!("no such job {id}"))
            .with_header("X-Dsscope-Span", span.to_string());
        let bytes = response.body.len();
        let _ = write_response(stream, &response);
        return (404, bytes);
    };
    if write_stream_head(stream, 200, "application/x-ndjson", &headers).is_err() {
        return (200, 0);
    }
    // Long-lived stream: per-write timeouts stay short (a stuck client
    // should not pin a handler), but the stream itself lives until the
    // job completes or the service shuts down.
    let mut sent = 0usize;
    let mut cursor = 0usize;
    let mut quiet_polls = 0u32;
    // Quiet polls (500 ms each) before a heartbeat goes out; the
    // cadence comes from the options so tests can compress it.
    let quiet_limit = (state.options.heartbeat.as_millis() as u64 / 500).max(1) as u32;
    let write_line = |stream: &mut TcpStream, line: &str| -> std::io::Result<usize> {
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()?;
        Ok(line.len() + 1)
    };
    loop {
        let (lines, next, done) = job.wait_events(cursor, Duration::from_millis(500));
        cursor = next;
        if lines.is_empty() {
            quiet_polls += 1;
        } else {
            quiet_polls = 0;
        }
        for line in &lines {
            match write_line(stream, line) {
                Ok(n) => sent += n,
                Err(_) => return (200, sent), // client went away
            }
        }
        if done {
            // Completion events race the done flip by a hair; one
            // grace pass picks up stragglers (the job span-close).
            std::thread::sleep(Duration::from_millis(50));
            let (stragglers, _) = job.events_since(cursor);
            for line in &stragglers {
                match write_line(stream, line) {
                    Ok(n) => sent += n,
                    Err(_) => return (200, sent),
                }
            }
            let fin = Json::Obj(vec![
                ("event".into(), Json::Str("done".into())),
                ("job".into(), Json::Int(id)),
                ("t_us".into(), Json::Int(state.now_us())),
            ])
            .compact();
            if let Ok(n) = write_line(stream, &fin) {
                sent += n;
            }
            return (200, sent);
        }
        if state.is_shutting_down() {
            return (200, sent);
        }
        // Keep a quiet connection visibly alive (and detect a gone
        // client) every heartbeat interval (~10s by default).
        if quiet_polls >= quiet_limit {
            quiet_polls = 0;
            let beat = Json::Obj(vec![
                ("event".into(), Json::Str("heartbeat".into())),
                ("job".into(), Json::Int(id)),
                ("t_us".into(), Json::Int(state.now_us())),
            ])
            .compact();
            match write_line(stream, &beat) {
                Ok(n) => sent += n,
                Err(_) => return (200, sent),
            }
        }
    }
}

/// `GET /health`: liveness vs readiness. `ok` is pure liveness (the
/// process answers); `ready` goes `false` while shutting down or
/// while journal-recovered jobs are still draining (`recovering`
/// counts them), so an orchestrator can hold traffic until replayed
/// work has rehydrated.
fn health(state: &ServeState) -> Response {
    let recovering = state.recovering();
    let shutting_down = state.is_shutting_down();
    let state_name = if shutting_down {
        "shutting-down"
    } else if recovering > 0 {
        "recovering"
    } else {
        "serving"
    };
    ok(Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("state".into(), Json::Str(state_name.into())),
        (
            "ready".into(),
            Json::Bool(!shutting_down && recovering == 0),
        ),
        ("recovering".into(), Json::Int(recovering as u64)),
        ("queue_depth".into(), Json::Int(state.queue.depth() as u64)),
        (
            "open_jobs".into(),
            Json::Int(state.queue.open_jobs() as u64),
        ),
    ]))
}

/// Seconds a 429'd client should wait before retrying, surfaced as
/// `Retry-After`. One second: admission slots free up as soon as any
/// open job drains, and the retrying client adds its own backoff.
const RETRY_AFTER_SECS: u64 = 1;

/// `POST /jobs`: parse, admit (honoring `Idempotency-Key`). The queue
/// journals the submission *before* enqueueing it — write-ahead order
/// — so the handler only renders the outcome.
fn submit(state: &ServeState, request: &Request, request_span: u64) -> Response {
    let tasks = match parse_submission(&request.body) {
        Ok(tasks) => tasks,
        Err(message) => return error(400, &message),
    };
    let key = match request.idempotency.as_str() {
        "" => None,
        key => Some(key),
    };
    match state
        .queue
        .submit_keyed(tasks, request_span, key, state.journal.as_ref())
    {
        Ok((job, deduplicated)) => {
            let mut fields = vec![
                ("job".into(), Json::Int(job.id)),
                ("span".into(), Json::Int(job.span)),
                ("tasks".into(), Json::Int(job.tasks.len() as u64)),
                ("state".into(), Json::Str(job.state().name().into())),
            ];
            if deduplicated {
                // A retry attached to the existing job: no admission,
                // no journaling, no duplicate span — just the pointer.
                fields.push(("deduplicated".into(), Json::Bool(true)));
                return ok(Json::Obj(fields));
            }
            state.with_metrics(|m| m.jobs_accepted += 1);
            // The job span opens at admission; workers close it when
            // the last task completes.
            job.push_event(span_open_event(
                &SpanRecord {
                    id: job.span,
                    parent: job.parent_span,
                    kind: SpanKind::Job,
                    label: format!("job {} ({} tasks)", job.id, job.tasks.len()),
                    start_us: state.now_us(),
                    end_us: state.now_us(),
                },
                job.id,
                vec![],
            ));
            ok(Json::Obj(fields))
        }
        Err(rejection) => {
            state.with_metrics(|m| m.rejected += 1);
            let mut fields = vec![("error".into(), Json::Str(rejection.message()))];
            if let crate::jobs::Rejection::QueueFull { open, limit } = &rejection {
                fields.push(("open_jobs".into(), Json::Int(*open as u64)));
                fields.push(("queue_limit".into(), Json::Int(*limit as u64)));
            }
            let status = rejection.status();
            let response = Response::json(status, Json::Obj(fields).pretty());
            if status == 429 {
                response.with_header("Retry-After", RETRY_AFTER_SECS.to_string())
            } else {
                response
            }
        }
    }
}

/// Accepts both the CLI spellings and the `Display` names.
fn parse_mode_any(name: &str) -> Option<Mode> {
    match name {
        "ccsm" | "CCSM" => Some(Mode::Ccsm),
        "ds" | "DS" => Some(Mode::DirectStore),
        "ds-only" | "DS-only" => Some(Mode::DirectStoreOnly),
        _ => None,
    }
}

fn parse_input_any(name: &str) -> Option<InputSize> {
    parse_input(name)
}

/// Parses a submission body into a task list (see the module docs for
/// the accepted shapes).
///
/// # Errors
///
/// A message describing the first problem found; the caller answers
/// 400 with it.
pub fn parse_submission(body: &[u8]) -> Result<Vec<Task>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let cfg = config_from(doc.get("config"))?;
    let faults = faults_from(doc.get("faults"))?;
    let pulse = pulse_from(doc.get("pulse"))?;

    let mut tasks = match (doc.get("tasks"), doc.get("sweep")) {
        (Some(_), Some(_)) => {
            return Err("give either \"tasks\" or \"sweep\", not both".into());
        }
        (Some(list), None) => explicit_tasks(list, &cfg)?,
        (None, Some(sweep)) => sweep_submission(sweep, &cfg)?,
        (None, None) => {
            return Err("submission needs a \"tasks\" array or a \"sweep\" object".into());
        }
    };
    if let Some(plan) = faults {
        for task in &mut tasks {
            task.faults = plan.clone();
        }
    }
    if let Some(window) = pulse {
        for task in &mut tasks {
            task.pulse = window;
        }
    }
    Ok(tasks)
}

/// Parses the optional `"pulse"` key: `true` means the default window,
/// an integer is a window length in cycles, and `false`/`null`/`0`
/// leave pulse off (the default — a pulse-free submission plans the
/// exact batch-CLI task list, preserving served-vs-batch byte
/// identity).
fn pulse_from(pulse: Option<&Json>) -> Result<Option<u64>, String> {
    match pulse {
        None | Some(Json::Null) | Some(Json::Bool(false)) => Ok(None),
        Some(Json::Bool(true)) => Ok(Some(ds_probe::DEFAULT_PULSE_WINDOW)),
        Some(other) => match other.as_u64() {
            Some(0) => Ok(None),
            Some(window) => Ok(Some(window)),
            None => Err("\"pulse\" must be true or a window length in cycles".into()),
        },
    }
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn explicit_tasks(list: &Json, cfg: &SystemConfig) -> Result<Vec<Task>, String> {
    let entries = list.as_arr().ok_or("\"tasks\" must be an array")?;
    entries
        .iter()
        .map(|entry| {
            let code = str_field(entry, "bench")?;
            if catalog::by_code(code).is_none() {
                return Err(format!("unknown benchmark code {code:?} (see Table II)"));
            }
            let input = parse_input_any(str_field(entry, "input")?)
                .ok_or_else(|| "input must be \"small\" or \"big\"".to_string())?;
            let mode = parse_mode_any(str_field(entry, "mode")?)
                .ok_or_else(|| "mode must be \"ccsm\", \"ds\" or \"ds-only\"".to_string())?;
            Ok(Task::new(cfg, code, input, mode))
        })
        .collect()
}

/// The `dsrun` sweep shape: CCSM-vs-`mode` pairs over the selected
/// benchmarks, in catalog order — so a served sweep's task list is
/// identical to the batch CLI's.
fn sweep_submission(sweep: &Json, cfg: &SystemConfig) -> Result<Vec<Task>, String> {
    let input = match sweep.get("input") {
        Some(v) => parse_input_any(v.as_str().unwrap_or(""))
            .ok_or_else(|| "sweep input must be \"small\" or \"big\"".to_string())?,
        None => InputSize::Small,
    };
    let ds_mode = match sweep.get("mode") {
        Some(v) => match v.as_str().and_then(parse_mode_any) {
            Some(Mode::Ccsm) | None => {
                return Err("sweep mode must be \"ds\" or \"ds-only\"".into());
            }
            Some(mode) => mode,
        },
        None => Mode::DirectStore,
    };
    let codes: Option<Vec<String>> = match sweep.get("bench") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let list = v.as_arr().ok_or("sweep bench must be an array of codes")?;
            let codes: Vec<String> = list
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "sweep bench entries must be strings".to_string())
                })
                .collect::<Result<_, _>>()?;
            for code in &codes {
                if catalog::by_code(code).is_none() {
                    return Err(format!("unknown benchmark code {code:?} (see Table II)"));
                }
            }
            Some(codes)
        }
    };
    Ok(sweep_tasks(cfg, input, ds_mode, |b| {
        codes
            .as_ref()
            .is_none_or(|codes| codes.iter().any(|c| c == b.code()))
    }))
}

/// Applies `"config"` overrides onto the paper-default configuration.
/// The accepted keys are the scalar knobs the ablation binaries sweep;
/// anything else is rejected so typos fail loudly instead of silently
/// simulating the default.
fn config_from(overrides: Option<&Json>) -> Result<SystemConfig, String> {
    let mut cfg = SystemConfig::paper_default();
    let Some(overrides) = overrides else {
        return Ok(cfg);
    };
    let Json::Obj(fields) = overrides else {
        return Err("\"config\" must be an object".into());
    };
    for (key, value) in fields {
        let as_usize = || {
            value
                .as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("config {key:?} needs a non-negative integer"))
        };
        let as_u64 = || {
            value
                .as_u64()
                .ok_or_else(|| format!("config {key:?} needs a non-negative integer"))
        };
        let as_bool = || match value {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("config {key:?} needs a boolean")),
        };
        match key.as_str() {
            "sms" => cfg.sms = as_usize()?,
            "warps_per_sm" => cfg.warps_per_sm = as_usize()?,
            "store_buffer_entries" => cfg.store_buffer_entries = as_usize()?,
            "store_drain_parallelism" => cfg.store_drain_parallelism = as_usize()?,
            "tlb_entries" => cfg.tlb_entries = as_usize()?,
            "gpu_tlb_entries" => cfg.gpu_tlb_entries = as_usize()?,
            "direct_hop_latency" => cfg.direct_hop_latency = as_u64()?,
            "coh_hop_latency" => cfg.coh_hop_latency = as_u64()?,
            "gpu_l2_prefetch" => cfg.gpu_l2_prefetch = as_bool()?,
            "directory_filter" => cfg.directory_filter = as_bool()?,
            other => return Err(format!("unknown config override {other:?}")),
        }
    }
    cfg.validate()?;
    Ok(cfg)
}

/// Builds a [`FaultPlan`] from the compact `dschaos`-style shape:
/// `{"net": "direct|coh|gpu|dram", "kind": "drop|dup|delay",
/// "rate": N, "seed": S}`.
fn faults_from(faults: Option<&Json>) -> Result<Option<FaultPlan>, String> {
    let Some(faults) = faults else {
        return Ok(None);
    };
    if matches!(faults, Json::Null) {
        return Ok(None);
    }
    let rate = faults
        .get("rate")
        .and_then(Json::as_u64)
        .ok_or("faults need a \"rate\" in 0..=65535")?;
    let rate = u16::try_from(rate).map_err(|_| "fault rate must fit 0..=65535".to_string())?;
    let mut plan = FaultPlan {
        seed: faults.get("seed").and_then(Json::as_u64).unwrap_or(1),
        ..FaultPlan::default()
    };
    let net = faults.get("net").and_then(Json::as_str).unwrap_or("direct");
    let kind = faults.get("kind").and_then(Json::as_str).unwrap_or("drop");
    match net {
        "dram" => {
            plan.dram_stall_rate = rate;
            plan.dram_stall_cycles = 500;
        }
        "direct" | "coh" | "gpu" => {
            let rates = match net {
                "direct" => &mut plan.direct_net,
                "coh" => &mut plan.coh_net,
                _ => &mut plan.gpu_net,
            };
            match kind {
                "drop" => rates.drop = rate,
                "dup" => rates.dup = rate,
                "delay" => {
                    rates.delay = rate;
                    rates.delay_cycles = 400;
                }
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        other => return Err(format!("unknown fault net {other:?}")),
    }
    Ok(Some(plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeOptions;

    fn get_metrics(query: &str, accept: &str) -> Request {
        Request {
            method: "GET".into(),
            path: "/metrics".into(),
            query: query.into(),
            accept: accept.into(),
            idempotency: String::new(),
            body: Vec::new(),
        }
    }

    #[test]
    fn metrics_negotiates_json_and_prometheus() {
        let state = crate::server::ServeState::new(ServeOptions::default());
        state.with_metrics(|m| {
            m.submit.record(120);
            m.submit.record(9000);
            m.status.record(3);
        });

        // Default: JSON that parses and carries the gauges.
        let response = handle(&state, &get_metrics("", ""));
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "application/json");
        let doc = json::parse(&response.body).expect("JSON shape parses");
        assert!(doc.get("queue_depth").and_then(Json::as_u64).is_some());
        assert!(doc.get("store").and_then(|s| s.get("hit_rate")).is_some());

        // Prometheus via query param and via Accept header.
        for request in [
            get_metrics("format=prom", ""),
            get_metrics("verbose=1&format=prom", ""),
            get_metrics("", "text/plain"),
        ] {
            let response = handle(&state, &request);
            assert_eq!(response.status, 200);
            assert_eq!(response.content_type, "text/plain; version=0.0.4");
            assert_prometheus_parses(&response.body);
        }

        // `Accept: application/json` stays JSON.
        let response = handle(&state, &get_metrics("", "application/json"));
        assert_eq!(response.content_type, "application/json");
        json::parse(&response.body).expect("still JSON");
    }

    /// A line-level parse of the exposition format: every non-comment
    /// line is `name[{labels}] value`, every histogram's buckets are
    /// cumulative and reconcile with `_count`.
    fn assert_prometheus_parses(body: &str) {
        let mut seen = 0;
        for line in body.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line {line:?}"
                );
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(!name.is_empty());
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("unparseable sample value {value:?} on line {line:?}"));
            seen += 1;
        }
        assert!(seen > 10, "exposition suspiciously small: {seen} samples");
        for metric in ["dsserve_queue_depth", "dsserve_store_hit_rate"] {
            assert!(body.contains(&format!("\n{metric} ")), "missing {metric}");
        }
        // The recorded submit latencies surface as a histogram whose
        // +Inf bucket equals its count.
        let needle = "dsserve_http_submit_us_bucket{le=\"+Inf\"} 2";
        assert!(
            body.contains(needle),
            "missing cumulative bucket {needle:?}"
        );
        assert!(body.contains("dsserve_http_submit_us_count 2"));
        assert!(body.contains("dsserve_http_submit_us_sum 9120"));
        let mut last = 0u64;
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("dsserve_http_submit_us_bucket{le=\"") {
                let count: u64 = rest.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(count >= last, "buckets must be cumulative: {line:?}");
                last = count;
            }
        }
        assert_eq!(last, 2, "+Inf bucket carries every sample");
    }

    #[test]
    fn sweep_submissions_match_the_batch_planner() {
        let body = br#"{"sweep": {"bench": ["VA", "MM"], "input": "small", "mode": "ds"}}"#;
        let tasks = parse_submission(body).unwrap();
        let batch = sweep_tasks(
            &SystemConfig::paper_default(),
            InputSize::Small,
            Mode::DirectStore,
            |b| ["VA", "MM"].contains(&b.code()),
        );
        assert_eq!(tasks.len(), batch.len());
        for (a, b) in tasks.iter().zip(&batch) {
            assert_eq!(a.key(), b.key(), "served sweep plans the batch task list");
        }
    }

    #[test]
    fn explicit_tasks_and_overrides_parse() {
        let body = br#"{
            "tasks": [{"bench": "VA", "input": "big", "mode": "ds-only"}],
            "config": {"sms": 8, "gpu_l2_prefetch": true},
            "faults": {"net": "direct", "kind": "delay", "rate": 512, "seed": 7}
        }"#;
        let tasks = parse_submission(body).unwrap();
        assert_eq!(tasks.len(), 1);
        assert_eq!(tasks[0].cfg.sms, 8);
        assert!(tasks[0].cfg.gpu_l2_prefetch);
        assert_eq!(tasks[0].input, InputSize::Big);
        assert_eq!(tasks[0].mode, Mode::DirectStoreOnly);
        assert_eq!(tasks[0].faults.seed, 7);
        assert_eq!(tasks[0].faults.direct_net.delay, 512);
        assert_ne!(tasks[0].key().fault_fp, 0, "fault plan is part of identity");
    }

    #[test]
    fn bad_submissions_fail_loudly() {
        for (body, needle) in [
            (&br#"{"tasks": []}"#[..], None),
            (br#"{"sweep": {"mode": "ccsm"}}"#, Some("ds")),
            (br#"{"tasks": [{"bench": "NOPE", "input": "small", "mode": "ds"}]}"#, Some("NOPE")),
            (br#"{"config": {"typo_knob": 1}, "tasks": [{"bench": "VA", "input": "small", "mode": "ds"}]}"#, Some("typo_knob")),
            (br#"{"faults": {"net": "marsnet", "rate": 1}, "sweep": {}}"#, Some("marsnet")),
            (br#"not json"#, None),
            (br#"{}"#, Some("tasks")),
        ] {
            let result = parse_submission(body);
            match (body.first(), needle) {
                // An empty task list parses here; admission rejects it.
                (Some(b'{'), None) if body.starts_with(br#"{"tasks": []}"#) => {
                    assert_eq!(result.unwrap().len(), 0);
                }
                (_, Some(needle)) => {
                    let err = result.unwrap_err();
                    assert!(err.contains(needle), "{err:?} should mention {needle:?}");
                }
                _ => {
                    result.unwrap_err();
                }
            }
        }
    }
}
