//! Client-side helpers for the job API: submit, poll, fetch, and
//! reconstruct the batch CLI's JSON document from served results.
//!
//! The reconstruction is the determinism contract made executable:
//! `dsserve submit` prints the *same bytes* `dsrun --format json`
//! prints for the same sweep, because served reports round-trip
//! through the lossless report codec and the sweep planner orders
//! tasks identically on both paths. The CI smoke gate `cmp`s the two.

use std::time::{Duration, Instant};

use ds_core::{Comparison, InputSize, Mode, SystemConfig};
use ds_runner::json::{self, Json};
use ds_runner::report::{comparison_to_json, report_from_json};
use ds_runner::Runner;

use crate::http::client_request;

/// Default per-request client timeout.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// What `POST /jobs` answered.
#[derive(Debug)]
pub enum SubmitAnswer {
    /// The job was admitted.
    Accepted {
        /// Assigned job id.
        id: u64,
        /// Number of tasks the job expanded to.
        tasks: u64,
    },
    /// Admission control refused (429) — an explicit, expected
    /// saturation outcome, distinguished from transport errors.
    Rejected {
        /// The error message from the response body.
        message: String,
    },
}

/// Submits `body` to `url`.
///
/// # Errors
///
/// Transport failures and non-200/429 statuses (a 400 means the
/// submission itself is malformed).
pub fn submit(url: &str, body: &str) -> Result<SubmitAnswer, String> {
    let (status, text) = client_request(url, "POST", "/jobs", Some(body), CLIENT_TIMEOUT)?;
    let doc = json::parse(&text).map_err(|e| format!("bad submit response: {e}"))?;
    match status {
        200 => {
            let id = doc
                .get("job")
                .and_then(Json::as_u64)
                .ok_or("submit response missing \"job\"")?;
            let tasks = doc.get("tasks").and_then(Json::as_u64).unwrap_or(0);
            Ok(SubmitAnswer::Accepted { id, tasks })
        }
        429 => Ok(SubmitAnswer::Rejected {
            message: doc
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("queue full")
                .to_string(),
        }),
        other => Err(format!(
            "POST /jobs answered {other}: {}",
            doc.get("error").and_then(Json::as_str).unwrap_or(&text)
        )),
    }
}

/// Builds the sweep submission body `dsserve submit` sends.
pub fn sweep_body(codes: Option<&[String]>, input: InputSize, ds_mode: Mode) -> String {
    sweep_body_pulsed(codes, input, ds_mode, None)
}

/// Like [`sweep_body`], optionally asking for ds-pulse telemetry at
/// `pulse` cycles per window — the served reports then carry the time
/// series and the job's `/events` stream carries live `pulse-window`
/// lines (a pulsed document is a superset of the batch one, so the
/// byte-identity contract applies to pulse-free submissions only).
pub fn sweep_body_pulsed(
    codes: Option<&[String]>,
    input: InputSize,
    ds_mode: Mode,
    pulse: Option<u64>,
) -> String {
    let mut sweep = vec![
        ("input".to_string(), Json::Str(input.to_string())),
        ("mode".to_string(), Json::Str(ds_mode.to_string())),
    ];
    if let Some(codes) = codes {
        sweep.push((
            "bench".to_string(),
            Json::Arr(codes.iter().map(|c| Json::Str(c.clone())).collect()),
        ));
    }
    let mut body = vec![("sweep".to_string(), Json::Obj(sweep))];
    if let Some(window) = pulse {
        body.push(("pulse".to_string(), Json::Int(window)));
    }
    Json::Obj(body).pretty()
}

/// Polls `GET /jobs/<id>` until the job is done; returns the final
/// status document.
///
/// # Errors
///
/// Transport failures, non-200 answers, or `timeout` elapsing first.
pub fn wait_done(url: &str, id: u64, timeout: Duration) -> Result<Json, String> {
    let deadline = Instant::now() + timeout;
    let mut poll = Duration::from_millis(20);
    loop {
        let (status, text) =
            client_request(url, "GET", &format!("/jobs/{id}"), None, CLIENT_TIMEOUT)?;
        if status != 200 {
            return Err(format!("GET /jobs/{id} answered {status}: {text}"));
        }
        let doc = json::parse(&text).map_err(|e| format!("bad status response: {e}"))?;
        if doc.get("state").and_then(Json::as_str) == Some("done") {
            return Ok(doc);
        }
        if Instant::now() >= deadline {
            return Err(format!("job {id} not done within {timeout:?}"));
        }
        std::thread::sleep(poll);
        // Back off to spare a busy server; cap well under human patience.
        poll = (poll * 2).min(Duration::from_millis(500));
    }
}

/// Tails `GET /jobs/<id>/events`: connects, then calls `on_line` for
/// every NDJSON event line as it arrives, until the server closes the
/// stream (job done or service shutdown). Returns the HTTP status.
///
/// # Errors
///
/// Transport failures, a bad status line, or a quiet stream
/// outliving the read timeout (the server heartbeats ~10s, so the
/// 60-second timeout only fires on a dead server).
pub fn watch(url: &str, id: u64, mut on_line: impl FnMut(&str)) -> Result<u16, String> {
    use std::io::{BufRead, BufReader, Write};

    let host = crate::http::host_of(url)?;
    let mut stream =
        std::net::TcpStream::connect(&host).map_err(|e| format!("connect {host}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
    let path = format!("/jobs/{id}/events");
    let request = format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send {path}: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read {path}: {e}"))?;
        if n == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    if status != 200 {
        // The body is a one-shot JSON error; surface it as a line.
        let mut body = String::new();
        use std::io::Read as _;
        let _ = reader.read_to_string(&mut body);
        if !body.trim().is_empty() {
            on_line(body.trim());
        }
        return Ok(status);
    }
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // server closed: stream over
            Ok(_) => {
                let line = line.trim_end();
                if !line.is_empty() {
                    on_line(line);
                }
            }
            Err(e) => return Err(format!("read {path}: {e}")),
        }
    }
    Ok(status)
}

/// Fetches `GET /jobs/<id>/results` as parsed JSON.
///
/// # Errors
///
/// Transport failures and non-200 answers.
pub fn fetch_results(url: &str, id: u64) -> Result<Json, String> {
    let (status, text) = client_request(
        url,
        "GET",
        &format!("/jobs/{id}/results"),
        None,
        CLIENT_TIMEOUT,
    )?;
    if status != 200 {
        return Err(format!("GET /jobs/{id}/results answered {status}: {text}"));
    }
    json::parse(&text).map_err(|e| format!("bad results response: {e}"))
}

/// A served sweep folded back into the batch CLI's shape.
#[derive(Debug)]
pub struct SweepOutput {
    /// The `dsrun --format json` document (without the trailing
    /// newline `println!` adds).
    pub doc: String,
    /// Per-task provenance tags, in task order.
    pub provenances: Vec<String>,
}

/// Folds a `/results` document for a sweep submission back into the
/// exact `dsrun --format json` output for the same sweep.
///
/// # Errors
///
/// Any non-ok/degraded task, malformed row, or odd row count — a
/// sweep is CCSM/direct-store *pairs* by construction.
pub fn sweep_doc(
    cfg: &SystemConfig,
    input: InputSize,
    ds_mode: Mode,
    results: &Json,
) -> Result<SweepOutput, String> {
    let rows = results
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("results response missing \"results\"")?;
    if rows.len() % 2 != 0 {
        return Err(format!("sweep produced an odd row count ({})", rows.len()));
    }
    let mut provenances = Vec::with_capacity(rows.len());
    let mut comparisons = Vec::with_capacity(rows.len() / 2);
    for pair in rows.chunks(2) {
        let mut reports = Vec::with_capacity(2);
        let mut code = String::new();
        for row in pair {
            code = row
                .get("bench")
                .and_then(Json::as_str)
                .ok_or("result row missing \"bench\"")?
                .to_string();
            let outcome = row
                .get("outcome")
                .and_then(Json::as_str)
                .unwrap_or("pending");
            if !matches!(outcome, "ok" | "degraded") {
                return Err(format!("task {code} ended {outcome}, not ok"));
            }
            provenances.push(
                row.get("provenance")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            );
            let report = row.get("report").ok_or("result row missing \"report\"")?;
            reports.push(report_from_json(report)?);
        }
        let direct_store = reports.pop().expect("pair has two reports");
        let ccsm = reports.pop().expect("pair has two reports");
        comparisons.push(Comparison {
            code,
            input,
            ccsm,
            direct_store,
        });
    }
    let doc = Json::Obj(vec![
        (
            "fingerprint".into(),
            Json::Str(format!("{:016x}", Runner::fingerprint(cfg))),
        ),
        ("mode".into(), Json::Str(ds_mode.to_string())),
        (
            "comparisons".into(),
            Json::Arr(comparisons.iter().map(comparison_to_json).collect()),
        ),
    ]);
    Ok(SweepOutput {
        doc: doc.pretty(),
        provenances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_body_has_the_documented_shape() {
        let body = sweep_body(
            Some(&["VA".to_string(), "MM".to_string()]),
            InputSize::Small,
            Mode::DirectStore,
        );
        let doc = json::parse(&body).unwrap();
        let sweep = doc.get("sweep").unwrap();
        assert_eq!(sweep.get("input").and_then(Json::as_str), Some("small"));
        assert_eq!(sweep.get("mode").and_then(Json::as_str), Some("DS"));
        assert_eq!(
            sweep.get("bench").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        // The API parser accepts its own client's body.
        let tasks = crate::api::parse_submission(body.as_bytes()).unwrap();
        assert_eq!(tasks.len(), 4, "two benchmarks, CCSM+DS each");
        assert!(tasks.iter().all(|t| t.pulse == 0), "pulse stays opt-in");
    }

    #[test]
    fn pulsed_sweep_body_round_trips_the_window() {
        let body = sweep_body_pulsed(
            Some(&["VA".to_string()]),
            InputSize::Small,
            Mode::DirectStore,
            Some(500),
        );
        let tasks = crate::api::parse_submission(body.as_bytes()).unwrap();
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|t| t.pulse == 500));
        assert_ne!(
            tasks[0].key(),
            crate::api::parse_submission(
                sweep_body(
                    Some(&["VA".to_string()]),
                    InputSize::Small,
                    Mode::DirectStore
                )
                .as_bytes()
            )
            .unwrap()[0]
                .key(),
            "pulsed tasks must not alias pulse-free cache entries"
        );
    }

    #[test]
    fn sweep_doc_rejects_failed_tasks() {
        let results = json::parse(
            r#"{"results": [
                {"bench": "VA", "outcome": "timed-out", "provenance": "computed"},
                {"bench": "VA", "outcome": "ok", "provenance": "computed"}
            ]}"#,
        )
        .unwrap();
        let err = sweep_doc(
            &SystemConfig::paper_default(),
            InputSize::Small,
            Mode::DirectStore,
            &results,
        )
        .unwrap_err();
        assert!(err.contains("timed-out"), "{err}");
    }
}
