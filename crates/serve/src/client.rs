//! Client-side helpers for the job API: submit, poll, fetch, and
//! reconstruct the batch CLI's JSON document from served results.
//!
//! The reconstruction is the determinism contract made executable:
//! `dsserve submit` prints the *same bytes* `dsrun --format json`
//! prints for the same sweep, because served reports round-trip
//! through the lossless report codec and the sweep planner orders
//! tasks identically on both paths. The CI smoke gate `cmp`s the two.

use std::time::{Duration, Instant};

use ds_core::{Comparison, InputSize, Mode, SystemConfig};
use ds_runner::json::{self, Json};
use ds_runner::report::{comparison_to_json, report_from_json};
use ds_runner::{fnv1a, Runner};

use crate::http::{client_request, client_request_ext};

/// Default per-request client timeout.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// What `POST /jobs` answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitAnswer {
    /// The job was admitted.
    Accepted {
        /// Assigned job id.
        id: u64,
        /// Number of tasks the job expanded to.
        tasks: u64,
    },
    /// Admission control refused (429) — an explicit, expected
    /// saturation outcome, distinguished from transport errors.
    Rejected {
        /// The error message from the response body.
        message: String,
    },
}

/// How [`submit_with_retry`] behaves across attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (clamped to ≥ 1). Connect errors and 5xx
    /// responses are retried with jittered exponential backoff; other
    /// 4xx responses never are (the submission itself is wrong).
    pub attempts: u32,
    /// Backoff base: attempt `n` sleeps `base * 2^n` plus a seeded
    /// jitter of up to one base, so a fleet of retrying clients
    /// spreads out instead of stampeding.
    pub base: Duration,
    /// Also retry 429 (admission refusal), honoring `Retry-After`.
    /// Off by default: saturation is an *expected* answer — the CI
    /// saturation gate relies on seeing it immediately — so waiting
    /// out a busy server is opt-in (`dsserve submit --retry-busy`).
    pub retry_busy: bool,
    /// Jitter seed, for deterministic tests.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(200),
            retry_busy: false,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A single attempt: plain [`submit`] semantics.
    pub fn single() -> Self {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// SplitMix64 — the jitter mixer (same generator family the fault
/// injector uses; no external randomness, so tests are deterministic).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The backoff before retry attempt `n` (0-based): `base * 2^n` plus
/// up to one extra base of seeded jitter.
fn backoff(policy: &RetryPolicy, attempt: u32) -> Duration {
    let base_ms = policy.base.as_millis().max(1) as u64;
    let exp = base_ms.saturating_mul(1u64 << attempt.min(16));
    let jitter = splitmix64(policy.seed ^ u64::from(attempt) ^ base_ms) % base_ms;
    Duration::from_millis(exp.saturating_add(jitter))
}

/// Builds the `Idempotency-Key` for one logical submission: the body
/// fingerprint plus a per-invocation nonce. Every *retry inside one
/// [`submit_with_retry`] call* reuses the key (so an ambiguous
/// failure cannot double-submit), while every *fresh invocation* gets
/// a new nonce (so deliberately resubmitting the same sweep — as the
/// CI cache gate does — still creates a new job).
fn idempotency_key(body: &str) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64 ^ d.as_secs());
    let nonce = splitmix64(
        nanos ^ (u64::from(std::process::id()) << 32) ^ COUNTER.fetch_add(1, Ordering::Relaxed),
    );
    format!("{:016x}-{nonce:016x}", fnv1a(body.as_bytes()))
}

/// Submits `body` to `url`.
///
/// # Errors
///
/// Transport failures and non-200/429 statuses (a 400 means the
/// submission itself is malformed).
pub fn submit(url: &str, body: &str) -> Result<SubmitAnswer, String> {
    submit_with_retry(url, body, &RetryPolicy::single())
}

/// [`submit`] with client-side resilience: one `Idempotency-Key` for
/// the whole logical submission (a retried request after an ambiguous
/// failure attaches to the job the first attempt created instead of
/// duplicating it), jittered exponential backoff on connect errors
/// and 5xx, and — when `policy.retry_busy` — on 429 too, honoring the
/// server's `Retry-After`.
///
/// # Errors
///
/// The last transport/5xx failure once attempts are exhausted, or any
/// non-retryable status (e.g. 400).
pub fn submit_with_retry(
    url: &str,
    body: &str,
    policy: &RetryPolicy,
) -> Result<SubmitAnswer, String> {
    let key = idempotency_key(body);
    let headers = [("Idempotency-Key".to_string(), key)];
    let attempts = policy.attempts.max(1);
    let mut last_err = String::new();
    for attempt in 0..attempts {
        let last = attempt + 1 == attempts;
        match client_request_ext(url, "POST", "/jobs", Some(body), &headers, CLIENT_TIMEOUT) {
            Ok((200, text, _)) => {
                let doc = json::parse(&text).map_err(|e| format!("bad submit response: {e}"))?;
                let id = doc
                    .get("job")
                    .and_then(Json::as_u64)
                    .ok_or("submit response missing \"job\"")?;
                let tasks = doc.get("tasks").and_then(Json::as_u64).unwrap_or(0);
                return Ok(SubmitAnswer::Accepted { id, tasks });
            }
            Ok((429, text, response_headers)) => {
                let message = json::parse(&text)
                    .ok()
                    .as_ref()
                    .and_then(|d| d.get("error").and_then(Json::as_str).map(str::to_string))
                    .unwrap_or_else(|| "queue full".to_string());
                if !policy.retry_busy || last {
                    return Ok(SubmitAnswer::Rejected { message });
                }
                // Honor Retry-After when it outlasts our own backoff.
                let retry_after = response_headers
                    .iter()
                    .find(|(name, _)| name == "retry-after")
                    .and_then(|(_, value)| value.parse::<u64>().ok())
                    .map_or(Duration::ZERO, Duration::from_secs);
                last_err = format!("busy: {message}");
                std::thread::sleep(backoff(policy, attempt).max(retry_after));
            }
            Ok((status, text, _)) if status >= 500 => {
                last_err = format!("POST /jobs answered {status}: {text}");
                if last {
                    break;
                }
                std::thread::sleep(backoff(policy, attempt));
            }
            Ok((status, text, _)) => {
                let doc = json::parse(&text).ok();
                return Err(format!(
                    "POST /jobs answered {status}: {}",
                    doc.as_ref()
                        .and_then(|d| d.get("error").and_then(Json::as_str))
                        .unwrap_or(&text)
                ));
            }
            Err(e) => {
                last_err = e;
                if last {
                    break;
                }
                std::thread::sleep(backoff(policy, attempt));
            }
        }
    }
    Err(format!(
        "submit failed after {attempts} attempt(s): {last_err}"
    ))
}

/// Builds the sweep submission body `dsserve submit` sends.
pub fn sweep_body(codes: Option<&[String]>, input: InputSize, ds_mode: Mode) -> String {
    sweep_body_pulsed(codes, input, ds_mode, None)
}

/// Like [`sweep_body`], optionally asking for ds-pulse telemetry at
/// `pulse` cycles per window — the served reports then carry the time
/// series and the job's `/events` stream carries live `pulse-window`
/// lines (a pulsed document is a superset of the batch one, so the
/// byte-identity contract applies to pulse-free submissions only).
pub fn sweep_body_pulsed(
    codes: Option<&[String]>,
    input: InputSize,
    ds_mode: Mode,
    pulse: Option<u64>,
) -> String {
    let mut sweep = vec![
        ("input".to_string(), Json::Str(input.to_string())),
        ("mode".to_string(), Json::Str(ds_mode.to_string())),
    ];
    if let Some(codes) = codes {
        sweep.push((
            "bench".to_string(),
            Json::Arr(codes.iter().map(|c| Json::Str(c.clone())).collect()),
        ));
    }
    let mut body = vec![("sweep".to_string(), Json::Obj(sweep))];
    if let Some(window) = pulse {
        body.push(("pulse".to_string(), Json::Int(window)));
    }
    Json::Obj(body).pretty()
}

/// Polls `GET /jobs/<id>` until the job is done; returns the final
/// status document.
///
/// # Errors
///
/// Transport failures, non-200 answers, or `timeout` elapsing first.
pub fn wait_done(url: &str, id: u64, timeout: Duration) -> Result<Json, String> {
    let deadline = Instant::now() + timeout;
    let mut poll = Duration::from_millis(20);
    loop {
        let (status, text) =
            client_request(url, "GET", &format!("/jobs/{id}"), None, CLIENT_TIMEOUT)?;
        if status != 200 {
            return Err(format!("GET /jobs/{id} answered {status}: {text}"));
        }
        let doc = json::parse(&text).map_err(|e| format!("bad status response: {e}"))?;
        if doc.get("state").and_then(Json::as_str) == Some("done") {
            return Ok(doc);
        }
        if Instant::now() >= deadline {
            return Err(format!("job {id} not done within {timeout:?}"));
        }
        std::thread::sleep(poll);
        // Back off to spare a busy server; cap well under human patience.
        poll = (poll * 2).min(Duration::from_millis(500));
    }
}

/// Tails `GET /jobs/<id>/events`: connects, then calls `on_line` for
/// every NDJSON event line as it arrives, until the server closes the
/// stream (job done or service shutdown). Returns the HTTP status.
///
/// # Errors
///
/// Transport failures, a bad status line, or a quiet stream
/// outliving the read timeout (the server heartbeats ~10s, so the
/// 60-second timeout only fires on a dead server).
pub fn watch(url: &str, id: u64, mut on_line: impl FnMut(&str)) -> Result<u16, String> {
    use std::io::{BufRead, BufReader, Write};

    let host = crate::http::host_of(url)?;
    let mut stream =
        std::net::TcpStream::connect(&host).map_err(|e| format!("connect {host}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
    let path = format!("/jobs/{id}/events");
    let request = format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send {path}: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read {path}: {e}"))?;
        if n == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    if status != 200 {
        // The body is a one-shot JSON error; surface it as a line.
        let mut body = String::new();
        use std::io::Read as _;
        let _ = reader.read_to_string(&mut body);
        if !body.trim().is_empty() {
            on_line(body.trim());
        }
        return Ok(status);
    }
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break, // server closed: stream over
            Ok(_) => {
                let line = line.trim_end();
                if !line.is_empty() {
                    on_line(line);
                }
            }
            Err(e) => return Err(format!("read {path}: {e}")),
        }
    }
    Ok(status)
}

/// Fetches `GET /jobs/<id>/results` as parsed JSON.
///
/// # Errors
///
/// Transport failures and non-200 answers.
pub fn fetch_results(url: &str, id: u64) -> Result<Json, String> {
    let (status, text) = client_request(
        url,
        "GET",
        &format!("/jobs/{id}/results"),
        None,
        CLIENT_TIMEOUT,
    )?;
    if status != 200 {
        return Err(format!("GET /jobs/{id}/results answered {status}: {text}"));
    }
    json::parse(&text).map_err(|e| format!("bad results response: {e}"))
}

/// A served sweep folded back into the batch CLI's shape.
#[derive(Debug)]
pub struct SweepOutput {
    /// The `dsrun --format json` document (without the trailing
    /// newline `println!` adds).
    pub doc: String,
    /// Per-task provenance tags, in task order.
    pub provenances: Vec<String>,
}

/// Folds a `/results` document for a sweep submission back into the
/// exact `dsrun --format json` output for the same sweep.
///
/// # Errors
///
/// Any non-ok/degraded task, malformed row, or odd row count — a
/// sweep is CCSM/direct-store *pairs* by construction.
pub fn sweep_doc(
    cfg: &SystemConfig,
    input: InputSize,
    ds_mode: Mode,
    results: &Json,
) -> Result<SweepOutput, String> {
    let rows = results
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("results response missing \"results\"")?;
    if rows.len() % 2 != 0 {
        return Err(format!("sweep produced an odd row count ({})", rows.len()));
    }
    let mut provenances = Vec::with_capacity(rows.len());
    let mut comparisons = Vec::with_capacity(rows.len() / 2);
    for pair in rows.chunks(2) {
        let mut reports = Vec::with_capacity(2);
        let mut code = String::new();
        for row in pair {
            code = row
                .get("bench")
                .and_then(Json::as_str)
                .ok_or("result row missing \"bench\"")?
                .to_string();
            let outcome = row
                .get("outcome")
                .and_then(Json::as_str)
                .unwrap_or("pending");
            if !matches!(outcome, "ok" | "degraded") {
                return Err(format!("task {code} ended {outcome}, not ok"));
            }
            provenances.push(
                row.get("provenance")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            );
            let report = row.get("report").ok_or("result row missing \"report\"")?;
            reports.push(report_from_json(report)?);
        }
        let direct_store = reports.pop().expect("pair has two reports");
        let ccsm = reports.pop().expect("pair has two reports");
        comparisons.push(Comparison {
            code,
            input,
            ccsm,
            direct_store,
        });
    }
    let doc = Json::Obj(vec![
        (
            "fingerprint".into(),
            Json::Str(format!("{:016x}", Runner::fingerprint(cfg))),
        ),
        ("mode".into(), Json::Str(ds_mode.to_string())),
        (
            "comparisons".into(),
            Json::Arr(comparisons.iter().map(comparison_to_json).collect()),
        ),
    ]);
    Ok(SweepOutput {
        doc: doc.pretty(),
        provenances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::io::{Read as _, Write as _};
    use std::net::TcpListener;

    /// A scripted one-shot responder: answers each accepted
    /// connection with the next canned (status, headers, body) and
    /// returns the raw requests it saw.
    fn scripted_server(
        responses: Vec<(u16, &'static str, &'static str)>,
    ) -> (String, std::thread::JoinHandle<Vec<String>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let url = format!("http://{}", listener.local_addr().unwrap());
        let handle = std::thread::spawn(move || {
            let mut seen = Vec::new();
            for (status, extra, body) in responses {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let mut request = String::new();
                loop {
                    let n = stream.read(&mut buf).unwrap();
                    request.push_str(&String::from_utf8_lossy(&buf[..n]));
                    // Our client sends Content-Length'd bodies with no
                    // trailing newline; header end is close enough for
                    // these tiny scripted exchanges.
                    if n == 0 || request.contains("\r\n\r\n") {
                        break;
                    }
                }
                seen.push(request);
                let reason = if status == 200 { "OK" } else { "Error" };
                let _ = write!(
                    stream,
                    "HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
                    body.len()
                );
            }
            seen
        });
        (url, handle)
    }

    fn fast_policy(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base: Duration::from_millis(1),
            retry_busy: false,
            seed: 7,
        }
    }

    #[test]
    fn retry_reuses_one_idempotency_key_across_a_500() {
        let (url, server) = scripted_server(vec![
            (500, "", "boom"),
            (200, "", "{\"job\":11,\"tasks\":2}"),
        ]);
        let answer = submit_with_retry(&url, "{}", &fast_policy(3)).unwrap();
        assert_eq!(answer, SubmitAnswer::Accepted { id: 11, tasks: 2 });
        let seen = server.join().unwrap();
        assert_eq!(seen.len(), 2);
        let key = |request: &str| {
            request
                .lines()
                .find_map(|l| l.strip_prefix("Idempotency-Key: "))
                .map(str::to_string)
                .expect("idempotency key header")
        };
        assert_eq!(key(&seen[0]), key(&seen[1]));
    }

    #[test]
    fn busy_is_not_retried_by_default() {
        let (url, server) =
            scripted_server(vec![(429, "Retry-After: 1\r\n", "{\"error\":\"full\"}")]);
        let answer = submit_with_retry(&url, "{}", &fast_policy(5)).unwrap();
        assert_eq!(
            answer,
            SubmitAnswer::Rejected {
                message: "full".to_string()
            }
        );
        assert_eq!(server.join().unwrap().len(), 1);
    }

    #[test]
    fn retry_busy_honors_retry_after_then_succeeds() {
        let (url, server) = scripted_server(vec![
            (429, "Retry-After: 0\r\n", "{\"error\":\"full\"}"),
            (200, "", "{\"job\":3,\"tasks\":1}"),
        ]);
        let mut policy = fast_policy(3);
        policy.retry_busy = true;
        let answer = submit_with_retry(&url, "{}", &policy).unwrap();
        assert_eq!(answer, SubmitAnswer::Accepted { id: 3, tasks: 1 });
        assert_eq!(server.join().unwrap().len(), 2);
    }

    #[test]
    fn exhausted_retries_report_the_last_error() {
        // Bind, note the port, drop: connecting now fails fast.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let err = submit_with_retry(&format!("http://{addr}"), "{}", &fast_policy(2)).unwrap_err();
        assert!(err.contains("after 2 attempt(s)"), "{err}");
    }

    #[test]
    fn malformed_submissions_fail_without_retry() {
        let (url, server) = scripted_server(vec![(400, "", "{\"error\":\"bad body\"}")]);
        let err = submit_with_retry(&url, "{}", &fast_policy(4)).unwrap_err();
        assert!(err.contains("400") && err.contains("bad body"), "{err}");
        assert_eq!(server.join().unwrap().len(), 1);
    }

    #[test]
    fn idempotency_keys_share_the_body_hash_but_differ_per_call() {
        let a = idempotency_key("{\"bench\":\"VA\"}");
        let b = idempotency_key("{\"bench\":\"VA\"}");
        assert_ne!(a, b);
        let prefix = |s: &str| s.split('-').next().unwrap().to_string();
        assert_eq!(prefix(&a), prefix(&b));
    }

    #[test]
    fn backoff_grows_and_stays_deterministic() {
        let policy = fast_policy(5);
        assert_eq!(backoff(&policy, 0), backoff(&policy, 0));
        assert!(backoff(&policy, 4) > backoff(&policy, 0));
    }

    #[test]
    fn sweep_body_has_the_documented_shape() {
        let body = sweep_body(
            Some(&["VA".to_string(), "MM".to_string()]),
            InputSize::Small,
            Mode::DirectStore,
        );
        let doc = json::parse(&body).unwrap();
        let sweep = doc.get("sweep").unwrap();
        assert_eq!(sweep.get("input").and_then(Json::as_str), Some("small"));
        assert_eq!(sweep.get("mode").and_then(Json::as_str), Some("DS"));
        assert_eq!(
            sweep.get("bench").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        // The API parser accepts its own client's body.
        let tasks = crate::api::parse_submission(body.as_bytes()).unwrap();
        assert_eq!(tasks.len(), 4, "two benchmarks, CCSM+DS each");
        assert!(tasks.iter().all(|t| t.pulse == 0), "pulse stays opt-in");
    }

    #[test]
    fn pulsed_sweep_body_round_trips_the_window() {
        let body = sweep_body_pulsed(
            Some(&["VA".to_string()]),
            InputSize::Small,
            Mode::DirectStore,
            Some(500),
        );
        let tasks = crate::api::parse_submission(body.as_bytes()).unwrap();
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().all(|t| t.pulse == 500));
        assert_ne!(
            tasks[0].key(),
            crate::api::parse_submission(
                sweep_body(
                    Some(&["VA".to_string()]),
                    InputSize::Small,
                    Mode::DirectStore
                )
                .as_bytes()
            )
            .unwrap()[0]
                .key(),
            "pulsed tasks must not alias pulse-free cache entries"
        );
    }

    #[test]
    fn sweep_doc_rejects_failed_tasks() {
        let results = json::parse(
            r#"{"results": [
                {"bench": "VA", "outcome": "timed-out", "provenance": "computed"},
                {"bench": "VA", "outcome": "ok", "provenance": "computed"}
            ]}"#,
        )
        .unwrap();
        let err = sweep_doc(
            &SystemConfig::paper_default(),
            InputSize::Small,
            Mode::DirectStore,
            &results,
        )
        .unwrap_err();
        assert!(err.contains("timed-out"), "{err}");
    }
}
