//! ds-anvil: the append-only job journal and crash recovery.
//!
//! The service keeps every job in memory (`crates/serve/src/jobs.rs`),
//! so before this module a crash or `kill -9` lost all in-flight and
//! queued jobs; only content-addressed results survived. The journal
//! closes that gap with the standard write-ahead discipline:
//!
//! * every accepted job appends a `job-submitted` record (the full
//!   task list plus the submission's idempotency key) before the
//!   submit response goes out, and workers append `task-started` /
//!   `task-done` / `job-done` records as work proceeds;
//! * on startup, [`Journal::open`] replays the journal and hands back
//!   every job without a `job-done` record so the server re-enqueues
//!   it under its original id — completed tasks rehydrate cheaply as
//!   [`ds_runner::SharedStore`] disk-cache hits, so recovery
//!   recomputes only what never finished;
//! * a torn final record (the signature of dying mid-append) is
//!   truncated away; a journal corrupt anywhere else is moved into
//!   the store's `quarantine/` directory for post-mortem inspection —
//!   either way the server still boots.
//!
//! The file is newline-delimited JSON (`journal.ndjson` under the
//! result-cache directory), one record per line, fsynced per append.
//! On open the survivors are compacted back down to just the
//! unfinished jobs' `job-submitted` records via the cache's
//! [`write_atomic`] machinery, so the journal never grows without
//! bound across restarts. Each journaled task carries its
//! [`TaskKey`] fingerprints; replay rebuilds the task and refuses the
//! journal (quarantine) if the rebuilt identity does not match — a
//! schema drift can never silently replay the wrong simulation.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ds_core::{FaultPlan, InputSize, Mode, SystemConfig};
use ds_runner::json::{self, Json};
use ds_runner::report::parse_input;
use ds_runner::store::write_atomic;
use ds_runner::{Task, TaskKey};

/// Journal file name under the result-cache directory.
pub const JOURNAL_FILE: &str = "journal.ndjson";

/// One job reconstructed from the journal that never reached
/// `job-done` — the unit of recovery.
#[derive(Debug, Clone)]
pub struct RecoveredJob {
    /// The job's original registry id (preserved across the restart
    /// so a client polling it keeps working).
    pub id: u64,
    /// The submission's idempotency key (empty when the client sent
    /// none) — restored so a retried submission still attaches.
    pub key: String,
    /// The full task list, rebuilt and identity-checked.
    pub tasks: Vec<Task>,
    /// Tasks with a `task-done` record before the crash. Informational:
    /// the whole job is re-enqueued and these rehydrate as store hits.
    pub completed: usize,
}

/// What [`Journal::open`] / [`Journal::peek`] found on disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Unfinished jobs in id order, ready to re-enqueue.
    pub jobs: Vec<RecoveredJob>,
    /// Records successfully replayed (any kind).
    pub records: u64,
    /// A partial final record was truncated away (the torn tail a
    /// mid-append crash leaves behind).
    pub torn_tail: bool,
    /// The journal was corrupt beyond its tail and was moved here
    /// (under the cache's `quarantine/` directory); recovery is empty.
    pub quarantined: Option<PathBuf>,
}

impl Recovery {
    /// Total tasks across recovered jobs.
    pub fn tasks(&self) -> usize {
        self.jobs.iter().map(|j| j.tasks.len()).sum()
    }

    /// Tasks that already had a `task-done` record (expected to
    /// rehydrate from the disk cache instead of recomputing).
    pub fn tasks_done(&self) -> usize {
        self.jobs.iter().map(|j| j.completed).sum()
    }
}

/// Counters for `/metrics` (`dsserve_journal_*`).
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalStats {
    /// Records appended by this process.
    pub appended: u64,
    /// Bytes appended by this process.
    pub bytes: u64,
    /// Append or fsync failures (the journal keeps going; durability
    /// degrades loudly, never silently wedges the service).
    pub errors: u64,
}

/// The append side of the journal: one fsynced NDJSON line per
/// record, serialized behind a mutex so concurrent appenders never
/// interleave bytes.
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    appended: AtomicU64,
    bytes: AtomicU64,
    errors: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("appended", &self.appended.load(Ordering::Relaxed))
            .finish()
    }
}

impl Journal {
    /// Opens (creating if needed) the journal under the result-cache
    /// directory `dir`, replaying whatever a previous process left
    /// behind: torn tails are truncated, a corrupt journal is
    /// quarantined, and the survivors are compacted down to the
    /// unfinished jobs' `job-submitted` records.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-open failures; a corrupt
    /// or torn journal is *not* an error (the server must still boot).
    pub fn open(dir: &Path) -> std::io::Result<(Journal, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let recovery = load(dir, &path, true);
        // Compact: rewrite only the unfinished jobs' submitted records
        // (atomically — a crash mid-compaction leaves the old journal).
        let mut compacted = String::new();
        for job in &recovery.jobs {
            compacted.push_str(&submitted_line(job.id, &job.key, &job.tasks));
            compacted.push('\n');
        }
        write_atomic(dir, &path, compacted.as_bytes())?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((
            Journal {
                path,
                file: Mutex::new(file),
                appended: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                errors: AtomicU64::new(0),
            },
            recovery,
        ))
    }

    /// Read-only replay of the journal under `dir`: what [`open`]
    /// would recover, without truncating, quarantining, or compacting
    /// anything. Used by the crash drill and the self-audit to inspect
    /// a dead server's journal.
    ///
    /// [`open`]: Journal::open
    pub fn peek(dir: &Path) -> Recovery {
        load(dir, &dir.join(JOURNAL_FILE), false)
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append counters for `/metrics`.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appended: self.appended.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }

    /// Appends one line + fsync, under the lock. Best-effort: a full
    /// disk degrades durability, it must not wedge the worker pool —
    /// failures are counted and reported on stderr once.
    fn append(&self, line: String) {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let write = file
            .write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.sync_data());
        drop(file);
        match write {
            Ok(()) => {
                self.appended.fetch_add(1, Ordering::Relaxed);
                self.bytes
                    .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
            }
            Err(e) => {
                if self.errors.fetch_add(1, Ordering::Relaxed) == 0 {
                    eprintln!(
                        "dsserve: journal append failed ({e}); durability degraded for {}",
                        self.path.display()
                    );
                }
            }
        }
    }

    /// Records an accepted job (before the submit response is sent).
    pub fn job_submitted(&self, id: u64, key: &str, tasks: &[Task]) {
        self.append(submitted_line(id, key, tasks));
    }

    /// Records a worker picking up task `idx` of job `id`.
    pub fn task_started(&self, id: u64, idx: usize) {
        self.append(record_line("task-started", id, Some(idx), None));
    }

    /// Records task `idx` of job `id` reaching a terminal outcome.
    pub fn task_done(&self, id: u64, idx: usize, outcome: &str) {
        self.append(record_line("task-done", id, Some(idx), Some(outcome)));
    }

    /// Records every task of job `id` having completed.
    pub fn job_done(&self, id: u64) {
        self.append(record_line("job-done", id, None, None));
    }
}

/// Moves a corrupt journal into `<dir>/quarantine/` (the same
/// convention the result store uses for corrupt cache files) so it
/// stops shadowing recovery while staying available for post-mortem
/// inspection.
fn quarantine(dir: &Path, path: &Path) -> Option<PathBuf> {
    let qdir = dir.join("quarantine");
    std::fs::create_dir_all(&qdir).ok()?;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dest = qdir.join(format!(
        "journal-{}-{}.ndjson",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::rename(path, &dest).ok()?;
    Some(dest)
}

#[derive(Debug)]
struct PendingJob {
    key: String,
    tasks: Vec<Task>,
    done: Vec<bool>,
    finished: bool,
}

/// Replays the journal at `path`. `mutate` enables the on-disk
/// repairs ([`Journal::open`]): truncating a torn tail and
/// quarantining a corrupt file. [`Journal::peek`] replays read-only.
fn load(dir: &Path, path: &Path, mutate: bool) -> Recovery {
    let mut recovery = Recovery::default();
    let Ok(mut file) = File::open(path) else {
        return recovery; // no journal yet: nothing to recover
    };
    let mut text = String::new();
    if file.read_to_string(&mut text).is_err() {
        // Unreadable (e.g. not UTF-8 after a hard crash): quarantine.
        drop(file);
        if mutate {
            recovery.quarantined = quarantine(dir, path);
        }
        return recovery;
    }
    drop(file);

    let mut jobs: std::collections::BTreeMap<u64, PendingJob> = std::collections::BTreeMap::new();
    let mut good_bytes = 0usize;
    let mut corrupt: Option<String> = None;
    let mut offsets = Vec::new(); // byte offset after each parsed line
    {
        let mut at = 0usize;
        for line in text.split_inclusive('\n') {
            at += line.len();
            if line.ends_with('\n') {
                offsets.push(at);
            }
        }
    }
    let complete_lines = offsets.len();
    for (n, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            if n < complete_lines {
                good_bytes = offsets[n];
            }
            continue;
        }
        let parsed = json::parse(trimmed)
            .map_err(|e| e.to_string())
            .and_then(|doc| apply_record(&doc, &mut jobs));
        match parsed {
            Ok(()) => {
                recovery.records += 1;
                if n < complete_lines {
                    good_bytes = offsets[n];
                } else {
                    // A parseable final fragment without its newline
                    // still counts as torn: the fsync that would have
                    // sealed it never happened... but its content is
                    // intact, so keep it and reseal on compaction.
                    good_bytes = text.len();
                }
            }
            Err(why) => {
                if n >= complete_lines {
                    // Torn tail: the final line never got its newline
                    // — the signature of a crash interrupting the
                    // append mid-record. Truncate it away and keep
                    // the prefix.
                    recovery.torn_tail = true;
                } else {
                    // A newline-sealed record that fails to parse or
                    // apply is corruption wherever it sits — a fully
                    // written final line included. Classifying it as
                    // torn would silently truncate real damage.
                    corrupt = Some(format!("record {}: {why}", n + 1));
                }
                break;
            }
        }
    }

    if let Some(why) = corrupt {
        if mutate {
            recovery.quarantined = quarantine(dir, path);
            eprintln!(
                "dsserve: journal corrupt ({why}); quarantined to {:?}, starting fresh",
                recovery.quarantined
            );
        } else {
            recovery.quarantined = Some(path.to_path_buf());
        }
        recovery.records = 0;
        return recovery;
    }
    if recovery.torn_tail && mutate {
        let file = OpenOptions::new().write(true).open(path);
        if let Ok(file) = file {
            let _ = file.set_len(good_bytes as u64);
            let _ = file.sync_data();
        }
    }

    recovery.jobs = jobs
        .into_iter()
        .filter(|(_, job)| !job.finished)
        .map(|(id, job)| RecoveredJob {
            id,
            key: job.key,
            completed: job.done.iter().filter(|d| **d).count(),
            tasks: job.tasks,
        })
        .collect();
    recovery
}

/// Applies one parsed record to the replay state.
///
/// # Errors
///
/// A message describing the structural problem — the caller treats a
/// failing interior record as corruption.
fn apply_record(
    doc: &Json,
    jobs: &mut std::collections::BTreeMap<u64, PendingJob>,
) -> Result<(), String> {
    let rec = doc
        .get("rec")
        .and_then(Json::as_str)
        .ok_or("missing \"rec\"")?;
    let id = doc
        .get("job")
        .and_then(Json::as_u64)
        .ok_or("missing \"job\"")?;
    match rec {
        "job-submitted" => {
            let key = doc
                .get("key")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            let rows = doc
                .get("tasks")
                .and_then(Json::as_arr)
                .ok_or("job-submitted without \"tasks\"")?;
            let tasks: Vec<Task> = rows
                .iter()
                .map(task_from_json)
                .collect::<Result<_, _>>()
                .map_err(|e| format!("job {id}: {e}"))?;
            if tasks.is_empty() {
                return Err(format!("job {id} submitted with no tasks"));
            }
            let done = vec![false; tasks.len()];
            if jobs
                .insert(
                    id,
                    PendingJob {
                        key,
                        tasks,
                        done,
                        finished: false,
                    },
                )
                .is_some()
            {
                return Err(format!("job {id} submitted twice"));
            }
        }
        "task-started" => {
            let job = jobs.get(&id).ok_or(format!("job {id} never submitted"))?;
            let idx = doc
                .get("task")
                .and_then(Json::as_u64)
                .ok_or("task-started without \"task\"")? as usize;
            if idx >= job.tasks.len() {
                return Err(format!("job {id} task {idx} out of range"));
            }
        }
        "task-done" => {
            let job = jobs
                .get_mut(&id)
                .ok_or(format!("job {id} never submitted"))?;
            let idx = doc
                .get("task")
                .and_then(Json::as_u64)
                .ok_or("task-done without \"task\"")? as usize;
            if idx >= job.done.len() {
                return Err(format!("job {id} task {idx} out of range"));
            }
            job.done[idx] = true;
        }
        "job-done" => {
            jobs.get_mut(&id)
                .ok_or(format!("job {id} never submitted"))?
                .finished = true;
        }
        other => return Err(format!("unknown record kind {other:?}")),
    }
    Ok(())
}

fn record_line(rec: &str, id: u64, idx: Option<usize>, outcome: Option<&str>) -> String {
    let mut fields = vec![
        ("rec".to_string(), Json::Str(rec.into())),
        ("job".to_string(), Json::Int(id)),
    ];
    if let Some(idx) = idx {
        fields.push(("task".into(), Json::Int(idx as u64)));
    }
    if let Some(outcome) = outcome {
        fields.push(("outcome".into(), Json::Str(outcome.into())));
    }
    Json::Obj(fields).compact()
}

fn submitted_line(id: u64, key: &str, tasks: &[Task]) -> String {
    Json::Obj(vec![
        ("rec".into(), Json::Str("job-submitted".into())),
        ("job".into(), Json::Int(id)),
        ("key".into(), Json::Str(key.into())),
        (
            "tasks".into(),
            Json::Arr(tasks.iter().map(task_to_json).collect()),
        ),
    ])
    .compact()
}

/// The scalar configuration knobs the submission API can override
/// (`crates/serve/src/api.rs`), journaled by value so replay rebuilds
/// the exact configuration. The [`TaskKey`] fingerprint check below
/// guarantees this list can never silently fall out of date: a config
/// that does not round-trip fails recovery loudly instead.
fn config_to_json(cfg: &SystemConfig) -> Json {
    Json::Obj(vec![
        ("sms".into(), Json::Int(cfg.sms as u64)),
        ("warps_per_sm".into(), Json::Int(cfg.warps_per_sm as u64)),
        (
            "store_buffer_entries".into(),
            Json::Int(cfg.store_buffer_entries as u64),
        ),
        (
            "store_drain_parallelism".into(),
            Json::Int(cfg.store_drain_parallelism as u64),
        ),
        ("tlb_entries".into(), Json::Int(cfg.tlb_entries as u64)),
        (
            "gpu_tlb_entries".into(),
            Json::Int(cfg.gpu_tlb_entries as u64),
        ),
        (
            "direct_hop_latency".into(),
            Json::Int(cfg.direct_hop_latency),
        ),
        ("coh_hop_latency".into(), Json::Int(cfg.coh_hop_latency)),
        ("gpu_l2_prefetch".into(), Json::Bool(cfg.gpu_l2_prefetch)),
        ("directory_filter".into(), Json::Bool(cfg.directory_filter)),
    ])
}

fn config_from_json(doc: Option<&Json>) -> Result<SystemConfig, String> {
    let mut cfg = SystemConfig::paper_default();
    let Some(doc) = doc else { return Ok(cfg) };
    let int = |key: &str| {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("config missing {key:?}"))
    };
    let flag = |key: &str| match doc.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("config missing boolean {key:?}")),
    };
    cfg.sms = int("sms")? as usize;
    cfg.warps_per_sm = int("warps_per_sm")? as usize;
    cfg.store_buffer_entries = int("store_buffer_entries")? as usize;
    cfg.store_drain_parallelism = int("store_drain_parallelism")? as usize;
    cfg.tlb_entries = int("tlb_entries")? as usize;
    cfg.gpu_tlb_entries = int("gpu_tlb_entries")? as usize;
    cfg.direct_hop_latency = int("direct_hop_latency")?;
    cfg.coh_hop_latency = int("coh_hop_latency")?;
    cfg.gpu_l2_prefetch = flag("gpu_l2_prefetch")?;
    cfg.directory_filter = flag("directory_filter")?;
    cfg.validate()?;
    Ok(cfg)
}

fn net_rates_to_json(rates: &ds_core::NetFaultRates) -> Json {
    Json::Arr(vec![
        Json::Int(rates.drop as u64),
        Json::Int(rates.dup as u64),
        Json::Int(rates.delay as u64),
        Json::Int(rates.delay_cycles),
    ])
}

fn net_rates_from_json(doc: Option<&Json>) -> Result<ds_core::NetFaultRates, String> {
    let arr = doc
        .and_then(Json::as_arr)
        .filter(|a| a.len() == 4)
        .ok_or("net fault rates must be a 4-element array")?;
    let val = |i: usize| arr[i].as_u64().ok_or("net fault rate must be an integer");
    Ok(ds_core::NetFaultRates {
        drop: val(0)? as u16,
        dup: val(1)? as u16,
        delay: val(2)? as u16,
        delay_cycles: val(3)?,
    })
}

fn faults_to_json(plan: &FaultPlan) -> Json {
    if !plan.is_active() {
        return Json::Null;
    }
    Json::Obj(vec![
        ("seed".into(), Json::Int(plan.seed)),
        ("coh_net".into(), net_rates_to_json(&plan.coh_net)),
        ("direct_net".into(), net_rates_to_json(&plan.direct_net)),
        ("gpu_net".into(), net_rates_to_json(&plan.gpu_net)),
        (
            "dram_stall_rate".into(),
            Json::Int(plan.dram_stall_rate as u64),
        ),
        (
            "dram_stall_cycles".into(),
            Json::Int(plan.dram_stall_cycles),
        ),
        (
            "stuck_banks".into(),
            Json::Arr(
                plan.stuck_banks
                    .iter()
                    .map(|b| Json::Int(*b as u64))
                    .collect(),
            ),
        ),
        ("ack_timeout".into(), Json::Int(plan.ack_timeout)),
        ("max_retries".into(), Json::Int(plan.max_retries as u64)),
        ("watchdog_gap".into(), Json::Int(plan.watchdog_gap)),
        (
            "livelock_retries".into(),
            Json::Int(plan.livelock_retries as u64),
        ),
    ])
}

fn faults_from_json(doc: Option<&Json>) -> Result<FaultPlan, String> {
    let Some(doc) = doc else {
        return Ok(FaultPlan::default());
    };
    if matches!(doc, Json::Null) {
        return Ok(FaultPlan::default());
    }
    let int = |key: &str| {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("faults missing {key:?}"))
    };
    let stuck = doc
        .get("stuck_banks")
        .and_then(Json::as_arr)
        .ok_or("faults missing \"stuck_banks\"")?
        .iter()
        .map(|b| b.as_u64().map(|v| v as u16).ok_or("bad stuck bank"))
        .collect::<Result<Vec<u16>, _>>()?;
    Ok(FaultPlan {
        seed: int("seed")?,
        coh_net: net_rates_from_json(doc.get("coh_net"))?,
        direct_net: net_rates_from_json(doc.get("direct_net"))?,
        gpu_net: net_rates_from_json(doc.get("gpu_net"))?,
        dram_stall_rate: int("dram_stall_rate")? as u16,
        dram_stall_cycles: int("dram_stall_cycles")?,
        stuck_banks: stuck,
        ack_timeout: int("ack_timeout")?,
        max_retries: int("max_retries")? as u32,
        watchdog_gap: int("watchdog_gap")?,
        livelock_retries: int("livelock_retries")? as u32,
    })
}

/// Serializes one task for the `job-submitted` record, embedding its
/// [`TaskKey`] fingerprints so replay can prove the round-trip exact.
pub fn task_to_json(task: &Task) -> Json {
    let key = task.key();
    Json::Obj(vec![
        ("bench".into(), Json::Str(task.code.clone())),
        ("input".into(), Json::Str(task.input.to_string())),
        ("mode".into(), Json::Str(task.mode.to_string())),
        ("pulse".into(), Json::Int(task.pulse)),
        ("config".into(), config_to_json(&task.cfg)),
        ("faults".into(), faults_to_json(&task.faults)),
        ("fp".into(), Json::Str(format!("{:016x}", key.fingerprint))),
        (
            "fault_fp".into(),
            Json::Str(format!("{:016x}", key.fault_fp)),
        ),
    ])
}

fn parse_mode_name(name: &str) -> Option<Mode> {
    match name {
        "ccsm" | "CCSM" => Some(Mode::Ccsm),
        "ds" | "DS" => Some(Mode::DirectStore),
        "ds-only" | "DS-only" => Some(Mode::DirectStoreOnly),
        _ => None,
    }
}

/// Rebuilds a task from its journaled form and verifies its identity:
/// the rebuilt [`TaskKey`] fingerprints must match the journaled
/// ones, or the record is corrupt.
///
/// # Errors
///
/// A message naming the field that failed; the journal loader treats
/// it as corruption.
pub fn task_from_json(doc: &Json) -> Result<Task, String> {
    let text = |key: &str| {
        doc.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("task missing {key:?}"))
    };
    let code = text("bench")?.to_string();
    let input: InputSize =
        parse_input(text("input")?).ok_or_else(|| format!("bad input {:?}", text("input")))?;
    let mode =
        parse_mode_name(text("mode")?).ok_or_else(|| format!("bad mode {:?}", text("mode")))?;
    let pulse = doc
        .get("pulse")
        .and_then(Json::as_u64)
        .ok_or("task missing \"pulse\"")?;
    let cfg = config_from_json(doc.get("config"))?;
    let faults = faults_from_json(doc.get("faults"))?;
    let task = Task {
        cfg,
        code,
        input,
        mode,
        faults,
        pulse,
    };
    let key: TaskKey = task.key();
    let want_fp = u64::from_str_radix(text("fp")?, 16).map_err(|_| "bad fp".to_string())?;
    let want_fault =
        u64::from_str_radix(text("fault_fp")?, 16).map_err(|_| "bad fault_fp".to_string())?;
    if key.fingerprint != want_fp {
        return Err(format!(
            "config fingerprint mismatch: rebuilt {:016x}, journaled {want_fp:016x}",
            key.fingerprint
        ));
    }
    if key.fault_fp != want_fault {
        return Err(format!(
            "fault fingerprint mismatch: rebuilt {:016x}, journaled {want_fault:016x}",
            key.fault_fp
        ));
    }
    Ok(task)
}

/// Compares a rebuilt task list against the original by [`TaskKey`].
pub fn keys_match(a: &[Task], b: &[Task]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.key() == y.key())
}

#[allow(clippy::unwrap_used)]
#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ds-anvil-{}-{name}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_tasks() -> Vec<Task> {
        let mut cfg = SystemConfig::paper_default();
        cfg.sms = 8;
        cfg.gpu_l2_prefetch = true;
        let plain = Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm);
        let faulted = Task::new(&cfg, "MM", InputSize::Big, Mode::DirectStore)
            .with_faults(FaultPlan {
                seed: 9,
                dram_stall_rate: 64,
                dram_stall_cycles: 500,
                stuck_banks: vec![3],
                ..FaultPlan::default()
            })
            .with_pulse(1000);
        vec![plain, faulted]
    }

    #[test]
    fn tasks_round_trip_with_identity_check() {
        for task in sample_tasks() {
            let back = task_from_json(&task_to_json(&task)).unwrap();
            assert_eq!(back.key(), task.key());
        }
    }

    #[test]
    fn tampered_config_fails_the_fingerprint_check() {
        let doc = task_to_json(&sample_tasks()[0]).compact();
        let tampered = doc.replace("\"sms\":8", "\"sms\":4");
        assert_ne!(doc, tampered, "tamper target present");
        let err = task_from_json(&json::parse(&tampered).unwrap()).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn open_replays_unfinished_jobs_and_compacts() {
        let dir = tmp("replay");
        let tasks = sample_tasks();
        {
            let (journal, recovery) = Journal::open(&dir).unwrap();
            assert!(recovery.jobs.is_empty());
            journal.job_submitted(3, "key-a", &tasks);
            journal.task_started(3, 0);
            journal.task_done(3, 0, "ok");
            journal.job_submitted(4, "", &tasks[..1]);
            journal.task_started(4, 0);
            journal.task_done(4, 0, "ok");
            journal.job_done(4);
            assert_eq!(journal.stats().appended, 7);
        }
        let (_journal, recovery) = Journal::open(&dir).unwrap();
        assert_eq!(recovery.jobs.len(), 1, "job 4 finished, job 3 did not");
        let job = &recovery.jobs[0];
        assert_eq!((job.id, job.key.as_str(), job.completed), (3, "key-a", 1));
        assert!(keys_match(&job.tasks, &tasks));
        // Compaction rewrote just the unfinished submission.
        let text = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"job-submitted\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp("torn");
        {
            let (journal, _) = Journal::open(&dir).unwrap();
            journal.job_submitted(1, "", &sample_tasks()[..1]);
        }
        // A crash mid-append leaves a partial final record.
        let path = dir.join(JOURNAL_FILE);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"{\"rec\":\"task-do").unwrap();
        drop(file);
        let (_journal, recovery) = Journal::open(&dir).unwrap();
        assert!(recovery.torn_tail, "partial tail detected");
        assert!(recovery.quarantined.is_none());
        assert_eq!(recovery.jobs.len(), 1);
        // The compacted journal parses cleanly end to end.
        let again = Journal::peek(&dir);
        assert!(!again.torn_tail);
        assert_eq!(again.jobs.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corruption_quarantines_and_boots_fresh() {
        let dir = tmp("corrupt");
        std::fs::write(
            dir.join(JOURNAL_FILE),
            "not json at all\n{\"rec\":\"job-done\",\"job\":9}\n",
        )
        .unwrap();
        let (_journal, recovery) = Journal::open(&dir).unwrap();
        let quarantined = recovery.quarantined.expect("journal quarantined");
        assert!(quarantined.exists());
        assert!(quarantined.starts_with(dir.join("quarantine")));
        assert!(recovery.jobs.is_empty());
        // The replacement journal is usable.
        let text = std::fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert!(text.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_for_unknown_jobs_are_corruption() {
        let dir = tmp("unknown");
        std::fs::write(
            dir.join(JOURNAL_FILE),
            "{\"rec\":\"task-done\",\"job\":5,\"task\":0,\"outcome\":\"ok\"}\n",
        )
        .unwrap();
        // The record is fully written and newline-sealed, so its
        // invalidity is corruption even on the final line — torn-tail
        // handling is reserved for records the crash left unsealed.
        let recovery = Journal::peek(&dir);
        assert!(!recovery.torn_tail);
        assert!(recovery.quarantined.is_some());
        assert!(recovery.jobs.is_empty());
        // `open` moves it into quarantine and boots fresh.
        let (_journal, recovery) = Journal::open(&dir).unwrap();
        let quarantined = recovery.quarantined.expect("quarantined");
        assert!(quarantined.starts_with(dir.join("quarantine")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsealed_invalid_final_record_is_a_torn_tail() {
        let dir = tmp("unsealed");
        {
            let (journal, _) = Journal::open(&dir).unwrap();
            journal.job_submitted(1, "", &sample_tasks()[..1]);
        }
        // The same semantically-invalid record, but missing its
        // newline: the append never finished, so this *is* a torn
        // tail — truncated, not quarantined.
        let mut file = OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        file.write_all(b"{\"rec\":\"task-done\",\"job\":5,\"task\":0,\"outcome\":\"ok\"}")
            .unwrap();
        drop(file);
        let (_journal, recovery) = Journal::open(&dir).unwrap();
        assert!(recovery.torn_tail);
        assert!(recovery.quarantined.is_none());
        assert_eq!(recovery.jobs.len(), 1, "the sealed prefix survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appenders_never_interleave() {
        let dir = tmp("concurrent");
        let (journal, _) = Journal::open(&dir).unwrap();
        let tasks = sample_tasks();
        journal.job_submitted(1, "", &tasks[..1]);
        let journal = std::sync::Arc::new(journal);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let journal = std::sync::Arc::clone(&journal);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        journal.task_started(1, 0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(journal.stats().appended, 401);
        assert_eq!(journal.stats().errors, 0);
        let recovery = Journal::peek(&dir);
        assert!(!recovery.torn_tail);
        assert!(recovery.quarantined.is_none());
        assert_eq!(recovery.records, 401, "every line parses back");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
