//! The long-running service: shared state, the worker pool, and the
//! connection loop.
//!
//! Three thread families cooperate around [`ServeState`]:
//!
//! * the **accept loop** hands TCP connections to a small pool of
//!   **HTTP handlers** over a channel;
//! * handlers parse requests, run [`crate::api::handle`], and write
//!   responses — submissions only *enqueue* (admission control keeps
//!   that O(1)), so handler latency stays flat under simulation load;
//! * **workers** (sized like `ds-runner`: `--workers` /
//!   `DS_RUNNER_JOBS` / available parallelism) drain the job queue
//!   through the [`SharedStore`], so identical tasks across jobs and
//!   users are computed once and every computation rides the hardened
//!   `run_tasks_outcomes` machinery (panic isolation, wall-clock
//!   timeouts, degradation accounting).
//!
//! Shutdown (`POST /shutdown` or [`Server::begin_shutdown`]) stops
//! admission, abandons queued-but-unstarted work, lets in-flight
//! simulations finish, and joins every thread — a saturated or
//! half-drained service exits cleanly instead of hanging.

use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use ds_probe::pulse::{ctr, gauge};
use ds_probe::scope::{self, SpanKind, SpanRecord};
use ds_probe::{PulseSeries, ServiceMetrics};
use ds_runner::json::Json;
use ds_runner::shared::SharedStore;
use ds_runner::{default_jobs, Runner, Task, TaskOutcome};

use crate::http::{read_request, write_response, Request, Response};
use crate::jobs::{JobQueue, JobRecord, TaskResult, WorkItem};
use crate::journal::Journal;
use ds_runner::shared::Provenance;

/// Shape of the per-request log line `--log-format` selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Human-oriented single line.
    Text,
    /// One compact JSON object per line.
    Json,
}

impl LogFormat {
    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Option<LogFormat> {
        match name {
            "text" => Some(LogFormat::Text),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Simulation worker threads (default: `DS_RUNNER_JOBS` or the
    /// machine's available parallelism, like `ds-runner`).
    pub workers: usize,
    /// HTTP handler threads.
    pub handlers: usize,
    /// Admission bound: maximum open (accepted, unfinished) jobs.
    pub queue_limit: usize,
    /// Per-task wall-clock budget, forwarded to the runner.
    pub task_timeout: Option<Duration>,
    /// On-disk result-cache directory (`results/` by convention);
    /// `None` keeps the store memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Log one line per handled request to stderr.
    pub verbose: bool,
    /// Shape of that request log line.
    pub log_format: LogFormat,
    /// Heartbeat cadence on a quiet `/jobs/<id>/events` stream — how
    /// long a connection stays silent before a `heartbeat` line keeps
    /// it visibly alive (and flushes out a gone client). Tests
    /// compress this to exercise the heartbeat path quickly.
    pub heartbeat: Duration,
    /// ds-anvil: write the job journal under the cache directory and
    /// replay it on startup. On by default; no effect without a cache
    /// directory (a memory-only store has nowhere durable to recover
    /// results from anyway).
    pub journal: bool,
    /// Crash drill: `abort()` the process (the in-process stand-in
    /// for `kill -9`) right after this many task completions have
    /// been journaled. `dsserve drill` uses it to die at a seeded
    /// point mid-sweep.
    pub crash_after_tasks: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: default_jobs(),
            handlers: 4,
            queue_limit: 64,
            task_timeout: None,
            cache_dir: None,
            verbose: false,
            log_format: LogFormat::Text,
            heartbeat: Duration::from_secs(10),
            journal: true,
            crash_after_tasks: None,
        }
    }
}

/// What startup journal replay found — frozen at boot for `/metrics`
/// and `/health` (the live countdown is [`ServeState::recovering`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Unfinished jobs re-enqueued from the journal.
    pub jobs: usize,
    /// Tasks across those jobs.
    pub tasks: usize,
    /// Of those, tasks that had already completed before the crash
    /// (expected to rehydrate as disk-cache hits, not recompute).
    pub tasks_done: usize,
    /// A torn final record was truncated away.
    pub torn_tail: bool,
    /// The journal was corrupt and quarantined.
    pub quarantined: bool,
}

/// Last-window ds-pulse gauges from the most recently completed pulsed
/// task — what `/metrics` exposes so a scraper sees live simulation
/// telemetry, not just service load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulseGauges {
    /// Final window length in cycles (after any coalescing).
    pub window: u64,
    /// Windows in the series.
    pub windows: u64,
    /// Event-queue depth gauge in the last window.
    pub queue_depth: u64,
    /// NoC messages (coherence + direct + GPU) delivered in the last
    /// window.
    pub noc_msgs: u64,
    /// Push retries in the last window.
    pub retries: u64,
    /// Anomalies the run's detectors flagged, in total.
    pub anomalies: u64,
}

impl PulseGauges {
    /// Summarizes a finished series (`None` when it has no windows).
    pub fn from_series(series: &PulseSeries) -> Option<PulseGauges> {
        let last = series.len().checked_sub(1)?;
        let (start, end) = series.window_bounds(last);
        let noc = series.counter(ctr::COH_MSGS)[last]
            + series.counter(ctr::DIRECT_MSGS)[last]
            + series.counter(ctr::GPU_MSGS)[last];
        Some(PulseGauges {
            window: end - start,
            windows: series.len() as u64,
            queue_depth: series.gauge(gauge::QUEUE_DEPTH)[last],
            noc_msgs: noc,
            retries: series.counter(ctr::PUSHES_RETRIED)[last],
            anomalies: series.anomalies.len() as u64,
        })
    }
}

/// Everything handlers and workers share.
pub struct ServeState {
    /// The concurrency-safe content-addressed result store.
    pub store: SharedStore,
    /// The bounded job queue and registry.
    pub queue: JobQueue,
    /// Service load metrics behind one lock.
    pub metrics: Mutex<ServiceMetrics>,
    /// Last-window pulse gauges (see [`PulseGauges`]); `None` until a
    /// pulsed task completes.
    pulse: Mutex<Option<PulseGauges>>,
    /// The options the service was started with.
    pub options: ServeOptions,
    /// Server start time, for uptime reporting.
    pub started: Instant,
    /// The ds-anvil job journal; `Some` when journaling is enabled
    /// and the store has a cache directory.
    pub journal: Option<Journal>,
    /// What startup replay recovered (frozen at boot).
    pub recovery: RecoveryReport,
    /// Recovered jobs not yet finished — `/health` readiness drops
    /// out of `recovering` once this reaches zero.
    recovering: AtomicUsize,
    /// Task completions in this process, for `--crash-after-tasks`.
    tasks_done: AtomicU64,
    shutdown: AtomicBool,
    /// Bound address, set by [`Server::start`]; the `/shutdown`
    /// handler needs it to poke the accept loop awake.
    addr: std::sync::OnceLock<std::net::SocketAddr>,
}

impl ServeState {
    /// Builds the shared state for `options`.
    pub fn new(options: ServeOptions) -> Arc<Self> {
        let store = match &options.cache_dir {
            Some(dir) => SharedStore::with_disk(dir.clone()),
            None => SharedStore::new(),
        };
        let queue = JobQueue::new(options.queue_limit);
        // ds-anvil: open the journal and re-enqueue every job a
        // previous process accepted but never finished. Completed
        // tasks rehydrate as disk-cache hits, so replay recomputes
        // only what never finished.
        let mut journal = None;
        let mut recovery = RecoveryReport::default();
        if options.journal {
            if let Some(dir) = &options.cache_dir {
                match Journal::open(dir) {
                    Ok((j, found)) => {
                        recovery = RecoveryReport {
                            jobs: found.jobs.len(),
                            tasks: found.tasks(),
                            tasks_done: found.tasks_done(),
                            torn_tail: found.torn_tail,
                            quarantined: found.quarantined.is_some(),
                        };
                        for job in found.jobs {
                            queue.restore(job.id, &job.key, job.tasks, 0);
                        }
                        journal = Some(j);
                    }
                    Err(e) => {
                        eprintln!("dsserve: journal disabled ({e}); jobs are not durable")
                    }
                }
            }
        }
        Arc::new(ServeState {
            store,
            queue,
            metrics: Mutex::new(ServiceMetrics::new()),
            pulse: Mutex::new(None),
            options,
            started: Instant::now(),
            journal,
            recovering: AtomicUsize::new(recovery.jobs),
            recovery,
            tasks_done: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            addr: std::sync::OnceLock::new(),
        })
    }

    /// Recovered jobs still in flight; `0` once replayed work has
    /// drained (readiness).
    pub fn recovering(&self) -> usize {
        self.recovering.load(Ordering::SeqCst)
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Runs `f` on the metrics under the lock.
    pub fn with_metrics<T>(&self, f: impl FnOnce(&mut ServiceMetrics) -> T) -> T {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut metrics)
    }

    /// Microseconds since the service started — the clock every
    /// service span and telemetry event is stamped with.
    pub fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Records a completed pulsed run's last-window gauges for
    /// `/metrics`.
    pub fn record_pulse(&self, series: &PulseSeries) {
        if let Some(gauges) = PulseGauges::from_series(series) {
            *self.pulse.lock().unwrap_or_else(|e| e.into_inner()) = Some(gauges);
        }
    }

    /// The most recent pulsed task's last-window gauges, if any task
    /// has run with pulse telemetry yet.
    pub fn pulse_gauges(&self) -> Option<PulseGauges> {
        *self.pulse.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Computes (or serves from the shared store) one task, riding
    /// the hardened one-shot runner: panic isolation, optional
    /// wall-clock timeout, degradation classification. The returned
    /// result carries `store-lookup` / `sim-run` spans parented on
    /// `task_span` (the worker adds the `task` and `queue-wait`
    /// spans, which only it can time).
    pub fn run_task(&self, task: &Task, task_span: u64) -> TaskResult {
        let timeout = self.options.task_timeout;
        let lookup_start = self.now_us();
        // Filled inside the compute closure; stays `None` on a store
        // hit or when this lookup coalesced onto another computation.
        let sim_interval: Mutex<Option<(u64, u64)>> = Mutex::new(None);
        let (outcome, provenance) = self.store.get_or_compute(task, || {
            let sim_start = self.now_us();
            let mut runner = Runner::new().jobs(1).progress(false);
            if let Some(limit) = timeout {
                runner = runner.task_timeout(limit);
            }
            let outcome = runner
                .run_tasks_outcomes(std::slice::from_ref(task))
                .pop()
                .unwrap_or(TaskOutcome::Failed("runner returned no outcome".into()));
            *sim_interval.lock().unwrap_or_else(|e| e.into_inner()) =
                Some((sim_start, self.now_us()));
            outcome
        });
        let done = self.now_us();
        let sim = *sim_interval.lock().unwrap_or_else(|e| e.into_inner());
        let mut spans = Vec::new();
        // The lookup span ends where the simulation began (a miss) or
        // where the store answered (a hit / coalesced wait).
        spans.push(SpanRecord {
            id: scope::next_span_id(),
            parent: task_span,
            kind: SpanKind::StoreLookup,
            label: crate::api::provenance_name(provenance).to_string(),
            start_us: lookup_start,
            end_us: sim.map_or(done, |(start, _)| start),
        });
        if let Some((start, end)) = sim {
            spans.push(SpanRecord {
                id: scope::next_span_id(),
                parent: task_span,
                kind: SpanKind::SimRun,
                label: format!("{} {} {}", task.code, task.input, task.mode),
                start_us: start,
                end_us: end,
            });
        }
        TaskResult {
            outcome,
            provenance,
            spans,
        }
    }
}

/// Renders one telemetry event line (compact JSON).
fn event_line(fields: Vec<(String, Json)>) -> String {
    Json::Obj(fields).compact()
}

/// The span-open event for `span`, shared by workers and the submit
/// handler.
pub(crate) fn span_open_event(span: &SpanRecord, job: u64, extra: Vec<(String, Json)>) -> String {
    let mut fields = vec![
        ("event".into(), Json::Str("span-open".into())),
        ("span".into(), Json::Int(span.id)),
        ("parent".into(), Json::Int(span.parent)),
        ("kind".into(), Json::Str(span.kind.name().into())),
        ("label".into(), Json::Str(span.label.clone())),
        ("t_us".into(), Json::Int(span.start_us)),
        ("job".into(), Json::Int(job)),
    ];
    fields.extend(extra);
    event_line(fields)
}

/// The matching span-close event.
pub(crate) fn span_close_event(span: &SpanRecord, job: u64) -> String {
    event_line(vec![
        ("event".into(), Json::Str("span-close".into())),
        ("span".into(), Json::Int(span.id)),
        ("kind".into(), Json::Str(span.kind.name().into())),
        ("t_us".into(), Json::Int(span.end_us)),
        ("job".into(), Json::Int(job)),
    ])
}

/// The number of `pulse-window` lines one task contributes to the
/// event stream at most: a long run's series is downsampled (adjacent
/// windows merged) so live telemetry stays bounded no matter how many
/// cycles the simulation ran.
pub const PULSE_STREAM_WINDOWS: usize = 64;

/// Emits one completed pulsed task's telemetry onto the job's event
/// log: up to [`PULSE_STREAM_WINDOWS`] `pulse-window` lines (window
/// bounds plus the counters `dsserve watch` sparklines want) followed
/// by one `pulse-anomaly` line per detector hit.
fn publish_pulse_events(job: &JobRecord, idx: usize, series: &PulseSeries, done_us: u64) {
    let view = series.downsampled(PULSE_STREAM_WINDOWS);
    for w in 0..view.len() {
        let (start, end) = view.window_bounds(w);
        let noc = view.counter(ctr::COH_MSGS)[w]
            + view.counter(ctr::DIRECT_MSGS)[w]
            + view.counter(ctr::GPU_MSGS)[w];
        job.push_event(event_line(vec![
            ("event".into(), Json::Str("pulse-window".into())),
            ("job".into(), Json::Int(job.id)),
            ("task".into(), Json::Int(idx as u64)),
            ("start".into(), Json::Int(start)),
            ("end".into(), Json::Int(end)),
            ("sm_ops".into(), Json::Int(view.counter(ctr::SM_OPS)[w])),
            ("noc_msgs".into(), Json::Int(noc)),
            (
                "direct_pushes".into(),
                Json::Int(view.counter(ctr::DIRECT_PUSHES)[w]),
            ),
            (
                "pushes_retried".into(),
                Json::Int(view.counter(ctr::PUSHES_RETRIED)[w]),
            ),
            (
                "sb_stalls".into(),
                Json::Int(view.counter(ctr::SB_STALLS)[w]),
            ),
            (
                "queue_depth".into(),
                Json::Int(view.gauge(gauge::QUEUE_DEPTH)[w]),
            ),
            ("t_us".into(), Json::Int(done_us)),
        ]));
    }
    for a in &series.anomalies {
        job.push_event(event_line(vec![
            ("event".into(), Json::Str("pulse-anomaly".into())),
            ("job".into(), Json::Int(job.id)),
            ("task".into(), Json::Int(idx as u64)),
            ("kind".into(), Json::Str(a.kind.name().into())),
            ("start".into(), Json::Int(a.start)),
            ("end".into(), Json::Int(a.end)),
            ("value".into(), Json::Int(a.value)),
            ("threshold".into(), Json::Int(a.threshold)),
            ("t_us".into(), Json::Int(done_us)),
        ]));
    }
}

/// Emits the open+close pair for every span of one completed task,
/// plus its pulse telemetry (when the task ran with a pulse window)
/// and its progress / outcome summary, onto the job's event log.
fn publish_task_events(job: &JobRecord, idx: usize, result: &TaskResult, done_us: u64) {
    for span in &result.spans {
        job.push_event(span_open_event(
            span,
            job.id,
            vec![("task".into(), Json::Int(idx as u64))],
        ));
        job.push_event(span_close_event(span, job.id));
    }
    if let Some(series) = result.outcome.report().and_then(|r| r.pulse.as_ref()) {
        publish_pulse_events(job, idx, series, done_us);
    }
    let mut fields = vec![
        ("event".into(), Json::Str("task-done".into())),
        ("job".into(), Json::Int(job.id)),
        ("task".into(), Json::Int(idx as u64)),
        ("outcome".into(), Json::Str(result.outcome.tag().into())),
        (
            "provenance".into(),
            Json::Str(crate::api::provenance_name(result.provenance).into()),
        ),
        ("t_us".into(), Json::Int(done_us)),
    ];
    if let Some(report) = result.outcome.report() {
        fields.push(("cycles".into(), Json::Int(report.total_cycles.as_u64())));
        // The epoch sampler's progress trail: how many windows the
        // simulation closed, so `watch` can show per-task pacing.
        fields.push(("epochs".into(), Json::Int(report.epochs.len() as u64)));
        fields.push(("epoch_window".into(), Json::Int(report.epoch_window)));
        if let Some(series) = &report.pulse {
            fields.push(("pulse_windows".into(), Json::Int(series.len() as u64)));
            fields.push((
                "pulse_anomalies".into(),
                Json::Int(series.anomalies.len() as u64),
            ));
        }
    }
    job.push_event(event_line(fields));
    let (_, completed, total) = job.snapshot();
    job.push_event(event_line(vec![
        ("event".into(), Json::Str("progress".into())),
        ("job".into(), Json::Int(job.id)),
        ("completed".into(), Json::Int(completed as u64 + 1)),
        ("total".into(), Json::Int(total as u64)),
        ("t_us".into(), Json::Int(done_us)),
    ]));
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// One worker: drain the queue through the shared store until
/// shutdown, publishing span telemetry onto each job's event log.
fn worker_loop(state: &ServeState) {
    while let Some(item) = state.queue.pop() {
        process_item(state, &item);
    }
}

/// Handles one popped work item end to end: journal bracketing,
/// panic-isolated execution, telemetry, completion bookkeeping.
pub(crate) fn process_item(state: &ServeState, item: &WorkItem) {
    process_item_with(state, item, |task, span| state.run_task(task, span));
}

/// [`process_item`] with the execution step injectable, so the
/// panicked-task path is testable without a panicking simulator.
///
/// The `run` closure is wrapped in `catch_unwind`: a panic anywhere
/// in the execution path becomes a [`TaskOutcome::Panicked`] result —
/// the job still completes and the worker keeps draining the queue
/// instead of wedging the whole pool.
pub(crate) fn process_item_with(
    state: &ServeState,
    item: &WorkItem,
    run: impl FnOnce(&Task, u64) -> TaskResult,
) {
    let job = &item.job;
    let task = &job.tasks[item.idx];
    if let Some(journal) = &state.journal {
        journal.task_started(job.id, item.idx);
    }
    let waited = item.enqueued.elapsed();
    let started = Instant::now();
    // The task span opened when the work item was enqueued — the
    // queue wait belongs to the task, not to the service at large.
    let enqueued_us = item.enqueued.duration_since(state.started).as_micros() as u64;
    let picked_us = state.now_us();
    let task_span = scope::next_span_id();
    let queue_span = SpanRecord {
        id: scope::next_span_id(),
        parent: task_span,
        kind: SpanKind::QueueWait,
        label: String::new(),
        start_us: enqueued_us,
        end_us: picked_us,
    };

    let mut result = match catch_unwind(AssertUnwindSafe(|| run(task, task_span))) {
        Ok(result) => result,
        Err(payload) => {
            state.with_metrics(|m| m.worker_panics += 1);
            TaskResult {
                outcome: TaskOutcome::Panicked(panic_message(payload)),
                provenance: Provenance::Computed,
                spans: Vec::new(),
            }
        }
    };
    let done_us = state.now_us();
    let service = started.elapsed();
    if let Some(series) = result.outcome.report().and_then(|r| r.pulse.as_ref()) {
        state.record_pulse(series);
    }

    let mut spans = vec![
        SpanRecord {
            id: task_span,
            parent: job.span,
            kind: SpanKind::Task,
            label: format!("{} {} {}", task.code, task.input, task.mode),
            start_us: enqueued_us,
            end_us: done_us,
        },
        queue_span,
    ];
    spans.append(&mut result.spans);
    result.spans = spans;
    publish_task_events(job, item.idx, &result, done_us);

    let outcome_tag = result.outcome.tag();
    let finished = state.queue.complete(item, result);
    if let Some(journal) = &state.journal {
        journal.task_done(job.id, item.idx, outcome_tag);
        if finished {
            journal.job_done(job.id);
        }
    }
    if finished {
        if job.recovered {
            // A replayed job drained: one step closer to `ready`.
            let _ = state
                .recovering
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1));
        }
        let close_us = state.now_us();
        job.push_event(event_line(vec![
            ("event".into(), Json::Str("span-close".into())),
            ("span".into(), Json::Int(job.span)),
            ("kind".into(), Json::Str("job".into())),
            ("t_us".into(), Json::Int(close_us)),
            ("job".into(), Json::Int(job.id)),
        ]));
    }
    state.with_metrics(|m| {
        m.task_wait.record(waited.as_micros() as u64);
        m.task_service.record(service.as_micros() as u64);
        m.tasks_completed += 1;
        if finished {
            m.jobs_completed += 1;
        }
    });
    // Crash drill: die *after* the Nth completion is journaled — the
    // most adversarial instant, since the in-memory registry is ahead
    // of any client's view and only the journal can reconstruct it.
    if let Some(limit) = state.options.crash_after_tasks {
        if state.tasks_done.fetch_add(1, Ordering::SeqCst) + 1 >= limit {
            eprintln!("dsserve: crash drill abort after {limit} task(s)");
            std::process::abort();
        }
    }
}

/// How many times a panicked worker thread is respawned before its
/// slot is retired (a repeatedly-crashing worker burning CPU forever
/// is worse than a smaller pool).
pub const WORKER_RESPAWN_BUDGET: u32 = 8;

/// Supervises one worker slot: (re)spawns the worker body until it
/// exits cleanly (shutdown) or panics with the respawn budget already
/// spent. Returns `(respawns, retired)` — `retired` means the final
/// spawn also panicked and the slot gave up. `on_panic` observes each
/// actual respawn (metrics + logging) with the count so far.
pub(crate) fn supervise_worker(
    budget: u32,
    spawn_body: impl Fn() -> std::thread::JoinHandle<()>,
    mut on_panic: impl FnMut(u32),
) -> (u32, bool) {
    let mut respawns = 0;
    loop {
        match spawn_body().join() {
            Ok(()) => return (respawns, false),
            Err(_) => {
                if respawns >= budget {
                    return (respawns, true);
                }
                respawns += 1;
                on_panic(respawns);
            }
        }
    }
}

/// The structured request log line (gated on `--verbose`): span id,
/// method, path, status, response bytes, and handling duration, as
/// text or one compact JSON object per `--log-format`.
fn log_request(
    state: &ServeState,
    span: u64,
    request: Option<&Request>,
    status: u16,
    bytes: usize,
    duration: Duration,
) {
    if !state.options.verbose {
        return;
    }
    let (method, path) = match request {
        Some(r) => (r.method.as_str(), r.path.as_str()),
        None => ("-", "-"),
    };
    let duration_us = duration.as_micros() as u64;
    match state.options.log_format {
        LogFormat::Text => {
            eprintln!("dsserve: {method} {path} -> {status} span={span} {bytes}B {duration_us}us")
        }
        LogFormat::Json => eprintln!(
            "{}",
            Json::Obj(vec![
                ("log".into(), Json::Str("request".into())),
                ("span".into(), Json::Int(span)),
                ("method".into(), Json::Str(method.into())),
                ("path".into(), Json::Str(path.into())),
                ("status".into(), Json::Int(status as u64)),
                ("bytes".into(), Json::Int(bytes as u64)),
                ("duration_us".into(), Json::Int(duration_us)),
            ])
            .compact()
        ),
    }
}

/// One HTTP handler: serve connections off the channel until the
/// accept loop closes it. Every request gets a span id, returned to
/// the client in the `X-Dsscope-Span` header.
fn handler_loop(state: &ServeState, connections: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        let conn = {
            let rx = connections.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(mut stream) = conn else { break };
        stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
        stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
        let started = Instant::now();
        let span = scope::next_span_id();
        match read_request(&mut stream) {
            Ok(request) => {
                // The live-telemetry endpoint streams its own
                // close-delimited response; everything else goes
                // through the regular router.
                if request.method == "GET" {
                    if let Some(id) = crate::api::events_job_id(&request.path) {
                        let (status, bytes) =
                            crate::api::stream_events(state, &mut stream, id, span);
                        log_request(
                            state,
                            span,
                            Some(&request),
                            status,
                            bytes,
                            started.elapsed(),
                        );
                        continue;
                    }
                }
                let response = crate::api::handle_with_span(state, &request, span)
                    .with_header("X-Dsscope-Span", span.to_string());
                log_request(
                    state,
                    span,
                    Some(&request),
                    response.status,
                    response.body.len(),
                    started.elapsed(),
                );
                let _ = write_response(&mut stream, &response);
            }
            Err(e) => {
                let response =
                    Response::json(400, format!("{{\"error\": \"bad request: {e}\"}}\n"))
                        .with_header("X-Dsscope-Span", span.to_string());
                log_request(
                    state,
                    span,
                    None,
                    response.status,
                    response.body.len(),
                    started.elapsed(),
                );
                let _ = write_response(&mut stream, &response);
            }
        }
    }
}

/// A running service instance.
pub struct Server {
    state: Arc<ServeState>,
    addr: std::net::SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    handlers: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop, handler pool, and worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(options: ServeOptions, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = ServeState::new(options);
        let _ = state.addr.set(addr);

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let connections = Arc::new(Mutex::new(rx));

        let mut handlers = Vec::new();
        for _ in 0..state.options.handlers.max(1) {
            let state = Arc::clone(&state);
            let connections = Arc::clone(&connections);
            handlers.push(std::thread::spawn(move || {
                handler_loop(&state, &connections)
            }));
        }

        let mut workers = Vec::new();
        for slot in 0..state.options.workers.max(1) {
            let state = Arc::clone(&state);
            // Each worker slot gets a supervisor: a panic that escapes
            // the per-item isolation (e.g. in the queue or journal
            // path) respawns the worker within a bounded budget
            // instead of silently shrinking the pool.
            workers.push(std::thread::spawn(move || {
                let (respawns, retired) = supervise_worker(
                    WORKER_RESPAWN_BUDGET,
                    || {
                        let state = Arc::clone(&state);
                        std::thread::spawn(move || worker_loop(&state))
                    },
                    |respawns| {
                        state.with_metrics(|m| m.workers_respawned += 1);
                        eprintln!(
                            "dsserve: worker {slot} panicked; respawn {respawns}/{}",
                            WORKER_RESPAWN_BUDGET
                        );
                    },
                );
                if retired {
                    eprintln!("dsserve: worker {slot} retired after {respawns} respawns");
                }
            }));
        }

        let accept = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                // `tx` lives in this loop: dropping it on exit closes
                // the channel and winds the handler pool down.
                for conn in listener.incoming() {
                    if state.is_shutting_down() {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let _ = tx.send(stream);
                    }
                }
            })
        };

        Ok(Server {
            state,
            addr,
            accept: Some(accept),
            handlers,
            workers,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (for in-process harnesses and `--check`).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Requests shutdown: stops admission, abandons unstarted work,
    /// and unblocks the accept loop. Idempotent.
    pub fn begin_shutdown(&self) {
        request_shutdown(&self.state);
    }

    /// Blocks until every thread has wound down. In-flight
    /// simulations finish; queued-but-unstarted tasks are abandoned.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for handle in self.handlers.drain(..) {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Flags shutdown on `state` and pokes the accept loop awake with a
/// throwaway connection so it observes the flag. Also called by the
/// `/shutdown` handler, which cannot reach the [`Server`] struct.
pub fn request_shutdown(state: &ServeState) {
    state.shutdown.store(true, Ordering::SeqCst);
    state.queue.shutdown();
    if let Some(addr) = state.addr.get() {
        let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
    }
}

#[allow(clippy::unwrap_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobState;
    use ds_core::{InputSize, Mode, SystemConfig};

    fn memory_state() -> Arc<ServeState> {
        ServeState::new(ServeOptions {
            workers: 1,
            handlers: 1,
            queue_limit: 4,
            ..ServeOptions::default()
        })
    }

    fn one_task() -> Vec<Task> {
        let cfg = SystemConfig::paper_default();
        vec![Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm)]
    }

    #[test]
    fn a_panicking_task_completes_the_job_instead_of_wedging() {
        let state = memory_state();
        let job = state.queue.submit(one_task(), 0).unwrap();
        let item = state.queue.pop().unwrap();
        process_item_with(&state, &item, |_, _| panic!("simulated worker bug"));
        assert_eq!(job.state(), JobState::Done, "job reached a terminal state");
        let results = job.results();
        match &results[0].as_ref().unwrap().outcome {
            TaskOutcome::Panicked(msg) => assert!(msg.contains("simulated worker bug")),
            other => panic!("expected Panicked, got {}", other.tag()),
        }
        assert_eq!(state.with_metrics(|m| m.worker_panics), 1);
        // The pool is not wedged: the admission slot was released and
        // fresh work still flows.
        assert_eq!(state.queue.open_jobs(), 0);
        state.queue.submit(one_task(), 0).unwrap();
        assert!(state.queue.pop().is_some());
    }

    #[test]
    fn supervisor_respawns_within_budget_then_retires() {
        use std::sync::atomic::AtomicU32;
        // A body that panics its first three runs, then exits cleanly.
        let runs = Arc::new(AtomicU32::new(0));
        let mut observed = Vec::new();
        let (respawns, retired) = supervise_worker(
            8,
            || {
                let runs = Arc::clone(&runs);
                std::thread::spawn(move || {
                    if runs.fetch_add(1, Ordering::SeqCst) < 3 {
                        panic!("flaky worker");
                    }
                })
            },
            |n| observed.push(n),
        );
        assert_eq!((respawns, retired), (3, false));
        assert_eq!(observed, vec![1, 2, 3]);
        assert_eq!(
            runs.load(Ordering::SeqCst),
            4,
            "three respawns + clean exit"
        );

        // A body that always panics exhausts the budget and retires.
        let (respawns, retired) =
            supervise_worker(2, || std::thread::spawn(|| panic!("hopeless")), |_| {});
        assert_eq!((respawns, retired), (2, true));
    }

    #[test]
    fn recovered_job_completion_drains_the_recovering_gauge() {
        let state = memory_state();
        // Simulate what journal replay does at boot.
        let job = state.queue.restore(5, "", one_task(), 0);
        state.recovering.store(1, Ordering::SeqCst);
        assert_eq!(state.recovering(), 1);
        let item = state.queue.pop().unwrap();
        process_item_with(&state, &item, |_, _| TaskResult {
            outcome: TaskOutcome::TimedOut,
            provenance: Provenance::Hit,
            spans: Vec::new(),
        });
        assert_eq!(job.state(), JobState::Done);
        assert_eq!(state.recovering(), 0, "readiness gauge drained");
    }
}
