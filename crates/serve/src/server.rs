//! The long-running service: shared state, the worker pool, and the
//! connection loop.
//!
//! Three thread families cooperate around [`ServeState`]:
//!
//! * the **accept loop** hands TCP connections to a small pool of
//!   **HTTP handlers** over a channel;
//! * handlers parse requests, run [`crate::api::handle`], and write
//!   responses — submissions only *enqueue* (admission control keeps
//!   that O(1)), so handler latency stays flat under simulation load;
//! * **workers** (sized like `ds-runner`: `--workers` /
//!   `DS_RUNNER_JOBS` / available parallelism) drain the job queue
//!   through the [`SharedStore`], so identical tasks across jobs and
//!   users are computed once and every computation rides the hardened
//!   `run_tasks_outcomes` machinery (panic isolation, wall-clock
//!   timeouts, degradation accounting).
//!
//! Shutdown (`POST /shutdown` or [`Server::begin_shutdown`]) stops
//! admission, abandons queued-but-unstarted work, lets in-flight
//! simulations finish, and joins every thread — a saturated or
//! half-drained service exits cleanly instead of hanging.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use ds_probe::ServiceMetrics;
use ds_runner::shared::SharedStore;
use ds_runner::{default_jobs, Runner, Task, TaskOutcome};

use crate::http::{read_request, write_response, Response};
use crate::jobs::{JobQueue, TaskResult};

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Simulation worker threads (default: `DS_RUNNER_JOBS` or the
    /// machine's available parallelism, like `ds-runner`).
    pub workers: usize,
    /// HTTP handler threads.
    pub handlers: usize,
    /// Admission bound: maximum open (accepted, unfinished) jobs.
    pub queue_limit: usize,
    /// Per-task wall-clock budget, forwarded to the runner.
    pub task_timeout: Option<Duration>,
    /// On-disk result-cache directory (`results/` by convention);
    /// `None` keeps the store memory-only.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Log one line per handled request to stderr.
    pub verbose: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: default_jobs(),
            handlers: 4,
            queue_limit: 64,
            task_timeout: None,
            cache_dir: None,
            verbose: false,
        }
    }
}

/// Everything handlers and workers share.
pub struct ServeState {
    /// The concurrency-safe content-addressed result store.
    pub store: SharedStore,
    /// The bounded job queue and registry.
    pub queue: JobQueue,
    /// Service load metrics behind one lock.
    pub metrics: Mutex<ServiceMetrics>,
    /// The options the service was started with.
    pub options: ServeOptions,
    /// Server start time, for uptime reporting.
    pub started: Instant,
    shutdown: AtomicBool,
    /// Bound address, set by [`Server::start`]; the `/shutdown`
    /// handler needs it to poke the accept loop awake.
    addr: std::sync::OnceLock<std::net::SocketAddr>,
}

impl ServeState {
    /// Builds the shared state for `options`.
    pub fn new(options: ServeOptions) -> Arc<Self> {
        let store = match &options.cache_dir {
            Some(dir) => SharedStore::with_disk(dir.clone()),
            None => SharedStore::new(),
        };
        Arc::new(ServeState {
            store,
            queue: JobQueue::new(options.queue_limit),
            metrics: Mutex::new(ServiceMetrics::new()),
            options,
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            addr: std::sync::OnceLock::new(),
        })
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Runs `f` on the metrics under the lock.
    pub fn with_metrics<T>(&self, f: impl FnOnce(&mut ServiceMetrics) -> T) -> T {
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut metrics)
    }

    /// Computes (or serves from the shared store) one task, riding
    /// the hardened one-shot runner: panic isolation, optional
    /// wall-clock timeout, degradation classification.
    pub fn run_task(&self, task: &Task) -> TaskResult {
        let timeout = self.options.task_timeout;
        let (outcome, provenance) = self.store.get_or_compute(task, || {
            let mut runner = Runner::new().jobs(1).progress(false);
            if let Some(limit) = timeout {
                runner = runner.task_timeout(limit);
            }
            runner
                .run_tasks_outcomes(std::slice::from_ref(task))
                .pop()
                .unwrap_or(TaskOutcome::Failed("runner returned no outcome".into()))
        });
        TaskResult {
            outcome,
            provenance,
        }
    }
}

/// One worker: drain the queue through the shared store until
/// shutdown.
fn worker_loop(state: &ServeState) {
    while let Some(item) = state.queue.pop() {
        let waited = item.enqueued.elapsed();
        let started = Instant::now();
        let result = state.run_task(&item.job.tasks[item.idx]);
        let service = started.elapsed();
        let finished = state.queue.complete(&item, result);
        state.with_metrics(|m| {
            m.task_wait.record(waited.as_micros() as u64);
            m.task_service.record(service.as_micros() as u64);
            m.tasks_completed += 1;
            if finished {
                m.jobs_completed += 1;
            }
        });
    }
}

/// One HTTP handler: serve connections off the channel until the
/// accept loop closes it.
fn handler_loop(state: &ServeState, connections: &Mutex<mpsc::Receiver<TcpStream>>) {
    loop {
        let conn = {
            let rx = connections.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let Ok(mut stream) = conn else { break };
        stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
        stream.set_write_timeout(Some(Duration::from_secs(10))).ok();
        let response = match read_request(&mut stream) {
            Ok(request) => {
                let response = crate::api::handle(state, &request);
                if state.options.verbose {
                    eprintln!(
                        "dsserve: {} {} -> {}",
                        request.method, request.path, response.status
                    );
                }
                response
            }
            Err(e) => Response::json(400, format!("{{\"error\": \"bad request: {e}\"}}\n")),
        };
        let _ = write_response(&mut stream, &response);
    }
}

/// A running service instance.
pub struct Server {
    state: Arc<ServeState>,
    addr: std::net::SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    handlers: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop, handler pool, and worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(options: ServeOptions, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = ServeState::new(options);
        let _ = state.addr.set(addr);

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let connections = Arc::new(Mutex::new(rx));

        let mut handlers = Vec::new();
        for _ in 0..state.options.handlers.max(1) {
            let state = Arc::clone(&state);
            let connections = Arc::clone(&connections);
            handlers.push(std::thread::spawn(move || {
                handler_loop(&state, &connections)
            }));
        }

        let mut workers = Vec::new();
        for _ in 0..state.options.workers.max(1) {
            let state = Arc::clone(&state);
            workers.push(std::thread::spawn(move || worker_loop(&state)));
        }

        let accept = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                // `tx` lives in this loop: dropping it on exit closes
                // the channel and winds the handler pool down.
                for conn in listener.incoming() {
                    if state.is_shutting_down() {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let _ = tx.send(stream);
                    }
                }
            })
        };

        Ok(Server {
            state,
            addr,
            accept: Some(accept),
            handlers,
            workers,
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared state (for in-process harnesses and `--check`).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Requests shutdown: stops admission, abandons unstarted work,
    /// and unblocks the accept loop. Idempotent.
    pub fn begin_shutdown(&self) {
        request_shutdown(&self.state);
    }

    /// Blocks until every thread has wound down. In-flight
    /// simulations finish; queued-but-unstarted tasks are abandoned.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for handle in self.handlers.drain(..) {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Flags shutdown on `state` and pokes the accept loop awake with a
/// throwaway connection so it observes the flag. Also called by the
/// `/shutdown` handler, which cannot reach the [`Server`] struct.
pub fn request_shutdown(state: &ServeState) {
    state.shutdown.store(true, Ordering::SeqCst);
    state.queue.shutdown();
    if let Some(addr) = state.addr.get() {
        let _ = TcpStream::connect_timeout(addr, Duration::from_secs(1));
    }
}
