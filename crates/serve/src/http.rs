//! A minimal HTTP/1.1 layer over `std::net`.
//!
//! The workspace builds offline from vendored dependencies, so the
//! service speaks just enough HTTP/1.1 itself: one request per
//! connection (`Connection: close`), `Content-Length` bodies, JSON
//! payloads. The same module supplies the client used by `dsserve
//! submit/stress/--check` and the CI smoke gate, so the wire format
//! is exercised from both ends by every test run.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on accepted header block + body, defending the service
/// against accidental (or hostile) oversized requests.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;
/// Upper bound on an accepted request body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed request: method, path (with query split off), query
/// string, `Accept` header, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, percent-decoding *not* applied (the API uses
    /// only unreserved characters).
    pub path: String,
    /// Raw query string after the `?`, without the `?` itself (empty
    /// when absent). Handlers split on `&` themselves.
    pub query: String,
    /// The `Accept` header value, empty when the header was absent.
    /// `GET /metrics` negotiates Prometheus text exposition on it.
    pub accept: String,
    /// The `Idempotency-Key` header value, empty when absent. A
    /// retried `POST /jobs` carrying the same key attaches to the job
    /// the first attempt created.
    pub idempotency: String,
    /// Raw request body (empty for bodiless requests).
    pub body: Vec<u8>,
}

/// A response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written verbatim after
    /// the standard ones. The service uses this for `X-Dsscope-Span`.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            body,
            content_type: "application/json",
            headers: Vec::new(),
        }
    }

    /// Adds one extra response header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }
}

/// Canonical reason phrase for the status codes the API emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Any malformed request line, oversized header/body, or transport
/// failure is an `io::Error`; the connection handler answers 400.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.len() > MAX_HEADER_BYTES {
        return Err(bad("request line too long"));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("missing method"))?
        .to_string();
    let target = parts.next().ok_or_else(|| bad("missing path"))?;
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut accept = String::new();
    let mut idempotency = String::new();
    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("truncated headers"));
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(bad("headers too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("accept") {
                accept = value.trim().to_string();
            } else if name.eq_ignore_ascii_case("idempotency-key") {
                idempotency = value.trim().to_string();
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        accept,
        idempotency,
        body,
    })
}

/// Writes `response` to `stream` and flushes. The service speaks one
/// request per connection, so every response closes it.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Writes the head of a close-delimited streaming response (no
/// `Content-Length`: the body runs until the server closes the
/// connection, which the blocking client reads with `read_to_end`).
/// The caller then writes body bytes directly and closes the stream.
///
/// # Errors
///
/// Propagates the transport failure.
pub fn write_stream_head(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    headers: &[(String, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type
    );
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Splits a `http://host:port` base URL into its socket address.
///
/// # Errors
///
/// Returns a message for anything but a plain `http` authority.
pub fn host_of(url: &str) -> Result<String, String> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("unsupported URL {url:?} (only http:// is spoken)"))?;
    let host = rest.split('/').next().unwrap_or(rest);
    if host.is_empty() {
        return Err(format!("no host in URL {url:?}"));
    }
    Ok(host.to_string())
}

/// One client request: connects, sends, reads the full response.
///
/// # Errors
///
/// Transport and parse failures come back as strings — callers are
/// CLIs and harnesses that render them directly.
pub fn client_request(
    url: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> Result<(u16, String), String> {
    client_request_ext(url, method, path, body, &[], timeout)
        .map(|(status, body, _)| (status, body))
}

/// What [`client_request_ext`] returns: status, body, and the
/// response headers (lowercased names).
pub type FullResponse = (u16, String, Vec<(String, String)>);

/// [`client_request`] with extra request headers and the response
/// headers returned (lowercased names) — the retrying client needs to
/// send `Idempotency-Key` and read `Retry-After`.
///
/// # Errors
///
/// As [`client_request`].
pub fn client_request_ext(
    url: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra_headers: &[(String, String)],
    timeout: Duration,
) -> Result<FullResponse, String> {
    let host = host_of(url)?;
    let mut stream = TcpStream::connect(&host).map_err(|e| format!("connect {host}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).ok();
    stream.set_write_timeout(Some(timeout)).ok();
    let body = body.unwrap_or("");
    let mut request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        request.push_str(&format!("{name}: {value}\r\n"));
    }
    request.push_str("\r\n");
    request.push_str(body);
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send {path}: {e}"))?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read {path}: {e}"))?;
        if n == 0 || header.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = header.trim_end().split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read {path}: {e}"))?;
        }
        None => {
            reader
                .read_to_end(&mut body)
                .map_err(|e| format!("read {path}: {e}"))?;
        }
    }
    String::from_utf8(body)
        .map(|text| (status, text, headers))
        .map_err(|_| format!("non-UTF-8 response from {path}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn request_round_trips_over_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            assert_eq!(request.method, "POST");
            assert_eq!(request.path, "/jobs");
            assert_eq!(request.body, b"{\"x\":1}");
            write_response(&mut stream, &Response::json(200, "{\"ok\":true}".into())).unwrap();
        });
        let (status, body) = client_request(
            &format!("http://{addr}"),
            "POST",
            "/jobs",
            Some("{\"x\":1}"),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        server.join().unwrap();
    }

    #[test]
    fn idempotency_key_and_response_headers_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            assert_eq!(request.idempotency, "abc-123");
            let response =
                Response::json(429, "{}".into()).with_header("Retry-After", "1".to_string());
            write_response(&mut stream, &response).unwrap();
        });
        let (status, _, headers) = client_request_ext(
            &format!("http://{addr}"),
            "POST",
            "/jobs",
            Some("{}"),
            &[("Idempotency-Key".to_string(), "abc-123".to_string())],
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(status, 429);
        assert!(
            headers.iter().any(|(n, v)| n == "retry-after" && v == "1"),
            "{headers:?}"
        );
        server.join().unwrap();
    }

    #[test]
    fn query_strings_are_stripped_and_bad_urls_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = read_request(&mut stream).unwrap();
            assert_eq!(request.path, "/metrics");
            assert_eq!(request.query, "verbose=1");
            write_response(&mut stream, &Response::json(200, "{}".into())).unwrap();
        });
        client_request(
            &format!("http://{addr}"),
            "GET",
            "/metrics?verbose=1",
            None,
            Duration::from_secs(5),
        )
        .unwrap();
        server.join().unwrap();
        assert!(host_of("https://x").is_err());
        assert!(host_of("http://").is_err());
    }
}
