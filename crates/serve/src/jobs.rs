//! The job registry, the bounded work queue, and admission control.
//!
//! A *job* is one submission: an ordered list of [`Task`]s. Jobs are
//! decomposed into per-task work items on a single bounded queue that
//! the worker pool drains; per-task results land back in the job's
//! slot vector, so result order is submission order regardless of
//! worker scheduling (the same slot discipline as `ds-runner`'s
//! executor).
//!
//! Admission control is a hard bound on *open* jobs (accepted but not
//! yet fully completed): a submission that would exceed the bound is
//! rejected immediately with an explicit error — the HTTP layer turns
//! that into a 429 — so a saturated service degrades by refusing work
//! it cannot queue instead of growing an unbounded backlog.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ds_probe::SpanRecord;
use ds_runner::shared::Provenance;
use ds_runner::{Task, TaskOutcome};

use crate::journal::{keys_match, Journal};

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted; no task picked up yet.
    Queued,
    /// At least one task picked up, not all completed.
    Running,
    /// Every task has a terminal outcome.
    Done,
}

impl JobState {
    /// Lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

/// One task's terminal result inside a job.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// How the task ended (report included when it completed).
    pub outcome: TaskOutcome,
    /// Whether the shared store served it without computing.
    pub provenance: Provenance,
    /// Service-level spans for this task (`task` plus its `queue-wait`
    /// / `store-lookup` / `sim-run` children), timestamps in
    /// microseconds since the service started. Empty when the worker
    /// recorded none.
    pub spans: Vec<SpanRecord>,
}

#[derive(Debug)]
struct Progress {
    results: Vec<Option<TaskResult>>,
    completed: usize,
    started: usize,
}

/// One accepted submission.
#[derive(Debug)]
pub struct JobRecord {
    /// Registry id, monotonically increasing from 1.
    pub id: u64,
    /// The submitted tasks, in submission order.
    pub tasks: Vec<Task>,
    /// The job's span id (child of the submitting request's span).
    pub span: u64,
    /// The submitting HTTP request's span id (0 when untraced).
    pub parent_span: u64,
    /// Whether this job was rebuilt from the ds-anvil journal after a
    /// restart (its tasks re-enqueued, completed ones expected to
    /// rehydrate as cache hits) rather than submitted over HTTP.
    pub recovered: bool,
    progress: Mutex<Progress>,
    /// Append-only live telemetry: one JSON line per span/progress
    /// event, streamed by `GET /jobs/<id>/events`.
    events: Mutex<Vec<String>>,
    events_wake: Condvar,
}

impl JobRecord {
    /// Appends one event line and wakes any streaming reader.
    pub fn push_event(&self, line: String) {
        lock(&self.events).push(line);
        self.events_wake.notify_all();
    }

    /// Clones the event lines from index `from` on, returning them
    /// with the next cursor position.
    pub fn events_since(&self, from: usize) -> (Vec<String>, usize) {
        let events = lock(&self.events);
        let lines: Vec<String> = events.get(from..).unwrap_or(&[]).to_vec();
        let next = events.len();
        (lines, next)
    }

    /// Blocks up to `timeout` for event lines past `from`. Returns
    /// `(lines, next_cursor, done)` where `done` reports whether the
    /// job had reached its terminal state at snapshot time — a reader
    /// drains the remaining lines and stops once both hold.
    pub fn wait_events(&self, from: usize, timeout: Duration) -> (Vec<String>, usize, bool) {
        let deadline = Instant::now() + timeout;
        let mut events = lock(&self.events);
        while events.len() <= from && self.state() != JobState::Done {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) = self
                .events_wake
                .wait_timeout(events, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            events = guard;
        }
        let lines: Vec<String> = events.get(from..).unwrap_or(&[]).to_vec();
        let next = events.len();
        drop(events);
        (lines, next, self.state() == JobState::Done)
    }
    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        let p = lock(&self.progress);
        if p.completed == self.tasks.len() {
            JobState::Done
        } else if p.started > 0 {
            JobState::Running
        } else {
            JobState::Queued
        }
    }

    /// `(state, completed, total)` in one consistent snapshot.
    pub fn snapshot(&self) -> (JobState, usize, usize) {
        let p = lock(&self.progress);
        let total = self.tasks.len();
        let state = if p.completed == total {
            JobState::Done
        } else if p.started > 0 {
            JobState::Running
        } else {
            JobState::Queued
        };
        (state, p.completed, total)
    }

    /// Clones the per-task results recorded so far (slot is `None`
    /// until that task completes).
    pub fn results(&self) -> Vec<Option<TaskResult>> {
        lock(&self.progress).results.clone()
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The open-job bound is reached; retry after jobs complete.
    QueueFull {
        /// Jobs currently open (accepted, not fully completed).
        open: usize,
        /// The admission bound.
        limit: usize,
    },
    /// The service is shutting down.
    ShuttingDown,
    /// The submission itself is unusable (e.g. zero tasks).
    Empty,
    /// The submission reused an `Idempotency-Key` with a task list
    /// that differs from the job the key originally created — serving
    /// the stored job would hand the client unrelated results.
    KeyMismatch,
}

impl Rejection {
    /// The HTTP status the API answers with.
    pub fn status(&self) -> u16 {
        match self {
            Rejection::QueueFull { .. } | Rejection::ShuttingDown => 429,
            Rejection::Empty => 400,
            Rejection::KeyMismatch => 409,
        }
    }

    /// Human-readable reason.
    pub fn message(&self) -> String {
        match self {
            Rejection::QueueFull { open, limit } => {
                format!("queue full: {open} open job(s) at limit {limit}; retry later")
            }
            Rejection::ShuttingDown => "service is shutting down".into(),
            Rejection::Empty => "submission contains no tasks".into(),
            Rejection::KeyMismatch => {
                "idempotency key reuse: tasks differ from the key's original submission".into()
            }
        }
    }
}

/// A queued unit of work: one task of one job.
pub struct WorkItem {
    /// The owning job.
    pub job: Arc<JobRecord>,
    /// Index into [`JobRecord::tasks`].
    pub idx: usize,
    /// Enqueue time, for the queue-wait histogram.
    pub enqueued: Instant,
}

struct QueueInner {
    items: VecDeque<WorkItem>,
    /// Accepted jobs not yet fully completed — the admission gauge.
    open_jobs: usize,
    shutdown: bool,
}

/// Bound on remembered `Idempotency-Key` mappings: every keyed
/// submission adds one, and a long-running server must not grow an
/// entry per retry-wrapped request forever.
const IDEMPOTENCY_CAP: usize = 4096;

/// `Idempotency-Key` → job id with LRU eviction at
/// [`IDEMPOTENCY_CAP`]: a key older than the cap's worth of newer
/// submissions stops deduplicating, which is safe (the retry is
/// admitted as a fresh job) where unbounded growth is not.
#[derive(Default)]
struct IdemMap {
    map: HashMap<String, u64>,
    /// Keys in least→most recently used order.
    order: VecDeque<String>,
}

impl IdemMap {
    /// Looks up `key`, refreshing its recency on a hit.
    fn get(&mut self, key: &str) -> Option<u64> {
        let id = self.map.get(key).copied()?;
        if let Some(at) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(at).expect("position just found");
            self.order.push_back(k);
        }
        Some(id)
    }

    /// Inserts (or refreshes) `key → id`, evicting the least recently
    /// used mapping once the cap is exceeded.
    fn insert(&mut self, key: &str, id: u64) {
        if self.map.insert(key.to_string(), id).is_some() {
            if let Some(at) = self.order.iter().position(|k| k == key) {
                self.order.remove(at);
            }
        }
        self.order.push_back(key.to_string());
        while self.map.len() > IDEMPOTENCY_CAP {
            let Some(evicted) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&evicted);
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The bounded job queue and registry shared by handlers and workers.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    wake: Condvar,
    jobs: Mutex<HashMap<u64, Arc<JobRecord>>>,
    /// `Idempotency-Key` → job id, so a client retrying a submission
    /// after an ambiguous failure attaches to the job the first
    /// attempt created instead of duplicating it (bounded; see
    /// [`IdemMap`]). Lock order: this lock may be held while taking
    /// `inner`, never the other way around.
    idempotency: Mutex<IdemMap>,
    next_id: AtomicU64,
    limit: usize,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl JobQueue {
    /// A queue admitting at most `limit` open jobs (clamped to ≥ 1).
    pub fn new(limit: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                open_jobs: 0,
                shutdown: false,
            }),
            wake: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            idempotency: Mutex::new(IdemMap::default()),
            next_id: AtomicU64::new(1),
            limit: limit.max(1),
        }
    }

    /// The admission bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Work items currently queued (not yet picked up).
    pub fn depth(&self) -> usize {
        lock(&self.inner).items.len()
    }

    /// Jobs accepted but not yet fully completed.
    pub fn open_jobs(&self) -> usize {
        lock(&self.inner).open_jobs
    }

    /// Admits a job or rejects it, atomically against concurrent
    /// submissions. On success the job's tasks are queued in order
    /// and workers are woken.
    ///
    /// # Errors
    ///
    /// [`Rejection::Empty`] for a task-less submission,
    /// [`Rejection::ShuttingDown`] after [`JobQueue::shutdown`], and
    /// [`Rejection::QueueFull`] at the open-job bound.
    pub fn submit(&self, tasks: Vec<Task>, parent_span: u64) -> Result<Arc<JobRecord>, Rejection> {
        self.submit_keyed(tasks, parent_span, None, None)
            .map(|(job, _)| job)
    }

    /// [`JobQueue::submit`] with an optional `Idempotency-Key`: when
    /// `key` already maps to a job with the same task list, that job
    /// is returned with `deduplicated = true` and nothing is enqueued
    /// — a client retry after an ambiguous failure attaches instead
    /// of duplicating. The dedup check runs *before* admission
    /// control, so a retry of an already-accepted submission succeeds
    /// even at the open-job bound or during shutdown. The idempotency
    /// lock is held from the lookup through the insert, so two
    /// concurrent submissions with the same key admit exactly one job.
    ///
    /// When `journal` is given, the job-submitted record is appended
    /// *before* the work becomes visible to workers — the write-ahead
    /// ordering recovery depends on: a worker's task-started record
    /// landing ahead of the submission would replay as corruption.
    ///
    /// # Errors
    ///
    /// As [`JobQueue::submit`], plus [`Rejection::KeyMismatch`] when
    /// the key's stored job was created from a different task list.
    pub fn submit_keyed(
        &self,
        tasks: Vec<Task>,
        parent_span: u64,
        key: Option<&str>,
        journal: Option<&Journal>,
    ) -> Result<(Arc<JobRecord>, bool), Rejection> {
        let key = key.filter(|k| !k.is_empty());
        let mut idem = key.map(|_| lock(&self.idempotency));
        if let (Some(key), Some(idem)) = (key, idem.as_deref_mut()) {
            if let Some(id) = idem.get(key) {
                if let Some(job) = self.get(id) {
                    if !keys_match(&job.tasks, &tasks) {
                        return Err(Rejection::KeyMismatch);
                    }
                    return Ok((job, true));
                }
            }
        }
        if tasks.is_empty() {
            return Err(Rejection::Empty);
        }
        {
            let mut inner = lock(&self.inner);
            if inner.shutdown {
                return Err(Rejection::ShuttingDown);
            }
            if inner.open_jobs >= self.limit {
                return Err(Rejection::QueueFull {
                    open: inner.open_jobs,
                    limit: self.limit,
                });
            }
            inner.open_jobs += 1;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let job = self.register(id, tasks, parent_span, false);
        if let (Some(key), Some(idem)) = (key, idem.as_deref_mut()) {
            idem.insert(key, id);
        }
        if let Some(journal) = journal {
            journal.job_submitted(id, key.unwrap_or(""), &job.tasks);
        }
        // Only now — with the admission slot taken, the registry and
        // idempotency map updated, and the submission durable — does
        // the work become visible to workers. The idempotency guard
        // drops here, so a dedup hit always implies a journaled job.
        drop(idem);
        self.enqueue(&job);
        Ok((job, false))
    }

    /// Re-admits a job recovered from the ds-anvil journal under its
    /// original `id`, bypassing admission control (the work was
    /// already accepted — refusing it now would be the data loss the
    /// journal exists to prevent) and re-registering its idempotency
    /// `key` so client retries still attach across the restart. The
    /// journal already holds the job's submitted record (compaction
    /// rewrote it), so nothing is re-journaled here.
    pub fn restore(
        &self,
        id: u64,
        key: &str,
        tasks: Vec<Task>,
        parent_span: u64,
    ) -> Arc<JobRecord> {
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        lock(&self.inner).open_jobs += 1;
        let job = self.register(id, tasks, parent_span, true);
        if !key.is_empty() {
            lock(&self.idempotency).insert(key, id);
        }
        self.enqueue(&job);
        job
    }

    /// Creates the job record and registers it in the jobs map —
    /// visible to `GET /jobs/<id>` but not yet to workers; the caller
    /// journals the submission (when journaling is on) and then
    /// publishes the work via [`JobQueue::enqueue`].
    fn register(
        &self,
        id: u64,
        tasks: Vec<Task>,
        parent_span: u64,
        recovered: bool,
    ) -> Arc<JobRecord> {
        let total = tasks.len();
        let job = Arc::new(JobRecord {
            id,
            tasks,
            span: ds_probe::scope::next_span_id(),
            parent_span,
            recovered,
            progress: Mutex::new(Progress {
                results: vec![None; total],
                completed: 0,
                started: 0,
            }),
            events: Mutex::new(Vec::new()),
            events_wake: Condvar::new(),
        });
        lock(&self.jobs).insert(id, Arc::clone(&job));
        job
    }

    /// Pushes one work item per task and wakes the workers. The
    /// caller has already taken the admission slot.
    fn enqueue(&self, job: &Arc<JobRecord>) {
        let mut inner = lock(&self.inner);
        let now = Instant::now();
        for idx in 0..job.tasks.len() {
            inner.items.push_back(WorkItem {
                job: Arc::clone(job),
                idx,
                enqueued: now,
            });
        }
        drop(inner);
        self.wake.notify_all();
    }

    /// Looks up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<JobRecord>> {
        lock(&self.jobs).get(&id).cloned()
    }

    /// Blocks for the next work item; `None` once the queue is shut
    /// down. Queued-but-unstarted items are abandoned at shutdown —
    /// in-flight simulations cannot be preempted, so draining a deep
    /// backlog would turn "stop" into "finish everything"; their jobs
    /// simply never reach `done`.
    pub fn pop(&self) -> Option<WorkItem> {
        let mut inner = lock(&self.inner);
        loop {
            if inner.shutdown {
                return None;
            }
            if let Some(item) = inner.items.pop_front() {
                let mut p = lock(&item.job.progress);
                p.started += 1;
                drop(p);
                return Some(item);
            }
            inner = self.wake.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records `result` for one work item. Returns `true` when this
    /// completion finished the whole job (the caller bumps the
    /// jobs-completed metric exactly once).
    pub fn complete(&self, item: &WorkItem, result: TaskResult) -> bool {
        let mut p = lock(&item.job.progress);
        debug_assert!(p.results[item.idx].is_none(), "slot completed twice");
        p.results[item.idx] = Some(result);
        p.completed += 1;
        let finished = p.completed == item.job.tasks.len();
        drop(p);
        if finished {
            lock(&self.inner).open_jobs -= 1;
        }
        finished
    }

    /// Stops admission and wakes every worker; [`JobQueue::pop`]
    /// returns `None` from here on (see its abandonment note).
    pub fn shutdown(&self) {
        lock(&self.inner).shutdown = true;
        self.wake.notify_all();
    }

    /// Whether [`JobQueue::shutdown`] has been called.
    pub fn is_shut_down(&self) -> bool {
        lock(&self.inner).shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_core::{InputSize, Mode, SystemConfig};

    fn tasks(n: usize) -> Vec<Task> {
        let cfg = SystemConfig::paper_default();
        (0..n)
            .map(|_| Task::new(&cfg, "VA", InputSize::Small, Mode::Ccsm))
            .collect()
    }

    #[test]
    fn admission_bound_rejects_explicitly() {
        let queue = JobQueue::new(2);
        queue.submit(tasks(1), 0).unwrap();
        queue.submit(tasks(1), 0).unwrap();
        let rejection = queue.submit(tasks(1), 0).unwrap_err();
        assert_eq!(rejection, Rejection::QueueFull { open: 2, limit: 2 });
        assert_eq!(rejection.status(), 429);
        assert_eq!(queue.depth(), 2);
    }

    #[test]
    fn empty_submissions_are_bad_requests() {
        let queue = JobQueue::new(1);
        assert_eq!(queue.submit(vec![], 0).unwrap_err().status(), 400);
    }

    #[test]
    fn completion_frees_an_admission_slot_in_order() {
        let queue = JobQueue::new(1);
        let job = queue.submit(tasks(2), 0).unwrap();
        assert_eq!(job.state(), JobState::Queued);
        assert!(queue.submit(tasks(1), 0).is_err(), "slot is taken");

        let first = queue.pop().unwrap();
        assert_eq!(job.state(), JobState::Running);
        let result = TaskResult {
            outcome: TaskOutcome::TimedOut,
            provenance: Provenance::Computed,
            spans: vec![],
        };
        assert!(!queue.complete(&first, result.clone()), "job not done yet");
        let second = queue.pop().unwrap();
        assert!(queue.complete(&second, result), "job done");
        assert_eq!(job.state(), JobState::Done);
        assert_eq!(queue.open_jobs(), 0);
        queue.submit(tasks(1), 0).unwrap();
    }

    #[test]
    fn shutdown_stops_admission_and_abandons_queued_work() {
        let queue = JobQueue::new(4);
        queue.submit(tasks(1), 0).unwrap();
        queue.shutdown();
        assert!(matches!(
            queue.submit(tasks(1), 0).unwrap_err(),
            Rejection::ShuttingDown
        ));
        assert!(
            queue.pop().is_none(),
            "unstarted work is abandoned so the pool never hangs"
        );
    }

    #[test]
    fn idempotency_key_attaches_retries_to_the_original_job() {
        let queue = JobQueue::new(1);
        let (job, deduplicated) = queue.submit_keyed(tasks(1), 0, Some("key-1"), None).unwrap();
        assert!(!deduplicated);
        // The retry attaches even though the admission slot is taken.
        let (again, deduplicated) = queue.submit_keyed(tasks(1), 0, Some("key-1"), None).unwrap();
        assert!(deduplicated);
        assert_eq!(again.id, job.id);
        assert_eq!(queue.open_jobs(), 1, "no duplicate admission");
        assert_eq!(queue.depth(), 1, "no duplicate work items");
        // A different key is a genuinely new submission (rejected here:
        // the single slot is taken).
        assert!(queue.submit_keyed(tasks(1), 0, Some("key-2"), None).is_err());
        // Keyless submissions never deduplicate.
        assert!(queue.submit_keyed(tasks(1), 0, None, None).is_err());
    }

    #[test]
    fn idempotent_retry_attaches_even_during_shutdown() {
        let queue = JobQueue::new(4);
        let (job, _) = queue.submit_keyed(tasks(1), 0, Some("key-1"), None).unwrap();
        queue.shutdown();
        let (again, deduplicated) = queue.submit_keyed(tasks(1), 0, Some("key-1"), None).unwrap();
        assert!(deduplicated);
        assert_eq!(again.id, job.id);
        assert!(queue.submit_keyed(tasks(1), 0, Some("key-2"), None).is_err());
    }

    #[test]
    fn restore_preserves_ids_and_bypasses_admission() {
        let queue = JobQueue::new(1);
        // Recovery re-admits under the original id even beyond the
        // admission bound...
        let a = queue.restore(7, "idem-7", tasks(1), 0);
        let b = queue.restore(9, "", tasks(2), 0);
        assert_eq!((a.id, b.id), (7, 9));
        assert!(a.recovered && b.recovered);
        assert_eq!(queue.open_jobs(), 2);
        assert_eq!(queue.depth(), 3);
        // ...fresh submissions continue past the highest restored id...
        queue.complete(
            &queue.pop().unwrap(),
            TaskResult {
                outcome: TaskOutcome::TimedOut,
                provenance: Provenance::Hit,
                spans: vec![],
            },
        );
        queue.complete(
            &queue.pop().unwrap(),
            TaskResult {
                outcome: TaskOutcome::TimedOut,
                provenance: Provenance::Hit,
                spans: vec![],
            },
        );
        queue.complete(
            &queue.pop().unwrap(),
            TaskResult {
                outcome: TaskOutcome::TimedOut,
                provenance: Provenance::Hit,
                spans: vec![],
            },
        );
        let fresh = queue.submit(tasks(1), 0).unwrap();
        assert_eq!(fresh.id, 10);
        assert!(!fresh.recovered);
        // ...and restored idempotency keys still deduplicate retries.
        let (again, deduplicated) = queue.submit_keyed(tasks(1), 0, Some("idem-7"), None).unwrap();
        assert!(deduplicated);
        assert_eq!(again.id, 7);
    }

    #[test]
    fn reused_key_with_different_tasks_conflicts() {
        let queue = JobQueue::new(4);
        let (job, _) = queue.submit_keyed(tasks(1), 0, Some("key-1"), None).unwrap();
        // Same key, different sweep: refusing is the only answer that
        // neither duplicates work nor serves unrelated results.
        let rejection = queue
            .submit_keyed(tasks(2), 0, Some("key-1"), None)
            .unwrap_err();
        assert_eq!(rejection, Rejection::KeyMismatch);
        assert_eq!(rejection.status(), 409);
        assert_eq!(queue.open_jobs(), 1, "no second admission");
        // The original mapping is intact.
        let (again, deduplicated) = queue.submit_keyed(tasks(1), 0, Some("key-1"), None).unwrap();
        assert!(deduplicated);
        assert_eq!(again.id, job.id);
    }

    #[test]
    fn concurrent_same_key_submissions_admit_exactly_one_job() {
        let queue = Arc::new(JobQueue::new(64));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let ids: Vec<u64> = (0..8)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (job, _) = queue.submit_keyed(tasks(1), 0, Some("race"), None).unwrap();
                    job.id
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|t| t.join().unwrap())
            .collect();
        assert!(
            ids.iter().all(|id| *id == ids[0]),
            "one job for one key: {ids:?}"
        );
        assert_eq!(queue.open_jobs(), 1);
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn idempotency_map_is_bounded_with_lru_eviction() {
        let mut map = IdemMap::default();
        for i in 0..IDEMPOTENCY_CAP + 10 {
            map.insert(&format!("key-{i}"), i as u64);
        }
        assert_eq!(map.len(), IDEMPOTENCY_CAP, "cap holds");
        assert_eq!(map.get("key-0"), None, "oldest keys evicted");
        assert_eq!(
            map.get(&format!("key-{}", IDEMPOTENCY_CAP + 9)),
            Some((IDEMPOTENCY_CAP + 9) as u64)
        );
        // A hit refreshes recency: key-10 survives the next eviction,
        // key-11 (now the least recently used) does not.
        assert!(map.get("key-10").is_some());
        map.insert("fresh", 1);
        assert!(map.get("key-10").is_some(), "refreshed key survives");
        assert_eq!(map.get("key-11"), None, "stale key evicted instead");
        // Re-inserting an existing key must not grow the map.
        map.insert("fresh", 2);
        assert_eq!(map.len(), IDEMPOTENCY_CAP);
        assert_eq!(map.get("fresh"), Some(2));
    }

    #[test]
    fn journaled_submission_precedes_worker_visibility() {
        let dir = std::env::temp_dir().join(format!(
            "ds-anvil-wal-order-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (journal, _) = Journal::open(&dir).unwrap();
        let queue = JobQueue::new(4);
        // A worker journaling task-started the instant it can pop must
        // always land after the job-submitted record: replay treats
        // records for an unknown job as corruption.
        let (job, _) = queue
            .submit_keyed(tasks(1), 0, Some("wal"), Some(&journal))
            .unwrap();
        let item = queue.pop().unwrap();
        journal.task_started(job.id, item.idx);
        let recovery = Journal::peek(&dir);
        assert!(recovery.quarantined.is_none(), "records replay in order");
        assert!(!recovery.torn_tail);
        assert_eq!(recovery.records, 2);
        assert_eq!(recovery.jobs.len(), 1);
        assert_eq!(recovery.jobs[0].id, job.id);
        assert_eq!(recovery.jobs[0].key, "wal");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn results_keep_submission_order() {
        let queue = JobQueue::new(1);
        let job = queue.submit(tasks(2), 0).unwrap();
        let a = queue.pop().unwrap();
        let b = queue.pop().unwrap();
        // Complete out of order; slots still line up with submission.
        queue.complete(
            &b,
            TaskResult {
                outcome: TaskOutcome::Failed("b".into()),
                provenance: Provenance::Computed,
                spans: vec![],
            },
        );
        queue.complete(
            &a,
            TaskResult {
                outcome: TaskOutcome::Failed("a".into()),
                provenance: Provenance::Hit,
                spans: vec![],
            },
        );
        let results = job.results();
        assert!(
            matches!(&results[0].as_ref().unwrap().outcome, TaskOutcome::Failed(m) if m == "a")
        );
        assert!(
            matches!(&results[1].as_ref().unwrap().outcome, TaskOutcome::Failed(m) if m == "b")
        );
    }
}
