//! `ds-serve`: simulation as a service.
//!
//! A long-running HTTP job API over the deterministic runner, so a
//! lab (or a CI fleet) can share one simulation service instead of
//! each user re-running identical configurations:
//!
//! * [`server`] — the service: accept loop, HTTP handler pool, and a
//!   simulation worker pool draining a bounded job queue;
//! * [`api`] — the endpoints: submit a task list or sweep, poll job
//!   status, fetch per-task results (full lossless `RunReport`
//!   JSON), scrape health/metrics;
//! * [`jobs`] — job records and admission control: a bounded open-job
//!   count with explicit 429 rejection, never a hang;
//! * [`http`] — a minimal HTTP/1.1 layer over `std::net` (the
//!   workspace builds offline; no dependencies);
//! * [`client`] — the CLI/CI client, including the fold that turns
//!   served results back into byte-identical `dsrun --format json`
//!   output, with jittered-backoff retries and idempotent
//!   resubmission;
//! * [`journal`] — ds-anvil: the append-only job journal `dsserve`
//!   replays on startup, so a crash or `kill -9` loses no accepted
//!   job (torn tails truncated, corrupt journals quarantined);
//! * [`stress`] — the built-in load harness: seeded virtual users,
//!   ops/sec, p50/p95/p99 op latency, store hit rate.
//!
//! Identical tasks — across jobs, users, and server restarts — are
//! computed once: workers fetch through
//! [`ds_runner::SharedStore`], the concurrency-safe
//! content-addressed store keyed by `TaskKey` and layered on the
//! `results/` disk cache. The simulator is deterministic, so a cache
//! hit is indistinguishable from a fresh run, and the service's
//! results are bit-identical to batch `dsrun` — a property the CI
//! smoke gate checks with `cmp` on every run.

pub mod api;
pub mod client;
pub mod http;
pub mod jobs;
pub mod journal;
pub mod server;
pub mod stress;

pub use client::{
    fetch_results, submit, submit_with_retry, sweep_body, sweep_doc, wait_done, RetryPolicy,
    SubmitAnswer,
};
pub use jobs::{JobQueue, JobRecord, JobState, Rejection, TaskResult};
pub use journal::{Journal, JournalStats, RecoveredJob, Recovery};
pub use server::{RecoveryReport, ServeOptions, ServeState, Server};
pub use stress::{run_stress, StressOptions, StressSummary, STRESS_CSV_HEADER};
