//! Per-run statistics reports.

use std::fmt;

use ds_cache::CacheStats;
use ds_noc::XbarStats;
use ds_probe::{
    EpochSample, HostProfile, LatencyReport, LensReport, PulseSeries, SpanTree, StageBreakdown,
};
use ds_sim::Cycle;

use crate::Mode;

/// Everything a single simulation run reports.
///
/// The paper's figures derive from pairs of these: Fig. 4 compares
/// [`RunReport::total_cycles`] across modes, Fig. 5 compares
/// [`RunReport::gpu_l2`] miss rates.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The mode the run executed under.
    pub mode: Mode,
    /// End-to-end execution time ("total ticks" in the paper).
    pub total_cycles: Cycle,
    /// Aggregated GPU L2 statistics (all four slices).
    pub gpu_l2: CacheStats,
    /// CPU L2 statistics.
    pub cpu_l2: CacheStats,
    /// Aggregated per-SM GPU L1 statistics.
    pub gpu_l1: CacheStats,
    /// CPU L1D statistics.
    pub cpu_l1: CacheStats,
    /// Coherence-network traffic.
    pub coh_net: XbarStats,
    /// Direct-network traffic (zero under CCSM).
    pub direct_net: XbarStats,
    /// GPU-internal network traffic.
    pub gpu_net: XbarStats,
    /// DRAM reads.
    pub dram_reads: u64,
    /// DRAM writes.
    pub dram_writes: u64,
    /// Stores pushed to the GPU L2 over the direct network.
    pub direct_pushes: u64,
    /// CPU store-buffer stalls (buffer full).
    pub store_buffer_stalls: u64,
    /// Kernels executed.
    pub kernels_run: u64,
    /// Warps completed.
    pub warps_completed: u64,
    /// When the first kernel began (the CPU produce phase ends around
    /// here).
    pub first_kernel_start: Cycle,
    /// When the last kernel finished (the readback phase follows).
    pub last_kernel_end: Cycle,
    /// Per-kernel-launch `(start, end)` spans, in launch order.
    pub kernel_spans: Vec<(Cycle, Cycle)>,
    /// Pushes that found their L2 set full and wrote to DRAM instead
    /// (§III.A's overflow policy).
    pub push_bypasses: u64,
    /// Coherence transactions served by the hub.
    pub hub_transactions: u64,
    /// Requests that queued behind a same-line transaction.
    pub hub_conflicts: u64,
    /// Probes broadcast by the hub.
    pub hub_probes: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// Direct-store pushes drained from the store buffer (equals
    /// `direct_pushes + pushes_degraded`: every attempt is either
    /// acknowledged or degraded — the ds-chaos no-silent-loss
    /// invariant).
    pub pushes_attempted: u64,
    /// Push retries sent by the ack-timeout protocol (only nonzero
    /// under an active fault plan with retries enabled).
    pub pushes_retried: u64,
    /// Pushes that exhausted their retries and degraded to the CCSM
    /// demand path (written to the DRAM home instead).
    pub pushes_degraded: u64,
    /// Faults injected by the run's fault plan (zero without one).
    pub faults_injected: u64,
    /// Total simulation events processed (simulator-effort metric).
    pub events: u64,
    /// Sim-wide latency distributions (GPU load-to-use, direct-push
    /// end-to-end, hub transaction, DRAM queue) with p50/p95/p99
    /// summaries.
    pub latency: LatencyReport,
    /// Per-transaction cycle accounting aggregated over all completed
    /// GPU loads and direct-store pushes: total cycles per lifecycle
    /// stage plus per-path counts and end-to-end sums. Collected
    /// unconditionally (like [`RunReport::latency`]); for every
    /// completed transaction the stage cycles sum exactly to its
    /// end-to-end latency.
    pub stages: StageBreakdown,
    /// Per-cacheline forensics aggregated over the run: push efficacy
    /// (useful / dead / clobbered, reconciling exactly against
    /// `gpu_l2.pushed_fills`), sharing pathologies (ping-pong,
    /// write-after-push), first-touch / reuse histograms, and
    /// per-slice / per-bank / per-link traffic heatmaps. Collected
    /// unconditionally (like [`RunReport::latency`]).
    pub lens: LensReport,
    /// Cycle-domain time-series telemetry: per-window counter deltas,
    /// sampled gauges and anomaly annotations from the pulse sampler.
    /// `None` unless pulse sampling was enabled
    /// (`System::enable_pulse`). Per-window deltas sum exactly to the
    /// run's final totals ([`ds_probe::PulseSeries::check_conservation`]),
    /// and sampling never feeds back into simulated timing.
    pub pulse: Option<PulseSeries>,
    /// Windowed activity series, derived from [`RunReport::pulse`]
    /// via [`ds_probe::pulse::epoch_view`]; empty unless pulse
    /// sampling was enabled.
    pub epochs: Vec<EpochSample>,
    /// The (post-coalescing) pulse window length in cycles (zero when
    /// sampling was off).
    pub epoch_window: u64,
    /// Host-time profile of the run (`ds_probe::prof`): wall-clock
    /// plus per-[`ds_probe::HostPhase`] self time and span counts,
    /// including the observability-tax buckets. `None` unless host
    /// profiling was enabled (`dsprof`, `perf_baseline`). Host time
    /// never feeds back into simulated timing — two runs differing
    /// only in this field are the same simulation.
    pub host: Option<HostProfile>,
    /// The task's ds-scope span tree (`task → queue-wait | sim-run`
    /// host-time intervals; under `ds-serve` the service prepends
    /// request/job/store spans). `None` unless scope collection is
    /// enabled (`ds_probe::scope::set_enabled`) at full probe level.
    /// Like [`RunReport::host`], spans never feed back into simulated
    /// timing.
    pub scope: Option<SpanTree>,
}

impl RunReport {
    /// The GPU L2 demand miss rate (the Fig. 5 metric).
    pub fn gpu_l2_miss_rate(&self) -> f64 {
        self.gpu_l2.miss_rate().as_f64()
    }

    /// GPU L2 compulsory misses (§IV's compulsory-miss discussion).
    pub fn gpu_l2_compulsory_misses(&self) -> u64 {
        self.gpu_l2.compulsory_misses.value()
    }

    /// Total cycles spent inside kernels (summed launch spans).
    pub fn kernel_cycles(&self) -> u64 {
        self.kernel_spans
            .iter()
            .map(|&(s, e)| e.saturating_since(s))
            .sum()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {} cycles", self.mode, self.total_cycles.as_u64())?;
        writeln!(f, "  gpu-l2: {}", self.gpu_l2)?;
        writeln!(f, "  cpu-l2: {}", self.cpu_l2)?;
        writeln!(
            f,
            "  nets: coh={} msgs, direct={} msgs, gpu={} msgs",
            self.coh_net.total_msgs(),
            self.direct_net.total_msgs(),
            self.gpu_net.total_msgs()
        )?;
        write!(
            f,
            "  dram: {} reads, {} writes; pushes={}; kernels={}",
            self.dram_reads, self.dram_writes, self.direct_pushes, self.kernels_run
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_cache::MissKind;

    fn dummy() -> RunReport {
        let mut gpu_l2 = CacheStats::new();
        gpu_l2.record_hit();
        gpu_l2.record_hit();
        gpu_l2.record_hit();
        gpu_l2.record_miss(MissKind::Compulsory);
        RunReport {
            mode: Mode::Ccsm,
            total_cycles: Cycle::new(1000),
            gpu_l2,
            cpu_l2: CacheStats::new(),
            gpu_l1: CacheStats::new(),
            cpu_l1: CacheStats::new(),
            coh_net: XbarStats::default(),
            direct_net: XbarStats::default(),
            gpu_net: XbarStats::default(),
            dram_reads: 5,
            dram_writes: 2,
            direct_pushes: 0,
            store_buffer_stalls: 0,
            kernels_run: 1,
            warps_completed: 32,
            first_kernel_start: Cycle::new(100),
            last_kernel_end: Cycle::new(900),
            kernel_spans: vec![(Cycle::new(100), Cycle::new(900))],
            push_bypasses: 0,
            hub_transactions: 0,
            hub_conflicts: 0,
            hub_probes: 0,
            dram_row_hits: 0,
            pushes_attempted: 0,
            pushes_retried: 0,
            pushes_degraded: 0,
            faults_injected: 0,
            events: 0,
            latency: LatencyReport::new(),
            stages: StageBreakdown::new(),
            lens: LensReport::empty(),
            pulse: None,
            epochs: Vec::new(),
            epoch_window: 0,
            host: None,
            scope: None,
        }
    }

    #[test]
    fn miss_rate_helper() {
        let r = dummy();
        assert_eq!(r.gpu_l2_miss_rate(), 0.25);
        assert_eq!(r.gpu_l2_compulsory_misses(), 1);
        assert_eq!(r.kernel_cycles(), 800);
    }

    #[test]
    fn display_mentions_mode_and_cycles() {
        let text = dummy().to_string();
        assert!(text.contains("CCSM"));
        assert!(text.contains("1000 cycles"));
    }
}
