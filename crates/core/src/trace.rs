//! Single-line data-movement traces (the paper's Fig. 1).
//!
//! Fig. 1 contrasts how one CPU-produced line reaches the GPU under
//! CCSM (store into the CPU hierarchy, then a pull chain on the first
//! GPU access) versus direct store (pushed straight to the GPU L2, a
//! single local pull to the L1). This module regenerates that
//! comparison quantitatively: it runs a one-line producer-consumer
//! microworkload under both modes and reports the message counts per
//! network plus the GPU's load-to-use time.

use ds_cpu::{CpuOp, Program};
use ds_gpu::{KernelTrace, WarpOp};
use ds_mem::VirtAddr;

use crate::{Mode, System, SystemConfig};

/// The data-movement summary for one mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowTrace {
    /// The mode traced.
    pub mode: Mode,
    /// Messages on the coherence network (requests, probes, acks,
    /// data, unblocks).
    pub coherence_msgs: u64,
    /// Messages on the dedicated direct network.
    pub direct_msgs: u64,
    /// Messages on the GPU-internal network.
    pub gpu_msgs: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// GPU L2 misses suffered by the consumer.
    pub gpu_l2_misses: u64,
    /// End-to-end cycles for produce + consume.
    pub total_cycles: u64,
}

impl std::fmt::Display for DataflowTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:<7}] coherence msgs: {:>2}  direct msgs: {:>2}  gpu msgs: {:>2}  dram: {:>2}  gpu-l2 misses: {}  cycles: {}",
            self.mode.to_string(),
            self.coherence_msgs,
            self.direct_msgs,
            self.gpu_msgs,
            self.dram_accesses,
            self.gpu_l2_misses,
            self.total_cycles
        )
    }
}

/// Traces the movement of a single CPU-produced line to the GPU under
/// `mode` (Fig. 1's scenario: `st x` on the CPU, `ld x` on the GPU).
pub fn trace_single_line(mode: Mode) -> DataflowTrace {
    trace_lines(mode, 1)
}

/// Traces `lines` produced lines (Fig. 1 generalized; `lines = 1` is
/// the figure's exact scenario).
///
/// # Panics
///
/// Panics if `lines` is zero or exceeds `u16::MAX`.
pub fn trace_lines(mode: Mode, lines: u16) -> DataflowTrace {
    assert!(lines > 0, "need at least one line to trace");
    let base = VirtAddr::new(0x7f00_0000_0000);
    let mut program = Program::new();
    program.store_array(base, u64::from(lines) * 128, 0);
    program.push(CpuOp::Launch(0));
    program.push(CpuOp::WaitGpu);

    let mut kernel = KernelTrace::new("ld_x");
    kernel.push_warp(vec![WarpOp::global_load(base, lines)]);

    let mut system = System::new(SystemConfig::paper_default(), mode);
    let report = system.run(program, vec![kernel]);
    DataflowTrace {
        mode,
        coherence_msgs: report.coh_net.total_msgs(),
        direct_msgs: report.direct_net.total_msgs(),
        gpu_msgs: report.gpu_net.total_msgs(),
        dram_accesses: report.dram_reads + report.dram_writes,
        gpu_l2_misses: report.gpu_l2.misses.value(),
        total_cycles: report.total_cycles.as_u64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccsm_pulls_through_the_coherence_network() {
        let t = trace_single_line(Mode::Ccsm);
        assert_eq!(t.direct_msgs, 0, "no direct network under CCSM");
        assert!(t.coherence_msgs > 0, "the pull chain is coherence traffic");
        assert_eq!(t.gpu_l2_misses, 1, "the first GPU access misses");
    }

    #[test]
    fn direct_store_pushes_and_the_gpu_hits() {
        let t = trace_single_line(Mode::DirectStore);
        assert!(t.direct_msgs >= 3, "GETX + PUTX + ack at minimum");
        assert_eq!(t.gpu_l2_misses, 0, "data was pushed: first access hits");
    }

    #[test]
    fn direct_store_wins_the_figure_one_scenario() {
        let ccsm = trace_single_line(Mode::Ccsm);
        let ds = trace_single_line(Mode::DirectStore);
        assert!(ds.total_cycles < ccsm.total_cycles);
        assert!(ds.coherence_msgs < ccsm.coherence_msgs);
    }

    #[test]
    fn replacement_mode_uses_no_coherence_messages() {
        let t = trace_single_line(Mode::DirectStoreOnly);
        assert_eq!(t.coherence_msgs, 0);
        assert_eq!(t.gpu_l2_misses, 0);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_lines_panics() {
        trace_lines(Mode::Ccsm, 0);
    }
}
