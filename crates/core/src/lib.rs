//! # ds-core — the direct-store system model
//!
//! The paper's contribution, assembled: a timed model of the full
//! integrated CPU-GPU chip (Table I) that runs the same workload under
//! the baseline cache-coherent shared memory (**CCSM**, the Hammer
//! protocol) and under **direct store**, the push-based scheme in which
//! CPU stores to the reserved GPU-homed address window are forwarded
//! over a dedicated network straight into the GPU L2
//! (`I → MM` on arrival, paper Fig. 3).
//!
//! * [`SystemConfig`] — every structural and timing parameter, with
//!   [`SystemConfig::paper_default`] reproducing Table I,
//! * [`Mode`] — CCSM baseline, direct store as a *complement* (§III.A–G)
//!   or as a stand-alone *replacement* for coherence (§III.H),
//! * [`System`] — the event-driven machine: CPU core + TLB + store
//!   buffer + L1D/L2, sixteen SMs + L1s + four L2 slices, broadcast
//!   hub, DRAM, coherence network and the dedicated direct network,
//! * [`RunReport`] / [`Comparison`] — per-run statistics and the
//!   CCSM-vs-DS comparison the figures are built from,
//! * [`Pipeline`] and [`Scenario`] — the end-to-end experiment flow:
//!   translate the benchmark's source with `ds-xlat`, lay out memory,
//!   build programs, simulate both modes,
//! * [`trace`] — single-line data-movement traces (Fig. 1),
//! * [`topology`] — the simulated chip's wiring description (Fig. 2).
//!
//! # Examples
//!
//! Running a tiny hand-built scenario under both coherence modes:
//!
//! ```
//! use ds_core::{Mode, System, SystemConfig};
//! use ds_cpu::{CpuOp, Program};
//! use ds_gpu::{KernelTrace, WarpOp};
//! use ds_mem::VirtAddr;
//!
//! let cfg = SystemConfig::paper_default();
//! let mut produce = Program::new();
//! // CPU produces 64 lines that the GPU will read.
//! let base = VirtAddr::new(0x7f00_0000_0000); // in the direct window
//! produce.store_array(base, 64 * 128, 0);
//! produce.push(CpuOp::Launch(0));
//! produce.push(CpuOp::WaitGpu);
//!
//! let mut kernel = KernelTrace::new("consume");
//! for w in 0..8 {
//!     kernel.push_warp(vec![WarpOp::global_load(base.offset(w * 8 * 128), 8)]);
//! }
//!
//! let mut ccsm = System::new(cfg.clone(), Mode::Ccsm);
//! let r1 = ccsm.run(produce.clone(), vec![kernel.clone()]);
//! let mut ds = System::new(cfg, Mode::DirectStore);
//! let r2 = ds.run(produce, vec![kernel]);
//! assert!(r2.gpu_l2.misses.value() < r1.gpu_l2.misses.value());
//! ```

pub mod config;
pub mod fault;
pub mod pipeline;
pub mod report;
pub mod runtime;
pub mod topology;
pub mod trace;

pub use config::{Mode, SystemConfig};
pub use fault::{FaultDomain, FaultPlan, FaultRoll, NetFaultRates, SimAbort};
pub use pipeline::{Comparison, InputSize, Pipeline, PipelineError, Scenario, ScenarioBuild};
pub use report::RunReport;
pub use runtime::System;
