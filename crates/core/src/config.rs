//! System configuration (the paper's Table I plus timing constants).

use std::fmt;

use ds_cache::{CacheGeometry, ReplacementPolicy};
use ds_mem::DramConfig;

/// The coherence mode a [`System`](crate::System) runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The baseline: cache-coherent shared memory over the Hammer
    /// protocol; all data pulled on demand.
    Ccsm,
    /// The paper's proposal as a complement to CCSM (§III.A–G):
    /// GPU-homed data is pushed over the dedicated network; everything
    /// else behaves like CCSM.
    DirectStore,
    /// Direct store as a stand-alone replacement for coherence
    /// (§III.H): no probe broadcasts at all — CPU-GPU sharing happens
    /// exclusively through the direct-store window, so misses go
    /// straight to DRAM.
    DirectStoreOnly,
}

impl Mode {
    /// Whether direct-store pushes are active.
    pub fn pushes(self) -> bool {
        !matches!(self, Mode::Ccsm)
    }

    /// Whether the broadcast coherence protocol is active.
    pub fn coherent(self) -> bool {
        !matches!(self, Mode::DirectStoreOnly)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Ccsm => write!(f, "CCSM"),
            Mode::DirectStore => write!(f, "DS"),
            Mode::DirectStoreOnly => write!(f, "DS-only"),
        }
    }
}

/// Every structural and timing parameter of the simulated chip.
///
/// The constructor to start from is [`SystemConfig::paper_default`],
/// which encodes Table I; ablation studies mutate individual fields
/// from there (see the `ds-bench` crate).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// CPU L1 data cache (Table I: 64 KB, 2-way).
    pub cpu_l1d: CacheGeometry,
    /// CPU private L2 (Table I: 2 MB, 8-way).
    pub cpu_l2: CacheGeometry,
    /// Per-SM GPU L1 (Table I: 16 KB, 4-way; the 48 KB shared memory is
    /// modelled as fixed-latency `Shared` operations).
    pub gpu_l1: CacheGeometry,
    /// One GPU L2 slice (Table I: 2 MB / 4 slices = 512 KB, 16-way).
    pub gpu_l2_slice: CacheGeometry,
    /// Number of SMs (Table I: 16).
    pub sms: usize,
    /// Maximum resident warps per SM.
    pub warps_per_sm: usize,

    /// CPU L1D access latency, cycles.
    pub cpu_l1_latency: u64,
    /// CPU L2 access latency, cycles.
    pub cpu_l2_latency: u64,
    /// GPU L1 access latency, cycles.
    pub gpu_l1_latency: u64,
    /// GPU L2 slice access latency, cycles.
    pub gpu_l2_latency: u64,
    /// GPU L2 slice service occupancy: cycles the slice's tag/data
    /// port is busy per access (zero = infinite bandwidth).
    pub gpu_l2_service: u64,

    /// Coherence-network per-hop latency, cycles.
    pub coh_hop_latency: u64,
    /// Coherence-network link bandwidth, bytes/cycle.
    pub coh_bytes_per_cycle: u64,
    /// Dedicated direct network per-hop latency (the paper gives it
    /// "exactly the same characteristics" as the coherence network).
    pub direct_hop_latency: u64,
    /// Dedicated direct network bandwidth, bytes/cycle.
    pub direct_bytes_per_cycle: u64,
    /// GPU-internal network (SM ↔ L2 slice) per-hop latency.
    pub gpu_net_latency: u64,
    /// GPU-internal network bandwidth, bytes/cycle.
    pub gpu_net_bytes_per_cycle: u64,

    /// CPU TLB entries.
    pub tlb_entries: usize,
    /// Page-walk penalty on a TLB miss, cycles.
    pub tlb_miss_penalty: u64,
    /// Per-SM GPU TLB entries.
    pub gpu_tlb_entries: usize,
    /// GPU page-walk penalty on a TLB miss, cycles (GPU walkers are
    /// slower and shared).
    pub gpu_tlb_miss_penalty: u64,
    /// Store-buffer entries.
    pub store_buffer_entries: usize,
    /// Maximum store-buffer entries draining to the memory system
    /// concurrently (the cache pipeline's store bandwidth).
    pub store_drain_parallelism: usize,
    /// MSHRs per GPU L2 slice.
    pub gpu_l2_mshrs: usize,
    /// MSHRs at the CPU L2.
    pub cpu_l2_mshrs: usize,

    /// Replacement policy for the coherent caches (CPU L2, GPU L2
    /// slices). The paper's Ruby configuration uses LRU; tree-PLRU is
    /// the hardware-cheap alternative the `ablate_policy` study sweeps.
    pub replacement: ReplacementPolicy,
    /// DRAM geometry and timing.
    pub dram: DramConfig,
    /// Optional next-line prefetcher at the GPU L2 (off in the paper's
    /// configuration; used by the prefetch-comparison ablation).
    pub gpu_l2_prefetch: bool,
    /// Replace Hammer's probe broadcast with a directory filter at the
    /// memory controller (off in the paper's configuration; the
    /// `ablate_directory` study quantifies the traffic it removes,
    /// mirroring the heterogeneous-system-coherence comparison the
    /// paper cites as related work).
    pub directory_filter: bool,
}

impl SystemConfig {
    /// The configuration of the paper's Table I.
    pub fn paper_default() -> Self {
        SystemConfig {
            cpu_l1d: CacheGeometry::new(64 * 1024, 2).expect("Table I CPU L1D"),
            cpu_l2: CacheGeometry::new(2 * 1024 * 1024, 8).expect("Table I CPU L2"),
            gpu_l1: CacheGeometry::new(16 * 1024, 4).expect("Table I GPU L1"),
            gpu_l2_slice: CacheGeometry::new(512 * 1024, 16).expect("Table I GPU L2 slice"),
            sms: 16,
            warps_per_sm: 48,

            cpu_l1_latency: 3,
            cpu_l2_latency: 12,
            gpu_l1_latency: 28,
            gpu_l2_latency: 32,
            gpu_l2_service: 4,

            coh_hop_latency: 20,
            coh_bytes_per_cycle: 32,
            direct_hop_latency: 20,
            direct_bytes_per_cycle: 32,
            gpu_net_latency: 12,
            gpu_net_bytes_per_cycle: 32,

            tlb_entries: 64,
            tlb_miss_penalty: 60,
            gpu_tlb_entries: 32,
            gpu_tlb_miss_penalty: 120,
            store_buffer_entries: 16,
            store_drain_parallelism: 8,
            gpu_l2_mshrs: 64,
            cpu_l2_mshrs: 16,

            replacement: ReplacementPolicy::Lru,
            dram: DramConfig::paper_default(),
            gpu_l2_prefetch: false,
            directory_filter: false,
        }
    }

    /// Number of GPU L2 slices (fixed by the coherence agent layout).
    pub fn gpu_l2_slices(&self) -> usize {
        ds_coherence::GPU_L2_SLICES
    }

    /// Total GPU L2 capacity across slices.
    pub fn gpu_l2_total_bytes(&self) -> u64 {
        self.gpu_l2_slice.size_bytes() * self.gpu_l2_slices() as u64
    }

    /// Validates cross-field constraints.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.sms == 0 {
            return Err("sms must be non-zero".into());
        }
        if self.warps_per_sm == 0 {
            return Err("warps_per_sm must be non-zero".into());
        }
        if self.gpu_l2_mshrs == 0 || self.cpu_l2_mshrs == 0 {
            return Err("MSHR counts must be non-zero".into());
        }
        if self.store_buffer_entries == 0 || self.tlb_entries == 0 {
            return Err("store buffer and TLB must be non-empty".into());
        }
        if self.gpu_tlb_entries == 0 {
            return Err("gpu_tlb_entries must be non-zero".into());
        }
        if self.store_drain_parallelism == 0 {
            return Err("store_drain_parallelism must be non-zero".into());
        }
        self.dram.validate()
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for SystemConfig {
    /// Renders the configuration in the shape of the paper's Table I.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CPU")?;
        writeln!(f, "  Cores      1")?;
        writeln!(f, "  L1D cache  {}", self.cpu_l1d)?;
        writeln!(f, "  L2 cache   {}", self.cpu_l2)?;
        writeln!(f, "GPU")?;
        writeln!(
            f,
            "  SMs        {} - 32 lanes per SM, {} resident warps",
            self.sms, self.warps_per_sm
        )?;
        writeln!(f, "  L1 cache   {} (+48KB shared memory)", self.gpu_l1)?;
        writeln!(
            f,
            "  L2 cache   {} x {} slices = {}KB total",
            self.gpu_l2_slice,
            self.gpu_l2_slices(),
            self.gpu_l2_total_bytes() / 1024
        )?;
        writeln!(f, "MEMORY")?;
        write!(
            f,
            "  DRAM       {} channel(s), {} ranks, {} banks/rank",
            self.dram.channels, self.dram.ranks, self.dram.banks_per_rank
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = SystemConfig::paper_default();
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.gpu_l2_total_bytes(), 2 * 1024 * 1024);
        assert_eq!(cfg.gpu_l2_slices(), 4);
    }

    #[test]
    fn drain_parallelism_constraint() {
        let mut cfg = SystemConfig::paper_default();
        cfg.store_drain_parallelism = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_fields_rejected() {
        for f in ["sms", "warps", "mshr", "sb"] {
            let mut cfg = SystemConfig::paper_default();
            match f {
                "sms" => cfg.sms = 0,
                "warps" => cfg.warps_per_sm = 0,
                "mshr" => cfg.gpu_l2_mshrs = 0,
                _ => cfg.store_buffer_entries = 0,
            }
            assert!(cfg.validate().is_err(), "{f} = 0 must be rejected");
        }
    }

    #[test]
    fn mode_predicates() {
        assert!(!Mode::Ccsm.pushes());
        assert!(Mode::DirectStore.pushes());
        assert!(Mode::DirectStoreOnly.pushes());
        assert!(Mode::Ccsm.coherent());
        assert!(Mode::DirectStore.coherent());
        assert!(!Mode::DirectStoreOnly.coherent());
    }

    #[test]
    fn display_resembles_table_one() {
        let text = SystemConfig::paper_default().to_string();
        assert!(text.contains("CPU"));
        assert!(text.contains("GPU"));
        assert!(text.contains("MEMORY"));
        assert!(text.contains("64KB 2-way"));
        assert!(text.contains("16 - 32 lanes"));
        assert_eq!(Mode::DirectStore.to_string(), "DS");
    }
}
