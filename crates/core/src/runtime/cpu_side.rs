//! CPU-side event handlers: the in-order core, TLB, store buffer and
//! the two CPU cache levels.
//!
//! Timing convention: `Ev::CpuL2Access` events are scheduled with the
//! L1 + L2 access latencies already elapsed, so handlers act at their
//! event time. Coherence-network latencies are applied by the `Xbar`
//! when messages are sent.

use ds_cache::{LineState, MissKind, MshrOutcome};
use ds_coherence::{Agent, CohMsg, DirectMsg, HammerState, ReqKind};
use ds_cpu::CpuOp;
use ds_gpu::L1Valid;
use ds_mem::{LineAddr, VirtAddr};
use ds_noc::{MsgClass, PortId};
use ds_probe::prof::{self, HostPhase};
use ds_probe::{Component, NetId, Stage, TraceKind, Tracer};

use super::{CpuBlock, Delivery, Ev, System, Waiter};
use crate::fault::{FaultDomain, SimAbort};

/// Fixed cost of dispatching a kernel launch from the CPU to the GPU
/// front-end (driver + command processor), in cycles.
pub(super) const KERNEL_LAUNCH_OVERHEAD: u64 = 500;

impl<T: Tracer> System<T> {
    /// Sends a coherence-network message and schedules its arrival.
    pub(super) fn coh_send(&mut self, src: Agent, dst: Agent, msg: CohMsg) {
        let _prof = prof::span(HostPhase::NocTick);
        let class = if msg.carries_data() {
            MsgClass::Data
        } else {
            MsgClass::Control
        };
        let (sp, dp) = (src.port_index(), dst.port_index());
        let info = self
            .coh_net
            .send_info(self.now, PortId(sp), PortId(dp), class);
        self.lens.net_msg(
            NetId::Coherence,
            sp as u8,
            dp as u8,
            class == MsgClass::Data,
        );
        self.trace(
            Component::Net {
                net: NetId::Coherence,
            },
            Some(msg.line().index()),
            TraceKind::NetMsg {
                src: sp as u8,
                dst: dp as u8,
                data: class == MsgClass::Data,
                start: info.start.as_u64(),
                depart: info.depart.as_u64(),
                arrive: info.arrival.as_u64(),
            },
        );
        match self.fault_delivery(FaultDomain::CohNet, info.arrival) {
            Delivery::Deliver(at) => self.sched(at, Ev::Coh { dst, msg }),
            Delivery::Drop => {}
            Delivery::Duplicate(a, b) => {
                self.sched(a, Ev::Coh { dst, msg });
                self.sched(b, Ev::Coh { dst, msg });
            }
        }
    }

    /// Sends a direct-network message over ports `src → dst`, tracing
    /// the link occupancy, and returns the arrival time.
    fn direct_send(&mut self, src: usize, dst: usize, msg: &DirectMsg) -> ds_sim::Cycle {
        let _prof = prof::span(HostPhase::NocTick);
        let class = if msg.carries_data() {
            MsgClass::Data
        } else {
            MsgClass::Control
        };
        let info = self
            .direct_net
            .send_info(self.now, PortId(src), PortId(dst), class);
        self.lens
            .net_msg(NetId::Direct, src as u8, dst as u8, class == MsgClass::Data);
        self.trace(
            Component::Net { net: NetId::Direct },
            Some(msg.line().index()),
            TraceKind::NetMsg {
                src: src as u8,
                dst: dst as u8,
                data: class == MsgClass::Data,
                start: info.start.as_u64(),
                depart: info.depart.as_u64(),
                arrive: info.arrival.as_u64(),
            },
        );
        info.arrival
    }

    /// Sends a direct-network message from the CPU to a slice. `txn`
    /// is the stage-accounting transaction riding the message, if any.
    pub(super) fn direct_send_to_slice(&mut self, slice: u8, msg: DirectMsg, txn: Option<u64>) {
        let arrival = self.direct_send(0, 1 + slice as usize, &msg);
        let ev = Ev::DirectAtSlice {
            slice,
            msg,
            slotted: false,
            txn,
        };
        match self.fault_delivery(FaultDomain::DirectNet, arrival) {
            Delivery::Deliver(at) => self.sched(at, ev),
            Delivery::Drop => {}
            Delivery::Duplicate(a, b) => {
                self.sched(a, ev);
                self.sched(b, ev);
            }
        }
    }

    /// Sends a direct-network message from a slice back to the CPU.
    pub(super) fn direct_send_to_cpu(&mut self, slice: u8, msg: DirectMsg, txn: Option<u64>) {
        let arrival = self.direct_send(1 + slice as usize, 0, &msg);
        match self.fault_delivery(FaultDomain::DirectNet, arrival) {
            Delivery::Deliver(at) => self.sched(at, Ev::DirectAtCpu { msg, txn }),
            Delivery::Drop => {}
            Delivery::Duplicate(a, b) => {
                self.sched(a, Ev::DirectAtCpu { msg, txn });
                self.sched(b, Ev::DirectAtCpu { msg, txn });
            }
        }
    }

    fn translate_cpu(&mut self, va: VirtAddr) -> (LineAddr, bool, u64) {
        let look = self.tlb.lookup(va);
        let mut cost = 1;
        let missed = !look.is_hit();
        if missed {
            cost += self.cfg.tlb_miss_penalty;
            let is_direct = look.is_direct;
            let ppn = self
                .space
                .page_table_mut()
                .translate_or_alloc(look.vpn, is_direct);
            self.tlb.fill(look.vpn, ppn);
        }
        let pa = self.space.translate(va);
        let line = LineAddr::containing(pa);
        if missed {
            self.trace(Component::CpuTlb, Some(line.index()), TraceKind::TlbMiss);
        }
        (line, look.is_direct, cost)
    }

    /// Executes the CPU's next program operation (`Ev::CpuAdvance`).
    pub(super) fn cpu_advance(&mut self) {
        if self.cpu.block != CpuBlock::None {
            // Stale wake-up; the real resume event will follow.
            return;
        }
        let Some(&op) = self.cpu.program.ops().get(self.cpu.pc) else {
            self.cpu.block = CpuBlock::Finished;
            return;
        };
        match op {
            CpuOp::Compute(n) => {
                self.cpu.pc += 1;
                self.queue
                    .push(self.now + u64::from(n.max(1)), Ev::CpuAdvance);
            }
            CpuOp::Launch(k) => {
                self.cpu.pc += 1;
                assert!(k < self.kernels.len(), "launch of unknown kernel {k}");
                self.kernel_queue.push_back(k);
                if self.running_kernel.is_none() && self.kernel_queue.len() == 1 {
                    self.queue
                        .push(self.now + KERNEL_LAUNCH_OVERHEAD, Ev::KernelStart);
                }
                self.sched(self.now + 1, Ev::CpuAdvance);
            }
            CpuOp::WaitGpu => {
                self.cpu.pc += 1;
                if self.running_kernel.is_some() || !self.kernel_queue.is_empty() {
                    self.cpu.block = CpuBlock::Gpu;
                } else {
                    self.sched(self.now + 1, Ev::CpuAdvance);
                }
            }
            CpuOp::Store(va) => self.cpu_store(va),
            CpuOp::Load(va) => self.cpu_load(va),
        }
    }

    fn cpu_store(&mut self, va: VirtAddr) {
        let (line, is_direct, cost) = self.translate_cpu(va);
        let push = is_direct && self.mode.pushes();
        let before = self.sb.len();
        if self.sb.push(line, push) {
            self.lens.cpu_store(line.index(), push, self.now.as_u64());
            if self.sb.len() > before {
                // A genuinely new entry (not a same-line coalesce):
                // mirror it in the txn FIFO. Only direct pushes are
                // tracked; coalesced stores join the first store's
                // transaction (one drain serves them all).
                let txn = if push {
                    let txn = self.next_txn();
                    self.stage_begin(txn, Stage::SbWait, self.now);
                    Some(txn)
                } else {
                    None
                };
                self.sb_txns.push_back(txn);
            }
            self.cpu.pc += 1;
            self.sched(self.now + cost, Ev::CpuAdvance);
            self.kick_drain();
        } else {
            // Buffer full: retry this op when a drain completes.
            self.cpu.block = CpuBlock::SbFull;
            self.kick_drain();
        }
    }

    fn cpu_load(&mut self, va: VirtAddr) {
        let (line, is_direct, cost) = self.translate_cpu(va);
        self.cpu.pc += 1;
        if is_direct && self.mode.pushes() {
            // Uncacheable on the CPU side: read through the direct
            // network from the home slice (§III.E).
            self.cpu.block = CpuBlock::Load;
            self.direct_send_to_slice(
                ds_coherence::msg::slice_index(line),
                DirectMsg::ReadReq { line },
                None,
            );
            return;
        }
        if self.sb.contains(line) || self.inflight_stores.iter().any(|(e, _)| e.line == line) {
            // Store-to-load forwarding (buffered or draining stores).
            self.sched(self.now + cost, Ev::CpuAdvance);
            return;
        }
        if self.cpu_l1d.access(line).is_some() {
            self.cpu_l1_stats.record_hit();
            self.trace(
                Component::CpuL1,
                Some(line.index()),
                TraceKind::Hit { push_hit: false },
            );
            self.queue
                .push(self.now + cost + self.cfg.cpu_l1_latency, Ev::CpuAdvance);
            return;
        }
        self.cpu_l1_stats.record_miss(MissKind::NonCompulsory);
        self.trace(
            Component::CpuL1,
            Some(line.index()),
            TraceKind::Miss {
                write: false,
                compulsory: false,
            },
        );
        self.cpu.block = CpuBlock::Load;
        self.sched(
            self.now + cost + self.cfg.cpu_l1_latency + self.cfg.cpu_l2_latency,
            Ev::CpuL2Access { line, write: false },
        );
    }

    /// Resumes the CPU after a blocking load completes.
    pub(super) fn resume_cpu_load(&mut self) {
        debug_assert_eq!(self.cpu.block, CpuBlock::Load);
        self.cpu.block = CpuBlock::None;
        self.sched(self.now + 1, Ev::CpuAdvance);
    }

    /// Schedules a store-buffer drain attempt if capacity allows.
    pub(super) fn kick_drain(&mut self) {
        if self.inflight_stores.len() < self.cfg.store_drain_parallelism && !self.sb.is_empty() {
            self.sched(self.now, Ev::SbDrain);
        }
    }

    /// Starts draining store-buffer entries up to the drain
    /// parallelism limit (`Ev::SbDrain`).
    pub(super) fn sb_drain(&mut self) {
        let _prof = prof::span(HostPhase::PushPath);
        while self.inflight_stores.len() < self.cfg.store_drain_parallelism {
            let Some(entry) = self.sb.pop() else {
                break;
            };
            let txn = self.sb_txns.pop_front().flatten();
            self.inflight_stores.push((entry, self.now));
            self.trace(
                Component::StoreBuffer,
                Some(entry.line.index()),
                TraceKind::SbDrain {
                    direct: entry.is_direct,
                },
            );
            // Popping freed buffer space: a stalled store can retry.
            if self.cpu.block == CpuBlock::SbFull {
                self.cpu.block = CpuBlock::None;
                self.sched(self.now + 1, Ev::CpuAdvance);
            }
            if entry.is_direct {
                // §III.F: the CPU issues a GETX on the direct network,
                // then the store travels as a PUTX. The GETX is an
                // invalidate-only control message to the home slice.
                // The stage transaction rides the PUTX (the message
                // whose acknowledgement completes the push).
                self.stage_advance(txn, Stage::DirectNoc, self.now);
                self.pushes_attempted += 1;
                if self.faults.retries_enabled() {
                    let txn = txn.expect("direct entries are always tracked");
                    self.inflight_pushes.insert(
                        txn,
                        super::PushTrack {
                            line: entry.line,
                            attempt: 0,
                        },
                    );
                    self.sched(
                        self.now + self.faults.backoff(0),
                        Ev::PushTimeout { txn, attempt: 0 },
                    );
                }
                let slice = ds_coherence::msg::slice_index(entry.line);
                self.direct_send_to_slice(slice, DirectMsg::GetX { line: entry.line }, None);
                self.direct_send_to_slice(slice, DirectMsg::PutX { line: entry.line }, txn);
            } else {
                // Write-through the L1D (update-in-place, no allocate).
                if self.cpu_l1d.access(entry.line).is_some() {
                    self.cpu_l1_stats.record_hit();
                }
                self.sched(
                    self.now + self.cfg.cpu_l1_latency + self.cfg.cpu_l2_latency,
                    Ev::CpuL2Access {
                        line: entry.line,
                        write: true,
                    },
                );
            }
        }
    }

    /// Finishes an in-flight drain of `line` and kicks the next one.
    /// Returns the cycle the drain began (for end-to-end latency).
    pub(super) fn complete_drain(&mut self, line: LineAddr) -> ds_sim::Cycle {
        let pos = self
            .inflight_stores
            .iter()
            .position(|(e, _)| e.line == line)
            .unwrap_or_else(|| panic!("drain completion for idle {line}"));
        let (_, started) = self.inflight_stores.swap_remove(pos);
        self.kick_drain();
        started
    }

    /// A demand access arrives at the CPU L2 (`Ev::CpuL2Access`; tag
    /// latency already elapsed).
    pub(super) fn cpu_l2_access(&mut self, line: LineAddr, write: bool) {
        let _prof = prof::span(HostPhase::CacheLookup);
        if !write {
            if self.cpu_l2.array.access(line).is_some_and(|s| s.can_read()) {
                self.cpu_l2.record_hit(line);
                self.trace(
                    Component::CpuL2,
                    Some(line.index()),
                    TraceKind::Hit { push_hit: false },
                );
                self.fill_cpu_l1(line);
                self.resume_cpu_load();
                return;
            }
            self.cpu_l2_miss(line, ReqKind::GetS, Waiter::CpuLoad);
        } else {
            match self.cpu_l2.array.access(line).copied() {
                Some(HammerState::MM) => {
                    self.cpu_l2.record_hit(line);
                    self.trace(
                        Component::CpuL2,
                        Some(line.index()),
                        TraceKind::Hit { push_hit: false },
                    );
                    self.complete_drain(line);
                }
                Some(HammerState::M) => {
                    // Silent E-like upgrade (Fig. 3: M + Store -> MM).
                    *self
                        .cpu_l2
                        .array
                        .state_mut(line)
                        .expect("state checked above") = HammerState::MM;
                    self.cpu_l2.record_hit(line);
                    self.trace(
                        Component::CpuL2,
                        Some(line.index()),
                        TraceKind::Hit { push_hit: false },
                    );
                    self.complete_drain(line);
                }
                Some(HammerState::S) | Some(HammerState::O) | Some(HammerState::I) | None => {
                    // Write miss or upgrade: needs a GETX.
                    self.cpu_l2_miss(line, ReqKind::GetX, Waiter::CpuStoreDrain);
                }
            }
        }
    }

    fn cpu_l2_miss(&mut self, line: LineAddr, kind: ReqKind, waiter: Waiter) {
        // A GETX from a valid (S/O) copy is a data-less upgrade.
        let upgrade =
            kind == ReqKind::GetX && self.cpu_l2.array.probe(line).is_some_and(|s| s.is_valid());
        match self.cpu_l2.alloc_miss(line, kind, waiter) {
            MshrOutcome::Primary => {
                let miss_kind = self.cpu_l2.record_miss(line);
                self.trace(
                    Component::CpuL2,
                    Some(line.index()),
                    TraceKind::Miss {
                        write: kind == ReqKind::GetX,
                        compulsory: miss_kind == MissKind::Compulsory,
                    },
                );
                if self.mode.coherent() {
                    let msg = match kind {
                        ReqKind::GetS => CohMsg::GetS {
                            line,
                            requester: Agent::CpuL2,
                        },
                        ReqKind::GetX => CohMsg::GetX {
                            line,
                            requester: Agent::CpuL2,
                            upgrade,
                        },
                    };
                    self.coh_send(Agent::CpuL2, Agent::MemCtrl, msg);
                } else {
                    // DS-only mode: no coherence; fetch straight from
                    // DRAM. (For a full-line write the fetch is still
                    // modelled — conservative.)
                    let done = self.dram_access(self.now, line, false);
                    self.sched(done, Ev::CpuL2MemDone { line });
                }
            }
            MshrOutcome::Secondary => {
                let miss_kind = self.cpu_l2.record_miss(line);
                self.trace(
                    Component::CpuL2,
                    Some(line.index()),
                    TraceKind::Miss {
                        write: kind == ReqKind::GetX,
                        compulsory: miss_kind == MissKind::Compulsory,
                    },
                );
            }
            MshrOutcome::Full => {
                // Stall until an MSHR frees (drained by completions).
                let write = kind == ReqKind::GetX;
                self.cpu_l2_stalled.push_back((line, write));
            }
        }
    }

    /// Re-dispatches CPU L2 accesses stalled on a full MSHR file.
    pub(super) fn drain_cpu_l2_stalled(&mut self) {
        while !self.cpu_l2.mshr.is_full() {
            let Some((line, write)) = self.cpu_l2_stalled.pop_front() else {
                break;
            };
            self.sched(self.now, Ev::CpuL2Access { line, write });
        }
    }

    /// Installs a granted line into the CPU L2, handling the victim.
    pub(super) fn fill_cpu_l2(&mut self, line: LineAddr, state: HammerState) {
        if let Some((victim, dirty)) = self.cpu_l2.fill(line, state) {
            // Maintain L1D inclusion; clean victims drop silently
            // (Fig. 3: S/M + Replacement).
            self.cpu_l1d.invalidate(victim);
            if dirty {
                if self.mode.coherent() {
                    self.coh_send(
                        Agent::CpuL2,
                        Agent::MemCtrl,
                        CohMsg::Put {
                            line: victim,
                            dirty,
                            requester: Agent::CpuL2,
                        },
                    );
                } else {
                    self.dram_access(self.now, victim, true);
                }
            }
        }
    }

    pub(super) fn fill_cpu_l1(&mut self, line: LineAddr) {
        if self.cpu_l1d.fill(line, L1Valid).is_some() {
            self.cpu_l1_stats.evictions.incr();
        }
    }

    /// Completion of a DS-only (non-coherent) DRAM fill for the CPU L2.
    pub(super) fn cpu_l2_mem_done(&mut self, line: LineAddr) {
        let (kind, waiters) = self.cpu_l2.complete_miss(line);
        let state = match kind {
            ReqKind::GetX => HammerState::MM,
            ReqKind::GetS => HammerState::M,
        };
        self.fill_cpu_l2(line, state);
        self.dispatch_cpu_waiters(line, state, waiters);
        self.drain_cpu_l2_stalled();
    }

    /// Routes completed-miss waiters at the CPU L2.
    pub(super) fn dispatch_cpu_waiters(
        &mut self,
        line: LineAddr,
        granted: HammerState,
        waiters: Vec<Waiter>,
    ) {
        for w in waiters {
            match w {
                Waiter::CpuLoad => {
                    self.fill_cpu_l1(line);
                    self.resume_cpu_load();
                }
                Waiter::CpuStoreDrain => {
                    if granted == HammerState::MM {
                        self.complete_drain(line);
                    } else {
                        // Granted shared (a load's GETS won the MSHR):
                        // the store retries and upgrades.
                        self.queue
                            .push(self.now, Ev::CpuL2Access { line, write: true });
                    }
                }
                Waiter::Gpu { .. } | Waiter::GpuStore | Waiter::Prefetch => {
                    unreachable!("GPU waiter registered at the CPU L2")
                }
            }
        }
    }

    /// Handles direct-network messages arriving back at the CPU.
    pub(super) fn on_direct_at_cpu(&mut self, msg: DirectMsg, txn: Option<u64>) {
        let _prof = prof::span(HostPhase::PushPath);
        match msg {
            DirectMsg::PutXAck { line } => {
                if self.faults.retries_enabled() {
                    // Under the retry protocol an ack only counts if
                    // the push is still tracked: duplicated acks,
                    // acks from superseded attempts, and acks landing
                    // after degradation are all stale.
                    let tracked = txn.is_some_and(|t| self.inflight_pushes.remove(&t).is_some());
                    if !tracked {
                        return;
                    }
                } else if self.faults.is_active()
                    && !self.inflight_stores.iter().any(|(e, _)| e.line == line)
                {
                    // Faults without retries: a duplicated ack can
                    // arrive for a drain that already completed.
                    return;
                }
                self.direct_pushes += 1;
                self.stage_finish(txn, self.now);
                let started = self.complete_drain(line);
                let latency = self.now.saturating_since(started);
                {
                    let _tax = prof::span(HostPhase::TaxHistograms);
                    self.probes.push_e2e.record(latency);
                }
                self.trace(
                    Component::StoreBuffer,
                    Some(line.index()),
                    TraceKind::PushDone { latency },
                );
            }
            DirectMsg::ReadResp { .. } => {
                // A duplicated response can land after the original
                // already resumed the CPU; only the first one counts.
                if self.faults.is_active() && self.cpu.block != CpuBlock::Load {
                    return;
                }
                self.resume_cpu_load();
            }
            other => unreachable!("unexpected direct message at CPU: {other:?}"),
        }
    }

    /// The ack timeout for a tracked push fired (`Ev::PushTimeout`).
    /// Re-sends the push with exponential backoff up to `max_retries`,
    /// then degrades it to the CCSM demand path: write the line to its
    /// DRAM home and let the GPU miss on it.
    pub(super) fn on_push_timeout(&mut self, txn: u64, attempt: u32) {
        let _prof = prof::span(HostPhase::PushPath);
        let Some(track) = self.inflight_pushes.get(&txn).copied() else {
            return; // Acked (or degraded) before the timeout fired.
        };
        if track.attempt != attempt {
            return; // Stale timeout from a superseded attempt.
        }
        let line = track.line;
        if attempt >= self.faults.max_retries {
            self.inflight_pushes.remove(&txn);
            self.pushes_degraded += 1;
            self.lens.push_degraded();
            self.dram_access(self.now, line, true);
            self.stage_finish(Some(txn), self.now);
            self.complete_drain(line);
            return;
        }
        let count = {
            let r = self.push_line_retries.entry(line.index()).or_insert(0);
            *r += 1;
            *r
        };
        if count > self.faults.livelock_retries {
            let diag = self.chaos_diagnostic(&format!("line {line} retried {count} times"));
            self.abort = Some(SimAbort::Livelock(diag));
            return;
        }
        let next = attempt + 1;
        if let Some(t) = self.inflight_pushes.get_mut(&txn) {
            t.attempt = next;
        }
        self.pushes_retried += 1;
        self.stage_advance(Some(txn), Stage::DirectNoc, self.now);
        let slice = ds_coherence::msg::slice_index(line);
        self.direct_send_to_slice(slice, DirectMsg::GetX { line }, None);
        self.direct_send_to_slice(slice, DirectMsg::PutX { line }, Some(txn));
        self.sched(
            self.now + self.faults.backoff(next),
            Ev::PushTimeout { txn, attempt: next },
        );
    }
}
