//! GPU-side event handlers: kernel dispatch, SM issue, L1s and the L2
//! slice controllers.

use ds_cache::{LineState, MissKind, MshrOutcome};
use ds_coherence::{msg::slice_index, Agent, CohMsg, HammerState, ReqKind};
use ds_gpu::WarpOp;
use ds_mem::LineAddr;
use ds_noc::{MsgClass, PortId};
use ds_probe::prof::{self, HostPhase};
use ds_probe::{Component, NetId, Stage, TraceKind, Tracer};
use ds_sim::Cycle;

use super::{CpuBlock, Delivery, Ev, System, Waiter};
use crate::fault::FaultDomain;

/// The stage-accounting transaction of a waiter, when it carries one
/// (only GPU loads are tracked).
fn waiter_txn(w: Waiter) -> Option<u64> {
    match w {
        Waiter::Gpu { txn, .. } => Some(txn),
        _ => None,
    }
}

impl<T: Tracer> System<T> {
    fn gpu_port_sm(&self, sm: usize) -> PortId {
        PortId(sm)
    }

    fn gpu_port_slice(&self, slice: u8) -> PortId {
        PortId(self.cfg.sms + slice as usize)
    }

    /// Sends one message over the GPU-internal crossbar, tracing the
    /// link occupancy, and returns the arrival time.
    fn gpu_net_send(
        &mut self,
        at: Cycle,
        src: PortId,
        dst: PortId,
        class: MsgClass,
        line: LineAddr,
    ) -> Cycle {
        let _prof = prof::span(HostPhase::NocTick);
        let info = self.gpu_net.send_info(at, src, dst, class);
        self.lens.net_msg(
            NetId::GpuInternal,
            src.0 as u8,
            dst.0 as u8,
            class == MsgClass::Data,
        );
        self.trace(
            Component::Net {
                net: NetId::GpuInternal,
            },
            Some(line.index()),
            TraceKind::NetMsg {
                src: src.0 as u8,
                dst: dst.0 as u8,
                data: class == MsgClass::Data,
                start: info.start.as_u64(),
                depart: info.depart.as_u64(),
                arrive: info.arrival.as_u64(),
            },
        );
        info.arrival
    }

    /// Starts the next queued kernel (`Ev::KernelStart`).
    pub(super) fn kernel_start(&mut self) {
        debug_assert!(self.running_kernel.is_none());
        let Some(k) = self.kernel_queue.pop_front() else {
            return;
        };
        self.running_kernel = Some(k);
        if self.first_kernel_start.is_none() {
            self.first_kernel_start = Some(self.now);
        }
        self.trace(
            Component::Kernel,
            None,
            TraceKind::KernelBegin { kernel: k as u32 },
        );
        self.kernel_spans.push((self.now, Cycle::MAX));
        let trace = self.kernels[k].clone();
        // Software coherence at kernel launch: flash-invalidate every
        // GPU L1 (paper §III.A).
        for l1 in &mut self.gpu_l1s {
            l1.flash_invalidate();
        }
        for sm in &mut self.sms {
            sm.reset();
        }
        let warps = trace.warp_count();
        self.warps_remaining = warps;
        if warps == 0 {
            self.finish_kernel();
            return;
        }
        // Interleaved assignment balances load across SMs.
        for w in 0..warps {
            let sm = w % self.cfg.sms;
            self.sms[sm].assign(&trace, w..w + 1);
        }
        for sm in 0..self.cfg.sms {
            if self.sms[sm].assigned_warps() > 0 {
                self.sched(self.now + 1, Ev::SmTick { sm: sm as u32 });
            }
        }
    }

    fn finish_kernel(&mut self) {
        let k = self.running_kernel.take().expect("kernel running");
        self.trace(
            Component::Kernel,
            None,
            TraceKind::KernelEnd { kernel: k as u32 },
        );
        self.last_kernel_end = self.now;
        if let Some(span) = self.kernel_spans.last_mut() {
            span.1 = self.now;
        }
        self.kernels_run += 1;
        self.warps_completed += self.kernels[k].warp_count() as u64;
        if !self.kernel_queue.is_empty() {
            self.sched(
                self.now + super::cpu_side::KERNEL_LAUNCH_OVERHEAD,
                Ev::KernelStart,
            );
        } else if self.cpu.block == CpuBlock::Gpu {
            self.cpu.block = CpuBlock::None;
            self.sched(self.now + 1, Ev::CpuAdvance);
        }
    }

    fn harvest_finished(&mut self, sm: usize) {
        let newly = self.sms[sm].take_finished();
        if newly > 0 {
            debug_assert!(self.warps_remaining >= newly);
            self.warps_remaining -= newly;
            if self.warps_remaining == 0 && self.running_kernel.is_some() {
                self.finish_kernel();
            }
        }
    }

    /// Gives SM `sm` an issue opportunity (`Ev::SmTick`).
    pub(super) fn sm_tick(&mut self, sm: usize) {
        if self.running_kernel.is_none() {
            return;
        }
        // One issue per SM per cycle.
        if self.last_issue[sm] == self.now {
            self.sched(self.now + 1, Ev::SmTick { sm: sm as u32 });
            return;
        }
        match self.sms[sm].issue(self.now) {
            Some(issue) => {
                self.last_issue[sm] = self.now;
                match issue.op {
                    WarpOp::GlobalLoad { .. } => {
                        for va in issue.op.touched_lines() {
                            let (line, walk) = self.translate_gpu(sm, va);
                            self.gpu_load(sm, issue.warp, line, walk);
                        }
                    }
                    WarpOp::GlobalStore { .. } => {
                        for va in issue.op.touched_lines() {
                            let (line, walk) = self.translate_gpu(sm, va);
                            self.gpu_store(sm, line, walk);
                        }
                    }
                    // Compute and shared-memory ops were handled inside
                    // the SM.
                    WarpOp::Compute(_) | WarpOp::Shared { .. } => {}
                }
                self.harvest_finished(sm);
                if self.running_kernel.is_some() {
                    self.sched(self.now + 1, Ev::SmTick { sm: sm as u32 });
                }
            }
            None => {
                self.harvest_finished(sm);
                if self.running_kernel.is_some() {
                    if let Some(wake) = self.sms[sm].earliest_wake() {
                        let at = wake.max(self.now + 1);
                        self.sched(at, Ev::SmTick { sm: sm as u32 });
                    }
                    // Otherwise the SM is blocked on memory; responses
                    // will re-tick it.
                }
            }
        }
    }

    /// Translates a GPU virtual address through the SM's TLB,
    /// returning the line and the page-walk penalty (zero on a hit).
    fn translate_gpu(&mut self, sm: usize, va: ds_mem::VirtAddr) -> (LineAddr, u64) {
        let look = self.gpu_tlbs[sm].lookup(va);
        let mut walk = 0;
        let missed = !look.is_hit();
        if missed {
            walk = self.cfg.gpu_tlb_miss_penalty;
            let ppn = self
                .space
                .page_table_mut()
                .translate_or_alloc(look.vpn, look.is_direct);
            self.gpu_tlbs[sm].fill(look.vpn, ppn);
        }
        let pa = self.space.translate(va);
        let line = LineAddr::containing(pa);
        if missed {
            self.trace(
                Component::GpuTlb { sm: sm as u16 },
                Some(line.index()),
                TraceKind::TlbMiss,
            );
        }
        (line, walk)
    }

    fn gpu_load(&mut self, sm: usize, warp: usize, line: LineAddr, walk: u64) {
        let issued = self.now;
        let txn = self.next_txn();
        self.stage_begin(txn, Stage::SmL1, issued);
        if self.gpu_l1s[sm].load(line) {
            self.trace(
                Component::GpuL1 { sm: sm as u16 },
                Some(line.index()),
                TraceKind::Hit { push_hit: false },
            );
            self.sched(
                self.now + walk + self.cfg.gpu_l1_latency,
                Ev::MemArrive {
                    sm: sm as u32,
                    warp: warp as u32,
                    issued,
                    txn,
                },
            );
            return;
        }
        self.trace(
            Component::GpuL1 { sm: sm as u16 },
            Some(line.index()),
            TraceKind::Miss {
                write: false,
                compulsory: false,
            },
        );
        let slice = slice_index(line);
        let depart = self.now + walk + self.cfg.gpu_l1_latency;
        let arrival = self.gpu_net_send(
            depart,
            self.gpu_port_sm(sm),
            self.gpu_port_slice(slice),
            MsgClass::Control,
            line,
        );
        self.stage_advance(Some(txn), Stage::GpuNocReq, depart);
        self.stage_advance(Some(txn), Stage::SliceQueue, arrival);
        let ev = Ev::SliceDemand {
            slice,
            line,
            write: false,
            waiter: Waiter::Gpu {
                sm: sm as u32,
                warp: warp as u32,
                issued,
                txn,
            },
            slotted: false,
        };
        match self.fault_delivery(FaultDomain::GpuNet, arrival + self.cfg.gpu_l2_latency) {
            Delivery::Deliver(at) => self.sched(at, ev),
            Delivery::Drop => {}
            Delivery::Duplicate(a, b) => {
                self.sched(a, ev);
                self.sched(b, ev);
            }
        }
    }

    fn gpu_store(&mut self, sm: usize, line: LineAddr, walk: u64) {
        // Write-through, write-no-allocate L1.
        self.gpu_l1s[sm].store(line);
        let slice = slice_index(line);
        let arrival = self.gpu_net_send(
            self.now + walk + self.cfg.gpu_l1_latency,
            self.gpu_port_sm(sm),
            self.gpu_port_slice(slice),
            MsgClass::Data,
            line,
        );
        let ev = Ev::SliceDemand {
            slice,
            line,
            write: true,
            waiter: Waiter::GpuStore,
            slotted: false,
        };
        match self.fault_delivery(FaultDomain::GpuNet, arrival + self.cfg.gpu_l2_latency) {
            Delivery::Deliver(at) => self.sched(at, ev),
            Delivery::Drop => {}
            Delivery::Duplicate(a, b) => {
                self.sched(a, ev);
                self.sched(b, ev);
            }
        }
    }

    /// A memory response reaches a warp (`Ev::MemArrive`).
    pub(super) fn on_mem_arrive(&mut self, sm: usize, warp: usize, issued: Cycle, txn: u64) {
        let latency = self.now.saturating_since(issued);
        {
            let _tax = prof::span(HostPhase::TaxHistograms);
            self.probes.load_to_use.record(latency);
        }
        self.stage_finish(Some(txn), self.now);
        self.trace(
            Component::Sm { sm: sm as u16 },
            None,
            TraceKind::LoadDone {
                warp: warp as u32,
                latency,
            },
        );
        self.sms[sm].mem_arrived(warp);
        self.harvest_finished(sm);
        if self.running_kernel.is_some() {
            self.sched(self.now, Ev::SmTick { sm: sm as u32 });
        }
    }

    /// Reserves the slice's service port: `Ok` means proceed now,
    /// `Err(t)` means the caller must requeue its event at `t` with the
    /// slot already held.
    pub(super) fn slice_slot(&mut self, s: usize) -> Result<(), Cycle> {
        let service = self.cfg.gpu_l2_service;
        if service == 0 {
            return Ok(());
        }
        let free = self.slice_port_free[s];
        if free <= self.now {
            self.slice_port_free[s] = self.now + service;
            Ok(())
        } else {
            self.slice_port_free[s] = free + service;
            Err(free)
        }
    }

    /// A demand access at a GPU L2 slice (`Ev::SliceDemand`; tag
    /// latency already elapsed).
    pub(super) fn slice_demand(
        &mut self,
        slice: u8,
        line: LineAddr,
        write: bool,
        waiter: Waiter,
        slotted: bool,
    ) {
        let _prof = prof::span(HostPhase::CacheLookup);
        debug_assert_eq!(slice_index(line), slice, "line routed to wrong slice");
        let s = slice as usize;
        if !slotted {
            if let Err(at) = self.slice_slot(s) {
                self.sched(
                    at,
                    Ev::SliceDemand {
                        slice,
                        line,
                        write,
                        waiter,
                        slotted: true,
                    },
                );
                return;
            }
        }
        if !write {
            if self.gpu_l2[s]
                .array
                .access(line)
                .is_some_and(|st| st.can_read())
            {
                self.gpu_l2[s].record_hit(line);
                self.note_slice_hit(slice, line, false, true);
                self.respond_gpu_load(slice, waiter, line);
                return;
            }
            self.slice_miss(slice, line, ReqKind::GetS, waiter);
            self.maybe_prefetch(slice, line);
        } else {
            match self.gpu_l2[s].array.access(line).copied() {
                Some(HammerState::MM) => {
                    self.gpu_l2[s].record_hit(line);
                    self.note_slice_hit(slice, line, true, true);
                }
                Some(HammerState::M) => {
                    *self.gpu_l2[s]
                        .array
                        .state_mut(line)
                        .expect("state checked above") = HammerState::MM;
                    self.gpu_l2[s].record_hit(line);
                    self.note_slice_hit(slice, line, true, true);
                }
                Some(HammerState::S) | Some(HammerState::O) | Some(HammerState::I) | None => {
                    self.slice_miss(slice, line, ReqKind::GetX, waiter);
                }
            }
        }
    }

    /// Notes a demand hit at a slice: updates the line lens
    /// (push-provenance resolved here so every emission site stays one
    /// line) and traces the event. `gpu` distinguishes GPU demand
    /// accesses from uncached CPU read-backs — only the former count
    /// as consumption of a pushed line.
    pub(super) fn note_slice_hit(&mut self, slice: u8, line: LineAddr, write: bool, gpu: bool) {
        let push_hit = self.gpu_l2[slice as usize].pushed.contains(&line);
        self.lens.slice_hit(
            slice as usize,
            line.index(),
            write,
            push_hit,
            gpu,
            self.now.as_u64(),
        );
        self.trace(
            Component::GpuL2 { slice },
            Some(line.index()),
            TraceKind::Hit { push_hit },
        );
    }

    /// Notes a demand miss at a slice (lens + trace; see
    /// [`System::note_slice_hit`] for `gpu`).
    pub(super) fn note_slice_miss(
        &mut self,
        slice: u8,
        line: LineAddr,
        write: bool,
        miss_kind: MissKind,
        gpu: bool,
    ) {
        self.lens
            .slice_miss(slice as usize, line.index(), write, gpu, self.now.as_u64());
        self.trace(
            Component::GpuL2 { slice },
            Some(line.index()),
            TraceKind::Miss {
                write,
                compulsory: miss_kind == MissKind::Compulsory,
            },
        );
    }

    fn slice_miss(&mut self, slice: u8, line: LineAddr, kind: ReqKind, waiter: Waiter) {
        let s = slice as usize;
        // A GETX from a valid (S/O) copy is a data-less upgrade.
        let upgrade = kind == ReqKind::GetX
            && self.gpu_l2[s]
                .array
                .probe(line)
                .is_some_and(|st| st.is_valid());
        match self.gpu_l2[s].alloc_miss(line, kind, waiter) {
            MshrOutcome::Primary => {
                if waiter != Waiter::Prefetch {
                    let miss_kind = self.gpu_l2[s].record_miss(line);
                    self.note_slice_miss(slice, line, kind == ReqKind::GetX, miss_kind, true);
                }
                if self.mode.coherent() {
                    let requester = Agent::GpuL2(slice);
                    if let Some(txn) = waiter_txn(waiter) {
                        self.stage_advance(Some(txn), Stage::CohReq, self.now);
                        self.coh_req_obs
                            .insert((requester.port_index() as u8, line), txn);
                    }
                    let msg = match kind {
                        ReqKind::GetS => CohMsg::GetS { line, requester },
                        ReqKind::GetX => CohMsg::GetX {
                            line,
                            requester,
                            upgrade,
                        },
                    };
                    self.coh_send(requester, Agent::MemCtrl, msg);
                } else {
                    let info = self.dram_access_info(self.now, line, false);
                    let txn = waiter_txn(waiter);
                    self.stage_advance(txn, Stage::DramQueue, self.now);
                    self.stage_advance(txn, Stage::DramService, info.start);
                    self.sched(info.done, Ev::SliceMemDone { slice, line });
                }
            }
            MshrOutcome::Secondary => {
                if waiter != Waiter::Prefetch {
                    let miss_kind = self.gpu_l2[s].record_miss(line);
                    self.note_slice_miss(slice, line, kind == ReqKind::GetX, miss_kind, true);
                }
                self.stage_advance(waiter_txn(waiter), Stage::MshrWait, self.now);
            }
            MshrOutcome::Full => {
                // Stall until an MSHR frees (drained on completions).
                self.stage_advance(waiter_txn(waiter), Stage::MshrStall, self.now);
                self.gpu_l2_stalled[s].push_back((line, kind == ReqKind::GetX, waiter));
            }
        }
    }

    /// Re-dispatches slice accesses stalled on a full MSHR file.
    pub(super) fn drain_slice_stalled(&mut self, slice: u8) {
        let s = slice as usize;
        while !self.gpu_l2[s].mshr.is_full() {
            let Some((line, write, waiter)) = self.gpu_l2_stalled[s].pop_front() else {
                break;
            };
            self.sched(
                self.now,
                Ev::SliceDemand {
                    slice,
                    line,
                    write,
                    waiter,
                    slotted: false,
                },
            );
        }
    }

    /// Optional next-line prefetcher (the prefetch-comparison
    /// ablation): on a read miss, fetch the next line homed at the same
    /// slice if it is neither resident nor in flight.
    fn maybe_prefetch(&mut self, slice: u8, line: LineAddr) {
        if !self.cfg.gpu_l2_prefetch {
            return;
        }
        let next = LineAddr::from_index(line.index() + ds_coherence::GPU_L2_SLICES as u64);
        let s = slice as usize;
        if self.gpu_l2[s].array.probe(next).is_none()
            && !self.gpu_l2[s].mshr.contains(next)
            && !self.gpu_l2[s].mshr.is_full()
        {
            self.slice_miss(slice, next, ReqKind::GetS, Waiter::Prefetch);
        }
    }

    /// Sends a load response from a slice back to its requesting warp.
    fn respond_gpu_load(&mut self, slice: u8, waiter: Waiter, line: LineAddr) {
        match waiter {
            Waiter::Gpu {
                sm,
                warp,
                issued,
                txn,
            } => {
                // The single hand-off into the final stage: every load
                // path (slice hit, primary fill, merged secondary)
                // funnels through here, accruing whatever stage the
                // transaction was in until now.
                self.stage_advance(Some(txn), Stage::SliceToSm, self.now);
                let arrival = self.gpu_net_send(
                    self.now,
                    self.gpu_port_slice(slice),
                    self.gpu_port_sm(sm as usize),
                    MsgClass::Data,
                    line,
                );
                self.gpu_l1s[sm as usize].fill(line);
                let ev = Ev::MemArrive {
                    sm,
                    warp,
                    issued,
                    txn,
                };
                match self.fault_delivery(FaultDomain::GpuNet, arrival) {
                    Delivery::Deliver(at) => self.sched(at, ev),
                    Delivery::Drop => {}
                    Delivery::Duplicate(a, b) => {
                        self.sched(a, ev);
                        self.sched(b, ev);
                    }
                }
            }
            Waiter::GpuStore | Waiter::Prefetch => {}
            Waiter::CpuLoad | Waiter::CpuStoreDrain => {
                unreachable!("CPU waiter at a GPU L2 slice")
            }
        }
    }

    /// Installs a line into a slice, handling the victim writeback.
    /// `push` distinguishes direct-store pushes (lens-recorded at the
    /// PutX site, where the push is classified) from demand fills.
    pub(super) fn fill_slice(&mut self, slice: u8, line: LineAddr, state: HammerState, push: bool) {
        let s = slice as usize;
        if !push {
            self.lens.demand_fill(s, line.index(), self.now.as_u64());
        }
        if let Some((victim, dirty)) = self.gpu_l2[s].fill(line, state) {
            self.lens.evict(s, victim.index(), dirty, self.now.as_u64());
            if dirty {
                if self.mode.coherent() {
                    self.coh_send(
                        Agent::GpuL2(slice),
                        Agent::MemCtrl,
                        CohMsg::Put {
                            line: victim,
                            dirty,
                            requester: Agent::GpuL2(slice),
                        },
                    );
                } else {
                    self.dram_access(self.now, victim, true);
                }
            }
        }
    }

    /// Routes completed-miss waiters at a GPU L2 slice.
    pub(super) fn dispatch_slice_waiters(
        &mut self,
        slice: u8,
        line: LineAddr,
        granted: HammerState,
        waiters: Vec<Waiter>,
    ) {
        for w in waiters {
            match w {
                Waiter::Gpu { .. } => self.respond_gpu_load(slice, w, line),
                Waiter::Prefetch => {}
                Waiter::GpuStore => {
                    if granted != HammerState::MM {
                        // A store merged into a read's MSHR: upgrade.
                        self.sched(
                            self.now,
                            Ev::SliceDemand {
                                slice,
                                line,
                                write: true,
                                waiter: Waiter::GpuStore,
                                slotted: false,
                            },
                        );
                    }
                }
                Waiter::CpuLoad | Waiter::CpuStoreDrain => {
                    unreachable!("CPU waiter at a GPU L2 slice")
                }
            }
        }
    }

    /// Completion of a DS-only DRAM fill at a slice
    /// (`Ev::SliceMemDone`).
    pub(super) fn slice_mem_done(&mut self, slice: u8, line: LineAddr) {
        let s = slice as usize;
        let (kind, waiters) = self.gpu_l2[s].complete_miss(line);
        let state = match kind {
            ReqKind::GetX => HammerState::MM,
            ReqKind::GetS => HammerState::M,
        };
        self.fill_slice(slice, line, state, false);
        self.dispatch_slice_waiters(slice, line, state, waiters);
        self.drain_slice_stalled(slice);
    }

    /// Completion of the DRAM fill behind an uncached CPU read that
    /// missed at a slice (`Ev::DirectReadMemDone`).
    pub(super) fn direct_read_mem_done(&mut self, slice: u8, line: LineAddr) {
        // Install clean-exclusive: the GPU is the line's home.
        self.fill_slice(slice, line, HammerState::M, false);
        self.direct_send_to_cpu(slice, ds_coherence::DirectMsg::ReadResp { line }, None);
    }

    /// Earliest pending wake time across SMs (used by tests).
    #[allow(dead_code)]
    pub(super) fn earliest_sm_wake(&self) -> Option<Cycle> {
        self.sms.iter().filter_map(|s| s.earliest_wake()).min()
    }
}
