//! Coherence-network and direct-network message handlers: the timed
//! embedding of the Hammer hub and the direct-store path.

use ds_coherence::{
    transition, Action, Agent, CohMsg, DirectMsg, HammerState, HubAction, ProbeKind, ProtocolEvent,
    ReqKind,
};
use ds_mem::LineAddr;
use ds_probe::prof::{self, HostPhase};
use ds_probe::{Component, Stage, TraceKind, Tracer};
use ds_sim::Cycle;

use super::{Ev, System, Waiter};

impl<T: Tracer> System<T> {
    /// Dispatches a coherence message arriving at `dst` (`Ev::Coh`).
    pub(super) fn on_coh(&mut self, dst: Agent, msg: CohMsg) {
        let _prof = prof::span(HostPhase::Protocol);
        match dst {
            Agent::MemCtrl => self.at_hub(msg),
            Agent::CpuL2 => self.at_cpu_l2(msg),
            Agent::GpuL2(s) => self.at_slice(s, msg),
        }
    }

    /// Notes a GETS/GETX reaching the hub: either a transaction opens
    /// now, or the request queues behind a same-line transaction (its
    /// kind and stage transaction are remembered so the deferred start
    /// keeps both).
    fn note_hub_request(&mut self, line: LineAddr, write: bool, obs: Option<u64>) {
        if self.hub.busy(line) {
            self.hub_txn_queued
                .entry(line)
                .or_default()
                .push_back((write, obs));
        } else {
            self.hub_txn_started.insert(line, (self.now, write, obs));
            self.trace(
                Component::Hub,
                Some(line.index()),
                TraceKind::HubStart { write },
            );
        }
    }

    /// Notes the unblock retiring the open transaction on `line`.
    fn note_hub_unblock(&mut self, line: LineAddr) {
        // Any speculative read the transaction never consumed stays
        // unattributed; drop its pending timing with the transaction.
        self.hub_dram_pending.remove(&line);
        if let Some((start, _, _)) = self.hub_txn_started.remove(&line) {
            let latency = self.now.saturating_since(start);
            {
                let _tax = prof::span(HostPhase::TaxHistograms);
                self.probes.hub_txn.record(latency);
            }
            self.trace(
                Component::Hub,
                Some(line.index()),
                TraceKind::HubDone { latency },
            );
        }
    }

    /// After an unblock, the hub may have promoted a queued same-line
    /// request into a fresh transaction — open its interval now.
    fn note_hub_requeue(&mut self, line: LineAddr) {
        if self.hub.busy(line) {
            let (write, obs) = match self.hub_txn_queued.get_mut(&line) {
                Some(q) => {
                    let pair = q.pop_front().unwrap_or((false, None));
                    if q.is_empty() {
                        self.hub_txn_queued.remove(&line);
                    }
                    pair
                }
                None => (false, None),
            };
            self.hub_txn_started.insert(line, (self.now, write, obs));
            self.trace(
                Component::Hub,
                Some(line.index()),
                TraceKind::HubStart { write },
            );
        }
    }

    /// Claims the stage transaction riding a GETS/GETX from `requester`
    /// and marks its hub arrival (conflict queueing counts as hub
    /// time).
    fn observe_hub_arrival(&mut self, requester: Agent, line: LineAddr) -> Option<u64> {
        let obs = self
            .coh_req_obs
            .remove(&(requester.port_index() as u8, line));
        if obs.is_some() {
            self.stage_advance(obs, Stage::HubDir, self.now);
        }
        obs
    }

    fn at_hub(&mut self, msg: CohMsg) {
        let actions = match msg {
            CohMsg::GetS { line, requester } => {
                let obs = self.observe_hub_arrival(requester, line);
                self.note_hub_request(line, false, obs);
                self.hub.on_request(ReqKind::GetS, line, requester)
            }
            CohMsg::GetX {
                line,
                requester,
                upgrade,
            } => {
                let obs = self.observe_hub_arrival(requester, line);
                self.note_hub_request(line, true, obs);
                self.hub
                    .on_request_upgrade(ReqKind::GetX, line, requester, upgrade)
            }
            CohMsg::Put {
                line,
                dirty,
                requester,
            } => self.hub.on_put(line, dirty, requester),
            CohMsg::ProbeReply {
                line,
                from,
                with_data,
                retains_copy,
            } => self.hub.on_probe_reply(line, from, with_data, retains_copy),
            CohMsg::Unblock { line } => {
                self.note_hub_unblock(line);
                let actions = self.hub.on_unblock(line);
                self.note_hub_requeue(line);
                actions
            }
            other => unreachable!("unexpected message at hub: {other:?}"),
        };
        self.exec_hub_actions(actions);
    }

    fn exec_hub_actions(&mut self, actions: Vec<HubAction>) {
        for a in actions {
            match a {
                HubAction::SendProbe { to, line, kind } => {
                    self.coh_send(Agent::MemCtrl, to, CohMsg::Probe { line, kind });
                }
                HubAction::StartMemRead { line, txn } => {
                    let info = self.dram_access_info(self.now, line, false);
                    // Remember the access timing; it is attributed to
                    // the open transaction only if the data is used
                    // (`from_mem` on the eventual SendData) — a probe
                    // response can outrun the speculative read.
                    self.hub_dram_pending.insert(
                        line,
                        (self.now.as_u64(), info.start.as_u64(), info.done.as_u64()),
                    );
                    self.sched(info.done, Ev::HubMemDone { line, txn });
                }
                HubAction::MemWrite { line } => {
                    self.dram_access(self.now, line, true);
                }
                HubAction::SendData {
                    to,
                    line,
                    exclusive,
                    from_mem,
                } => {
                    let obs = self.hub_txn_started.get(&line).and_then(|&(_, _, o)| o);
                    if obs.is_some() {
                        if from_mem {
                            if let Some((enq, start, done)) = self.hub_dram_pending.remove(&line) {
                                self.stage_advance(obs, Stage::DramQueue, Cycle::new(enq));
                                self.stage_advance(obs, Stage::DramService, Cycle::new(start));
                                self.stage_advance(obs, Stage::HubDir, Cycle::new(done));
                            }
                        }
                        self.stage_advance(obs, Stage::RespNoc, self.now);
                    }
                    self.coh_send(
                        Agent::MemCtrl,
                        to,
                        CohMsg::Data {
                            line,
                            exclusive,
                            from_mem,
                        },
                    );
                }
            }
        }
    }

    /// The hub's speculative DRAM read completed (`Ev::HubMemDone`).
    pub(super) fn on_hub_mem_done(&mut self, line: LineAddr, txn: u64) {
        let actions = self.hub.on_mem_done(line, txn);
        self.exec_hub_actions(actions);
    }

    fn at_cpu_l2(&mut self, msg: CohMsg) {
        match msg {
            CohMsg::Probe { line, kind } => {
                let (with_data, retains) = self.apply_probe_cpu(line, kind);
                self.coh_send(
                    Agent::CpuL2,
                    Agent::MemCtrl,
                    CohMsg::ProbeReply {
                        line,
                        from: Agent::CpuL2,
                        with_data,
                        retains_copy: retains,
                    },
                );
            }
            CohMsg::Data {
                line,
                exclusive,
                from_mem: _,
            } => {
                let (kind, waiters) = self.cpu_l2.complete_miss(line);
                let state = grant_state(kind, exclusive);
                self.fill_cpu_l2(line, state);
                self.coh_send(Agent::CpuL2, Agent::MemCtrl, CohMsg::Unblock { line });
                self.dispatch_cpu_waiters(line, state, waiters);
                self.drain_cpu_l2_stalled();
            }
            other => unreachable!("unexpected message at CPU L2: {other:?}"),
        }
    }

    fn at_slice(&mut self, slice: u8, msg: CohMsg) {
        match msg {
            CohMsg::Probe { line, kind } => {
                let (with_data, retains) = self.apply_probe_slice(slice, line, kind);
                self.coh_send(
                    Agent::GpuL2(slice),
                    Agent::MemCtrl,
                    CohMsg::ProbeReply {
                        line,
                        from: Agent::GpuL2(slice),
                        with_data,
                        retains_copy: retains,
                    },
                );
            }
            CohMsg::Data {
                line,
                exclusive,
                from_mem: _,
            } => {
                let s = slice as usize;
                // A demand fill replaces any push provenance.
                self.gpu_l2[s].pushed.remove(&line);
                let (kind, waiters) = self.gpu_l2[s].complete_miss(line);
                let state = grant_state(kind, exclusive);
                self.fill_slice(slice, line, state, false);
                self.coh_send(
                    Agent::GpuL2(slice),
                    Agent::MemCtrl,
                    CohMsg::Unblock { line },
                );
                self.dispatch_slice_waiters(slice, line, state, waiters);
                self.drain_slice_stalled(slice);
            }
            other => unreachable!("unexpected message at slice: {other:?}"),
        }
    }

    /// Applies a probe to the CPU L2 via the protocol table, returning
    /// `(with_data, retains_copy)` for the reply.
    fn apply_probe_cpu(&mut self, line: LineAddr, kind: ProbeKind) -> (bool, bool) {
        let Some(&state) = self.cpu_l2.array.probe(line) else {
            return (false, false);
        };
        let event = probe_event(kind);
        let t = transition(state, event).expect("probes are total over valid states");
        let next = t.stable_next().expect("probe transitions are immediate");
        if next == HammerState::I {
            self.cpu_l2.array.invalidate(line);
            // Inclusion: the L1D copy goes too.
            self.cpu_l1d.invalidate(line);
        } else if next != state {
            *self
                .cpu_l2
                .array
                .state_mut(line)
                .expect("probed line is resident") = next;
        }
        (
            t.actions.contains(&Action::SupplyData),
            next != HammerState::I,
        )
    }

    /// Applies a probe to a GPU L2 slice.
    fn apply_probe_slice(&mut self, slice: u8, line: LineAddr, kind: ProbeKind) -> (bool, bool) {
        // Hammer broadcasts to every cache, but a slice can only ever
        // hold lines it homes; probes for foreign lines miss by
        // construction.
        if ds_coherence::msg::slice_index(line) != slice {
            return (false, false);
        }
        let s = slice as usize;
        let Some(&state) = self.gpu_l2[s].array.probe(line) else {
            return (false, false);
        };
        let event = probe_event(kind);
        let t = transition(state, event).expect("probes are total over valid states");
        let next = t.stable_next().expect("probe transitions are immediate");
        if next == HammerState::I {
            self.gpu_l2[s].array.invalidate(line);
            self.gpu_l2[s].pushed.remove(&line);
            self.lens
                .invalidate(s, line.index(), false, self.now.as_u64());
        } else if next != state {
            *self.gpu_l2[s]
                .array
                .state_mut(line)
                .expect("probed line is resident") = next;
        }
        (
            t.actions.contains(&Action::SupplyData),
            next != HammerState::I,
        )
    }

    /// Dispatches a direct-network message arriving at a slice
    /// (`Ev::DirectAtSlice`).
    pub(super) fn on_direct_at_slice(
        &mut self,
        slice: u8,
        msg: DirectMsg,
        slotted: bool,
        txn: Option<u64>,
    ) {
        let _prof = prof::span(HostPhase::PushPath);
        let s = slice as usize;
        // Pushes and uncached reads occupy the slice's service port
        // like any other access (control-only GETX rides along free).
        if !slotted && !matches!(msg, DirectMsg::GetX { .. }) {
            if let Err(at) = self.slice_slot(s) {
                self.sched(
                    at,
                    Ev::DirectAtSlice {
                        slice,
                        msg,
                        slotted: true,
                        txn,
                    },
                );
                return;
            }
        }
        match msg {
            DirectMsg::GetX { line } => {
                // Invalidate-only: the subsequent PUTX supersedes the
                // line's data, so no writeback is needed (§III.F: the
                // transition at the GPU L2 "always starts from state I
                // since before forwarding the data, the CPU will issue
                // GETX").
                if self.gpu_l2[s].array.invalidate(line).is_some() {
                    self.push_overwrites += 1;
                    self.gpu_l2[s].pushed.remove(&line);
                    self.lens
                        .invalidate(s, line.index(), true, self.now.as_u64());
                    self.trace(
                        Component::GpuL2 { slice },
                        Some(line.index()),
                        TraceKind::PushOverwrite,
                    );
                }
            }
            DirectMsg::PutX { line } => {
                // The push is at the slice: everything from here to
                // the acknowledgement is the ack leg.
                self.stage_advance(txn, Stage::DirectAck, self.now);
                // §III.A: "If the GPU L2 cache is full, the system then
                // writes data to DRAM" — a push finding its set full
                // bypasses to memory rather than evicting resident
                // (potentially useful) lines.
                if self.gpu_l2[s].array.probe(line).is_none()
                    && self.gpu_l2[s].array.set_is_full(line)
                {
                    self.push_bypasses += 1;
                    self.lens.push_bypass(s, line.index(), self.now.as_u64());
                    self.trace(
                        Component::GpuL2 { slice },
                        Some(line.index()),
                        TraceKind::PushBypass,
                    );
                    self.dram_access(self.now, line, true);
                    self.direct_send_to_cpu(slice, DirectMsg::PutXAck { line }, txn);
                    return;
                }
                // The blue dashed Fig. 3 edge: I -> MM on the pushed
                // store.
                let t = transition(HammerState::I, ProtocolEvent::PutXArrive)
                    .expect("PutX from I is defined");
                debug_assert_eq!(t.stable_next(), Some(HammerState::MM));
                self.gpu_l2[s].stats.pushed_fills.incr();
                self.gpu_l2[s].classifier.mark_seen(line);
                self.lens.push_fill(s, line.index(), self.now.as_u64());
                self.trace(
                    Component::GpuL2 { slice },
                    Some(line.index()),
                    TraceKind::PushFill,
                );
                self.fill_slice(slice, line, HammerState::MM, true);
                self.gpu_l2[s].pushed.insert(line);
                self.direct_send_to_cpu(slice, DirectMsg::PutXAck { line }, txn);
            }
            DirectMsg::ReadReq { line } => {
                // Uncached CPU read of GPU-homed data.
                if self.gpu_l2[s]
                    .array
                    .access(line)
                    .is_some_and(|st| st.can_read())
                {
                    self.gpu_l2[s].record_hit(line);
                    self.note_slice_hit(slice, line, false, false);
                    self.direct_send_to_cpu(slice, DirectMsg::ReadResp { line }, None);
                } else {
                    let miss_kind = self.gpu_l2[s].record_miss(line);
                    self.note_slice_miss(slice, line, false, miss_kind, false);
                    let done = self.dram_access(self.now + self.cfg.gpu_l2_latency, line, false);
                    self.sched(done, Ev::DirectReadMemDone { slice, line });
                }
            }
            other => unreachable!("unexpected direct message at slice: {other:?}"),
        }
    }
}

fn probe_event(kind: ProbeKind) -> ProtocolEvent {
    match kind {
        ProbeKind::Shared => ProtocolEvent::ProbeShared,
        ProbeKind::Invalidate => ProtocolEvent::ProbeInv,
    }
}

fn grant_state(kind: ReqKind, exclusive: bool) -> HammerState {
    match kind {
        ReqKind::GetX => HammerState::MM,
        ReqKind::GetS => {
            if exclusive {
                HammerState::M
            } else {
                HammerState::S
            }
        }
    }
}

// `Waiter` is re-exported for the submodules' signatures.
#[allow(unused_imports)]
use Waiter as _WaiterForDocs;
