//! A coherent cache: tag array + MSHRs + pending-transaction kinds +
//! statistics, as instantiated for the CPU L2 and each GPU L2 slice.

use std::collections::{HashMap, HashSet};

use ds_cache::{
    CacheArray, CacheGeometry, CacheStats, MissClassifier, MissKind, MshrFile, MshrOutcome,
    ReplacementPolicy,
};
use ds_coherence::{HammerState, ReqKind};
use ds_mem::LineAddr;

use super::Waiter;

/// The per-cache bundle used by every coherent agent in the system.
#[derive(Debug)]
pub(crate) struct CohCache {
    pub array: CacheArray<HammerState>,
    pub mshr: MshrFile<Waiter>,
    pub pending_kind: HashMap<LineAddr, ReqKind>,
    pub stats: CacheStats,
    /// Lines installed by a direct-store push and not yet replaced by
    /// a demand fill (for `push_hits` accounting).
    pub pushed: HashSet<LineAddr>,
    pub classifier: MissClassifier,
}

impl CohCache {
    pub fn new_with_policy(geom: CacheGeometry, mshrs: usize, policy: ReplacementPolicy) -> Self {
        CohCache {
            array: CacheArray::new(geom, policy),
            mshr: MshrFile::new(mshrs),
            pending_kind: HashMap::new(),
            stats: CacheStats::new(),
            pushed: HashSet::new(),
            classifier: MissClassifier::new(),
        }
    }

    #[cfg(test)]
    pub fn new(geom: CacheGeometry, mshrs: usize) -> Self {
        Self::new_with_policy(geom, mshrs, ReplacementPolicy::Lru)
    }

    /// Records a demand miss (with compulsory classification) on
    /// `line`, returning the classification for tracing.
    pub fn record_miss(&mut self, line: LineAddr) -> MissKind {
        let kind = self.classifier.classify_miss(line);
        self.stats.record_miss(kind);
        kind
    }

    /// Records a demand hit, tracking hits on pushed lines.
    pub fn record_hit(&mut self, line: LineAddr) {
        self.stats.record_hit();
        if self.pushed.contains(&line) {
            self.stats.push_hits.incr();
        }
    }

    /// Allocates an MSHR for a miss, remembering the request kind of
    /// the primary. Secondary misses never change the pending kind —
    /// completion logic re-dispatches waiters whose needs exceed the
    /// granted permission.
    pub fn alloc_miss(&mut self, line: LineAddr, kind: ReqKind, waiter: Waiter) -> MshrOutcome {
        let outcome = self.mshr.alloc(line, waiter);
        if outcome == MshrOutcome::Primary {
            self.pending_kind.insert(line, kind);
        }
        outcome
    }

    /// Completes an in-flight miss, returning `(kind, waiters)`.
    pub fn complete_miss(&mut self, line: LineAddr) -> (ReqKind, Vec<Waiter>) {
        let kind = self.pending_kind.remove(&line).unwrap_or(ReqKind::GetS);
        (kind, self.mshr.complete(line))
    }

    /// Installs `line` with `state`, returning the victim (if any)
    /// and whether that victim requires a writeback. The victim also
    /// leaves the pushed set.
    pub fn fill(&mut self, line: LineAddr, state: HammerState) -> Option<(LineAddr, bool)> {
        let evicted = self.array.fill(line, state)?;
        self.stats.evictions.incr();
        self.pushed.remove(&evicted.line);
        let wb = evicted.state.needs_writeback();
        if wb {
            self.stats.writebacks.incr();
        }
        Some((evicted.line, wb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> CohCache {
        CohCache::new(CacheGeometry::new(2 * 2 * 128, 2).unwrap(), 2)
    }

    #[test]
    fn miss_then_complete_roundtrip() {
        let mut c = cache();
        let l = LineAddr::from_index(0);
        assert_eq!(
            c.alloc_miss(l, ReqKind::GetX, Waiter::CpuLoad),
            MshrOutcome::Primary
        );
        assert_eq!(
            c.alloc_miss(l, ReqKind::GetS, Waiter::CpuStoreDrain),
            MshrOutcome::Secondary
        );
        let (kind, waiters) = c.complete_miss(l);
        assert_eq!(kind, ReqKind::GetX, "primary's kind wins");
        assert_eq!(waiters, vec![Waiter::CpuLoad, Waiter::CpuStoreDrain]);
    }

    #[test]
    fn fill_reports_writeback_needs() {
        let mut c = cache();
        // Fill set 0 (lines 0, 2, 4 map to set 0 of a 2-set cache).
        c.fill(LineAddr::from_index(0), HammerState::MM);
        c.fill(LineAddr::from_index(2), HammerState::S);
        // Next fill evicts LRU (line 0, dirty).
        let (victim, wb) = c.fill(LineAddr::from_index(4), HammerState::S).unwrap();
        assert_eq!(victim, LineAddr::from_index(0));
        assert!(wb);
        assert_eq!(c.stats.writebacks.value(), 1);
    }

    #[test]
    fn pushed_lines_tracked_through_eviction() {
        let mut c = cache();
        let l = LineAddr::from_index(0);
        c.pushed.insert(l);
        c.record_hit(l);
        assert_eq!(c.stats.push_hits.value(), 1);
        c.fill(l, HammerState::MM);
        c.fill(LineAddr::from_index(2), HammerState::S);
        c.fill(LineAddr::from_index(4), HammerState::S); // evicts l
        assert!(!c.pushed.contains(&l));
    }
}
