//! The timed full-system model.
//!
//! [`System`] owns every component of the simulated chip and drives
//! them with a single deterministic event queue. The protocol logic is
//! delegated to `ds-coherence` (the transition table and the broadcast
//! [`Hub`]); this module is the *timed embedding*: it turns protocol
//! actions into network messages and DRAM accesses with latencies from
//! [`SystemConfig`].
//!
//! [`SystemConfig`]: crate::SystemConfig
//!
//! Submodules split the implementation by side: `cpu_side` (core,
//! TLB, store buffer, L1D/L2), `gpu_side` (SM dispatch, L1s, L2
//! slices) and `protocol` (coherence and direct-network message
//! handlers).

mod coh_cache;
mod cpu_side;
mod gpu_side;
mod protocol;

use std::collections::{HashMap, VecDeque};

use ds_cache::{CacheArray, CacheStats, ReplacementPolicy};
use ds_coherence::{Agent, CohMsg, DirectMsg, Hub, ProtocolChecker};
use ds_cpu::{AddressSpace, DirectWindow, Program, StoreBuffer, StoreEntry, Tlb};
use ds_gpu::{GpuL1, KernelTrace, L1Valid, Sm};
use ds_mem::{Dram, DramAccessInfo, LineAddr};
use ds_noc::Xbar;
use ds_probe::prof::{self, HostPhase};
use ds_probe::pulse::{ctr, gauge};
use ds_probe::{
    Component, LatencyReport, LineLens, NullTracer, ProbeLevel, PulseConfig, PulseSampler,
    PulseTotals, Stage, StageTracker, TraceEvent, TraceKind, Tracer,
};
use ds_sim::{Cycle, EventQueue};

pub(crate) use coh_cache::CohCache;

use crate::fault::{FaultDomain, FaultPlan, FaultRoll, SimAbort, FAULT_DOMAINS};
use crate::{Mode, RunReport, SystemConfig};

/// Safety valve: a run issuing more events than this is assumed to be
/// livelocked (a protocol bug), far above any legitimate workload.
const EVENT_LIMIT: u64 = 2_000_000_000;

/// Who is waiting on an in-flight cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Waiter {
    /// The CPU core's blocking load.
    CpuLoad,
    /// The CPU store-buffer drain.
    CpuStoreDrain,
    /// A GPU warp's load.
    Gpu {
        /// SM index.
        sm: u32,
        /// Kernel-wide warp index.
        warp: u32,
        /// Cycle the SM issued the load (for load-to-use latency).
        issued: Cycle,
        /// Stage-accounting transaction id.
        txn: u64,
    },
    /// A GPU store (nothing to notify; permission upgrade may
    /// re-dispatch).
    GpuStore,
    /// A hardware prefetch (nothing to notify, no upgrade).
    Prefetch,
}

/// The system event vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Execute the CPU's next program operation.
    CpuAdvance,
    /// Attempt to drain the store-buffer head.
    SbDrain,
    /// A demand access (or MSHR-full retry) arrives at the CPU L2 with
    /// tag latency already elapsed.
    CpuL2Access { line: LineAddr, write: bool },
    /// A DS-only (non-coherent) DRAM fill for the CPU L2 completed.
    CpuL2MemDone { line: LineAddr },
    /// A coherence-network message arrives at `dst`.
    Coh { dst: Agent, msg: CohMsg },
    /// A direct-network message arrives at GPU L2 slice `slice`.
    /// `slotted` marks a retry holding a reserved service slot; `txn`
    /// is the stage-accounting transaction the message belongs to,
    /// when it carries a tracked push.
    DirectAtSlice {
        slice: u8,
        msg: DirectMsg,
        slotted: bool,
        txn: Option<u64>,
    },
    /// A direct-network message arrives back at the CPU.
    DirectAtCpu { msg: DirectMsg, txn: Option<u64> },
    /// The hub's speculative DRAM read completed for transaction `txn`.
    HubMemDone { line: LineAddr, txn: u64 },
    /// Give SM `sm` an issue opportunity.
    SmTick { sm: u32 },
    /// One memory response reached warp `warp` on SM `sm`. `issued`
    /// is the load's original issue cycle, `txn` its stage-accounting
    /// transaction.
    MemArrive {
        sm: u32,
        warp: u32,
        issued: Cycle,
        txn: u64,
    },
    /// A demand access arrives at GPU L2 slice `slice`. `slotted`
    /// marks a retry that already reserved the slice's service port.
    SliceDemand {
        slice: u8,
        line: LineAddr,
        write: bool,
        waiter: Waiter,
        slotted: bool,
    },
    /// A DS-only (non-coherent) DRAM fill for a slice completed.
    SliceMemDone { slice: u8, line: LineAddr },
    /// An uncached CPU read at a slice missed and its DRAM fill
    /// completed.
    DirectReadMemDone { slice: u8, line: LineAddr },
    /// Start the next queued kernel.
    KernelStart,
    /// The ack timeout for a tracked direct-store push fired
    /// (`attempt` is the attempt it guards; stale timeouts after an
    /// ack or a newer attempt are ignored). Only scheduled when the
    /// fault plan enables the retry protocol.
    PushTimeout { txn: u64, attempt: u32 },
}

/// What the CPU core is blocked on, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CpuBlock {
    None,
    /// Waiting for a load to return.
    Load,
    /// Waiting for the store buffer to drain one entry.
    SbFull,
    /// Waiting for all kernels to finish (`WaitGpu`).
    Gpu,
    /// Program finished; CPU idle.
    Finished,
}

#[derive(Debug)]
struct CpuExec {
    program: Program,
    pc: usize,
    block: CpuBlock,
}

/// Retry-protocol state for one in-flight (unacked) direct-store push.
#[derive(Debug, Clone, Copy)]
struct PushTrack {
    /// Line being pushed (needed to degrade or re-send).
    line: LineAddr,
    /// Current attempt, 0-based (attempt 0 is the original send).
    attempt: u32,
}

/// What the fault layer decided for one scheduled message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    /// Deliver at the given cycle (the unfaulted arrival by default).
    Deliver(Cycle),
    /// Silently drop the message.
    Drop,
    /// Deliver twice: once on time, once late.
    Duplicate(Cycle, Cycle),
}

/// The full-system model. Construct with [`System::new`] (or
/// [`System::with_tracer`] for instrumented runs), execute with
/// [`System::run`]. See the crate-level example.
///
/// The type is generic over its [`Tracer`]; the default
/// [`NullTracer`] has `Tracer::ENABLED == false`, so every trace
/// emission site is compiled away and an uninstrumented system is
/// exactly as fast as one built before tracing existed. Latency
/// histograms ([`LatencyReport`]) are recorded unconditionally — they
/// never feed back into timing, so they cannot change a result.
#[derive(Debug)]
pub struct System<T: Tracer = NullTracer> {
    cfg: SystemConfig,
    mode: Mode,
    queue: EventQueue<Ev>,
    now: Cycle,

    space: AddressSpace,

    // Instrumentation.
    tracer: T,
    probes: LatencyReport,
    /// Cycle-domain time-series sampler (`None` = pulse off). The run
    /// loop checks `needs_sample` — one compare — per event and only
    /// snapshots counters when a window boundary was crossed.
    pulse: Option<PulseSampler>,
    /// Per-transaction stage accounting (unconditional, like
    /// `probes`).
    stages: StageTracker,
    /// Per-cacheline lifetime forensics (unconditional, like `probes`
    /// and `stages`: never feeds back into timing).
    lens: LineLens,
    /// The probe level this system was built at (which of `stages` /
    /// `lens` actually collect; simulated timing is level-invariant).
    probe_level: ProbeLevel,
    /// Next stage-accounting transaction id.
    txn_seq: u64,
    /// Stage transactions of store-buffer entries, mirroring the
    /// buffer's FIFO order (`None` for untracked, non-push entries).
    sb_txns: VecDeque<Option<u64>>,
    /// Transactions of coherence requests in flight toward the hub:
    /// (requester port, line) → txn. Keyed per requester so two
    /// slices missing the same line stay distinct.
    coh_req_obs: HashMap<(u8, LineAddr), u64>,
    /// Timing of the hub's speculative DRAM read per open transaction:
    /// line → (enqueue, service start, done), attributed only if the
    /// data is actually used (`from_mem`).
    hub_dram_pending: HashMap<LineAddr, (u64, u64, u64)>,
    /// Open hub transactions: line → (start cycle, was-a-GetX,
    /// observed txn).
    hub_txn_started: HashMap<LineAddr, (Cycle, bool, Option<u64>)>,
    /// Request kinds queued behind a busy line, FIFO (mirrors the
    /// hub's own conflict queue so requeued HubStart events keep the
    /// right read/write flag and stage transaction).
    hub_txn_queued: HashMap<LineAddr, VecDeque<(bool, Option<u64>)>>,

    // CPU side.
    cpu: CpuExec,
    tlb: Tlb,
    cpu_l1d: CacheArray<L1Valid>,
    cpu_l1_stats: CacheStats,
    sb: StoreBuffer,
    /// Draining stores, each with the cycle its drain began.
    inflight_stores: Vec<(StoreEntry, Cycle)>,
    cpu_l2: CohCache,
    cpu_l2_stalled: VecDeque<(LineAddr, bool)>,

    // GPU side.
    sms: Vec<Sm>,
    gpu_l1s: Vec<GpuL1>,
    gpu_tlbs: Vec<Tlb>,
    gpu_l2: Vec<CohCache>,
    gpu_l2_stalled: Vec<VecDeque<(LineAddr, bool, Waiter)>>,
    slice_port_free: Vec<Cycle>,
    kernels: Vec<KernelTrace>,
    kernel_queue: VecDeque<usize>,
    running_kernel: Option<usize>,
    warps_remaining: usize,
    last_issue: Vec<Cycle>,
    kernels_run: u64,
    warps_completed: u64,

    // Memory side.
    hub: Hub,
    dram: Dram,
    coh_net: Xbar,
    direct_net: Xbar,
    gpu_net: Xbar,
    direct_pushes: u64,
    push_overwrites: u64,
    push_bypasses: u64,
    first_kernel_start: Option<Cycle>,
    last_kernel_end: Cycle,
    kernel_spans: Vec<(Cycle, Cycle)>,

    // Fault injection and recovery (ds-chaos). All of this is inert —
    // zero extra events, zero counter changes — unless the plan is
    // active.
    faults: FaultPlan,
    /// Per-domain fault-decision sequence numbers.
    fault_seq: [u64; FAULT_DOMAINS],
    faults_injected: u64,
    pushes_attempted: u64,
    pushes_retried: u64,
    pushes_degraded: u64,
    /// Unacked pushes under the retry protocol: txn → track state.
    inflight_pushes: HashMap<u64, PushTrack>,
    /// Cumulative retries per line index (livelock detection).
    push_line_retries: HashMap<u64, u32>,
    /// Set by handlers (livelock trip) for the run loop to surface.
    abort: Option<SimAbort>,
}

impl System {
    /// Builds an idle, uninstrumented system (the [`NullTracer`]
    /// compiles all trace emission away).
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SystemConfig::validate`].
    pub fn new(cfg: SystemConfig, mode: Mode) -> Self {
        Self::with_tracer(cfg, mode, NullTracer)
    }
}

impl<T: Tracer> System<T> {
    /// Builds an idle system that records trace events into `tracer`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SystemConfig::validate`].
    pub fn with_tracer(cfg: SystemConfig, mode: Mode, tracer: T) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SystemConfig: {e}");
        }
        let window = DirectWindow::paper_default();
        let slices = cfg.gpu_l2_slices();
        let mut system = System {
            space: AddressSpace::new(window),
            cpu: CpuExec {
                program: Program::new(),
                pc: 0,
                block: CpuBlock::Finished,
            },
            tlb: Tlb::new(cfg.tlb_entries, window),
            cpu_l1d: CacheArray::new(cfg.cpu_l1d, ReplacementPolicy::Lru),
            cpu_l1_stats: CacheStats::new(),
            sb: StoreBuffer::new(cfg.store_buffer_entries),
            inflight_stores: Vec::new(),
            cpu_l2: CohCache::new_with_policy(cfg.cpu_l2, cfg.cpu_l2_mshrs, cfg.replacement),
            cpu_l2_stalled: VecDeque::new(),
            sms: (0..cfg.sms).map(|i| Sm::new(i, cfg.warps_per_sm)).collect(),
            gpu_l1s: (0..cfg.sms).map(|_| GpuL1::new(cfg.gpu_l1)).collect(),
            gpu_tlbs: (0..cfg.sms)
                .map(|_| Tlb::new(cfg.gpu_tlb_entries, window))
                .collect(),
            gpu_l2: (0..slices)
                .map(|s| {
                    // Slices index sets by the slice-local line number
                    // (the address interleave drops the low bits).
                    let stripe_bits = (slices as u64).trailing_zeros();
                    let geom = cfg.gpu_l2_slice.with_stripe(stripe_bits, s as u64);
                    CohCache::new_with_policy(geom, cfg.gpu_l2_mshrs, cfg.replacement)
                })
                .collect(),
            gpu_l2_stalled: (0..slices).map(|_| VecDeque::new()).collect(),
            slice_port_free: vec![Cycle::ZERO; slices],
            kernels: Vec::new(),
            kernel_queue: VecDeque::new(),
            running_kernel: None,
            warps_remaining: 0,
            last_issue: vec![Cycle::MAX; cfg.sms],
            kernels_run: 0,
            warps_completed: 0,
            hub: if cfg.directory_filter {
                Hub::new_with_directory()
            } else {
                Hub::new()
            },
            dram: Dram::new(cfg.dram.clone()),
            coh_net: Xbar::new(Agent::PORTS, cfg.coh_hop_latency, cfg.coh_bytes_per_cycle),
            direct_net: Xbar::new(
                1 + slices,
                cfg.direct_hop_latency,
                cfg.direct_bytes_per_cycle,
            ),
            gpu_net: Xbar::new(
                cfg.sms + slices,
                cfg.gpu_net_latency,
                cfg.gpu_net_bytes_per_cycle,
            ),
            queue: EventQueue::new(),
            now: Cycle::ZERO,
            tracer,
            probes: LatencyReport::new(),
            pulse: None,
            stages: StageTracker::new(),
            lens: LineLens::new(slices, cfg.dram.total_banks() as usize),
            probe_level: ProbeLevel::Full,
            txn_seq: 0,
            sb_txns: VecDeque::new(),
            coh_req_obs: HashMap::new(),
            hub_dram_pending: HashMap::new(),
            hub_txn_started: HashMap::new(),
            hub_txn_queued: HashMap::new(),
            direct_pushes: 0,
            push_overwrites: 0,
            push_bypasses: 0,
            first_kernel_start: None,
            last_kernel_end: Cycle::ZERO,
            kernel_spans: Vec::new(),
            faults: FaultPlan::default(),
            fault_seq: [0; FAULT_DOMAINS],
            faults_injected: 0,
            pushes_attempted: 0,
            pushes_retried: 0,
            pushes_degraded: 0,
            inflight_pushes: HashMap::new(),
            push_line_retries: HashMap::new(),
            abort: None,
            cfg,
            mode,
        };
        system.set_probe_level(prof::level());
        system
    }

    /// Sets which optional observability layers collect during the
    /// next run. New systems inherit the process-global
    /// [`prof::level`]; this override exists so tests and `dsprof`
    /// can exercise levels without racing on the global. Call before
    /// [`System::run`] — flipping mid-run would leave half-collected
    /// aggregates.
    ///
    /// Shedding a level never changes simulated timing: the layers
    /// are observation-only, so `total_cycles` (and every other
    /// simulated-cycle output) stays bit-identical across levels.
    pub fn set_probe_level(&mut self, level: ProbeLevel) {
        self.probe_level = level;
        self.stages.set_enabled(level >= ProbeLevel::Stages);
        self.lens.set_enabled(level >= ProbeLevel::Full);
    }

    /// The probe level this system collects at.
    pub fn probe_level(&self) -> ProbeLevel {
        self.probe_level
    }

    /// Installs a fault plan for the next run. An inactive plan (the
    /// default) leaves the system bit-identical to one without the
    /// fault layer.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The installed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The coherence mode this system runs in.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Enables pulse sampling: per-window counter deltas, sampled
    /// gauges and online anomaly detection
    /// ([`ds_probe::PulseSampler`]), surfaced on the run's report as
    /// [`RunReport::pulse`] (with the legacy epoch series derived from
    /// it). Sampling is observation-only: simulated timing is
    /// bit-identical with pulse on or off.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.window` is zero or `cfg.capacity` is odd or
    /// less than two.
    pub fn enable_pulse(&mut self, cfg: PulseConfig) {
        self.pulse = Some(PulseSampler::new(cfg));
    }

    /// Enables windowed activity sampling: one [`ds_probe::EpochSample`]
    /// per `window` cycles, surfaced on the run's report. Thin wrapper
    /// over [`System::enable_pulse`] with an otherwise-default
    /// [`PulseConfig`]; the epoch series is the derived
    /// [`ds_probe::pulse::epoch_view`] of the pulse windows.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn enable_epochs(&mut self, window: u64) {
        self.enable_pulse(PulseConfig::with_window(window));
    }

    /// The tracer, for inspection mid- or post-run.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Consumes the system, yielding its tracer (and the events it
    /// collected).
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// The per-cacheline lens, for inspection mid- or post-run.
    pub fn lens(&self) -> &LineLens {
        &self.lens
    }

    /// Consumes the system, yielding its tracer and the per-line lens
    /// (with every line's full event history).
    pub fn into_instruments(self) -> (T, LineLens) {
        (self.tracer, self.lens)
    }

    /// The latency histograms recorded so far.
    pub fn latency(&self) -> &LatencyReport {
        &self.probes
    }

    /// Records one trace event at the current cycle. With the
    /// [`NullTracer`] this is a no-op the optimizer removes entirely.
    #[inline(always)]
    pub(super) fn trace(&mut self, component: Component, line: Option<u64>, kind: TraceKind) {
        if T::ENABLED {
            self.tracer.record(TraceEvent {
                cycle: self.now.as_u64(),
                component,
                line,
                kind,
            });
        }
    }

    /// One fault decision for a message scheduled to arrive at
    /// `arrival` on `domain`'s network. With an inactive plan this is
    /// `Deliver(arrival)` with zero side effects; under faults it may
    /// drop, duplicate or delay, counting each injection.
    pub(super) fn fault_delivery(&mut self, domain: FaultDomain, arrival: Cycle) -> Delivery {
        if !self.faults.is_active() {
            return Delivery::Deliver(arrival);
        }
        let seq = self.fault_seq[domain as usize];
        self.fault_seq[domain as usize] += 1;
        let late = arrival + self.faults.net_rates(domain).delay_cycles.max(1);
        match self.faults.roll_net(domain, seq) {
            FaultRoll::Deliver => Delivery::Deliver(arrival),
            FaultRoll::Drop => {
                self.faults_injected += 1;
                Delivery::Drop
            }
            FaultRoll::Duplicate => {
                self.faults_injected += 1;
                Delivery::Duplicate(arrival, late)
            }
            FaultRoll::Delay => {
                self.faults_injected += 1;
                Delivery::Deliver(late)
            }
        }
    }

    /// Routes every DRAM access so queue latency and bank occupancy
    /// are observed exactly once per access. Returns the full access
    /// timing for callers that attribute queueing vs. service time.
    ///
    /// Fault injection happens here, at the system boundary: a stalled
    /// (or stuck) bank pushes the *observed* completion cycle out
    /// while the DRAM model's internal bank bookkeeping keeps its
    /// unfaulted timing.
    pub(super) fn dram_access_info(
        &mut self,
        at: Cycle,
        line: LineAddr,
        write: bool,
    ) -> DramAccessInfo {
        let _prof = prof::span(HostPhase::DramTick);
        let mut info = self.dram.access_info(at, line, write);
        if self.faults.is_active() {
            let seq = self.fault_seq[FaultDomain::Dram as usize];
            self.fault_seq[FaultDomain::Dram as usize] += 1;
            if let Some(extra) = self.faults.roll_dram(info.bank, seq) {
                self.faults_injected += 1;
                info.done += extra;
            }
        }
        {
            let _tax = prof::span(HostPhase::TaxHistograms);
            self.probes
                .dram_queue
                .record(info.done.saturating_since(at));
        }
        self.lens
            .dram_access(info.bank as usize, write, info.row_hit);
        self.trace(
            Component::DramBank { bank: info.bank },
            Some(line.index()),
            TraceKind::DramAccess {
                write,
                row_hit: info.row_hit,
                start: info.start.as_u64(),
                done: info.done.as_u64(),
            },
        );
        info
    }

    /// [`System::dram_access_info`] for callers that only need the
    /// completion cycle.
    pub(super) fn dram_access(&mut self, at: Cycle, line: LineAddr, write: bool) -> Cycle {
        self.dram_access_info(at, line, write).done
    }

    /// Schedules `ev` at `at`. The runtime's single event-queue
    /// insertion point, so host profiling attributes every push to
    /// [`HostPhase::EventPush`].
    fn sched(&mut self, at: Cycle, ev: Ev) {
        let _prof = prof::span(HostPhase::EventPush);
        self.queue.push(at, ev);
    }

    /// Allocates the next stage-accounting transaction id.
    pub(super) fn next_txn(&mut self) -> u64 {
        let txn = self.txn_seq;
        self.txn_seq += 1;
        txn
    }

    /// Starts stage accounting for `txn` in `stage` at `at`, and
    /// emits the corresponding trace mark when tracing is enabled.
    /// `at` may lie in the future of `self.now` (hand-offs are often
    /// scheduled ahead); the tracker only ever compares a
    /// transaction's own marks, which callers keep nondecreasing.
    pub(super) fn stage_begin(&mut self, txn: u64, stage: Stage, at: Cycle) {
        self.stages.begin(txn, stage, at.as_u64());
        if T::ENABLED {
            self.tracer.record(TraceEvent {
                cycle: at.as_u64(),
                component: Component::Txn,
                line: None,
                kind: TraceKind::StageMark { txn, stage },
            });
        }
    }

    /// Moves `txn` into `stage` at `at` (see [`System::stage_begin`]).
    /// `None` and untracked ids are ignored, so un-instrumented
    /// requests flow through shared paths at zero cost.
    pub(super) fn stage_advance(&mut self, txn: Option<u64>, stage: Stage, at: Cycle) {
        if let Some(txn) = txn {
            self.stages.advance(txn, stage, at.as_u64());
            if T::ENABLED {
                self.tracer.record(TraceEvent {
                    cycle: at.as_u64(),
                    component: Component::Txn,
                    line: None,
                    kind: TraceKind::StageMark { txn, stage },
                });
            }
        }
    }

    /// Completes stage accounting for `txn` at `at`.
    pub(super) fn stage_finish(&mut self, txn: Option<u64>, at: Cycle) {
        if let Some(txn) = txn {
            self.stages.finish(txn, at.as_u64());
            if T::ENABLED {
                self.tracer.record(TraceEvent {
                    cycle: at.as_u64(),
                    component: Component::Txn,
                    line: None,
                    kind: TraceKind::TxnDone { txn },
                });
            }
        }
    }

    /// Snapshot of the cumulative counters and instantaneous gauges
    /// the pulse sampler watches. Pure reads of state the components
    /// already keep — the snapshot itself mutates nothing.
    fn pulse_totals(&self) -> PulseTotals {
        let mut gpu_hits = 0;
        let mut gpu_misses = 0;
        for s in &self.gpu_l2 {
            gpu_hits += s.stats.hits.value();
            gpu_misses += s.stats.misses.value();
        }
        let mut t = PulseTotals::default();
        let c = &mut t.counters;
        c[ctr::GPU_L2_ACCESSES] = gpu_hits + gpu_misses;
        c[ctr::GPU_L2_MISSES] = gpu_misses;
        c[ctr::CPU_L2_ACCESSES] = self.cpu_l2.stats.hits.value() + self.cpu_l2.stats.misses.value();
        c[ctr::CPU_L2_MISSES] = self.cpu_l2.stats.misses.value();
        c[ctr::COH_MSGS] = self.coh_net.stats().total_msgs();
        c[ctr::DIRECT_MSGS] = self.direct_net.stats().total_msgs();
        c[ctr::GPU_MSGS] = self.gpu_net.stats().total_msgs();
        c[ctr::COH_BYTES] = self.coh_net.stats().bytes;
        c[ctr::DIRECT_BYTES] = self.direct_net.stats().bytes;
        c[ctr::GPU_BYTES] = self.gpu_net.stats().bytes;
        c[ctr::DRAM_READS] = self.dram.stats().reads.value();
        c[ctr::DRAM_WRITES] = self.dram.stats().writes.value();
        c[ctr::DRAM_ROW_HITS] = self.dram.stats().row_hits.value();
        c[ctr::DRAM_BUSY_CYCLES] = self.dram.stats().busy_cycles.value();
        c[ctr::DIRECT_PUSHES] = self.direct_pushes;
        c[ctr::PUSHES_ATTEMPTED] = self.pushes_attempted;
        c[ctr::PUSHES_RETRIED] = self.pushes_retried;
        c[ctr::PUSHES_DEGRADED] = self.pushes_degraded;
        c[ctr::PUSH_BYPASSES] = self.push_bypasses;
        c[ctr::FAULTS_INJECTED] = self.faults_injected;
        c[ctr::SB_STALLS] = self.sb.full_stalls();
        c[ctr::SM_OPS] = self.sms.iter().map(|s| s.stats().ops_issued.value()).sum();
        c[ctr::WARPS_COMPLETED] = self.warps_completed;
        c[ctr::KERNELS_RUN] = self.kernels_run;
        c[ctr::HUB_TRANSACTIONS] = self.hub.stats().transactions.value();
        c[ctr::HUB_CONFLICTS] = self.hub.stats().conflicts.value();
        c[ctr::HUB_PROBES] = self.hub.stats().probes_sent.value();
        c[ctr::EVENTS] = self.queue.total_pushed();
        t.gauges[gauge::QUEUE_DEPTH] = self.queue.len() as u64;
        t.gauges[gauge::SB_OCCUPANCY] = self.sb.len() as u64;
        t.gauges[gauge::INFLIGHT_PUSHES] = self.inflight_pushes.len() as u64;
        t
    }

    /// Drains anomalies the sampler detected on just-closed windows
    /// into the trace stream. Emitting at detection time (not at end
    /// of run) is what pre-arms an attached flight recorder: the
    /// precursor events are already in its ring if the run aborts.
    fn emit_pulse_anomalies(&mut self) {
        if !T::ENABLED {
            return;
        }
        let fresh = match self.pulse.as_mut() {
            Some(p) => p.take_fresh_anomalies(),
            None => return,
        };
        for a in fresh {
            self.trace(
                Component::Pulse,
                None,
                TraceKind::PulseAnomaly {
                    anomaly: a.kind,
                    start: a.start,
                    end: a.end,
                    value: a.value,
                    threshold: a.threshold,
                },
            );
        }
    }

    /// Executes `program` against `kernels` to completion and reports.
    ///
    /// A run finishes when the CPU program has retired, the store
    /// buffer has drained and every launched kernel has completed.
    ///
    /// # Panics
    ///
    /// Panics on deadlock (the event queue empties before the run
    /// finishes) or livelock (more than two billion events) — both
    /// indicate model bugs, not workload conditions — and on a
    /// watchdog abort under an active fault plan (use
    /// [`System::try_run`] to handle those as values).
    pub fn run(&mut self, program: Program, kernels: Vec<KernelTrace>) -> RunReport {
        match self.try_run(program, kernels) {
            Ok(report) => report,
            Err(abort) => panic!("{abort}"),
        }
    }

    /// [`System::run`], but watchdog aborts under an active fault plan
    /// (deadlock / livelock, each with a diagnostic dump of
    /// outstanding MSHRs and transaction stages) come back as
    /// `Err(SimAbort)` instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SimAbort::Deadlock`] when no event fires for more
    /// than `watchdog_gap` cycles (or the queue empties) with work
    /// still outstanding, and [`SimAbort::Livelock`] when one line
    /// exceeds the cumulative push-retry bound. Both only trigger
    /// while the fault plan is active; fault-free model bugs keep
    /// their original panics.
    ///
    /// # Panics
    ///
    /// Panics on deadlock/livelock with an *inactive* plan, and on
    /// exceeding the global event limit.
    pub fn try_run(
        &mut self,
        program: Program,
        kernels: Vec<KernelTrace>,
    ) -> Result<RunReport, SimAbort> {
        prof::run_start();
        self.cpu = CpuExec {
            program,
            pc: 0,
            block: CpuBlock::None,
        };
        self.kernels = kernels;
        self.sched(Cycle::ZERO, Ev::CpuAdvance);
        let watchdog = self.faults.is_active();

        loop {
            let popped = {
                let _prof = prof::span(HostPhase::EventPop);
                self.queue.pop()
            };
            let Some((t, ev)) = popped else { break };
            debug_assert!(t >= self.now, "time went backwards");
            if watchdog
                && t.saturating_since(self.now) > self.faults.watchdog_gap
                && !self.finished()
            {
                return Err(SimAbort::Deadlock(self.chaos_diagnostic(&format!(
                    "no event for {} cycles (next at {t})",
                    t.saturating_since(self.now)
                ))));
            }
            self.now = t;
            // Cheap fast path: one compare per event; the counter
            // snapshot only happens when a window boundary is crossed.
            if matches!(&self.pulse, Some(p) if p.needs_sample(t.as_u64())) {
                let _tax = prof::span(HostPhase::TaxEpochs);
                let totals = self.pulse_totals();
                if let Some(p) = self.pulse.as_mut() {
                    p.observe(t.as_u64(), totals);
                }
                self.emit_pulse_anomalies();
            }
            self.dispatch(ev);
            if let Some(abort) = self.abort.take() {
                return Err(abort);
            }
            if self.queue.total_pushed() > EVENT_LIMIT {
                panic!("event limit exceeded: livelocked at {t}");
            }
        }
        if self.pulse.is_some() {
            let _tax = prof::span(HostPhase::TaxEpochs);
            let totals = self.pulse_totals();
            if let Some(p) = self.pulse.as_mut() {
                p.finish(self.now.as_u64(), totals);
            }
            self.emit_pulse_anomalies();
        }

        if watchdog && !self.finished() {
            return Err(SimAbort::Deadlock(
                self.chaos_diagnostic("event queue empty with work outstanding"),
            ));
        }
        assert!(
            self.finished(),
            "deadlock: queue empty but cpu block = {:?}, sb len = {}, inflight stores = {}, kernel = {:?}",
            self.cpu.block,
            self.sb.len(),
            self.inflight_stores.len(),
            self.running_kernel
        );
        if cfg!(debug_assertions) {
            self.check_invariants();
        }
        // Stage-accounting invariants: every tracked transaction
        // completed, loads agree with the load-to-use histogram, and
        // pushes with the direct-push counter. Only meaningful when
        // the stage layer actually collected (`--probe-level` ≥
        // stages).
        if self.stages.is_enabled() {
            debug_assert_eq!(self.stages.inflight(), 0, "unfinished stage transactions");
            debug_assert_eq!(
                self.stages.breakdown().loads,
                self.probes.load_to_use.samples()
            );
            debug_assert_eq!(
                u128::from(self.stages.breakdown().load_cycles),
                self.probes.load_to_use.sum(),
                "stage sums must telescope to end-to-end load latency"
            );
            debug_assert_eq!(
                self.stages.breakdown().pushes,
                self.direct_pushes + self.pushes_degraded,
                "every tracked push either completed or degraded"
            );
        }
        // Close still-open pushes (installed but never consumed) so
        // the useful/dead/clobbered partition is total, then check it
        // reconciles against every independently-kept counter.
        self.lens.finalize(self.now.as_u64());
        if cfg!(debug_assertions) && self.lens.is_enabled() {
            self.check_lens_reconciliation();
        }
        Ok(self.report())
    }

    /// The watchdog's diagnostic dump: the stuck frontier (CPU block,
    /// store buffer, in-flight stores and pushes), every MSHR's
    /// outstanding lines and the stage census of live transactions —
    /// the ds-xray view of where forward progress died.
    fn chaos_diagnostic(&self, reason: &str) -> String {
        use std::fmt::Write as _;
        let mut d = String::new();
        let _ = writeln!(d, "reason: {reason}");
        let _ = writeln!(
            d,
            "at cycle {}: cpu block = {:?}, sb len = {}, inflight stores = {}, kernel = {:?}",
            self.now,
            self.cpu.block,
            self.sb.len(),
            self.inflight_stores.len(),
            self.running_kernel
        );
        let _ = writeln!(
            d,
            "pushes: attempted = {}, acked = {}, retried = {}, degraded = {}, unacked = {}",
            self.pushes_attempted,
            self.direct_pushes,
            self.pushes_retried,
            self.pushes_degraded,
            self.inflight_pushes.len()
        );
        let mut pushes: Vec<_> = self.inflight_pushes.iter().collect();
        pushes.sort_unstable_by_key(|&(&txn, _)| txn);
        for (txn, track) in pushes {
            let _ = writeln!(
                d,
                "  unacked push txn {txn}: {} attempt {}",
                track.line, track.attempt
            );
        }
        let _ = writeln!(d, "cpu_l2 mshrs ({}):", self.cpu_l2.mshr.len());
        for (line, waiters) in self.cpu_l2.mshr.lines() {
            let _ = writeln!(d, "  {line}: {waiters} waiter(s)");
        }
        for (s, slice) in self.gpu_l2.iter().enumerate() {
            if slice.mshr.is_empty() {
                continue;
            }
            let _ = writeln!(d, "gpu_l2 slice {s} mshrs ({}):", slice.mshr.len());
            for (line, waiters) in slice.mshr.lines() {
                let _ = writeln!(d, "  {line}: {waiters} waiter(s)");
            }
        }
        let census = self.stages.inflight_census();
        let _ = writeln!(d, "stage transactions in flight ({}):", census.len());
        for (txn, stage, entered) in census {
            let _ = writeln!(d, "  txn {txn}: in {stage} since cycle {entered}");
        }
        if let Some(p) = &self.pulse {
            let anomalies = p.anomalies();
            if !anomalies.is_empty() {
                let _ = writeln!(d, "pulse anomalies before abort ({}):", anomalies.len());
                for a in anomalies {
                    let _ = writeln!(d, "  {a}");
                }
            }
        }
        let _ = write!(d, "faults injected so far: {}", self.faults_injected);
        d
    }

    /// Asserts the lens's derived aggregates agree exactly with the
    /// counters the caches, DRAM and crossbars keep on their own.
    /// Debug-only (called from [`System::run`]); `dslens --check`
    /// re-proves the same identities from a release build's report.
    fn check_lens_reconciliation(&self) {
        let lr = self.lens.report();
        let mut pushed_fills = 0;
        for (s, slice) in self.gpu_l2.iter().enumerate() {
            let row = &lr.slices[s];
            assert_eq!(row.hits, slice.stats.hits.value(), "slice {s} hits");
            assert_eq!(row.misses, slice.stats.misses.value(), "slice {s} misses");
            assert_eq!(
                row.push_fills,
                slice.stats.pushed_fills.value(),
                "slice {s} push fills"
            );
            assert_eq!(
                row.push_hits,
                slice.stats.push_hits.value(),
                "slice {s} push hits"
            );
            assert_eq!(
                row.evictions,
                slice.stats.evictions.value(),
                "slice {s} evictions"
            );
            assert_eq!(
                row.writebacks,
                slice.stats.writebacks.value(),
                "slice {s} writebacks"
            );
            pushed_fills += slice.stats.pushed_fills.value();
        }
        assert_eq!(
            lr.push_total(),
            pushed_fills,
            "useful+dead+clobbered must partition the installed pushes"
        );
        assert_eq!(lr.push_bypasses, self.push_bypasses);
        assert_eq!(lr.push_degraded, self.pushes_degraded, "degraded pushes");
        assert_eq!(lr.first_touch.samples(), lr.push_useful);
        let (reads, writes, row_hits) = lr.banks.iter().fold((0, 0, 0), |(r, w, h), b| {
            (r + b.reads, w + b.writes, h + b.row_hits)
        });
        assert_eq!(reads, self.dram.stats().reads.value(), "bank read sums");
        assert_eq!(writes, self.dram.stats().writes.value(), "bank write sums");
        assert_eq!(
            row_hits,
            self.dram.stats().row_hits.value(),
            "bank row-hit sums"
        );
        for (net, xbar) in [
            (ds_probe::NetId::Coherence, &self.coh_net),
            (ds_probe::NetId::Direct, &self.direct_net),
            (ds_probe::NetId::GpuInternal, &self.gpu_net),
        ] {
            let (control, data) = lr.net_sums(net);
            assert_eq!(control, xbar.stats().control_msgs, "{} control", net.name());
            assert_eq!(data, xbar.stats().data_msgs, "{} data", net.name());
        }
    }

    fn finished(&self) -> bool {
        self.cpu.block == CpuBlock::Finished
            && self.sb.is_empty()
            && self.inflight_stores.is_empty()
            && self.running_kernel.is_none()
            && self.kernel_queue.is_empty()
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::CpuAdvance => self.cpu_advance(),
            Ev::SbDrain => self.sb_drain(),
            Ev::CpuL2Access { line, write } => self.cpu_l2_access(line, write),
            Ev::CpuL2MemDone { line } => self.cpu_l2_mem_done(line),
            Ev::Coh { dst, msg } => self.on_coh(dst, msg),
            Ev::DirectAtSlice {
                slice,
                msg,
                slotted,
                txn,
            } => self.on_direct_at_slice(slice, msg, slotted, txn),
            Ev::DirectAtCpu { msg, txn } => self.on_direct_at_cpu(msg, txn),
            Ev::HubMemDone { line, txn } => self.on_hub_mem_done(line, txn),
            Ev::SmTick { sm } => self.sm_tick(sm as usize),
            Ev::MemArrive {
                sm,
                warp,
                issued,
                txn,
            } => self.on_mem_arrive(sm as usize, warp as usize, issued, txn),
            Ev::SliceDemand {
                slice,
                line,
                write,
                waiter,
                slotted,
            } => self.slice_demand(slice, line, write, waiter, slotted),
            Ev::SliceMemDone { slice, line } => self.slice_mem_done(slice, line),
            Ev::DirectReadMemDone { slice, line } => self.direct_read_mem_done(slice, line),
            Ev::KernelStart => self.kernel_start(),
            Ev::PushTimeout { txn, attempt } => self.on_push_timeout(txn, attempt),
        }
    }

    /// Runs the cross-cache coherence invariants; panics on violation.
    pub(crate) fn check_invariants(&self) {
        let mut checker = ProtocolChecker::new();
        if self.mode.pushes() {
            // The CPU-may-not-cache-the-window rule only exists once
            // direct store is active; under CCSM the window is
            // ordinary memory.
            checker = checker.with_direct_range(ds_cpu::vm::pa_is_direct_line);
        }
        for (line, &state) in self.cpu_l2.array.iter() {
            checker.observe(Agent::CpuL2, line, state);
        }
        for (s, slice) in self.gpu_l2.iter().enumerate() {
            for (line, &state) in slice.array.iter() {
                checker.observe(Agent::GpuL2(s as u8), line, state);
            }
        }
        let errors = checker.check();
        assert!(
            errors.is_empty(),
            "coherence invariants violated: {}",
            errors
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }

    fn report(&self) -> RunReport {
        let pulse = self.pulse.as_ref().map(|p| p.clone().into_series());
        let (epochs, epoch_window) = match &pulse {
            Some(series) => (ds_probe::pulse::epoch_view(series), series.window),
            None => (Vec::new(), 0),
        };
        let mut gpu_l2 = CacheStats::new();
        for slice in &self.gpu_l2 {
            gpu_l2.hits.add(slice.stats.hits.value());
            gpu_l2.misses.add(slice.stats.misses.value());
            gpu_l2
                .compulsory_misses
                .add(slice.stats.compulsory_misses.value());
            gpu_l2.evictions.add(slice.stats.evictions.value());
            gpu_l2.writebacks.add(slice.stats.writebacks.value());
            gpu_l2.pushed_fills.add(slice.stats.pushed_fills.value());
            gpu_l2.push_hits.add(slice.stats.push_hits.value());
        }
        let mut gpu_l1 = CacheStats::new();
        for l1 in &self.gpu_l1s {
            gpu_l1.hits.add(l1.stats().hits.value());
            gpu_l1.misses.add(l1.stats().misses.value());
            gpu_l1.evictions.add(l1.stats().evictions.value());
        }
        RunReport {
            mode: self.mode,
            total_cycles: self.now,
            gpu_l2,
            cpu_l2: self.cpu_l2.stats.clone(),
            gpu_l1,
            cpu_l1: self.cpu_l1_stats.clone(),
            coh_net: self.coh_net.stats(),
            direct_net: self.direct_net.stats(),
            gpu_net: self.gpu_net.stats(),
            dram_reads: self.dram.stats().reads.value(),
            dram_writes: self.dram.stats().writes.value(),
            direct_pushes: self.direct_pushes,
            store_buffer_stalls: self.sb.full_stalls(),
            kernels_run: self.kernels_run,
            warps_completed: self.warps_completed,
            first_kernel_start: self.first_kernel_start.unwrap_or(Cycle::ZERO),
            last_kernel_end: self.last_kernel_end,
            kernel_spans: self.kernel_spans.clone(),
            push_bypasses: self.push_bypasses,
            hub_transactions: self.hub.stats().transactions.value(),
            hub_conflicts: self.hub.stats().conflicts.value(),
            hub_probes: self.hub.stats().probes_sent.value(),
            dram_row_hits: self.dram.stats().row_hits.value(),
            pushes_attempted: self.pushes_attempted,
            pushes_retried: self.pushes_retried,
            pushes_degraded: self.pushes_degraded,
            faults_injected: self.faults_injected,
            events: self.queue.total_pushed(),
            latency: self.probes.clone(),
            stages: self.stages.breakdown().clone(),
            lens: self.lens.report(),
            pulse,
            epochs,
            epoch_window,
            host: if prof::enabled() {
                Some(prof::take_profile())
            } else {
                None
            },
            // The runner's executor fills this in (the runtime knows
            // nothing of queues or stores).
            scope: None,
        }
    }
}
