//! The simulated chip's wiring (the paper's Fig. 2, right).

use std::fmt;

use crate::SystemConfig;

/// A node of the topology description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoNode {
    /// Display name.
    pub name: String,
    /// Component class, for grouping in renderings.
    pub kind: NodeKind,
}

/// Classes of topology nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// CPU core or cache.
    Cpu,
    /// GPU SM, L1 or L2 slice.
    Gpu,
    /// Memory controller / DRAM.
    Memory,
}

/// An edge of the topology description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoEdge {
    /// Source node name.
    pub from: String,
    /// Destination node name.
    pub to: String,
    /// Which network the edge belongs to.
    pub net: EdgeNet,
}

/// The three networks of the modelled chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeNet {
    /// The baseline coherence interconnect.
    Coherence,
    /// The GPU-internal SM ↔ L2-slice network.
    GpuInternal,
    /// The added dedicated direct-store network — the dotted line of
    /// Fig. 2 (right).
    Direct,
}

/// The full topology of a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// All nodes.
    pub nodes: Vec<TopoNode>,
    /// All edges.
    pub edges: Vec<TopoEdge>,
}

impl Topology {
    /// Builds the topology implied by `cfg` (Fig. 2, right: the CPU
    /// hierarchy, the GPU's SMs and L2 slices, the memory controller,
    /// and the dotted direct network from the CPU L1 to every GPU L2
    /// slice).
    pub fn of(cfg: &SystemConfig) -> Self {
        let mut nodes = vec![
            TopoNode {
                name: "cpu-core".into(),
                kind: NodeKind::Cpu,
            },
            TopoNode {
                name: "cpu-l1d".into(),
                kind: NodeKind::Cpu,
            },
            TopoNode {
                name: "cpu-l2".into(),
                kind: NodeKind::Cpu,
            },
            TopoNode {
                name: "mem-ctrl".into(),
                kind: NodeKind::Memory,
            },
        ];
        let mut edges = vec![
            TopoEdge {
                from: "cpu-core".into(),
                to: "cpu-l1d".into(),
                net: EdgeNet::Coherence,
            },
            TopoEdge {
                from: "cpu-l1d".into(),
                to: "cpu-l2".into(),
                net: EdgeNet::Coherence,
            },
            TopoEdge {
                from: "cpu-l2".into(),
                to: "mem-ctrl".into(),
                net: EdgeNet::Coherence,
            },
        ];
        for s in 0..cfg.gpu_l2_slices() {
            let slice = format!("gpu-l2[{s}]");
            nodes.push(TopoNode {
                name: slice.clone(),
                kind: NodeKind::Gpu,
            });
            edges.push(TopoEdge {
                from: slice.clone(),
                to: "mem-ctrl".into(),
                net: EdgeNet::Coherence,
            });
            // The paper's addition: the dotted direct network.
            edges.push(TopoEdge {
                from: "cpu-l1d".into(),
                to: slice,
                net: EdgeNet::Direct,
            });
        }
        for sm in 0..cfg.sms {
            let name = format!("sm[{sm}]+l1");
            nodes.push(TopoNode {
                name: name.clone(),
                kind: NodeKind::Gpu,
            });
            for s in 0..cfg.gpu_l2_slices() {
                edges.push(TopoEdge {
                    from: name.clone(),
                    to: format!("gpu-l2[{s}]"),
                    net: EdgeNet::GpuInternal,
                });
            }
        }
        Topology { nodes, edges }
    }

    /// Edges belonging to `net`.
    pub fn edges_on(&self, net: EdgeNet) -> impl Iterator<Item = &TopoEdge> + '_ {
        self.edges.iter().filter(move |e| e.net == net)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes ({}):", self.nodes.len())?;
        for n in &self.nodes {
            writeln!(f, "  {:?}  {}", n.kind, n.name)?;
        }
        writeln!(f, "edges ({}):", self.edges.len())?;
        for e in &self.edges {
            let style = match e.net {
                EdgeNet::Coherence => "───",
                EdgeNet::GpuInternal => "═══",
                EdgeNet::Direct => "┈┈┈ (direct store)",
            };
            writeln!(f, "  {} {} {}", e.from, style, e.to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_shape() {
        let cfg = SystemConfig::paper_default();
        let t = Topology::of(&cfg);
        // 4 CPU/mem nodes + 4 slices + 16 SMs.
        assert_eq!(t.nodes.len(), 4 + 4 + 16);
        // The dotted direct network: one edge per slice, from the CPU
        // L1 (where the paper hooks the forward path).
        let direct: Vec<&TopoEdge> = t.edges_on(EdgeNet::Direct).collect();
        assert_eq!(direct.len(), 4);
        assert!(direct.iter().all(|e| e.from == "cpu-l1d"));
        // Every SM reaches every slice.
        assert_eq!(t.edges_on(EdgeNet::GpuInternal).count(), 16 * 4);
    }

    #[test]
    fn display_draws_the_dotted_line() {
        let text = Topology::of(&SystemConfig::paper_default()).to_string();
        assert!(text.contains("direct store"));
        assert!(text.contains("cpu-l2"));
    }
}
