//! Deterministic fault injection: the ds-chaos fault model.
//!
//! A [`FaultPlan`] describes which faults a run should experience —
//! message drops / duplicates / delays on each of the three networks,
//! DRAM bank stalls (transient or permanent) — plus the knobs for the
//! direct-store recovery protocol (ack timeout, bounded retries) and
//! the protocol watchdog (quiescence gap, livelock retry bound).
//!
//! Every fault decision is a pure function of `(plan.seed, fault
//! domain, per-domain sequence number)` hashed through a splitmix64
//! finalizer, so the same plan against the same workload replays
//! bit-identically regardless of wall-clock, thread count, or host.
//! An inactive plan (all rates zero, no stuck banks) injects nothing
//! and the runtime guarantees it adds **zero** events and perturbs no
//! counters, keeping fault-free runs byte-identical to builds without
//! the fault layer.
//!
//! Rates are expressed in parts-per-65536 (`u16`), so `655` ≈ 1% and
//! `65535` ≈ always. Per injection point one roll decides among
//! drop / duplicate / delay with cumulative thresholds, in that
//! priority order.

use std::fmt;

/// Per-network fault rates. Each rate is parts-per-65536 of messages
/// affected; `delay_cycles` is the extra latency applied to delayed
/// messages and to the second copy of duplicated ones.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetFaultRates {
    /// Probability (per 65536) that a message is silently dropped.
    pub drop: u16,
    /// Probability (per 65536) that a message is delivered twice.
    pub dup: u16,
    /// Probability (per 65536) that a message is delayed.
    pub delay: u16,
    /// Extra cycles added to delayed (and duplicated-second) copies.
    pub delay_cycles: u64,
}

impl NetFaultRates {
    fn any(&self) -> bool {
        self.drop > 0 || self.dup > 0 || self.delay > 0
    }
}

/// A complete, seeded fault-injection plan for one simulation run.
///
/// The default plan is *inactive*: no faults, no retry protocol, and
/// the watchdog only arms itself when faults are in play.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Root seed; every injection decision hashes this in.
    pub seed: u64,
    /// Faults on the CPU-side coherence network (MESI traffic).
    pub coh_net: NetFaultRates,
    /// Faults on the dedicated direct-store push network.
    pub direct_net: NetFaultRates,
    /// Faults on the GPU-internal SM↔slice network.
    pub gpu_net: NetFaultRates,
    /// Probability (per 65536) that a DRAM access stalls.
    pub dram_stall_rate: u16,
    /// Extra cycles a stalled DRAM access takes.
    pub dram_stall_cycles: u64,
    /// Banks that never complete any access (permanent faults; used to
    /// exercise the deadlock watchdog).
    pub stuck_banks: Vec<u16>,
    /// Cycles the store buffer waits for a push ack before retrying.
    /// Zero disables the ack/retry protocol even under faults.
    pub ack_timeout: u64,
    /// Retries before a push degrades to the CCSM demand path.
    pub max_retries: u32,
    /// Watchdog: abort as deadlocked if the next event is more than
    /// this many cycles in the future while transactions are
    /// outstanding. Only armed while the plan is active.
    pub watchdog_gap: u64,
    /// Watchdog: abort as livelocked once any single line has been
    /// retried more than this many times in total.
    pub livelock_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            coh_net: NetFaultRates::default(),
            direct_net: NetFaultRates::default(),
            gpu_net: NetFaultRates::default(),
            dram_stall_rate: 0,
            dram_stall_cycles: 0,
            stuck_banks: Vec::new(),
            ack_timeout: 200,
            max_retries: 3,
            watchdog_gap: 1_000_000,
            livelock_retries: 64,
        }
    }
}

/// Independent fault domains; each keeps its own sequence counter so
/// decisions in one domain never shift the stream of another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDomain {
    /// Coherence-network deliveries.
    CohNet = 0,
    /// Direct-store-network deliveries.
    DirectNet = 1,
    /// GPU-internal-network deliveries.
    GpuNet = 2,
    /// DRAM accesses.
    Dram = 3,
}

/// Number of fault domains (size for per-domain sequence counters).
pub const FAULT_DOMAINS: usize = 4;

/// What the fault layer decided for one message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultRoll {
    /// Deliver normally.
    Deliver,
    /// Silently drop the message.
    Drop,
    /// Deliver twice (second copy late).
    Duplicate,
    /// Deliver once, late.
    Delay,
}

impl FaultPlan {
    /// True when the plan can inject at least one fault. Inactive
    /// plans must leave a run bit-identical to one with no fault layer
    /// at all.
    pub fn is_active(&self) -> bool {
        self.coh_net.any()
            || self.direct_net.any()
            || self.gpu_net.any()
            || self.dram_stall_rate > 0
            || !self.stuck_banks.is_empty()
    }

    /// True when direct-store pushes should be tracked with the ack /
    /// timeout / retry protocol.
    pub fn retries_enabled(&self) -> bool {
        self.is_active() && self.ack_timeout > 0
    }

    /// Rates for one network domain (`Dram` has no message rates).
    pub fn net_rates(&self, domain: FaultDomain) -> &NetFaultRates {
        match domain {
            FaultDomain::CohNet => &self.coh_net,
            FaultDomain::DirectNet => &self.direct_net,
            FaultDomain::GpuNet => &self.gpu_net,
            FaultDomain::Dram => {
                unreachable!("DRAM domain has no network rates")
            }
        }
    }

    /// One deterministic roll for a message on `domain`; `seq` is the
    /// caller-maintained per-domain sequence number.
    pub fn roll_net(&self, domain: FaultDomain, seq: u64) -> FaultRoll {
        let rates = self.net_rates(domain);
        if !rates.any() {
            return FaultRoll::Deliver;
        }
        let r = u64::from(fault_hash(self.seed, domain as u64, seq) as u16);
        let (drop, dup, delay) = (
            u64::from(rates.drop),
            u64::from(rates.dup),
            u64::from(rates.delay),
        );
        if r < drop {
            FaultRoll::Drop
        } else if r < drop + dup {
            FaultRoll::Duplicate
        } else if r < drop + dup + delay {
            FaultRoll::Delay
        } else {
            FaultRoll::Deliver
        }
    }

    /// Deterministic roll for one DRAM access: `Some(extra_cycles)` if
    /// this access stalls (a stuck bank stalls effectively forever).
    pub fn roll_dram(&self, bank: u16, seq: u64) -> Option<u64> {
        if self.stuck_banks.contains(&bank) {
            // Far enough out that the watchdog trips long before the
            // access would complete, without overflowing cycle math.
            return Some(1 << 40);
        }
        if self.dram_stall_rate == 0 {
            return None;
        }
        let r = fault_hash(self.seed, FaultDomain::Dram as u64, seq) as u16;
        (r < self.dram_stall_rate).then_some(self.dram_stall_cycles)
    }

    /// Retry backoff: the wait before the ack timeout for `attempt`
    /// (0-based) fires, doubling each attempt.
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.ack_timeout.saturating_mul(1u64 << attempt.min(16))
    }
}

/// splitmix64-style finalizer over (seed, domain, sequence). The
/// low 16 bits feed the per-65536 threshold comparisons.
fn fault_hash(seed: u64, domain: u64, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_add(domain.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(seq.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why the protocol watchdog aborted a run instead of letting it hang.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimAbort {
    /// No forward progress: the event queue went quiet (or empty) for
    /// longer than `watchdog_gap` with transactions still outstanding.
    /// Carries the diagnostic dump of outstanding state.
    Deadlock(String),
    /// A line exceeded the cumulative retry bound. Carries the
    /// diagnostic dump.
    Livelock(String),
}

impl fmt::Display for SimAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimAbort::Deadlock(diag) => write!(f, "watchdog: deadlock detected\n{diag}"),
            SimAbort::Livelock(diag) => write!(f, "watchdog: livelock detected\n{diag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(!plan.retries_enabled());
        assert_eq!(plan.roll_net(FaultDomain::DirectNet, 7), FaultRoll::Deliver);
        assert_eq!(plan.roll_dram(0, 7), None);
    }

    #[test]
    fn rates_make_the_plan_active() {
        let mut plan = FaultPlan::default();
        plan.direct_net.drop = 1;
        assert!(plan.is_active());
        assert!(plan.retries_enabled());
        plan.ack_timeout = 0;
        assert!(!plan.retries_enabled());

        let stuck = FaultPlan {
            stuck_banks: vec![3],
            ..FaultPlan::default()
        };
        assert!(stuck.is_active());
    }

    #[test]
    fn rolls_are_deterministic_per_seed_and_seq() {
        let mut plan = FaultPlan {
            seed: 42,
            ..FaultPlan::default()
        };
        plan.direct_net = NetFaultRates {
            drop: 20_000,
            dup: 20_000,
            delay: 20_000,
            delay_cycles: 50,
        };
        let a: Vec<_> = (0..64)
            .map(|seq| plan.roll_net(FaultDomain::DirectNet, seq))
            .collect();
        let b: Vec<_> = (0..64)
            .map(|seq| plan.roll_net(FaultDomain::DirectNet, seq))
            .collect();
        assert_eq!(a, b);
        // A ~92% combined fault rate over 64 rolls hits every arm.
        assert!(a.contains(&FaultRoll::Drop));
        assert!(a.contains(&FaultRoll::Duplicate));
        assert!(a.contains(&FaultRoll::Delay));

        let other = FaultPlan { seed: 43, ..plan };
        let c: Vec<_> = (0..64)
            .map(|seq| other.roll_net(FaultDomain::DirectNet, seq))
            .collect();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn domains_have_independent_streams() {
        let mut plan = FaultPlan {
            seed: 7,
            ..FaultPlan::default()
        };
        plan.coh_net.drop = 32_768;
        plan.direct_net.drop = 32_768;
        let coh: Vec<_> = (0..128)
            .map(|s| plan.roll_net(FaultDomain::CohNet, s))
            .collect();
        let direct: Vec<_> = (0..128)
            .map(|s| plan.roll_net(FaultDomain::DirectNet, s))
            .collect();
        assert_ne!(coh, direct);
    }

    #[test]
    fn fault_hash_matches_hard_coded_vectors() {
        // Pin the splitmix64 finalizer to known outputs so an
        // accidental constant or shift edit can never silently change
        // every seeded fault schedule (and with it every chaos
        // regression baseline). (0, 0, 0) is the canonical first
        // splitmix64 output for seed 0.
        let vectors: &[(u64, u64, u64, u64)] = &[
            (0, 0, 0, 0xe220_a839_7b1d_cdaf),
            (0, 0, 1, 0xe4ba_cea5_c4b9_b499),
            (0, 1, 0, 0x6e78_9e6a_a1b9_65f4),
            (1, 0, 0, 0x910a_2dec_8902_5cc1),
            (42, FaultDomain::DirectNet as u64, 0, 0x28ef_e333_b266_f103),
            (42, FaultDomain::DirectNet as u64, 1, 0xba88_115a_2dbe_7279),
            (42, FaultDomain::GpuNet as u64, 7, 0x7100_0856_7d9e_213e),
            (
                0xdead_beef,
                FaultDomain::Dram as u64,
                123_456,
                0x50a5_78fa_77b3_902a,
            ),
            (u64::MAX, u64::MAX, u64::MAX, 0xa389_31fa_eeb2_2117),
        ];
        for &(seed, domain, seq, expect) in vectors {
            assert_eq!(
                fault_hash(seed, domain, seq),
                expect,
                "fault_hash({seed}, {domain}, {seq}) drifted"
            );
        }
    }

    #[test]
    fn stuck_banks_always_stall() {
        let plan = FaultPlan {
            stuck_banks: vec![2],
            ..FaultPlan::default()
        };
        for seq in 0..32 {
            assert_eq!(plan.roll_dram(2, seq), Some(1 << 40));
            assert_eq!(plan.roll_dram(1, seq), None);
        }
    }

    #[test]
    fn dram_stalls_follow_the_rate() {
        let plan = FaultPlan {
            seed: 9,
            dram_stall_rate: 32_768,
            dram_stall_cycles: 77,
            ..FaultPlan::default()
        };
        let stalled = (0..256).filter(|&s| plan.roll_dram(0, s).is_some()).count();
        assert!(
            stalled > 64 && stalled < 192,
            "~half should stall: {stalled}"
        );
        assert!((0..256).all(|s| plan.roll_dram(0, s).is_none_or(|extra| extra == 77)));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let plan = FaultPlan {
            ack_timeout: 100,
            ..FaultPlan::default()
        };
        assert_eq!(plan.backoff(0), 100);
        assert_eq!(plan.backoff(1), 200);
        assert_eq!(plan.backoff(3), 800);
        // Shift is capped; no overflow even for huge attempts.
        assert_eq!(plan.backoff(64), 100 << 16);
    }

    #[test]
    fn abort_display_names_the_failure() {
        let d = SimAbort::Deadlock("queue empty".into());
        let l = SimAbort::Livelock("line 5 retried 65x".into());
        assert!(d.to_string().contains("deadlock"));
        assert!(l.to_string().contains("livelock"));
    }
}
