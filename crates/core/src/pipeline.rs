//! The end-to-end experiment pipeline.
//!
//! Reproduces the paper's methodology (§IV): each benchmark's source is
//! run through the automatic translator; the resulting allocation plan
//! fixes where every GPU-consumed variable lives; the workload's CPU
//! program and kernel traces are built against that layout; and the
//! same workload is simulated under CCSM and under direct store.

use std::fmt;

use ds_cpu::Program;
use ds_gpu::KernelTrace;
use ds_probe::LineLens;
use ds_xlat::{AllocationPlan, TranslateError, Translator};

use crate::{FaultPlan, Mode, RunReport, System, SystemConfig};

/// A benchmark-sized input selector (Table II's "small" / "big").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSize {
    /// Fits comfortably in the GPU LLC.
    Small,
    /// Exceeds the GPU LLC capacity.
    Big,
}

impl fmt::Display for InputSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputSize::Small => write!(f, "small"),
            InputSize::Big => write!(f, "big"),
        }
    }
}

/// The programs a scenario compiles to for one run.
#[derive(Debug, Clone)]
pub struct ScenarioBuild {
    /// The CPU-side program (produce, launch, wait, optionally read
    /// back).
    pub program: Program,
    /// The GPU kernels, indexed by `CpuOp::Launch`.
    pub kernels: Vec<KernelTrace>,
}

/// A runnable workload: mini-CUDA source plus a generator that builds
/// programs for a given memory layout.
///
/// Implemented by every Table II benchmark in `ds-workloads`.
pub trait Scenario {
    /// Short code name (`"VA"`, `"MM"`, ...).
    fn code(&self) -> &str;

    /// The mini-CUDA source handed to the translator.
    fn source(&self, input: InputSize) -> String;

    /// Builds the CPU program and kernels. `plan` is `Some` when the
    /// translator ran (direct-store modes) and `None` under CCSM,
    /// where the same variables live on the ordinary heap.
    fn build(&self, plan: Option<&AllocationPlan>, input: InputSize) -> ScenarioBuild;
}

/// Errors from [`Pipeline::run_comparison`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The translator rejected the scenario's source.
    Translate(TranslateError),
    /// A benchmark code the catalog does not know (raised by runners
    /// that look scenarios up by code rather than holding them).
    UnknownBenchmark(String),
    /// The simulation panicked; the payload is the panic message
    /// (raised by harnesses that isolate runs with `catch_unwind`).
    Panicked(String),
    /// The simulation exceeded the harness's wall-clock budget.
    TimedOut,
    /// The protocol watchdog aborted the run (deadlock or livelock
    /// under fault injection); the payload is the diagnostic dump.
    Aborted(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Translate(e) => write!(f, "translation failed: {e}"),
            PipelineError::UnknownBenchmark(code) => {
                write!(f, "unknown benchmark code {code:?} (see Table II)")
            }
            PipelineError::Panicked(msg) => write!(f, "simulation panicked: {msg}"),
            PipelineError::TimedOut => write!(f, "simulation timed out"),
            PipelineError::Aborted(diag) => write!(f, "simulation aborted: {diag}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Translate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TranslateError> for PipelineError {
    fn from(e: TranslateError) -> Self {
        PipelineError::Translate(e)
    }
}

/// The CCSM-vs-direct-store outcome for one benchmark and input size.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark code name.
    pub code: String,
    /// Input size the comparison ran at.
    pub input: InputSize,
    /// The baseline run.
    pub ccsm: RunReport,
    /// The direct-store run.
    pub direct_store: RunReport,
}

impl Comparison {
    /// Sentinel [`Comparison::speedup`] returns when the direct-store
    /// run recorded zero cycles. A real simulation always advances the
    /// clock, so zero cycles means the run never happened (e.g. a
    /// hand-built report); `1.0` keeps such entries neutral in
    /// geomeans and ranking instead of producing an infinity or NaN.
    /// Debug builds assert instead of hiding the broken run.
    pub const ZERO_CYCLE_SPEEDUP: f64 = 1.0;

    /// Speedup of direct store over CCSM (`ccsm_ticks / ds_ticks`,
    /// the paper's Fig. 4 metric; `> 1` means direct store is faster).
    ///
    /// A zero-cycle direct-store run — impossible for a simulation that
    /// actually ran — panics in debug builds and yields
    /// [`Comparison::ZERO_CYCLE_SPEEDUP`] in release builds.
    pub fn speedup(&self) -> f64 {
        let ds = self.direct_store.total_cycles.as_u64();
        debug_assert!(
            ds != 0,
            "direct-store run for {} [{}] recorded zero cycles; \
             this report cannot come from a real simulation",
            self.code,
            self.input,
        );
        if ds == 0 {
            return Self::ZERO_CYCLE_SPEEDUP;
        }
        self.ccsm.total_cycles.as_u64() as f64 / ds as f64
    }

    /// Speedup as a percentage gain (the unit of Fig. 4's y-axis).
    pub fn speedup_percent(&self) -> f64 {
        (self.speedup() - 1.0) * 100.0
    }

    /// GPU L2 miss-rate pair `(ccsm, direct_store)` (Fig. 5).
    pub fn miss_rates(&self) -> (f64, f64) {
        (
            self.ccsm.gpu_l2_miss_rate(),
            self.direct_store.gpu_l2_miss_rate(),
        )
    }

    /// Compulsory-miss pair `(ccsm, direct_store)`.
    pub fn compulsory_misses(&self) -> (u64, u64) {
        (
            self.ccsm.gpu_l2_compulsory_misses(),
            self.direct_store.gpu_l2_compulsory_misses(),
        )
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (mc, md) = self.miss_rates();
        write!(
            f,
            "{:<4} [{}] speedup {:+.2}%  miss rate {:.2}% -> {:.2}%",
            self.code,
            self.input,
            self.speedup_percent(),
            mc * 100.0,
            md * 100.0
        )
    }
}

/// The experiment driver: translate, build, simulate both modes.
///
/// See the workspace quickstart example for typical use.
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: SystemConfig,
    ds_mode: Mode,
}

impl Pipeline {
    /// A pipeline over the Table I configuration comparing CCSM to the
    /// complement-style direct store.
    pub fn paper_default() -> Self {
        Pipeline {
            cfg: SystemConfig::paper_default(),
            ds_mode: Mode::DirectStore,
        }
    }

    /// A pipeline over a custom configuration.
    pub fn with_config(cfg: SystemConfig) -> Self {
        Pipeline {
            cfg,
            ds_mode: Mode::DirectStore,
        }
    }

    /// Uses [`Mode::DirectStoreOnly`] (the §III.H replacement design)
    /// as the direct-store side of comparisons.
    pub fn replacement_mode(mut self) -> Self {
        self.ds_mode = Mode::DirectStoreOnly;
        self
    }

    /// The configuration runs will use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Runs `scenario` once under `mode`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Translate`] if the scenario's source
    /// fails translation (direct-store modes only).
    pub fn run_one(
        &self,
        scenario: &dyn Scenario,
        input: InputSize,
        mode: Mode,
    ) -> Result<RunReport, PipelineError> {
        self.run_one_instrumented(scenario, input, mode, ds_probe::NullTracer, None)
            .map(|(report, _)| report)
    }

    /// Runs `scenario` once under `mode` with instrumentation: trace
    /// events go to `tracer` (pass [`ds_probe::NullTracer`] to compile
    /// them away) and, when `epoch_window` is `Some(n)`, the report
    /// carries one activity sample per `n` cycles. Returns the report
    /// together with the tracer and everything it collected.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Translate`] if the scenario's source
    /// fails translation (direct-store modes only).
    pub fn run_one_instrumented<T: ds_probe::Tracer>(
        &self,
        scenario: &dyn Scenario,
        input: InputSize,
        mode: Mode,
        tracer: T,
        epoch_window: Option<u64>,
    ) -> Result<(RunReport, T), PipelineError> {
        let plan = if mode.pushes() {
            let translation = Translator::new().translate(&scenario.source(input))?;
            Some(translation.plan)
        } else {
            None
        };
        let build = scenario.build(plan.as_ref(), input);
        let mut system = System::with_tracer(self.cfg.clone(), mode, tracer);
        if let Some(window) = epoch_window {
            system.enable_epochs(window);
        }
        let report = system.run(build.program, build.kernels);
        Ok((report, system.into_tracer()))
    }

    /// Runs `scenario` once under `mode` with `plan`'s faults injected
    /// and the protocol watchdog armed (ds-chaos). With an inactive
    /// plan this is equivalent to [`Pipeline::run_one`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Translate`] on translation failure and
    /// [`PipelineError::Aborted`] when the watchdog detects deadlock
    /// or livelock (the message carries the diagnostic dump).
    pub fn run_one_faulted(
        &self,
        scenario: &dyn Scenario,
        input: InputSize,
        mode: Mode,
        plan: &FaultPlan,
    ) -> Result<RunReport, PipelineError> {
        let alloc = if mode.pushes() {
            let translation = Translator::new().translate(&scenario.source(input))?;
            Some(translation.plan)
        } else {
            None
        };
        let build = scenario.build(alloc.as_ref(), input);
        let mut system = System::with_tracer(self.cfg.clone(), mode, ds_probe::NullTracer);
        system.set_fault_plan(plan.clone());
        system
            .try_run(build.program, build.kernels)
            .map_err(|abort| PipelineError::Aborted(abort.to_string()))
    }

    /// Like [`Pipeline::run_one_faulted`], but with trace events going
    /// to `tracer` — the flight-recorder hook: pass a shared-ring
    /// tracer (e.g. [`ds_probe::FlightRecorder`]) and its retained
    /// tail survives even a watchdog abort, because the tracer is
    /// returned alongside the result instead of being dropped with the
    /// aborted system.
    ///
    /// # Errors
    ///
    /// As [`Pipeline::run_one_faulted`]; the error travels in the
    /// returned pair so the tracer is never lost.
    pub fn run_one_faulted_traced<T: ds_probe::Tracer>(
        &self,
        scenario: &dyn Scenario,
        input: InputSize,
        mode: Mode,
        plan: &FaultPlan,
        tracer: T,
    ) -> (Result<RunReport, PipelineError>, T) {
        let alloc = if mode.pushes() {
            match Translator::new().translate(&scenario.source(input)) {
                Ok(translation) => Some(translation.plan),
                Err(e) => return (Err(e.into()), tracer),
            }
        } else {
            None
        };
        let build = scenario.build(alloc.as_ref(), input);
        let mut system = System::with_tracer(self.cfg.clone(), mode, tracer);
        system.set_fault_plan(plan.clone());
        let result = system
            .try_run(build.program, build.kernels)
            .map_err(|abort| PipelineError::Aborted(abort.to_string()));
        (result, system.into_tracer())
    }

    /// Runs `scenario` once under `mode` with pulse sampling
    /// configured by `pulse` (see [`ds_probe::PulseSampler`]; the
    /// report carries the full [`ds_probe::PulseSeries`]), `plan`'s
    /// faults injected (pass `&FaultPlan::default()` for a fault-free
    /// run) and trace events going to `tracer`. Shaped like
    /// [`Pipeline::run_one_faulted_traced`]: the tracer rides the
    /// return pair, so a flight recorder's retained tail — including
    /// any pulse-anomaly precursor events — survives a watchdog abort.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Translate`] on translation failure and
    /// [`PipelineError::Aborted`] on a watchdog abort, both inside the
    /// returned pair.
    pub fn run_one_pulsed<T: ds_probe::Tracer>(
        &self,
        scenario: &dyn Scenario,
        input: InputSize,
        mode: Mode,
        tracer: T,
        pulse: ds_probe::PulseConfig,
        plan: &FaultPlan,
    ) -> (Result<RunReport, PipelineError>, T) {
        let alloc = if mode.pushes() {
            match Translator::new().translate(&scenario.source(input)) {
                Ok(translation) => Some(translation.plan),
                Err(e) => return (Err(e.into()), tracer),
            }
        } else {
            None
        };
        let build = scenario.build(alloc.as_ref(), input);
        let mut system = System::with_tracer(self.cfg.clone(), mode, tracer);
        system.enable_pulse(pulse);
        system.set_fault_plan(plan.clone());
        let result = system
            .try_run(build.program, build.kernels)
            .map_err(|abort| PipelineError::Aborted(abort.to_string()));
        (result, system.into_tracer())
    }

    /// Like [`Pipeline::run_one_instrumented`], but also hands back
    /// the per-cacheline [`LineLens`] with full event histories (the
    /// report only carries its aggregate [`ds_probe::LensReport`]) —
    /// the `dslens` CLI's forensics views are built from this.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Translate`] if the scenario's source
    /// fails translation (direct-store modes only).
    pub fn run_one_lensed<T: ds_probe::Tracer>(
        &self,
        scenario: &dyn Scenario,
        input: InputSize,
        mode: Mode,
        tracer: T,
        epoch_window: Option<u64>,
    ) -> Result<(RunReport, T, LineLens), PipelineError> {
        let plan = if mode.pushes() {
            let translation = Translator::new().translate(&scenario.source(input))?;
            Some(translation.plan)
        } else {
            None
        };
        let build = scenario.build(plan.as_ref(), input);
        let mut system = System::with_tracer(self.cfg.clone(), mode, tracer);
        if let Some(window) = epoch_window {
            system.enable_epochs(window);
        }
        let report = system.run(build.program, build.kernels);
        let (tracer, lens) = system.into_instruments();
        Ok((report, tracer, lens))
    }

    /// Runs `scenario` under CCSM and under direct store, returning
    /// the paired outcome.
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn run_comparison(
        &self,
        scenario: &dyn Scenario,
        input: InputSize,
    ) -> Result<Comparison, PipelineError> {
        let ccsm = self.run_one(scenario, input, Mode::Ccsm)?;
        let direct_store = self.run_one(scenario, input, self.ds_mode)?;
        Ok(Comparison {
            code: scenario.code().to_string(),
            input,
            ccsm,
            direct_store,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_cpu::CpuOp;
    use ds_gpu::WarpOp;
    use ds_mem::{VirtAddr, LINE_BYTES};

    /// A minimal producer-consumer scenario for pipeline testing.
    struct Mini;

    impl Scenario for Mini {
        fn code(&self) -> &str {
            "MINI"
        }

        fn source(&self, _input: InputSize) -> String {
            "#define N 8192\nfloat* a = (float*)malloc(N);\nconsume<<<1, 256>>>(a);\n".into()
        }

        fn build(&self, plan: Option<&AllocationPlan>, _input: InputSize) -> ScenarioBuild {
            let base = plan
                .map(|p| p.lookup("a").expect("a planned").base)
                .unwrap_or(VirtAddr::new(0x1000_0000));
            let bytes = 8192u64;
            let mut program = Program::new();
            program.store_array(base, bytes, 0);
            program.push(CpuOp::Launch(0));
            program.push(CpuOp::WaitGpu);
            let mut k = KernelTrace::new("consume");
            let lines = bytes / LINE_BYTES;
            for w in 0..8 {
                let chunk = lines / 8;
                k.push_warp(vec![WarpOp::global_load(
                    base.offset(w * chunk * LINE_BYTES),
                    chunk as u16,
                )]);
            }
            ScenarioBuild {
                program,
                kernels: vec![k],
            }
        }
    }

    #[test]
    fn comparison_runs_and_ds_reduces_misses() {
        let out = Pipeline::paper_default()
            .run_comparison(&Mini, InputSize::Small)
            .unwrap();
        assert!(out.direct_store.gpu_l2.misses.value() < out.ccsm.gpu_l2.misses.value());
        assert!(out.direct_store.direct_pushes > 0);
        assert_eq!(out.ccsm.direct_pushes, 0);
        assert!(out.speedup() > 1.0, "push-based supply must win here");
    }

    #[test]
    fn replacement_mode_also_works() {
        let out = Pipeline::paper_default()
            .replacement_mode()
            .run_comparison(&Mini, InputSize::Small)
            .unwrap();
        assert_eq!(out.direct_store.mode, Mode::DirectStoreOnly);
        assert!(out.direct_store.direct_pushes > 0);
        // No coherence traffic at all in replacement mode... except
        // none is expected on this workload's GPU side either way;
        // the strong property is zero probe broadcasts:
        assert_eq!(out.direct_store.coh_net.total_msgs(), 0);
    }

    fn zero_cycle_comparison() -> Comparison {
        let mut out = Pipeline::paper_default()
            .run_comparison(&Mini, InputSize::Small)
            .unwrap();
        out.direct_store.total_cycles = ds_sim::Cycle::ZERO;
        out
    }

    #[test]
    #[cfg(debug_assertions)]
    fn zero_cycle_direct_store_panics_in_debug() {
        let out = zero_cycle_comparison();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| out.speedup()));
        assert!(result.is_err(), "debug builds must flag the broken run");
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn zero_cycle_direct_store_yields_sentinel_in_release() {
        let out = zero_cycle_comparison();
        assert_eq!(out.speedup(), Comparison::ZERO_CYCLE_SPEEDUP);
    }

    #[test]
    fn pulse_windows_conserve_and_never_change_timing() {
        use ds_probe::pulse::ctr;
        let pipe = Pipeline::paper_default();
        let plain = pipe
            .run_one(&Mini, InputSize::Small, Mode::DirectStore)
            .unwrap();
        let (pulsed, _) = pipe.run_one_pulsed(
            &Mini,
            InputSize::Small,
            Mode::DirectStore,
            ds_probe::NullTracer,
            ds_probe::PulseConfig::default(),
            &FaultPlan::default(),
        );
        let pulsed = pulsed.unwrap();
        assert_eq!(
            plain.total_cycles, pulsed.total_cycles,
            "pulse fed back into timing"
        );
        assert_eq!(plain.gpu_l2.misses.value(), pulsed.gpu_l2.misses.value());
        let series = pulsed.pulse.as_ref().expect("pulse enabled");
        series
            .check_conservation()
            .expect("per-window deltas sum to totals");
        // Series totals agree with the independently-filled report.
        assert_eq!(
            series.totals.counters[ctr::DIRECT_PUSHES],
            pulsed.direct_pushes
        );
        assert_eq!(series.totals.counters[ctr::DRAM_READS], pulsed.dram_reads);
        assert_eq!(series.totals.counters[ctr::EVENTS], pulsed.events);
        // The legacy epoch series is the derived view of the windows.
        assert_eq!(pulsed.epoch_window, series.window);
        assert_eq!(pulsed.epochs.len(), series.len());
        assert_eq!(
            pulsed
                .epochs
                .iter()
                .map(|s| s.delta.dram_accesses)
                .sum::<u64>(),
            pulsed.dram_reads + pulsed.dram_writes,
        );
    }

    #[test]
    fn unknown_benchmark_error_formats() {
        let e = PipelineError::UnknownBenchmark("NOPE".into());
        assert!(e.to_string().contains("NOPE"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn display_formats() {
        let out = Pipeline::paper_default()
            .run_comparison(&Mini, InputSize::Small)
            .unwrap();
        let text = out.to_string();
        assert!(text.contains("MINI"));
        assert!(text.contains("speedup"));
        assert_eq!(InputSize::Big.to_string(), "big");
    }
}
