//! Behavioural tests of the timed system model: tiny hand-built
//! programs exercising one mechanism each.

use ds_core::{Mode, System, SystemConfig};
use ds_cpu::{CpuOp, Program};
use ds_gpu::{KernelTrace, WarpOp};
use ds_mem::VirtAddr;

const WINDOW: u64 = 0x7f00_0000_0000;
const HEAP: u64 = 0x1000_0000;

fn system(mode: Mode) -> System {
    System::new(SystemConfig::paper_default(), mode)
}

fn empty_kernel() -> KernelTrace {
    let mut k = KernelTrace::new("nop");
    k.push_warp(vec![WarpOp::Compute(1)]);
    k
}

#[test]
fn empty_program_finishes_immediately() {
    let mut sys = system(Mode::Ccsm);
    let r = sys.run(Program::new(), Vec::new());
    assert_eq!(r.total_cycles.as_u64(), 0);
    assert_eq!(r.kernels_run, 0);
}

#[test]
fn compute_only_program_costs_its_compute() {
    let mut sys = system(Mode::Ccsm);
    let mut p = Program::new();
    p.push(CpuOp::Compute(100));
    p.push(CpuOp::Compute(50));
    let r = sys.run(p, Vec::new());
    assert_eq!(r.total_cycles.as_u64(), 150);
}

#[test]
fn sequential_kernel_launches_run_in_order() {
    let mut sys = system(Mode::Ccsm);
    let mut p = Program::new();
    p.push(CpuOp::Launch(0));
    p.push(CpuOp::Launch(1));
    p.push(CpuOp::WaitGpu);
    let r = sys.run(p, vec![empty_kernel(), empty_kernel()]);
    assert_eq!(r.kernels_run, 2);
    assert_eq!(r.warps_completed, 2);
}

#[test]
fn kernel_spans_are_recorded_in_order() {
    let base = VirtAddr::new(HEAP);
    // Kernel 0: one load. Kernel 1: a dependent chain of eight loads
    // to distinct lines (each op waits for the previous), necessarily
    // longer.
    let mut k0 = KernelTrace::new("short");
    k0.push_warp(vec![WarpOp::global_load(base, 1)]);
    let mut k1 = KernelTrace::new("chain");
    k1.push_warp(
        (1..9)
            .map(|i| WarpOp::global_load(base.offset(i * 128), 1))
            .collect(),
    );
    let mut p = Program::new();
    p.push(CpuOp::Launch(0));
    p.push(CpuOp::Launch(1));
    p.push(CpuOp::WaitGpu);
    let mut sys = system(Mode::Ccsm);
    let r = sys.run(p, vec![k0, k1]);
    assert_eq!(r.kernel_spans.len(), 2);
    let (s0, e0) = r.kernel_spans[0];
    let (s1, e1) = r.kernel_spans[1];
    assert!(s0 < e0 && e0 <= s1 && s1 < e1, "spans ordered and disjoint");
    assert_eq!(r.kernel_cycles(), (e0 - s0) + (e1 - s1));
    // The dependent chain runs longer than the single load.
    assert!(e1 - s1 > e0 - s0);
}

#[test]
fn wait_gpu_without_launch_is_a_noop() {
    let mut sys = system(Mode::Ccsm);
    let mut p = Program::new();
    p.push(CpuOp::WaitGpu);
    p.push(CpuOp::Compute(10));
    let r = sys.run(p, Vec::new());
    assert!(r.total_cycles.as_u64() >= 10);
    assert_eq!(r.kernels_run, 0);
}

#[test]
fn store_buffer_absorbs_then_stalls() {
    // More distinct lines than buffer entries: the program must stall
    // at least once but still complete.
    let cfg = SystemConfig::paper_default();
    let entries = cfg.store_buffer_entries as u64;
    let mut sys = System::new(cfg, Mode::Ccsm);
    let mut p = Program::new();
    p.store_array(VirtAddr::new(HEAP), (entries + 24) * 128, 0);
    let r = sys.run(p, Vec::new());
    assert!(r.store_buffer_stalls > 0, "back-to-back stores must stall");
}

#[test]
fn store_to_load_forwarding_avoids_memory() {
    let mut sys = system(Mode::Ccsm);
    let mut p = Program::new();
    p.push(CpuOp::Store(VirtAddr::new(HEAP)));
    p.push(CpuOp::Load(VirtAddr::new(HEAP)));
    let r = sys.run(p, Vec::new());
    // The load forwards from the store buffer: zero CPU L1/L2 load
    // traffic beyond the store's own drain.
    assert_eq!(r.cpu_l1.hits.value() + r.cpu_l1.misses.value(), 0);
}

#[test]
fn cpu_load_miss_pulls_through_the_hierarchy() {
    let mut sys = system(Mode::Ccsm);
    let mut p = Program::new();
    p.push(CpuOp::Load(VirtAddr::new(HEAP)));
    let r = sys.run(p, Vec::new());
    assert_eq!(r.cpu_l1.misses.value(), 1);
    assert_eq!(r.cpu_l2.misses.value(), 1);
    assert!(r.dram_reads >= 1, "cold load must reach DRAM");
    // Second run state is fresh per system; within one run a repeat
    // load hits.
    let mut sys2 = system(Mode::Ccsm);
    let mut p2 = Program::new();
    p2.push(CpuOp::Load(VirtAddr::new(HEAP)));
    p2.push(CpuOp::Load(VirtAddr::new(HEAP)));
    let r2 = sys2.run(p2, Vec::new());
    assert_eq!(r2.cpu_l1.hits.value(), 1);
}

#[test]
fn direct_stores_bypass_cpu_caches_entirely() {
    let mut sys = system(Mode::DirectStore);
    let mut p = Program::new();
    p.store_array(VirtAddr::new(WINDOW), 32 * 128, 0);
    let r = sys.run(p, Vec::new());
    assert_eq!(r.direct_pushes, 32);
    assert_eq!(
        r.cpu_l2.accesses(),
        0,
        "window stores never touch CPU caches"
    );
    assert_eq!(r.gpu_l2.pushed_fills.value(), 32);
}

#[test]
fn ccsm_mode_treats_window_addresses_as_ordinary_memory() {
    let mut sys = system(Mode::Ccsm);
    let mut p = Program::new();
    p.store_array(VirtAddr::new(WINDOW), 8 * 128, 0);
    let r = sys.run(p, Vec::new());
    assert_eq!(r.direct_pushes, 0);
    assert!(r.cpu_l2.accesses() > 0);
}

#[test]
fn uncached_cpu_readback_of_gpu_results() {
    // GPU writes a line; the CPU reads it back through the direct
    // network without allocating it in its caches.
    let base = VirtAddr::new(WINDOW);
    let mut k = KernelTrace::new("produce_out");
    k.push_warp(vec![WarpOp::global_store(base, 4)]);
    let mut p = Program::new();
    p.push(CpuOp::Launch(0));
    p.push(CpuOp::WaitGpu);
    p.load_array(base, 4 * 128, 0);
    let mut sys = system(Mode::DirectStore);
    let r = sys.run(p, vec![k]);
    assert_eq!(r.cpu_l1.accesses(), 0, "uncached reads skip the CPU L1");
    assert_eq!(r.cpu_l2.accesses(), 0);
    assert!(r.direct_net.total_msgs() >= 8, "4 requests + 4 responses");
}

#[test]
fn gpu_l1_flash_invalidate_between_kernels() {
    let base = VirtAddr::new(HEAP);
    let mk = || {
        let mut k = KernelTrace::new("reader");
        k.push_warp(vec![WarpOp::global_load(base, 1)]);
        k
    };
    let mut p = Program::new();
    p.push(CpuOp::Launch(0));
    p.push(CpuOp::WaitGpu);
    p.push(CpuOp::Launch(1));
    p.push(CpuOp::WaitGpu);
    let mut sys = system(Mode::Ccsm);
    let r = sys.run(p, vec![mk(), mk()]);
    // Both kernels miss the (flash-invalidated) L1; the second hits L2.
    assert_eq!(r.gpu_l1.misses.value(), 2);
    assert_eq!(r.gpu_l2.hits.value(), 1);
    assert_eq!(r.gpu_l2.misses.value(), 1);
}

#[test]
fn push_hits_are_attributed() {
    let base = VirtAddr::new(WINDOW);
    let mut k = KernelTrace::new("consume");
    k.push_warp(vec![WarpOp::global_load(base, 8)]);
    let mut p = Program::new();
    p.store_array(base, 8 * 128, 0);
    p.push(CpuOp::Launch(0));
    p.push(CpuOp::WaitGpu);
    let mut sys = system(Mode::DirectStore);
    let r = sys.run(p, vec![k]);
    assert_eq!(r.gpu_l2.push_hits.value(), 8);
    assert_eq!(r.gpu_l2.misses.value(), 0);
}

#[test]
fn tlb_miss_penalty_is_visible() {
    // Two configs differing only in TLB miss penalty; a page-crossing
    // store stream must be slower with the bigger penalty.
    let mut p = Program::new();
    // One store per page: every access is a TLB miss once the tiny TLB
    // wraps.
    for i in 0..200u64 {
        p.push(CpuOp::Store(VirtAddr::new(HEAP + i * 4096)));
    }
    let run = |penalty: u64| {
        let mut cfg = SystemConfig::paper_default();
        cfg.tlb_entries = 4;
        cfg.tlb_miss_penalty = penalty;
        let mut sys = System::new(cfg, Mode::Ccsm);
        sys.run(p.clone(), Vec::new()).total_cycles.as_u64()
    };
    assert!(run(200) > run(1) + 150 * 190);
}

#[test]
fn prefetcher_changes_traffic_but_not_correctness() {
    let base = VirtAddr::new(HEAP);
    let mk = || {
        let mut k = KernelTrace::new("stream");
        for w in 0..4 {
            k.push_warp(vec![WarpOp::global_load(base.offset(w * 8 * 128), 8)]);
        }
        k
    };
    let mut p = Program::new();
    p.push(CpuOp::Launch(0));
    p.push(CpuOp::WaitGpu);

    let mut base_cfg = SystemConfig::paper_default();
    base_cfg.gpu_l2_prefetch = false;
    let mut sys = System::new(base_cfg, Mode::Ccsm);
    let plain = sys.run(p.clone(), vec![mk()]);

    let mut pf_cfg = SystemConfig::paper_default();
    pf_cfg.gpu_l2_prefetch = true;
    let mut sys = System::new(pf_cfg, Mode::Ccsm);
    let pf = sys.run(p, vec![mk()]);

    assert_eq!(plain.warps_completed, pf.warps_completed);
    assert!(
        pf.dram_reads >= plain.dram_reads,
        "prefetching can only add memory traffic"
    );
    assert!(pf.gpu_l2.misses.value() <= plain.gpu_l2.misses.value());
}

#[test]
fn ds_only_mode_completes_cpu_only_work() {
    let mut sys = system(Mode::DirectStoreOnly);
    let mut p = Program::new();
    p.store_array(VirtAddr::new(HEAP), 16 * 128, 0);
    p.load_array(VirtAddr::new(HEAP), 16 * 128, 0);
    let r = sys.run(p, Vec::new());
    assert_eq!(r.coh_net.total_msgs(), 0);
    assert!(r.dram_reads > 0);
}

#[test]
#[should_panic(expected = "launch of unknown kernel")]
fn launching_a_missing_kernel_panics() {
    let mut sys = system(Mode::Ccsm);
    let mut p = Program::new();
    p.push(CpuOp::Launch(3));
    sys.run(p, vec![empty_kernel()]);
}
