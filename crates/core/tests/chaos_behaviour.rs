//! Behavioural tests of the ds-chaos fault layer: deterministic
//! injection, the push retry/degradation protocol, and the watchdog,
//! each exercised end to end on tiny hand-built programs.

use ds_core::{FaultPlan, Mode, SimAbort, System, SystemConfig};
use ds_cpu::{CpuOp, Program};
use ds_gpu::{KernelTrace, WarpOp};
use ds_mem::{VirtAddr, LINE_BYTES};

/// Direct-store window base (see `ds-mem`): stores here take the
/// direct path without needing the translator.
const WINDOW: u64 = 0x7f00_0000_0000;

/// A producer-consumer program with no CPU readback: the CPU pushes
/// `lines` cache lines, the GPU consumes them. With no post-kernel
/// demand loads over the direct network, even heavy message loss
/// leaves the run completable — pushes retry or degrade.
fn push_then_consume(lines: u64) -> (Program, Vec<KernelTrace>) {
    let base = VirtAddr::new(WINDOW);
    let mut p = Program::new();
    p.store_array(base, lines * LINE_BYTES, 0);
    p.push(CpuOp::Launch(0));
    p.push(CpuOp::WaitGpu);
    let mut k = KernelTrace::new("consume");
    for i in 0..lines {
        k.push_warp(vec![WarpOp::global_load(base.offset(i * LINE_BYTES), 1)]);
    }
    (p, vec![k])
}

fn run_with_plan(plan: FaultPlan, lines: u64) -> Result<ds_core::RunReport, SimAbort> {
    let mut sys = System::new(SystemConfig::paper_default(), Mode::DirectStore);
    sys.set_fault_plan(plan);
    let (program, kernels) = push_then_consume(lines);
    sys.try_run(program, kernels)
}

#[test]
fn inactive_plan_is_bit_identical_to_no_plan() {
    let (program, kernels) = push_then_consume(32);
    let mut plain = System::new(SystemConfig::paper_default(), Mode::DirectStore);
    let a = plain.run(program.clone(), kernels.clone());
    let b = run_with_plan(FaultPlan::default(), 32).expect("inactive plan cannot abort");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "an inactive fault plan must not perturb the simulation"
    );
    assert_eq!(b.pushes_attempted, b.direct_pushes);
    assert_eq!(b.faults_injected, 0);
}

#[test]
fn delayed_acks_trigger_retries_without_loss() {
    let mut plan = FaultPlan {
        seed: 7,
        ..FaultPlan::default()
    };
    plan.direct_net.delay = 20_000; // ~30% of messages
    plan.direct_net.delay_cycles = 500; // beyond the 200-cycle timeout
    let r = run_with_plan(plan, 64).expect("delays never lose messages");
    assert!(r.pushes_retried > 0, "late acks must trigger retries");
    assert_eq!(r.pushes_degraded, 0, "nothing was lost");
    assert_eq!(
        r.pushes_attempted, r.direct_pushes,
        "every push still completes"
    );
    assert!(r.faults_injected > 0);
}

#[test]
fn persistent_loss_degrades_pushes_with_no_silent_loss() {
    let mut plan = FaultPlan {
        seed: 3,
        ack_timeout: 50,
        max_retries: 2,
        ..FaultPlan::default()
    };
    plan.direct_net.drop = 40_000; // ~61% of messages
    let r = run_with_plan(plan, 64).expect("no readback, so loss is survivable");
    assert!(
        r.pushes_degraded > 0,
        "at this loss rate some pushes must exhaust their retries"
    );
    assert_eq!(
        r.pushes_attempted,
        r.direct_pushes + r.pushes_degraded,
        "every drained push is acknowledged or degraded — never lost"
    );
    assert_eq!(r.lens.push_degraded, r.pushes_degraded);
    assert_eq!(r.kernels_run, 1, "the consumer still runs to completion");
}

#[test]
fn faulted_runs_replay_bit_identically() {
    let mut plan = FaultPlan {
        seed: 11,
        ..FaultPlan::default()
    };
    plan.direct_net.drop = 9_000;
    plan.direct_net.dup = 4_000;
    plan.direct_net.delay = 4_000;
    plan.direct_net.delay_cycles = 300;
    let a = run_with_plan(plan.clone(), 48).expect("survivable mix");
    let b = run_with_plan(plan.clone(), 48).expect("survivable mix");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "same (seed, plan) must replay bit for bit"
    );
    let mut reseeded = plan;
    reseeded.seed = 12;
    let c = run_with_plan(reseeded, 48).expect("survivable mix");
    assert_ne!(
        format!("{a:?}"),
        format!("{c:?}"),
        "a different seed must draw a different fault stream"
    );
}

#[test]
fn total_loss_trips_the_livelock_watchdog() {
    let mut plan = FaultPlan {
        seed: 1,
        ack_timeout: 20,
        max_retries: 1_000, // degrade later than the livelock bound
        livelock_retries: 8,
        ..FaultPlan::default()
    };
    plan.direct_net.drop = 65_535; // all but 1-in-65536 messages lost
    let err = run_with_plan(plan, 4).expect_err("nothing can complete");
    let text = err.to_string();
    assert!(text.contains("livelock"), "{text}");
    assert!(
        text.contains("retried") && text.contains("pushes"),
        "diagnostic must carry the push counters: {text}"
    );
}

#[test]
fn stuck_dram_bank_trips_the_deadlock_watchdog() {
    let cfg = SystemConfig::paper_default();
    let banks = cfg.dram.total_banks();
    let plan = FaultPlan {
        seed: 1,
        stuck_banks: (0..banks as u16).collect(),
        ..FaultPlan::default()
    };
    let mut sys = System::new(cfg, Mode::Ccsm);
    sys.set_fault_plan(plan);
    let (program, kernels) = push_then_consume(8);
    let err = sys
        .try_run(program, kernels)
        .expect_err("no DRAM access can ever finish");
    let text = err.to_string();
    assert!(text.contains("deadlock"), "{text}");
    assert!(
        text.contains("in flight") || text.contains("mshr"),
        "diagnostic must dump outstanding state: {text}"
    );
}
