//! `ds-xray`: stitching trace events back into per-transaction
//! records.
//!
//! The runtime emits a [`crate::TraceKind::StageMark`] at every
//! lifecycle hand-off and a [`crate::TraceKind::TxnDone`] at
//! completion. This module reassembles that flat stream into
//! [`TxnRecord`]s — one per completed transaction, with the ordered
//! `(stage, cycle)` marks — and derives the two views the `dsxray`
//! CLI prints: an aggregate [`StageBreakdown`] (which must agree
//! exactly with the one the live [`crate::StageTracker`] accumulated)
//! and the slowest-transaction critical paths.

use crate::stage::{Stage, StageBreakdown, TxnPath};
use crate::{TraceEvent, TraceKind};

/// One completed transaction reassembled from the trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// Transaction id (allocation order within the run).
    pub txn: u64,
    /// Which lifecycle the transaction followed.
    pub path: TxnPath,
    /// `(stage, cycle entered)` marks in emission order. The first
    /// mark is the transaction's start.
    pub marks: Vec<(Stage, u64)>,
    /// Cycle the transaction completed.
    pub end: u64,
}

impl TxnRecord {
    /// End-to-end latency: completion minus the first mark.
    pub fn total(&self) -> u64 {
        self.marks
            .first()
            .map_or(0, |&(_, start)| self.end.saturating_sub(start))
    }

    /// Per-segment `(stage, cycles)` pairs: each mark's stage paired
    /// with the distance to the next mark (or to `end` for the last).
    pub fn segments(&self) -> Vec<(Stage, u64)> {
        let mut out = Vec::with_capacity(self.marks.len());
        for (i, &(stage, at)) in self.marks.iter().enumerate() {
            let next = self.marks.get(i + 1).map_or(self.end, |&(_, cycle)| cycle);
            out.push((stage, next.saturating_sub(at)));
        }
        out
    }
}

/// Reassembles completed transactions from a trace stream. Records are
/// returned in completion order (the order `TxnDone` events appear),
/// which is deterministic because the trace stream itself is.
/// Transactions still in flight at the end of the stream are dropped.
pub fn stitch(events: &[TraceEvent]) -> Vec<TxnRecord> {
    let mut open: std::collections::HashMap<u64, Vec<(Stage, u64)>> =
        std::collections::HashMap::new();
    let mut done = Vec::new();
    for e in events {
        match e.kind {
            TraceKind::StageMark { txn, stage } => {
                open.entry(txn).or_default().push((stage, e.cycle));
            }
            TraceKind::TxnDone { txn } => {
                if let Some(marks) = open.remove(&txn) {
                    let path = marks.first().map_or(TxnPath::GpuLoad, |&(s, _)| s.path());
                    done.push(TxnRecord {
                        txn,
                        path,
                        marks,
                        end: e.cycle,
                    });
                }
            }
            _ => {}
        }
    }
    done
}

/// Folds stitched records into an aggregate [`StageBreakdown`]. For a
/// complete trace this equals the breakdown the live tracker computed
/// during the run — `dsxray --check` asserts exactly that.
pub fn breakdown(records: &[TxnRecord]) -> StageBreakdown {
    let mut b = StageBreakdown::new();
    for r in records {
        for (stage, cycles) in r.segments() {
            b.cycles[stage.index()] += cycles;
        }
        match r.path {
            TxnPath::GpuLoad => {
                b.loads += 1;
                b.load_cycles += r.total();
            }
            TxnPath::Push => {
                b.pushes += 1;
                b.push_cycles += r.total();
            }
        }
    }
    b
}

/// The `k` slowest records (by end-to-end latency, ties broken by
/// transaction id for determinism), slowest first.
pub fn slowest(records: &[TxnRecord], k: usize) -> Vec<&TxnRecord> {
    let mut refs: Vec<&TxnRecord> = records.iter().collect();
    refs.sort_by(|a, b| b.total().cmp(&a.total()).then(a.txn.cmp(&b.txn)));
    refs.truncate(k);
    refs
}

/// Latency at or above which a record is in the slowest 1% of `path`
/// transactions (the p99 tail), or `None` if the path has no records.
pub fn p99_threshold(records: &[TxnRecord], path: TxnPath) -> Option<u64> {
    let mut totals: Vec<u64> = records
        .iter()
        .filter(|r| r.path == path)
        .map(TxnRecord::total)
        .collect();
    if totals.is_empty() {
        return None;
    }
    totals.sort_unstable();
    let rank = ((totals.len() as f64) * 0.99).ceil() as usize;
    Some(totals[rank.clamp(1, totals.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Component;

    fn mark(cycle: u64, txn: u64, stage: Stage) -> TraceEvent {
        TraceEvent {
            cycle,
            component: Component::Txn,
            line: None,
            kind: TraceKind::StageMark { txn, stage },
        }
    }

    fn finish(cycle: u64, txn: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            component: Component::Txn,
            line: None,
            kind: TraceKind::TxnDone { txn },
        }
    }

    #[test]
    fn stitch_reassembles_interleaved_transactions() {
        let events = vec![
            mark(10, 0, Stage::SmL1),
            mark(12, 1, Stage::SbWait),
            mark(14, 0, Stage::GpuNocReq),
            mark(20, 1, Stage::DirectNoc),
            finish(30, 0),
            mark(33, 1, Stage::DirectAck),
            finish(40, 1),
            mark(50, 2, Stage::SmL1), // never completes: dropped
        ];
        let records = stitch(&events);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].txn, 0);
        assert_eq!(records[0].path, TxnPath::GpuLoad);
        assert_eq!(records[0].total(), 20);
        assert_eq!(
            records[0].segments(),
            vec![(Stage::SmL1, 4), (Stage::GpuNocReq, 16)]
        );
        assert_eq!(records[1].path, TxnPath::Push);
        assert_eq!(records[1].total(), 28);
    }

    #[test]
    fn breakdown_matches_hand_computation_and_telescopes() {
        let events = vec![
            mark(0, 0, Stage::SmL1),
            mark(7, 0, Stage::SliceToSm),
            finish(9, 0),
            mark(5, 1, Stage::SbWait),
            finish(11, 1),
        ];
        let records = stitch(&events);
        let b = breakdown(&records);
        assert_eq!(b.stage_cycles(Stage::SmL1), 7);
        assert_eq!(b.stage_cycles(Stage::SliceToSm), 2);
        assert_eq!(b.stage_cycles(Stage::SbWait), 6);
        assert_eq!((b.loads, b.load_cycles), (1, 9));
        assert_eq!((b.pushes, b.push_cycles), (1, 6));
        assert_eq!(b.path_stage_sum(TxnPath::GpuLoad), b.load_cycles);
        assert_eq!(b.path_stage_sum(TxnPath::Push), b.push_cycles);
    }

    #[test]
    fn slowest_orders_by_latency_then_txn() {
        let events = vec![
            mark(0, 0, Stage::SmL1),
            finish(10, 0),
            mark(0, 1, Stage::SmL1),
            finish(30, 1),
            mark(5, 2, Stage::SmL1),
            finish(15, 2), // same latency as txn 0: id breaks the tie
        ];
        let records = stitch(&events);
        let top = slowest(&records, 2);
        assert_eq!(top[0].txn, 1);
        assert_eq!(top[1].txn, 0);
        assert_eq!(slowest(&records, 10).len(), 3);
    }

    #[test]
    fn p99_threshold_picks_the_tail() {
        let mut events = Vec::new();
        for i in 0..100u64 {
            events.push(mark(0, i, Stage::SmL1));
            events.push(finish(i + 1, i)); // latencies 1..=100
        }
        let records = stitch(&events);
        assert_eq!(p99_threshold(&records, TxnPath::GpuLoad), Some(99));
        assert_eq!(p99_threshold(&records, TxnPath::Push), None);
    }
}
