//! ds-scope: correlated span tracing and the crash flight recorder.
//!
//! Every layer of the stack is observable on its own — trace events,
//! stage accounting, host profiling, service metrics — but nothing
//! connects an HTTP request to the runner task it spawned or the
//! simulated transactions that task produced. This module supplies the
//! connective tissue:
//!
//! * **spans** — [`SpanRecord`]s with explicit parent/child IDs cover
//!   `request → job → task → (queue-wait | store-lookup | sim-run)`;
//!   a task's closed spans travel as a [`SpanTree`] riding its run
//!   report, so one artifact holds the full causal tree down to the
//!   `StageBreakdown` the sim-run span links to;
//! * **telescoping checks** — [`SpanTree::check`] proves a child span
//!   never leaves its parent's interval and sibling durations sum to
//!   at most the parent's, and [`SpanTree::reconcile`] splits a task
//!   span into queue + store + sim + overhead that reconciles exactly
//!   against its wall-clock;
//! * **a flight recorder** — [`FlightRecorder`] is a [`Tracer`] that
//!   keeps only the most recent trace events in a fixed ring, cheap
//!   enough to leave armed on fault-injected runs so a watchdog abort
//!   or panic can ship a postmortem of the simulation's last moments.
//!
//! Collection is opt-in and process-global ([`set_enabled`]): with
//! scope off no span is ever allocated and reports are bit-identical
//! to a build without this module.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::{TraceEvent, Tracer};

/// Process-global collection switch (default off). Span trees attach
/// to run reports only while this is enabled *and* the probe level is
/// full, mirroring the probe-shedding discipline.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-global span-id allocator. IDs are unique within a process;
/// 0 is reserved to mean "no parent".
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Enables or disables scope collection process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether scope collection is enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Allocates a fresh process-unique span id (never 0).
pub fn next_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

/// What a span covers in the request → simulation causal chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One HTTP request, from parse to response.
    Request,
    /// One submitted job (a batch of tasks).
    Job,
    /// One runner task (a single simulation's lifecycle).
    Task,
    /// Time a task sat queued before a worker picked it up.
    QueueWait,
    /// Time spent in the shared result store (lookup, coalesced wait,
    /// memoization) around the simulation itself.
    StoreLookup,
    /// The simulation run proper. Links down to the report's
    /// [`StageBreakdown`](crate::StageBreakdown) transaction records.
    SimRun,
}

impl SpanKind {
    /// Every kind, in causal order.
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Request,
        SpanKind::Job,
        SpanKind::Task,
        SpanKind::QueueWait,
        SpanKind::StoreLookup,
        SpanKind::SimRun,
    ];

    /// Stable lower-case name used by the JSON codecs and event
    /// streams.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Request => "request",
            SpanKind::Job => "job",
            SpanKind::Task => "task",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::StoreLookup => "store-lookup",
            SpanKind::SimRun => "sim-run",
        }
    }

    /// Parses a [`SpanKind::name`] back.
    pub fn parse(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One closed span: an interval in a shared microsecond timeline with
/// an explicit parent link (`parent == 0` marks a root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique id (never 0).
    pub id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent: u64,
    /// What the span covers.
    pub kind: SpanKind,
    /// Human-readable label ("VA small DS", "POST /jobs", ...).
    pub label: String,
    /// Interval start, microseconds in the owning timeline.
    pub start_us: u64,
    /// Interval end, microseconds; always `>= start_us`.
    pub end_us: u64,
}

impl SpanRecord {
    /// The span's duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// The queue + store + sim + overhead split of one task span. By
/// construction the four buckets sum exactly to the task's wall-clock
/// (`total_us`), which is what [`SpanTree::reconcile`] asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Reconciliation {
    /// Queue-wait child time.
    pub queue_us: u64,
    /// Store-lookup child time.
    pub store_us: u64,
    /// Sim-run child time.
    pub sim_us: u64,
    /// Task time not covered by any child span.
    pub overhead_us: u64,
    /// The task span's wall-clock duration.
    pub total_us: u64,
}

/// A set of closed spans forming one causal tree (or forest).
///
/// Parents must appear before their children, which both rules out
/// cycles and keeps rendering a single forward pass.
///
/// ```
/// use ds_probe::scope::{SpanKind, SpanRecord, SpanTree};
///
/// let tree = SpanTree {
///     spans: vec![
///         SpanRecord {
///             id: 1,
///             parent: 0,
///             kind: SpanKind::Task,
///             label: "VA small DS".into(),
///             start_us: 0,
///             end_us: 100,
///         },
///         SpanRecord {
///             id: 2,
///             parent: 1,
///             kind: SpanKind::QueueWait,
///             label: String::new(),
///             start_us: 0,
///             end_us: 10,
///         },
///         SpanRecord {
///             id: 3,
///             parent: 1,
///             kind: SpanKind::SimRun,
///             label: String::new(),
///             start_us: 10,
///             end_us: 100,
///         },
///     ],
/// };
/// tree.check().unwrap();
/// let r = tree.reconcile(1).unwrap();
/// assert_eq!((r.queue_us, r.sim_us, r.overhead_us, r.total_us), (10, 90, 0, 100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanTree {
    /// The spans, parents before children.
    pub spans: Vec<SpanRecord>,
}

impl SpanTree {
    /// An empty tree.
    pub fn new() -> Self {
        SpanTree::default()
    }

    /// The first span with `kind`, if any.
    pub fn find(&self, kind: SpanKind) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.kind == kind)
    }

    /// The direct children of `parent`, in recorded order.
    pub fn children_of(&self, parent: u64) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.parent == parent)
    }

    /// Validates the telescoping invariants:
    ///
    /// * ids are nonzero and unique; parents are 0 or recorded
    ///   *before* the child (no cycles, no dangling links);
    /// * every interval is well-formed (`end >= start`);
    /// * a child's interval lies within its parent's;
    /// * per parent, sibling durations sum to at most the parent's
    ///   duration (child span time never exceeds its parent).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check(&self) -> Result<(), String> {
        let mut seen: Vec<u64> = Vec::with_capacity(self.spans.len());
        for s in &self.spans {
            if s.id == 0 {
                return Err(format!("span {:?} has reserved id 0", s.label));
            }
            if seen.contains(&s.id) {
                return Err(format!("duplicate span id {}", s.id));
            }
            if s.end_us < s.start_us {
                return Err(format!(
                    "span {} ({}) ends at {}us before it starts at {}us",
                    s.id,
                    s.kind.name(),
                    s.end_us,
                    s.start_us
                ));
            }
            if s.parent != 0 {
                let parent = match seen.contains(&s.parent) {
                    true => self.spans.iter().find(|p| p.id == s.parent).unwrap(),
                    false => {
                        return Err(format!(
                            "span {} ({}) links to parent {} not recorded before it",
                            s.id,
                            s.kind.name(),
                            s.parent
                        ))
                    }
                };
                if s.start_us < parent.start_us || s.end_us > parent.end_us {
                    return Err(format!(
                        "child span {} ({}) [{}..{}]us leaves parent {} ({}) [{}..{}]us",
                        s.id,
                        s.kind.name(),
                        s.start_us,
                        s.end_us,
                        parent.id,
                        parent.kind.name(),
                        parent.start_us,
                        parent.end_us
                    ));
                }
            }
            seen.push(s.id);
        }
        for parent in &self.spans {
            let child_sum: u64 = self
                .children_of(parent.id)
                .map(SpanRecord::duration_us)
                .sum();
            if child_sum > parent.duration_us() {
                return Err(format!(
                    "children of span {} ({}) sum to {}us, more than the parent's {}us",
                    parent.id,
                    parent.kind.name(),
                    child_sum,
                    parent.duration_us()
                ));
            }
        }
        Ok(())
    }

    /// Splits the task span `task_id` into queue + store + sim +
    /// overhead, reconciled exactly against its wall-clock. Returns
    /// `None` when `task_id` is not a task span of this tree.
    pub fn reconcile(&self, task_id: u64) -> Option<Reconciliation> {
        let task = self
            .spans
            .iter()
            .find(|s| s.id == task_id && s.kind == SpanKind::Task)?;
        let mut r = Reconciliation {
            total_us: task.duration_us(),
            ..Reconciliation::default()
        };
        for child in self.children_of(task_id) {
            match child.kind {
                SpanKind::QueueWait => r.queue_us += child.duration_us(),
                SpanKind::StoreLookup => r.store_us += child.duration_us(),
                SpanKind::SimRun => r.sim_us += child.duration_us(),
                _ => {}
            }
        }
        r.overhead_us = r
            .total_us
            .saturating_sub(r.queue_us + r.store_us + r.sim_us);
        Some(r)
    }

    /// Renders the tree as indented text, one span per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for root in self.spans.iter().filter(|s| s.parent == 0) {
            self.render_span(&mut out, root, 0);
        }
        out
    }

    fn render_span(&self, out: &mut String, span: &SpanRecord, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let label = if span.label.is_empty() {
            String::new()
        } else {
            format!(" {}", span.label)
        };
        out.push_str(&format!(
            "{}{} [{}..{}]us ({}us)\n",
            span.kind.name(),
            label,
            span.start_us,
            span.end_us,
            span.duration_us()
        ));
        for child in self.children_of(span.id) {
            self.render_span(out, child, depth + 1);
        }
    }
}

/// How many trace events the flight recorder retains.
pub const FLIGHT_CAPACITY: usize = 256;

/// A snapshot of the flight recorder: the retained tail of the event
/// stream plus how much history the ring dropped before it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightLog {
    /// Events that fell out of the ring.
    pub dropped: u64,
    /// The retained events, oldest first, cycle-stamped by the sim.
    pub entries: Vec<TraceEvent>,
}

#[derive(Debug, Default)]
struct FlightInner {
    entries: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A [`Tracer`] that keeps only the last [`FLIGHT_CAPACITY`] trace
/// events. The ring is shared (`Arc`), so a handle cloned *before* a
/// simulation is driven can be harvested even when the run itself
/// panics or is abandoned on timeout. Contents are sim-cycle-stamped
/// and therefore deterministic for a deterministic run — postmortem
/// dumps replay byte-identically across worker counts.
///
/// ```
/// use ds_probe::scope::{FlightRecorder, FLIGHT_CAPACITY};
/// use ds_probe::{Component, TraceEvent, TraceKind, Tracer};
///
/// let mut rec = FlightRecorder::new();
/// let keeper = rec.clone();
/// for cycle in 0..(FLIGHT_CAPACITY as u64 + 5) {
///     rec.record(TraceEvent {
///         cycle,
///         component: Component::Hub,
///         line: None,
///         kind: TraceKind::TlbMiss,
///     });
/// }
/// let log = keeper.snapshot();
/// assert_eq!(log.dropped, 5);
/// assert_eq!(log.entries.len(), FLIGHT_CAPACITY);
/// assert_eq!(log.entries.first().unwrap().cycle, 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Arc<Mutex<FlightInner>>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    fn lock(&self) -> MutexGuard<'_, FlightInner> {
        // A panic mid-record cannot corrupt a ring of Copy events;
        // poisoning is exactly the case the recorder exists for.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Snapshots the ring: retained events oldest-first plus the count
    /// of older events the ring dropped.
    pub fn snapshot(&self) -> FlightLog {
        let inner = self.lock();
        FlightLog {
            dropped: inner.dropped,
            entries: inner.entries.iter().copied().collect(),
        }
    }
}

impl Tracer for FlightRecorder {
    fn record(&mut self, event: TraceEvent) {
        let mut inner = self.lock();
        if inner.entries.len() == FLIGHT_CAPACITY {
            inner.entries.pop_front();
            inner.dropped += 1;
        }
        inner.entries.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Component, TraceKind};

    fn span(id: u64, parent: u64, kind: SpanKind, start_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            kind,
            label: String::new(),
            start_us,
            end_us,
        }
    }

    #[test]
    fn kinds_round_trip_their_names() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }

    #[test]
    fn check_accepts_a_telescoping_tree() {
        let tree = SpanTree {
            spans: vec![
                span(1, 0, SpanKind::Request, 0, 1000),
                span(2, 1, SpanKind::Job, 10, 990),
                span(3, 2, SpanKind::Task, 10, 980),
                span(4, 3, SpanKind::QueueWait, 10, 20),
                span(5, 3, SpanKind::StoreLookup, 20, 30),
                span(6, 3, SpanKind::SimRun, 30, 970),
            ],
        };
        tree.check().unwrap();
        let r = tree.reconcile(3).unwrap();
        assert_eq!(
            r.queue_us + r.store_us + r.sim_us + r.overhead_us,
            r.total_us
        );
        assert_eq!(r.overhead_us, 10);
    }

    #[test]
    fn check_rejects_escaping_children_and_oversums() {
        let escapes = SpanTree {
            spans: vec![
                span(1, 0, SpanKind::Task, 10, 100),
                span(2, 1, SpanKind::SimRun, 5, 90),
            ],
        };
        assert!(escapes.check().unwrap_err().contains("leaves parent"));

        let oversum = SpanTree {
            spans: vec![
                span(1, 0, SpanKind::Task, 0, 100),
                span(2, 1, SpanKind::QueueWait, 0, 60),
                span(3, 1, SpanKind::SimRun, 40, 100),
            ],
        };
        assert!(oversum.check().unwrap_err().contains("sum to"));
    }

    #[test]
    fn check_rejects_cycles_duplicates_and_bad_intervals() {
        let forward = SpanTree {
            spans: vec![span(1, 2, SpanKind::Task, 0, 10)],
        };
        assert!(forward.check().unwrap_err().contains("not recorded before"));

        let dup = SpanTree {
            spans: vec![
                span(1, 0, SpanKind::Task, 0, 10),
                span(1, 0, SpanKind::Task, 0, 10),
            ],
        };
        assert!(dup.check().unwrap_err().contains("duplicate"));

        let backwards = SpanTree {
            spans: vec![span(1, 0, SpanKind::Task, 10, 5)],
        };
        assert!(backwards.check().unwrap_err().contains("before it starts"));
    }

    #[test]
    fn recorder_survives_the_recording_thread_panicking() {
        let keeper = FlightRecorder::new();
        let mut handle = keeper.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            handle.record(TraceEvent {
                cycle: 42,
                component: Component::Hub,
                line: Some(7),
                kind: TraceKind::HubStart { write: true },
            });
            panic!("sim blew up");
        }));
        assert!(result.is_err());
        let log = keeper.snapshot();
        assert_eq!(log.entries.len(), 1);
        assert_eq!(log.entries[0].cycle, 42);
    }

    #[test]
    fn enabled_defaults_off_and_ids_are_unique() {
        assert!(!enabled());
        let a = next_span_id();
        let b = next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn render_indents_by_depth() {
        let tree = SpanTree {
            spans: vec![
                span(1, 0, SpanKind::Task, 0, 100),
                span(2, 1, SpanKind::SimRun, 0, 100),
            ],
        };
        let text = tree.render();
        assert!(text.contains("task [0..100]us"));
        assert!(text.contains("\n  sim-run"));
    }
}
