//! Windowed (epoch) sampling of system activity.
//!
//! An [`EpochRecorder`] turns a handful of cumulative counters into a
//! dense time series: one [`EpochSample`] per `window`-cycle epoch,
//! each holding the *delta* of every counter over that window. Plotted
//! over time this makes the produce → kernel → readback phase
//! structure of a run directly visible — CPU L2 stores during produce,
//! a burst of direct-network messages while pushes drain, GPU misses
//! (or their absence, under direct store) once the kernel starts.

/// A snapshot of the cumulative counters the sampler watches. The
/// simulator fills one of these per observation; the recorder turns
/// consecutive snapshots into per-window deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochTotals {
    /// GPU L2 demand accesses (all slices).
    pub gpu_l2_accesses: u64,
    /// GPU L2 demand misses (all slices).
    pub gpu_l2_misses: u64,
    /// CPU L2 demand accesses.
    pub cpu_l2_accesses: u64,
    /// CPU L2 demand misses.
    pub cpu_l2_misses: u64,
    /// Messages sent on the coherence network.
    pub coh_msgs: u64,
    /// Messages sent on the direct-store network.
    pub direct_msgs: u64,
    /// Messages sent on the GPU-internal network.
    pub gpu_msgs: u64,
    /// DRAM accesses (reads + writes).
    pub dram_accesses: u64,
    /// Direct-store pushes completed.
    pub direct_pushes: u64,
}

impl EpochTotals {
    fn delta(self, base: EpochTotals) -> EpochTotals {
        EpochTotals {
            gpu_l2_accesses: self.gpu_l2_accesses - base.gpu_l2_accesses,
            gpu_l2_misses: self.gpu_l2_misses - base.gpu_l2_misses,
            cpu_l2_accesses: self.cpu_l2_accesses - base.cpu_l2_accesses,
            cpu_l2_misses: self.cpu_l2_misses - base.cpu_l2_misses,
            coh_msgs: self.coh_msgs - base.coh_msgs,
            direct_msgs: self.direct_msgs - base.direct_msgs,
            gpu_msgs: self.gpu_msgs - base.gpu_msgs,
            dram_accesses: self.dram_accesses - base.dram_accesses,
            direct_pushes: self.direct_pushes - base.direct_pushes,
        }
    }
}

/// One closed epoch: window `index` covers cycles
/// `[index * window, (index + 1) * window)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSample {
    /// Window number.
    pub index: u64,
    /// Counter deltas over this window.
    pub delta: EpochTotals,
}

/// Accumulates [`EpochSample`]s from a monotone stream of
/// observations.
///
/// Deprecated: the runtime no longer drives this recorder. The pulse
/// sampler ([`crate::PulseSampler`]) subsumes it — it tracks a
/// superset of these counters into a memory-bounded coalescing ring,
/// and the epoch series on a report is now the derived
/// [`crate::pulse::epoch_view`] of the pulse windows. The type
/// remains for code that samples its own counters at epoch
/// granularity; new code should construct a `PulseSampler`.
///
/// `observe(cycle, totals)` is called once per simulated event with
/// the *current* cumulative totals; whenever `cycle` crosses a window
/// boundary the recorder closes the finished window(s). Because
/// observations arrive in nondecreasing cycle order, all activity
/// since the last boundary belongs to the window being closed;
/// event-free windows in between close with all-zero deltas, keeping
/// the series dense.
///
/// ```
/// use ds_probe::{EpochRecorder, EpochTotals};
///
/// let mut rec = EpochRecorder::new(100);
/// let mut t = EpochTotals::default();
/// rec.observe(42, t); // event dispatched at cycle 42...
/// t.dram_accesses = 3; // ...performs 3 DRAM accesses
/// rec.observe(250, t); // next event: windows 0 and 1 close
/// t.dram_accesses = 5;
/// rec.finish(250, t);
/// let s = rec.samples();
/// assert_eq!(s.len(), 3);
/// assert_eq!(s[0].delta.dram_accesses, 3);
/// assert_eq!(s[1].delta.dram_accesses, 0, "no events in window 1");
/// assert_eq!(s[2].delta.dram_accesses, 2);
/// ```
#[deprecated(
    note = "superseded by ds_probe::PulseSampler; report epochs are now a derived \
            view over pulse windows (pulse::epoch_view)"
)]
#[derive(Debug, Clone)]
pub struct EpochRecorder {
    window: u64,
    /// Index of the currently open window.
    cur: u64,
    /// Totals at the open window's start.
    base: EpochTotals,
    samples: Vec<EpochSample>,
}

#[allow(deprecated)]
impl EpochRecorder {
    /// A recorder with `window`-cycle epochs. Panics if `window` is 0.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "epoch window must be positive");
        EpochRecorder {
            window,
            cur: 0,
            base: EpochTotals::default(),
            samples: Vec::new(),
        }
    }

    /// The epoch length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Notes that the simulation reached `cycle` with cumulative
    /// counters `totals` (pre-event), closing any windows that ended.
    pub fn observe(&mut self, cycle: u64, totals: EpochTotals) {
        let idx = cycle / self.window;
        while self.cur < idx {
            self.close(totals);
        }
    }

    /// Closes the final (partial) window at end of run.
    pub fn finish(&mut self, cycle: u64, totals: EpochTotals) {
        self.observe(cycle, totals);
        self.close(totals);
    }

    fn close(&mut self, totals: EpochTotals) {
        self.samples.push(EpochSample {
            index: self.cur,
            delta: totals.delta(self.base),
        });
        self.base = totals;
        self.cur += 1;
    }

    /// The closed windows so far.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// Consumes the recorder, yielding the closed windows.
    pub fn into_samples(self) -> Vec<EpochSample> {
        self.samples
    }
}

/// Header line for [`render_csv`].
pub const CSV_HEADER: &str = "window_start,window_end,gpu_l2_accesses,gpu_l2_misses,\
gpu_l2_miss_rate,cpu_l2_accesses,cpu_l2_misses,coh_msgs,direct_msgs,gpu_msgs,\
dram_accesses,direct_pushes";

/// Renders an epoch series as CSV (header + one row per window).
pub fn render_csv(window: u64, samples: &[EpochSample]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for s in samples {
        let d = s.delta;
        let miss_rate = if d.gpu_l2_accesses == 0 {
            0.0
        } else {
            d.gpu_l2_misses as f64 / d.gpu_l2_accesses as f64
        };
        out.push_str(&format!(
            "{},{},{},{},{:.4},{},{},{},{},{},{},{}\n",
            s.index * window,
            (s.index + 1) * window,
            d.gpu_l2_accesses,
            d.gpu_l2_misses,
            miss_rate,
            d.cpu_l2_accesses,
            d.cpu_l2_misses,
            d.coh_msgs,
            d.direct_msgs,
            d.gpu_msgs,
            d.dram_accesses,
            d.direct_pushes,
        ));
    }
    out
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn deltas_attribute_to_the_window_they_happened_in() {
        let mut rec = EpochRecorder::new(10);
        let mut t = EpochTotals {
            coh_msgs: 4,
            ..EpochTotals::default()
        };
        rec.observe(3, t); // window 0, nothing closed yet
        assert!(rec.samples().is_empty());

        t.coh_msgs = 6;
        rec.observe(10, t); // boundary: window 0 closes with everything so far
        assert_eq!(rec.samples().len(), 1);
        assert_eq!(rec.samples()[0].delta.coh_msgs, 6);

        t.coh_msgs = 7;
        rec.finish(12, t);
        assert_eq!(rec.samples().len(), 2);
        assert_eq!(
            rec.samples()[1],
            EpochSample {
                index: 1,
                delta: EpochTotals {
                    coh_msgs: 1,
                    ..EpochTotals::default()
                },
            }
        );
    }

    #[test]
    fn quiet_windows_emit_zero_samples() {
        let mut rec = EpochRecorder::new(10);
        let t = EpochTotals::default();
        rec.observe(35, t); // windows 0..3 all closed, empty
        assert_eq!(rec.samples().len(), 3);
        assert!(rec
            .samples()
            .iter()
            .all(|s| s.delta == EpochTotals::default()));
        assert_eq!(rec.samples()[2].index, 2);
    }

    #[test]
    fn csv_has_one_row_per_window_plus_header() {
        let mut rec = EpochRecorder::new(100);
        let t = EpochTotals {
            gpu_l2_accesses: 8,
            gpu_l2_misses: 2,
            ..EpochTotals::default()
        };
        rec.finish(50, t);
        let csv = render_csv(rec.window(), rec.samples());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("window_start,window_end,"));
        assert_eq!(lines[1], "0,100,8,2,0.2500,0,0,0,0,0,0,0");
    }

    #[test]
    #[should_panic(expected = "epoch window must be positive")]
    fn zero_window_panics() {
        let _ = EpochRecorder::new(0);
    }
}
