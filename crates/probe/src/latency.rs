//! The four sim-wide latency distributions.

use std::fmt;

use ds_sim::Histogram;

/// The latency histograms every run collects. They are recorded
/// unconditionally (a histogram update is a few integer ops — far
/// cheaper than the event-queue work around it) and never feed back
/// into timing, so enabling them cannot change a simulation result.
#[derive(Debug, Clone)]
pub struct LatencyReport {
    /// GPU load-to-use: SM issue to data arriving back at the SM.
    pub load_to_use: Histogram,
    /// Direct-store push end-to-end: store-buffer drain to PutX-Ack.
    pub push_e2e: Histogram,
    /// Coherence-hub transaction: request arrival to unblock.
    pub hub_txn: Histogram,
    /// DRAM queue + service: request arrival to burst completion.
    pub dram_queue: Histogram,
}

impl LatencyReport {
    /// Canonical histogram names, also used by serialized forms.
    pub const LOAD_TO_USE: &'static str = "load_to_use";
    /// Name of [`LatencyReport::push_e2e`].
    pub const PUSH_E2E: &'static str = "push_e2e";
    /// Name of [`LatencyReport::hub_txn`].
    pub const HUB_TXN: &'static str = "hub_txn";
    /// Name of [`LatencyReport::dram_queue`].
    pub const DRAM_QUEUE: &'static str = "dram_queue";

    /// Four empty histograms.
    pub fn new() -> Self {
        LatencyReport {
            load_to_use: Histogram::new(Self::LOAD_TO_USE),
            push_e2e: Histogram::new(Self::PUSH_E2E),
            hub_txn: Histogram::new(Self::HUB_TXN),
            dram_queue: Histogram::new(Self::DRAM_QUEUE),
        }
    }

    /// The histograms in declaration order, for uniform reporting.
    pub fn all(&self) -> [&Histogram; 4] {
        [
            &self.load_to_use,
            &self.push_e2e,
            &self.hub_txn,
            &self.dram_queue,
        ]
    }
}

impl Default for LatencyReport {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats an optional statistic: the value, or `-` when the
/// histogram was empty and the statistic does not exist.
fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.to_string())
}

impl fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, h) in self.all().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "{}: n={} mean={:.1} min={} p50={} p95={} p99={} max={}",
                h.name(),
                h.samples(),
                h.mean(),
                opt(h.min()),
                opt(h.percentile(50.0)),
                opt(h.percentile(95.0)),
                opt(h.percentile(99.0)),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_all_four_with_percentiles() {
        let mut r = LatencyReport::new();
        r.load_to_use.record(100);
        let text = r.to_string();
        assert_eq!(text.lines().count(), 4);
        assert!(text.starts_with("load_to_use: n=1"));
        assert!(text.contains("p95=64"), "{text}");
        assert!(text.contains("push_e2e: n=0"), "{text}");
        // Empty histograms have no min/percentiles; shown as dashes.
        assert!(text.contains("min=- p50=- p95=- p99=-"), "{text}");
    }
}
