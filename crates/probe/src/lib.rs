//! `ds-probe`: sim-wide instrumentation for the direct-store
//! simulator.
//!
//! Every claim the paper makes is an aggregate (total ticks, miss
//! rate), but the mechanism behind each one is temporal: direct store
//! wins because pushed lines arrive *before* the kernel's first
//! access. This crate supplies the layer that makes the when/where
//! observable:
//!
//! * **structured trace events** — the [`Tracer`] trait with typed
//!   [`TraceEvent`] records, a zero-overhead [`NullTracer`] default
//!   (the simulator is generic over the tracer, so with `NullTracer`
//!   every emission site compiles away — no allocation, no branch),
//!   and an in-memory [`BufferTracer`] feeding two sinks: a JSONL
//!   dump ([`jsonl`]) and a Chrome-trace-format file ([`chrome`])
//!   loadable in Perfetto / `chrome://tracing` with kernel spans,
//!   DRAM bank busy intervals and per-link NoC occupancy;
//! * **latency histograms** — [`LatencyReport`] bundles the four
//!   sim-wide latency distributions (GPU load-to-use, direct-push
//!   end-to-end, hub transaction, DRAM queue) as
//!   [`ds_sim::Histogram`]s with p50/p95/p99 summaries;
//! * **cycle-domain time-series telemetry** — the [`pulse`] module's
//!   [`PulseSampler`] captures ~25 counters plus sampled gauges per
//!   cycle window into a memory-bounded struct-of-arrays ring with
//!   power-of-two window coalescing, runs online anomaly detectors
//!   (stall storms, retry bursts, utilization cliffs, livelock
//!   precursors) over each closed window, and proves per-window
//!   conservation against the run's final totals; the legacy epoch
//!   series ([`EpochSample`]) is a derived view over pulse windows;
//! * **per-transaction cycle accounting** — [`StageTracker`] accrues
//!   every tracked request's cycles into lifecycle [`Stage`]s
//!   (telescoping intervals: stage sums equal end-to-end latency
//!   exactly), aggregated as a [`StageBreakdown`]; the [`xray`] module
//!   stitches `StageMark`/`TxnDone` trace events back into
//!   per-transaction records and critical paths for the `dsxray` CLI;
//! * **service metrics** — [`ServiceMetrics`] bundles the `ds-serve`
//!   job API's request-latency histograms and load counters so the
//!   server's `/metrics` endpoint shares the histogram machinery with
//!   the simulator's latency reports;
//! * **per-cacheline forensics** — [`LineLens`] records every touched
//!   line's cycle-stamped event history (stores, pushes, fills, hits,
//!   invalidations, evictions) and derives push efficacy
//!   (useful / dead / clobbered, reconciling exactly against
//!   `pushed_fills`), sharing forensics (ping-pong, write-after-push,
//!   reuse distances, first-touch latency) and per-slice / per-bank /
//!   per-link traffic heatmaps, aggregated as a [`LensReport`] for the
//!   `dslens` CLI;
//! * **host-time self-profiling** — the [`prof`] module's scoped span
//!   profiler attributes wall-clock to [`HostPhase`] buckets
//!   (including the cost of the instrumentation itself, the
//!   "observability tax") as a [`HostProfile`] riding on run reports,
//!   and owns the runtime [`ProbeLevel`] switch that sheds optional
//!   collection layers without recompiling;
//! * **correlated span tracing** — the [`scope`] module's
//!   [`SpanRecord`]/[`SpanTree`] model links `request → job → task →
//!   (queue-wait | store-lookup | sim-run)` with explicit parent ids
//!   and telescoping checks, and its [`FlightRecorder`] ring keeps a
//!   crashing simulation's last trace events for postmortem dumps.
//!
//! The crate deliberately depends only on `ds-sim`: events carry raw
//! line indices (`u64`), not typed addresses, so every other model
//! crate can sit above it.

pub mod chrome;
mod epoch;
mod event;
pub mod jsonl;
mod latency;
mod lens;
pub mod prof;
pub mod pulse;
pub mod scope;
mod service;
mod stage;
mod tracer;
pub mod xray;

#[allow(deprecated)]
pub use epoch::EpochRecorder;
pub use epoch::{
    render_csv as render_epoch_csv, EpochSample, EpochTotals, CSV_HEADER as EPOCH_CSV_HEADER,
};
pub use event::{Component, NetId, TraceEvent, TraceKind};
pub use latency::LatencyReport;
pub use lens::{
    BankTraffic, LensReport, LineEvent, LineEventKind, LineHistory, LineLens, LinkTraffic,
    SliceTraffic,
};
pub use prof::{HostPhase, HostProfile, ProbeLevel};
pub use pulse::{
    sparkline, PulseAnomaly, PulseAnomalyKind, PulseConfig, PulseSampler, PulseSeries, PulseTotals,
    DEFAULT_PULSE_WINDOW,
};
pub use scope::{FlightLog, FlightRecorder, Reconciliation, SpanKind, SpanRecord, SpanTree};
pub use service::ServiceMetrics;
pub use stage::{Stage, StageBreakdown, StageTracker, TxnPath};
pub use tracer::{BufferTracer, NullTracer, Tracer};
