//! The Chrome-trace-format sink (Perfetto / `chrome://tracing`).
//!
//! Renders three kinds of tracks from a recorded event stream:
//!
//! * **kernel spans** (process "kernels") — one complete event per
//!   kernel from `KernelBegin` to `KernelEnd`;
//! * **DRAM bank busy intervals** (process "dram") — one thread per
//!   bank, one complete event per access covering the bank's busy
//!   window;
//! * **per-link NoC occupancy** (one process per network) — one
//!   thread per (src, dst) link, one complete event per message
//!   covering its serialization interval.
//!
//! Timestamps are simulation *cycles* written into the `ts`/`dur`
//! microsecond fields — the viewer's time unit reads as µs but means
//! cycles. Output is a single well-formed JSON object in the
//! trace-event format, stable across runs of the same simulation.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::{Component, NetId, TraceEvent, TraceKind};

const PID_KERNELS: u64 = 0;
const PID_DRAM: u64 = 1;

fn net_pid(net: NetId) -> u64 {
    match net {
        NetId::Coherence => 2,
        NetId::Direct => 3,
        NetId::GpuInternal => 4,
    }
}

fn link_tid(src: u8, dst: u8) -> u64 {
    u64::from(src) * 64 + u64::from(dst)
}

fn meta(out: &mut String, pid: u64, tid: Option<u64>, what: &str, name: &str) {
    out.push_str("{\"ph\":\"M\",\"pid\":");
    write!(out, "{pid}").unwrap();
    if let Some(tid) = tid {
        write!(out, ",\"tid\":{tid}").unwrap();
    }
    write!(
        out,
        ",\"name\":\"{what}\",\"args\":{{\"name\":\"{name}\"}}}}"
    )
    .unwrap();
}

fn complete(out: &mut String, name: &str, cat: &str, ts: u64, dur: u64, pid: u64, tid: u64) {
    write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
\"dur\":{dur},\"pid\":{pid},\"tid\":{tid}}}"
    )
    .unwrap();
}

/// Renders a recorded trace as a Chrome trace-event JSON document.
pub fn render(events: &[TraceEvent]) -> String {
    // First pass: discover the tracks so their naming metadata can
    // lead the file deterministically (BTreeMap ⇒ sorted).
    let mut dram_banks: BTreeMap<u64, ()> = BTreeMap::new();
    let mut links: BTreeMap<(u64, u64), (u8, u8)> = BTreeMap::new();
    for e in events {
        match (e.component, e.kind) {
            (Component::DramBank { bank }, TraceKind::DramAccess { .. }) => {
                dram_banks.insert(u64::from(bank), ());
            }
            (Component::Net { net }, TraceKind::NetMsg { src, dst, .. }) => {
                links.insert((net_pid(net), link_tid(src, dst)), (src, dst));
            }
            _ => {}
        }
    }

    let mut body: Vec<String> = Vec::new();
    let mut s = String::new();
    meta(&mut s, PID_KERNELS, None, "process_name", "kernels");
    body.push(std::mem::take(&mut s));
    meta(&mut s, PID_DRAM, None, "process_name", "dram");
    body.push(std::mem::take(&mut s));
    for net in [NetId::Coherence, NetId::Direct, NetId::GpuInternal] {
        meta(
            &mut s,
            net_pid(net),
            None,
            "process_name",
            &format!("noc-{}", net.name()),
        );
        body.push(std::mem::take(&mut s));
    }
    for bank in dram_banks.keys() {
        meta(
            &mut s,
            PID_DRAM,
            Some(*bank),
            "thread_name",
            &format!("bank {bank}"),
        );
        body.push(std::mem::take(&mut s));
    }
    for ((pid, tid), (src, dst)) in &links {
        meta(
            &mut s,
            *pid,
            Some(*tid),
            "thread_name",
            &format!("link {src}->{dst}"),
        );
        body.push(std::mem::take(&mut s));
    }

    // Second pass: the spans themselves, in emission order.
    let mut kernel_begin: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        match (e.component, e.kind) {
            (Component::Kernel, TraceKind::KernelBegin { kernel }) => {
                kernel_begin.insert(kernel, e.cycle);
            }
            (Component::Kernel, TraceKind::KernelEnd { kernel }) => {
                if let Some(begin) = kernel_begin.remove(&kernel) {
                    complete(
                        &mut s,
                        &format!("kernel {kernel}"),
                        "kernel",
                        begin,
                        e.cycle.saturating_sub(begin),
                        PID_KERNELS,
                        0,
                    );
                    body.push(std::mem::take(&mut s));
                }
            }
            (
                Component::DramBank { bank },
                TraceKind::DramAccess {
                    write,
                    row_hit,
                    start,
                    done,
                },
            ) => {
                let name = match (write, row_hit) {
                    (false, false) => "rd",
                    (false, true) => "rd hit",
                    (true, false) => "wr",
                    (true, true) => "wr hit",
                };
                complete(
                    &mut s,
                    name,
                    "dram",
                    start,
                    done.saturating_sub(start),
                    PID_DRAM,
                    u64::from(bank),
                );
                body.push(std::mem::take(&mut s));
            }
            (
                Component::Net { net },
                TraceKind::NetMsg {
                    src,
                    dst,
                    data,
                    start,
                    depart,
                    ..
                },
            ) => {
                complete(
                    &mut s,
                    if data { "data" } else { "ctrl" },
                    "noc",
                    start,
                    depart.saturating_sub(start),
                    net_pid(net),
                    link_tid(src, dst),
                );
                body.push(std::mem::take(&mut s));
            }
            _ => {}
        }
    }

    let mut out = String::with_capacity(body.iter().map(|b| b.len() + 2).sum::<usize>() + 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"ds-probe\",\"time_unit\":\"cycles\"},\"traceEvents\":[\n");
    for (i, item) in body.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(item);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, component: Component, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            component,
            line: None,
            kind,
        }
    }

    #[test]
    fn renders_kernel_dram_and_link_tracks() {
        let events = [
            ev(100, Component::Kernel, TraceKind::KernelBegin { kernel: 0 }),
            ev(
                120,
                Component::DramBank { bank: 3 },
                TraceKind::DramAccess {
                    write: false,
                    row_hit: true,
                    start: 118,
                    done: 126,
                },
            ),
            ev(
                130,
                Component::Net { net: NetId::Direct },
                TraceKind::NetMsg {
                    src: 4,
                    dst: 0,
                    data: true,
                    start: 130,
                    depart: 147,
                    arrive: 150,
                },
            ),
            ev(400, Component::Kernel, TraceKind::KernelEnd { kernel: 0 }),
        ];
        let doc = render(&events);
        assert!(doc.contains(r#""name":"kernel 0","cat":"kernel","ph":"X","ts":100,"dur":300"#));
        assert!(doc
            .contains(r#""name":"rd hit","cat":"dram","ph":"X","ts":118,"dur":8,"pid":1,"tid":3"#));
        assert!(doc
            .contains(r#""name":"data","cat":"noc","ph":"X","ts":130,"dur":17,"pid":3,"tid":256"#));
        assert!(doc.contains(r#""args":{"name":"bank 3"}"#));
        assert!(doc.contains(r#""args":{"name":"link 4->0"}"#));
        // Structurally sound: balanced braces/brackets, no trailing comma.
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "balanced braces"
        );
        assert!(!doc.contains(",\n]"));
    }

    #[test]
    fn unmatched_kernel_begin_is_dropped_not_misrendered() {
        let events = [ev(
            10,
            Component::Kernel,
            TraceKind::KernelBegin { kernel: 7 },
        )];
        let doc = render(&events);
        assert!(!doc.contains("kernel 7"));
    }
}
