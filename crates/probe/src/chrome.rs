//! The Chrome-trace-format sink (Perfetto / `chrome://tracing`).
//!
//! Renders three kinds of tracks from a recorded event stream:
//!
//! * **kernel spans** (process "kernels") — one complete event per
//!   kernel from `KernelBegin` to `KernelEnd`;
//! * **DRAM bank busy intervals** (process "dram") — one thread per
//!   bank, one complete event per access covering the bank's busy
//!   window;
//! * **per-link NoC occupancy** (one process per network) — one
//!   thread per (src, dst) link, one complete event per message
//!   covering its serialization interval.
//!
//! Timestamps are simulation *cycles* written into the `ts`/`dur`
//! microsecond fields — the viewer's time unit reads as µs but means
//! cycles. Output is a single well-formed JSON object in the
//! trace-event format, stable across runs of the same simulation.
//!
//! When a pulse series is supplied ([`render_with_pulse`]), a fourth
//! process carries **counter tracks** (`"ph":"C"`): one value per
//! pulse window for the headline series (SM throughput, L2 miss rate,
//! per-network bytes, DRAM bank busy, retries, queue depth), plus one
//! instant event per detected anomaly — Perfetto draws these as
//! area charts aligned with the span tracks.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::pulse::{ctr, gauge, PulseSeries};
use crate::{Component, NetId, TraceEvent, TraceKind};

const PID_KERNELS: u64 = 0;
const PID_DRAM: u64 = 1;
/// Pulse counter tracks get their own process id, above the simulator
/// pids (0-4) and `dsscope`'s service-span pid (5), so a `dsscope
/// merge` of a pulse-bearing trace keeps the two track families
/// separate in the Perfetto UI.
const PID_PULSE: u64 = 6;

fn net_pid(net: NetId) -> u64 {
    match net {
        NetId::Coherence => 2,
        NetId::Direct => 3,
        NetId::GpuInternal => 4,
    }
}

fn link_tid(src: u8, dst: u8) -> u64 {
    u64::from(src) * 64 + u64::from(dst)
}

fn meta(out: &mut String, pid: u64, tid: Option<u64>, what: &str, name: &str) {
    out.push_str("{\"ph\":\"M\",\"pid\":");
    write!(out, "{pid}").unwrap();
    if let Some(tid) = tid {
        write!(out, ",\"tid\":{tid}").unwrap();
    }
    write!(
        out,
        ",\"name\":\"{what}\",\"args\":{{\"name\":\"{name}\"}}}}"
    )
    .unwrap();
}

fn complete(out: &mut String, name: &str, cat: &str, ts: u64, dur: u64, pid: u64, tid: u64) {
    write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\
\"dur\":{dur},\"pid\":{pid},\"tid\":{tid}}}"
    )
    .unwrap();
}

/// Emits one Perfetto counter sample: a `"ph":"C"` event whose single
/// `args` entry names the counter track.
fn counter(out: &mut String, name: &str, ts: u64, value: u64) {
    write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{PID_PULSE},\
\"args\":{{\"{name}\":{value}}}}}"
    )
    .unwrap();
}

/// The pulse counter tracks the Chrome sink renders, as
/// `(track name, value for window w)` extractors.
fn pulse_tracks(series: &PulseSeries, w: usize) -> [(&'static str, u64); 9] {
    let acc = series.counters[ctr::GPU_L2_ACCESSES][w];
    let miss = series.counters[ctr::GPU_L2_MISSES][w];
    [
        ("sm_ops", series.counters[ctr::SM_OPS][w]),
        (
            "gpu_l2_miss_rate_milli",
            (miss * 1000).checked_div(acc).unwrap_or(0),
        ),
        ("coh_bytes", series.counters[ctr::COH_BYTES][w]),
        ("direct_bytes", series.counters[ctr::DIRECT_BYTES][w]),
        ("gpu_bytes", series.counters[ctr::GPU_BYTES][w]),
        (
            "dram_busy_cycles",
            series.counters[ctr::DRAM_BUSY_CYCLES][w],
        ),
        ("pushes_retried", series.counters[ctr::PUSHES_RETRIED][w]),
        ("queue_depth", series.gauges[gauge::QUEUE_DEPTH][w]),
        ("sb_occupancy", series.gauges[gauge::SB_OCCUPANCY][w]),
    ]
}

/// Renders a recorded trace as a Chrome trace-event JSON document.
pub fn render(events: &[TraceEvent]) -> String {
    render_with_pulse(events, None)
}

/// [`render`], plus pulse counter tracks and anomaly instants when a
/// series is supplied.
pub fn render_with_pulse(events: &[TraceEvent], pulse: Option<&PulseSeries>) -> String {
    // First pass: discover the tracks so their naming metadata can
    // lead the file deterministically (BTreeMap ⇒ sorted).
    let mut dram_banks: BTreeMap<u64, ()> = BTreeMap::new();
    let mut links: BTreeMap<(u64, u64), (u8, u8)> = BTreeMap::new();
    for e in events {
        match (e.component, e.kind) {
            (Component::DramBank { bank }, TraceKind::DramAccess { .. }) => {
                dram_banks.insert(u64::from(bank), ());
            }
            (Component::Net { net }, TraceKind::NetMsg { src, dst, .. }) => {
                links.insert((net_pid(net), link_tid(src, dst)), (src, dst));
            }
            _ => {}
        }
    }

    let mut body: Vec<String> = Vec::new();
    let mut s = String::new();
    meta(&mut s, PID_KERNELS, None, "process_name", "kernels");
    body.push(std::mem::take(&mut s));
    meta(&mut s, PID_DRAM, None, "process_name", "dram");
    body.push(std::mem::take(&mut s));
    for net in [NetId::Coherence, NetId::Direct, NetId::GpuInternal] {
        meta(
            &mut s,
            net_pid(net),
            None,
            "process_name",
            &format!("noc-{}", net.name()),
        );
        body.push(std::mem::take(&mut s));
    }
    if pulse.is_some() {
        meta(&mut s, PID_PULSE, None, "process_name", "pulse");
        body.push(std::mem::take(&mut s));
    }
    for bank in dram_banks.keys() {
        meta(
            &mut s,
            PID_DRAM,
            Some(*bank),
            "thread_name",
            &format!("bank {bank}"),
        );
        body.push(std::mem::take(&mut s));
    }
    for ((pid, tid), (src, dst)) in &links {
        meta(
            &mut s,
            *pid,
            Some(*tid),
            "thread_name",
            &format!("link {src}->{dst}"),
        );
        body.push(std::mem::take(&mut s));
    }

    // Second pass: the spans themselves, in emission order.
    let mut kernel_begin: BTreeMap<u32, u64> = BTreeMap::new();
    for e in events {
        match (e.component, e.kind) {
            (Component::Kernel, TraceKind::KernelBegin { kernel }) => {
                kernel_begin.insert(kernel, e.cycle);
            }
            (Component::Kernel, TraceKind::KernelEnd { kernel }) => {
                if let Some(begin) = kernel_begin.remove(&kernel) {
                    complete(
                        &mut s,
                        &format!("kernel {kernel}"),
                        "kernel",
                        begin,
                        e.cycle.saturating_sub(begin),
                        PID_KERNELS,
                        0,
                    );
                    body.push(std::mem::take(&mut s));
                }
            }
            (
                Component::DramBank { bank },
                TraceKind::DramAccess {
                    write,
                    row_hit,
                    start,
                    done,
                },
            ) => {
                let name = match (write, row_hit) {
                    (false, false) => "rd",
                    (false, true) => "rd hit",
                    (true, false) => "wr",
                    (true, true) => "wr hit",
                };
                complete(
                    &mut s,
                    name,
                    "dram",
                    start,
                    done.saturating_sub(start),
                    PID_DRAM,
                    u64::from(bank),
                );
                body.push(std::mem::take(&mut s));
            }
            (
                Component::Net { net },
                TraceKind::NetMsg {
                    src,
                    dst,
                    data,
                    start,
                    depart,
                    ..
                },
            ) => {
                complete(
                    &mut s,
                    if data { "data" } else { "ctrl" },
                    "noc",
                    start,
                    depart.saturating_sub(start),
                    net_pid(net),
                    link_tid(src, dst),
                );
                body.push(std::mem::take(&mut s));
            }
            _ => {}
        }
    }

    // Third pass: the pulse counter tracks, one sample per window at
    // the window's start cycle, then the anomaly instants.
    if let Some(series) = pulse {
        for w in 0..series.len() {
            let (start, _) = series.window_bounds(w);
            for (name, value) in pulse_tracks(series, w) {
                counter(&mut s, name, start, value);
                body.push(std::mem::take(&mut s));
            }
        }
        for a in &series.anomalies {
            write!(
                s,
                "{{\"name\":\"{}\",\"cat\":\"pulse\",\"ph\":\"i\",\"ts\":{},\
\"pid\":{PID_PULSE},\"s\":\"p\",\"args\":{{\"value\":{},\"threshold\":{},\"end\":{}}}}}",
                a.kind.name(),
                a.start,
                a.value,
                a.threshold,
                a.end
            )
            .unwrap();
            body.push(std::mem::take(&mut s));
        }
    }

    let mut out = String::with_capacity(body.iter().map(|b| b.len() + 2).sum::<usize>() + 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"ds-probe\",\"time_unit\":\"cycles\"},\"traceEvents\":[\n");
    for (i, item) in body.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(item);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, component: Component, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            cycle,
            component,
            line: None,
            kind,
        }
    }

    #[test]
    fn renders_kernel_dram_and_link_tracks() {
        let events = [
            ev(100, Component::Kernel, TraceKind::KernelBegin { kernel: 0 }),
            ev(
                120,
                Component::DramBank { bank: 3 },
                TraceKind::DramAccess {
                    write: false,
                    row_hit: true,
                    start: 118,
                    done: 126,
                },
            ),
            ev(
                130,
                Component::Net { net: NetId::Direct },
                TraceKind::NetMsg {
                    src: 4,
                    dst: 0,
                    data: true,
                    start: 130,
                    depart: 147,
                    arrive: 150,
                },
            ),
            ev(400, Component::Kernel, TraceKind::KernelEnd { kernel: 0 }),
        ];
        let doc = render(&events);
        assert!(doc.contains(r#""name":"kernel 0","cat":"kernel","ph":"X","ts":100,"dur":300"#));
        assert!(doc
            .contains(r#""name":"rd hit","cat":"dram","ph":"X","ts":118,"dur":8,"pid":1,"tid":3"#));
        assert!(doc
            .contains(r#""name":"data","cat":"noc","ph":"X","ts":130,"dur":17,"pid":3,"tid":256"#));
        assert!(doc.contains(r#""args":{"name":"bank 3"}"#));
        assert!(doc.contains(r#""args":{"name":"link 4->0"}"#));
        // Structurally sound: balanced braces/brackets, no trailing comma.
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "balanced braces"
        );
        assert!(!doc.contains(",\n]"));
    }

    #[test]
    fn pulse_series_renders_counter_tracks_and_anomaly_instants() {
        use crate::pulse::{ctr, PulseConfig, PulseSampler, PulseTotals};
        let mut sampler = PulseSampler::new(PulseConfig::with_window(100));
        let mut t = PulseTotals::default();
        t.counters[ctr::SM_OPS] = 7;
        t.counters[ctr::PUSHES_RETRIED] = 20;
        sampler.observe(100, t);
        t.counters[ctr::SM_OPS] = 9;
        t.counters[ctr::PUSHES_RETRIED] = 21;
        sampler.finish(150, t);
        let series = sampler.into_series();
        let doc = render_with_pulse(&[], Some(&series));
        assert!(doc.contains(r#""args":{"name":"pulse"}"#));
        assert!(doc.contains(r#""name":"sm_ops","ph":"C","ts":0,"pid":6,"args":{"sm_ops":7}"#));
        assert!(doc.contains(r#""name":"sm_ops","ph":"C","ts":100,"pid":6,"args":{"sm_ops":2}"#));
        assert!(doc.contains(r#""name":"retry-burst","cat":"pulse","ph":"i""#));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        // Without a series the document is unchanged from render().
        assert_eq!(render(&[]), render_with_pulse(&[], None));
        assert!(!render(&[]).contains("pulse"));
    }

    #[test]
    fn unmatched_kernel_begin_is_dropped_not_misrendered() {
        let events = [ev(
            10,
            Component::Kernel,
            TraceKind::KernelBegin { kernel: 7 },
        )];
        let doc = render(&events);
        assert!(!doc.contains("kernel 7"));
    }
}
