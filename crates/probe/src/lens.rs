//! `ds-lens`: per-cacheline lifetime forensics.
//!
//! The aggregate counters say *how many* pushes happened; this module
//! says what became of each one. A [`LineLens`] rides on the runtime
//! (unconditionally, like the latency histograms — it never feeds back
//! into timing, so an untraced run stays bit-identical) and records,
//! for every 128 B line touched, its event history with cycle stamps.
//! From the histories it derives three views:
//!
//! * **push efficacy** — every direct-store push is classified as
//!   *useful* (the GPU touched the pushed copy before it was lost),
//!   *dead* (evicted, probed out or replaced untouched) or *clobbered*
//!   (re-pushed by the CPU before the GPU ever read it). The three
//!   classes partition the pushes exactly: `useful + dead + clobbered`
//!   reconciles against the caches' `pushed_fills` counter.
//! * **sharing forensics** — write-after-push (the GPU's first touch of
//!   a pushed line is a store), ping-pong (the CPU re-claims a pushed
//!   line the GPU already used), per-line reuse distances and the
//!   push-to-first-touch latency distribution.
//! * **spatial heatmaps** — per-L2-slice, per-DRAM-bank and
//!   per-NoC-link traffic matrices whose row sums reconcile against
//!   the corresponding `CacheStats`/DRAM/`XbarStats` counters.
//!
//! Like the rest of this crate, the lens speaks raw `u64` line indices
//! so it can sit below every model crate.

use std::collections::HashMap;

use ds_sim::Histogram;

use crate::NetId;

/// One step in a line's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineEventKind {
    /// The CPU architecturally executed a store to the line; `push`
    /// marks stores destined for the direct network.
    CpuStore {
        /// The store will drain as a direct push (vs. through the
        /// coherent CPU L2).
        push: bool,
    },
    /// A direct-store push installed the line in its home slice.
    PushFill,
    /// A push found its set full of resident lines and bypassed to
    /// DRAM (the line was not installed).
    PushBypass,
    /// A demand (or prefetch) fill installed the line in a slice.
    DemandFill,
    /// A demand access hit in the slice.
    Hit {
        /// The access was a store.
        write: bool,
        /// The line was still push-provenanced.
        push_hit: bool,
        /// The requester was the GPU (vs. an uncached CPU read).
        gpu: bool,
    },
    /// A demand access missed in the slice.
    Miss {
        /// The access was a store.
        write: bool,
        /// The requester was the GPU (vs. an uncached CPU read).
        gpu: bool,
    },
    /// The slice's copy was invalidated; `direct` distinguishes the
    /// CPU's push-preceding GETX from a coherence probe.
    Invalidate {
        /// Invalidation arrived over the direct network.
        direct: bool,
    },
    /// The slice evicted the line to make room.
    Evict {
        /// The victim was dirty and required a writeback.
        writeback: bool,
    },
}

impl LineEventKind {
    /// Stable lower-case name used by the `dslens` renderers.
    pub fn name(self) -> &'static str {
        match self {
            LineEventKind::CpuStore { .. } => "cpu_store",
            LineEventKind::PushFill => "push_fill",
            LineEventKind::PushBypass => "push_bypass",
            LineEventKind::DemandFill => "demand_fill",
            LineEventKind::Hit { .. } => "hit",
            LineEventKind::Miss { .. } => "miss",
            LineEventKind::Invalidate { .. } => "invalidate",
            LineEventKind::Evict { .. } => "evict",
        }
    }
}

/// One cycle-stamped entry in a line's history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEvent {
    /// Simulation cycle the event occurred at.
    pub cycle: u64,
    /// What happened.
    pub kind: LineEventKind,
}

/// An installed push the GPU has not necessarily consumed yet.
#[derive(Debug, Clone, Copy)]
struct OpenPush {
    /// Cycle the push filled the slice.
    at: u64,
    /// The GPU has touched the pushed copy.
    touched: bool,
}

/// Everything the lens knows about one cache line.
#[derive(Debug, Clone, Default)]
pub struct LineHistory {
    /// The cycle-stamped event sequence, in occurrence order.
    pub events: Vec<LineEvent>,
    /// Pushes installed for this line (`PushFill` events).
    pub pushes: u64,
    /// GPU demand accesses that reached the L2 slice.
    pub gpu_accesses: u64,
    /// Pushes the GPU touched before the copy was lost.
    pub useful: u64,
    /// Pushes lost (evicted, probed, replaced or still unread at the
    /// end of the run) before any GPU touch.
    pub dead: u64,
    /// Pushes overwritten by a newer push before any GPU touch.
    pub clobbered: u64,
    /// Direct invalidations that re-claimed a pushed copy the GPU had
    /// already used (CPU → GPU → CPU bouncing).
    pub ping_pongs: u64,
    /// Useful pushes whose first GPU touch was a store.
    pub write_after_push: u64,
    /// The open (installed, unresolved) push, if any.
    open: Option<OpenPush>,
    /// Cycle of the most recent GPU demand access (for reuse
    /// distances).
    last_gpu_access: Option<u64>,
}

/// Per-GPU-L2-slice traffic row of the spatial heatmap. Each counter
/// mirrors an existing `CacheStats` (or push) counter at slice
/// granularity, so row sums reconcile exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceTraffic {
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Demand/prefetch fills.
    pub demand_fills: u64,
    /// Push installs.
    pub push_fills: u64,
    /// Demand hits on push-provenanced lines.
    pub push_hits: u64,
    /// Pushes that bypassed to DRAM (set full).
    pub push_bypasses: u64,
    /// Evictions.
    pub evictions: u64,
    /// Dirty evictions written back.
    pub writebacks: u64,
    /// Copies invalidated (probes and direct GETX).
    pub invalidations: u64,
}

impl SliceTraffic {
    /// Column headers, matching [`SliceTraffic::row`] order.
    pub const COLUMNS: [&'static str; 9] = [
        "hits",
        "misses",
        "demand_fills",
        "push_fills",
        "push_hits",
        "push_bypasses",
        "evictions",
        "writebacks",
        "invalidations",
    ];

    /// The counters in [`SliceTraffic::COLUMNS`] order.
    pub fn row(&self) -> [u64; 9] {
        [
            self.hits,
            self.misses,
            self.demand_fills,
            self.push_fills,
            self.push_hits,
            self.push_bypasses,
            self.evictions,
            self.writebacks,
            self.invalidations,
        ]
    }
}

/// Per-DRAM-bank traffic row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankTraffic {
    /// Read accesses serviced.
    pub reads: u64,
    /// Write accesses serviced.
    pub writes: u64,
    /// Accesses that hit the open row buffer.
    pub row_hits: u64,
}

impl BankTraffic {
    /// Column headers, matching [`BankTraffic::row`] order.
    pub const COLUMNS: [&'static str; 3] = ["reads", "writes", "row_hits"];

    /// The counters in [`BankTraffic::COLUMNS`] order.
    pub fn row(&self) -> [u64; 3] {
        [self.reads, self.writes, self.row_hits]
    }

    /// Total accesses (the heatmap intensity).
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// One (network, source port, destination port) cell of the NoC
/// traffic matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTraffic {
    /// Which crossbar the link belongs to.
    pub net: NetId,
    /// Source port index.
    pub src: u8,
    /// Destination port index.
    pub dst: u8,
    /// Control-sized messages routed.
    pub control: u64,
    /// Line-sized data messages routed.
    pub data: u64,
}

impl LinkTraffic {
    /// Total messages over the link.
    pub fn total(&self) -> u64 {
        self.control + self.data
    }
}

/// Stable ordering index for serialized link matrices.
fn net_order(net: NetId) -> u8 {
    match net {
        NetId::Coherence => 0,
        NetId::Direct => 1,
        NetId::GpuInternal => 2,
    }
}

/// The aggregate view of a run's line forensics, carried on
/// `RunReport`. Per-line histories stay inside the [`LineLens`] (they
/// are unbounded); this is the bounded summary every run serializes.
#[derive(Debug, Clone)]
pub struct LensReport {
    /// Pushes the GPU consumed before the copy was lost.
    pub push_useful: u64,
    /// Pushes lost untouched (evicted / probed / replaced / unread at
    /// end of run).
    pub push_dead: u64,
    /// Pushes overwritten by a newer push before any GPU touch.
    pub push_clobbered: u64,
    /// Pushes that bypassed to DRAM on a full set (never installed,
    /// so outside the useful/dead/clobbered partition).
    pub push_bypasses: u64,
    /// Pushes that exhausted the fault-recovery retries and degraded
    /// to the CCSM demand path (written to DRAM, never installed —
    /// outside the partition, like bypasses). Zero without a fault
    /// plan.
    pub push_degraded: u64,
    /// Useful pushes whose first GPU touch was a store.
    pub write_after_push: u64,
    /// Pushed-and-used copies re-claimed by the CPU (sharing bounce).
    pub ping_pongs: u64,
    /// Distinct lines with any recorded event.
    pub lines_touched: u64,
    /// Distinct lines that received at least one push install.
    pub lines_pushed: u64,
    /// Push-install to first GPU touch, one sample per useful push.
    pub first_touch: Histogram,
    /// Cycles between consecutive GPU L2 accesses to the same line.
    pub reuse: Histogram,
    /// Per-GPU-L2-slice traffic matrix.
    pub slices: Vec<SliceTraffic>,
    /// Per-DRAM-bank traffic matrix.
    pub banks: Vec<BankTraffic>,
    /// Per-link NoC traffic, sorted by (net, src, dst); links that
    /// never carried a message are omitted.
    pub links: Vec<LinkTraffic>,
}

impl LensReport {
    /// Name of the [`LensReport::first_touch`] histogram.
    pub const FIRST_TOUCH: &'static str = "push_first_touch";
    /// Name of the [`LensReport::reuse`] histogram.
    pub const REUSE: &'static str = "line_reuse";

    /// An all-zero report (no slices, no banks, no links).
    pub fn empty() -> Self {
        LensReport {
            push_useful: 0,
            push_dead: 0,
            push_clobbered: 0,
            push_bypasses: 0,
            push_degraded: 0,
            write_after_push: 0,
            ping_pongs: 0,
            lines_touched: 0,
            lines_pushed: 0,
            first_touch: Histogram::new(Self::FIRST_TOUCH),
            reuse: Histogram::new(Self::REUSE),
            slices: Vec::new(),
            banks: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Total classified pushes: must equal the caches' `pushed_fills`.
    pub fn push_total(&self) -> u64 {
        self.push_useful + self.push_dead + self.push_clobbered
    }

    /// Per-network `(control, data)` message sums over the link
    /// matrix, for reconciliation against `XbarStats`.
    pub fn net_sums(&self, net: NetId) -> (u64, u64) {
        self.links
            .iter()
            .filter(|l| l.net == net)
            .fold((0, 0), |(c, d), l| (c + l.control, d + l.data))
    }
}

impl Default for LensReport {
    fn default() -> Self {
        Self::empty()
    }
}

/// The live per-line tracker. One instance rides on the runtime,
/// updated at every cache, push, DRAM and NoC observation point;
/// [`LineLens::report`] derives the bounded [`LensReport`].
///
/// Determinism: per-line state lives in a `HashMap`, but nothing
/// order-dependent is ever derived from iterating it — aggregates are
/// commutative counters and histograms, and serialized outputs are
/// sorted.
#[derive(Debug)]
pub struct LineLens {
    /// Runtime shed switch (`--probe-level stages|minimal`): when
    /// off, every record method is an early return and the report
    /// stays empty.
    enabled: bool,
    lines: HashMap<u64, LineHistory>,
    push_useful: u64,
    push_dead: u64,
    push_clobbered: u64,
    push_bypasses: u64,
    push_degraded: u64,
    write_after_push: u64,
    ping_pongs: u64,
    first_touch: Histogram,
    reuse: Histogram,
    slices: Vec<SliceTraffic>,
    banks: Vec<BankTraffic>,
    links: HashMap<(NetId, u8, u8), (u64, u64)>,
}

/// Appends one event to `line`'s history, creating it on first touch.
/// Free-standing (over the map, not the lens) so callers can keep
/// mutating the lens's other fields while holding the history.
fn record_line(
    lines: &mut HashMap<u64, LineHistory>,
    line: u64,
    at: u64,
    kind: LineEventKind,
) -> &mut LineHistory {
    let h = lines.entry(line).or_default();
    h.events.push(LineEvent { cycle: at, kind });
    h
}

impl LineLens {
    /// A lens over `slices` GPU L2 slices and `banks` DRAM banks.
    pub fn new(slices: usize, banks: usize) -> Self {
        LineLens {
            enabled: true,
            lines: HashMap::new(),
            push_useful: 0,
            push_dead: 0,
            push_clobbered: 0,
            push_bypasses: 0,
            push_degraded: 0,
            write_after_push: 0,
            ping_pongs: 0,
            first_touch: Histogram::new(LensReport::FIRST_TOUCH),
            reuse: Histogram::new(LensReport::REUSE),
            slices: vec![SliceTraffic::default(); slices],
            banks: vec![BankTraffic::default(); banks],
            links: HashMap::new(),
        }
    }

    /// Turns collection on or off (the `--probe-level` runtime
    /// switch). Disabling never perturbs simulated timing — the lens
    /// was observation-only to begin with.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether collection is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The CPU architecturally executed a store to `line`.
    pub fn cpu_store(&mut self, line: u64, push: bool, at: u64) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        record_line(&mut self.lines, line, at, LineEventKind::CpuStore { push });
    }

    /// A push installed `line` into `slice`, opening a new efficacy
    /// interval. A still-open prior push normally cannot exist (the
    /// push's own GETX invalidates the old copy first), but fault
    /// injection can duplicate or reorder PUTX/GETX so one may; it is
    /// closed as clobbered rather than lost.
    pub fn push_fill(&mut self, slice: usize, line: u64, at: u64) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        self.slices[slice].push_fills += 1;
        let h = record_line(&mut self.lines, line, at, LineEventKind::PushFill);
        h.pushes += 1;
        if let Some(open) = h.open.take() {
            if !open.touched {
                h.clobbered += 1;
                self.push_clobbered += 1;
            }
        }
        h.open = Some(OpenPush { at, touched: false });
    }

    /// A push for `line` bypassed `slice` to DRAM (set full). The line
    /// is not installed, so no efficacy interval opens.
    pub fn push_bypass(&mut self, slice: usize, line: u64, at: u64) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        self.slices[slice].push_bypasses += 1;
        self.push_bypasses += 1;
        record_line(&mut self.lines, line, at, LineEventKind::PushBypass);
    }

    /// A push exhausted its fault-recovery retries and degraded to the
    /// CCSM demand path. Like a bypass, nothing was installed, so no
    /// efficacy interval opens.
    pub fn push_degraded(&mut self) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        self.push_degraded += 1;
    }

    /// A demand (or prefetch) fill installed `line` into `slice`. A
    /// demand fill landing on an open push replaces the pushed copy —
    /// the push dies untouched if the GPU never read it.
    pub fn demand_fill(&mut self, slice: usize, line: u64, at: u64) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        self.slices[slice].demand_fills += 1;
        let h = record_line(&mut self.lines, line, at, LineEventKind::DemandFill);
        if let Some(open) = h.open.take() {
            if !open.touched {
                h.dead += 1;
                self.push_dead += 1;
            }
        }
    }

    /// A demand access hit `line` in `slice`. The first GPU touch of
    /// an open push marks it useful and samples the first-touch
    /// latency; uncached CPU read-backs (`gpu == false`) count as
    /// traffic but not as consumption.
    pub fn slice_hit(
        &mut self,
        slice: usize,
        line: u64,
        write: bool,
        push_hit: bool,
        gpu: bool,
        at: u64,
    ) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        self.slices[slice].hits += 1;
        if push_hit {
            self.slices[slice].push_hits += 1;
        }
        let h = record_line(
            &mut self.lines,
            line,
            at,
            LineEventKind::Hit {
                write,
                push_hit,
                gpu,
            },
        );
        if !gpu {
            return;
        }
        h.gpu_accesses += 1;
        if let Some(last) = h.last_gpu_access {
            self.reuse.record(at.saturating_sub(last));
        }
        h.last_gpu_access = Some(at);
        if let Some(open) = h.open.as_mut() {
            if !open.touched {
                open.touched = true;
                h.useful += 1;
                self.push_useful += 1;
                self.first_touch.record(at.saturating_sub(open.at));
                if write {
                    h.write_after_push += 1;
                    self.write_after_push += 1;
                }
            }
        }
    }

    /// A demand access missed `line` in `slice`.
    pub fn slice_miss(&mut self, slice: usize, line: u64, write: bool, gpu: bool, at: u64) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        self.slices[slice].misses += 1;
        let h = record_line(
            &mut self.lines,
            line,
            at,
            LineEventKind::Miss { write, gpu },
        );
        if gpu {
            h.gpu_accesses += 1;
            if let Some(last) = h.last_gpu_access {
                self.reuse.record(at.saturating_sub(last));
            }
            h.last_gpu_access = Some(at);
        }
    }

    /// `slice`'s copy of `line` was invalidated. A direct GETX killing
    /// an untouched push clobbers it (the CPU overwrote its own push
    /// before the GPU read it); one killing a consumed push is a
    /// ping-pong. Coherence probes kill untouched pushes dead.
    pub fn invalidate(&mut self, slice: usize, line: u64, direct: bool, at: u64) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        self.slices[slice].invalidations += 1;
        let h = record_line(
            &mut self.lines,
            line,
            at,
            LineEventKind::Invalidate { direct },
        );
        if let Some(open) = h.open.take() {
            if !open.touched {
                if direct {
                    h.clobbered += 1;
                    self.push_clobbered += 1;
                } else {
                    h.dead += 1;
                    self.push_dead += 1;
                }
            } else if direct {
                h.ping_pongs += 1;
                self.ping_pongs += 1;
            }
        }
    }

    /// `slice` evicted `line` to make room for another fill.
    pub fn evict(&mut self, slice: usize, line: u64, writeback: bool, at: u64) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        self.slices[slice].evictions += 1;
        if writeback {
            self.slices[slice].writebacks += 1;
        }
        let h = record_line(
            &mut self.lines,
            line,
            at,
            LineEventKind::Evict { writeback },
        );
        if let Some(open) = h.open.take() {
            if !open.touched {
                h.dead += 1;
                self.push_dead += 1;
            }
        }
    }

    /// One DRAM access was serviced by `bank`.
    pub fn dram_access(&mut self, bank: usize, write: bool, row_hit: bool) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        let b = &mut self.banks[bank];
        if write {
            b.writes += 1;
        } else {
            b.reads += 1;
        }
        if row_hit {
            b.row_hits += 1;
        }
    }

    /// One message traversed `net`'s `src → dst` link.
    pub fn net_msg(&mut self, net: NetId, src: u8, dst: u8, data: bool) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        let cell = self.links.entry((net, src, dst)).or_insert((0, 0));
        if data {
            cell.1 += 1;
        } else {
            cell.0 += 1;
        }
    }

    /// Closes every still-open push as dead: the run ended before the
    /// GPU touched it. Call once, after the simulation drains.
    pub fn finalize(&mut self, _at: u64) {
        if !self.enabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxLens);
        let mut dead = 0;
        for h in self.lines.values_mut() {
            if let Some(open) = h.open.take() {
                if !open.touched {
                    h.dead += 1;
                    dead += 1;
                }
            }
        }
        self.push_dead += dead;
    }

    /// The history of `line`, if the lens ever saw it.
    pub fn line_history(&self, line: u64) -> Option<&LineHistory> {
        self.lines.get(&line)
    }

    /// Iterates every tracked line (arbitrary order — sort before
    /// emitting anything user-visible).
    pub fn lines(&self) -> impl Iterator<Item = (u64, &LineHistory)> {
        self.lines.iter().map(|(&l, h)| (l, h))
    }

    /// Derives the bounded aggregate view.
    pub fn report(&self) -> LensReport {
        let mut links: Vec<LinkTraffic> = self
            .links
            .iter()
            .map(|(&(net, src, dst), &(control, data))| LinkTraffic {
                net,
                src,
                dst,
                control,
                data,
            })
            .collect();
        links.sort_by_key(|l| (net_order(l.net), l.src, l.dst));
        LensReport {
            push_useful: self.push_useful,
            push_dead: self.push_dead,
            push_clobbered: self.push_clobbered,
            push_bypasses: self.push_bypasses,
            push_degraded: self.push_degraded,
            write_after_push: self.write_after_push,
            ping_pongs: self.ping_pongs,
            lines_touched: self.lines.len() as u64,
            lines_pushed: self.lines.values().filter(|h| h.pushes > 0).count() as u64,
            first_touch: self.first_touch.clone(),
            reuse: self.reuse.clone(),
            slices: self.slices.clone(),
            banks: self.banks.clone(),
            links,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lens() -> LineLens {
        LineLens::new(4, 8)
    }

    #[test]
    fn useful_push_samples_first_touch() {
        let mut l = lens();
        l.push_fill(0, 8, 100);
        l.slice_hit(0, 8, false, true, true, 140);
        l.finalize(200);
        let r = l.report();
        assert_eq!(
            (r.push_useful, r.push_dead, r.push_clobbered),
            (1, 0, 0),
            "touched before loss"
        );
        assert_eq!(r.first_touch.samples(), 1);
        assert_eq!(r.first_touch.sum(), 40);
        assert_eq!(r.write_after_push, 0);
        assert_eq!((r.lines_touched, r.lines_pushed), (1, 1));
    }

    #[test]
    fn evicted_untouched_push_is_dead() {
        let mut l = lens();
        l.push_fill(1, 5, 10);
        l.evict(1, 5, true, 50);
        let r = l.report();
        assert_eq!((r.push_useful, r.push_dead, r.push_clobbered), (0, 1, 0));
        assert_eq!(r.slices[1].evictions, 1);
        assert_eq!(r.slices[1].writebacks, 1);
        assert_eq!(r.first_touch.samples(), 0);
    }

    #[test]
    fn direct_invalidate_before_use_is_clobbered_after_use_is_ping_pong() {
        let mut l = lens();
        // Push, re-pushed before the GPU read it: clobbered.
        l.push_fill(0, 4, 10);
        l.invalidate(0, 4, true, 20); // the new push's GETX
        l.push_fill(0, 4, 25);
        // GPU consumes the second push, CPU claims it back: ping-pong.
        l.slice_hit(0, 4, false, true, true, 40);
        l.invalidate(0, 4, true, 60);
        let r = l.report();
        assert_eq!((r.push_useful, r.push_dead, r.push_clobbered), (1, 0, 1));
        assert_eq!(r.ping_pongs, 1);
        assert_eq!(r.push_total(), 2);
        assert_eq!(r.slices[0].push_fills, 2);
        assert_eq!(r.slices[0].invalidations, 2);
    }

    #[test]
    fn probe_invalidate_untouched_is_dead_not_clobbered() {
        let mut l = lens();
        l.push_fill(0, 4, 10);
        l.invalidate(0, 4, false, 20);
        let r = l.report();
        assert_eq!((r.push_useful, r.push_dead, r.push_clobbered), (0, 1, 0));
    }

    #[test]
    fn demand_fill_over_open_push_kills_it() {
        let mut l = lens();
        l.push_fill(2, 6, 10);
        l.demand_fill(2, 6, 30); // stale demand miss outran the push
        let r = l.report();
        assert_eq!((r.push_useful, r.push_dead, r.push_clobbered), (0, 1, 0));
        assert_eq!(r.slices[2].demand_fills, 1);
    }

    #[test]
    fn unread_push_dies_at_finalize_and_partition_reconciles() {
        let mut l = lens();
        l.push_fill(0, 1, 10);
        l.push_fill(0, 9, 12); // different line, never touched
        l.slice_hit(0, 1, true, true, true, 30); // store first touch
        l.finalize(100);
        let r = l.report();
        assert_eq!((r.push_useful, r.push_dead, r.push_clobbered), (1, 1, 0));
        assert_eq!(r.write_after_push, 1, "first touch was a store");
        let pushes: u64 = r.slices.iter().map(|s| s.push_fills).sum();
        assert_eq!(r.push_total(), pushes);
    }

    #[test]
    fn reuse_distance_spans_consecutive_gpu_accesses_only() {
        let mut l = lens();
        l.demand_fill(0, 8, 5);
        l.slice_hit(0, 8, false, false, true, 10);
        l.slice_hit(0, 8, false, false, false, 50); // CPU read-back: not reuse
        l.slice_hit(0, 8, false, false, true, 110);
        l.slice_miss(0, 8, false, true, 200);
        let r = l.report();
        assert_eq!(r.reuse.samples(), 2);
        assert_eq!(r.reuse.sum(), 100 + 90);
        let h = l.line_history(8).unwrap();
        assert_eq!(h.gpu_accesses, 3);
        assert_eq!(h.events.len(), 5);
    }

    #[test]
    fn bypass_counts_outside_the_partition() {
        let mut l = lens();
        l.push_bypass(3, 7, 10);
        l.push_fill(3, 7, 20);
        l.finalize(50);
        let r = l.report();
        assert_eq!(r.push_bypasses, 1);
        assert_eq!(r.push_total(), 1, "bypass never opened an interval");
        assert_eq!(r.slices[3].push_bypasses, 1);
    }

    #[test]
    fn heatmaps_accumulate_and_links_sort() {
        let mut l = lens();
        l.dram_access(2, false, true);
        l.dram_access(2, true, false);
        l.dram_access(5, false, false);
        l.net_msg(NetId::GpuInternal, 1, 0, true);
        l.net_msg(NetId::Coherence, 0, 5, false);
        l.net_msg(NetId::Coherence, 0, 5, true);
        l.net_msg(NetId::Direct, 0, 2, false);
        let r = l.report();
        assert_eq!(
            r.banks[2],
            BankTraffic {
                reads: 1,
                writes: 1,
                row_hits: 1
            }
        );
        assert_eq!(r.banks[5].reads, 1);
        let order: Vec<NetId> = r.links.iter().map(|l| l.net).collect();
        assert_eq!(
            order,
            vec![NetId::Coherence, NetId::Direct, NetId::GpuInternal]
        );
        assert_eq!(r.net_sums(NetId::Coherence), (1, 1));
        assert_eq!(r.net_sums(NetId::Direct), (1, 0));
        assert_eq!(r.net_sums(NetId::GpuInternal), (0, 1));
    }

    #[test]
    fn empty_report_is_all_zero() {
        let r = LensReport::empty();
        assert_eq!(r.push_total(), 0);
        assert!(r.slices.is_empty() && r.banks.is_empty() && r.links.is_empty());
        assert_eq!(r.first_touch.name(), LensReport::FIRST_TOUCH);
        assert_eq!(r.reuse.name(), LensReport::REUSE);
    }
}
