//! ds-pulse: cycle-domain time-series telemetry.
//!
//! A [`PulseSampler`] turns the simulator's cumulative counters into a
//! dense per-window time series — the generalisation of the old epoch
//! sampler to ~25 counters plus sampled gauges — stored
//! struct-of-arrays in a memory-bounded ring. When the ring fills, the
//! sampler *coalesces*: adjacent windows merge pairwise (counter
//! deltas add, gauges keep their max) and the window length doubles,
//! so a 10⁹-cycle run costs the same fixed memory as a 10⁶-cycle one
//! and resolution degrades gracefully instead of the ring overflowing.
//!
//! Each closed window also feeds four online anomaly detectors (stall
//! storms, retry bursts, utilization cliffs, livelock precursors)
//! whose findings annotate the run and — via the runtime's trace hook
//! — pre-arm the ds-chaos flight recorder before a watchdog abort.
//!
//! Conservation is by construction: every counter series is the
//! first-difference of a monotone cumulative counter starting at
//! zero, so the per-window deltas sum *exactly* to the final totals
//! ([`PulseSeries::check_conservation`] re-proves it from serialized
//! data, and `dspulse --check` cross-checks the totals against the
//! final `RunReport`). Sampling never feeds back into simulated
//! timing: a run with pulse on is bit-identical to one with it off.

/// Number of cumulative counter series a sampler tracks.
pub const PULSE_COUNTERS: usize = 28;

/// Number of sampled (non-conserved) gauge series.
pub const PULSE_GAUGES: usize = 3;

/// Counter indices into [`PulseTotals::counters`]. Order is the
/// serialization order; append-only.
pub mod ctr {
    /// GPU L2 demand accesses (all slices).
    pub const GPU_L2_ACCESSES: usize = 0;
    /// GPU L2 demand misses (all slices).
    pub const GPU_L2_MISSES: usize = 1;
    /// CPU L2 demand accesses.
    pub const CPU_L2_ACCESSES: usize = 2;
    /// CPU L2 demand misses.
    pub const CPU_L2_MISSES: usize = 3;
    /// Messages on the coherence network.
    pub const COH_MSGS: usize = 4;
    /// Messages on the direct-store network.
    pub const DIRECT_MSGS: usize = 5;
    /// Messages on the GPU-internal network.
    pub const GPU_MSGS: usize = 6;
    /// Bytes moved on the coherence network.
    pub const COH_BYTES: usize = 7;
    /// Bytes moved on the direct-store network.
    pub const DIRECT_BYTES: usize = 8;
    /// Bytes moved on the GPU-internal network.
    pub const GPU_BYTES: usize = 9;
    /// DRAM read accesses.
    pub const DRAM_READS: usize = 10;
    /// DRAM write accesses.
    pub const DRAM_WRITES: usize = 11;
    /// DRAM row-buffer hits.
    pub const DRAM_ROW_HITS: usize = 12;
    /// Cycles DRAM banks spent busy (summed over banks).
    pub const DRAM_BUSY_CYCLES: usize = 13;
    /// Direct-store pushes acknowledged.
    pub const DIRECT_PUSHES: usize = 14;
    /// Pushes drained from the store buffer.
    pub const PUSHES_ATTEMPTED: usize = 15;
    /// Push retries sent by the ack-timeout protocol.
    pub const PUSHES_RETRIED: usize = 16;
    /// Pushes degraded to the CCSM demand path.
    pub const PUSHES_DEGRADED: usize = 17;
    /// Pushes that bypassed a full L2 set to DRAM.
    pub const PUSH_BYPASSES: usize = 18;
    /// Faults injected by the active fault plan.
    pub const FAULTS_INJECTED: usize = 19;
    /// CPU store-buffer full stalls.
    pub const SB_STALLS: usize = 20;
    /// Operations issued across all SMs.
    pub const SM_OPS: usize = 21;
    /// Warps completed.
    pub const WARPS_COMPLETED: usize = 22;
    /// Kernels retired.
    pub const KERNELS_RUN: usize = 23;
    /// Coherence transactions served by the hub.
    pub const HUB_TRANSACTIONS: usize = 24;
    /// Requests queued behind a same-line hub transaction.
    pub const HUB_CONFLICTS: usize = 25;
    /// Probes broadcast by the hub.
    pub const HUB_PROBES: usize = 26;
    /// Simulation events scheduled.
    pub const EVENTS: usize = 27;
}

/// Gauge indices into [`PulseTotals::gauges`].
pub mod gauge {
    /// Event-queue depth at window close.
    pub const QUEUE_DEPTH: usize = 0;
    /// Store-buffer occupancy at window close.
    pub const SB_OCCUPANCY: usize = 1;
    /// Unacked in-flight pushes at window close.
    pub const INFLIGHT_PUSHES: usize = 2;
}

/// Stable serialization names of the counter series, in [`ctr`] order.
pub const PULSE_COUNTER_NAMES: [&str; PULSE_COUNTERS] = [
    "gpu_l2_accesses",
    "gpu_l2_misses",
    "cpu_l2_accesses",
    "cpu_l2_misses",
    "coh_msgs",
    "direct_msgs",
    "gpu_msgs",
    "coh_bytes",
    "direct_bytes",
    "gpu_bytes",
    "dram_reads",
    "dram_writes",
    "dram_row_hits",
    "dram_busy_cycles",
    "direct_pushes",
    "pushes_attempted",
    "pushes_retried",
    "pushes_degraded",
    "push_bypasses",
    "faults_injected",
    "sb_stalls",
    "sm_ops",
    "warps_completed",
    "kernels_run",
    "hub_transactions",
    "hub_conflicts",
    "hub_probes",
    "events",
];

/// Stable serialization names of the gauge series, in [`gauge`] order.
pub const PULSE_GAUGE_NAMES: [&str; PULSE_GAUGES] =
    ["queue_depth", "sb_occupancy", "inflight_pushes"];

/// One snapshot of everything the sampler watches: cumulative counters
/// (monotone; windows hold their first differences) plus instantaneous
/// gauges (sampled at window close, never summed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulseTotals {
    /// Cumulative counter values, indexed by [`ctr`].
    pub counters: [u64; PULSE_COUNTERS],
    /// Instantaneous gauge values, indexed by [`gauge`].
    pub gauges: [u64; PULSE_GAUGES],
}

impl Default for PulseTotals {
    fn default() -> Self {
        PulseTotals {
            counters: [0; PULSE_COUNTERS],
            gauges: [0; PULSE_GAUGES],
        }
    }
}

/// What a detector saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PulseAnomalyKind {
    /// Store-buffer full stalls spiked within one window.
    StallStorm,
    /// Push retries spiked within one window.
    RetryBurst,
    /// Network traffic collapsed to a fraction of the previous window.
    UtilizationCliff,
    /// Consecutive windows retried pushes without a single ack — the
    /// shape of the livelock the ds-chaos watchdog aborts on.
    LivelockPrecursor,
}

impl PulseAnomalyKind {
    /// Stable kebab-case name used by sinks and event streams.
    pub fn name(self) -> &'static str {
        match self {
            PulseAnomalyKind::StallStorm => "stall-storm",
            PulseAnomalyKind::RetryBurst => "retry-burst",
            PulseAnomalyKind::UtilizationCliff => "utilization-cliff",
            PulseAnomalyKind::LivelockPrecursor => "livelock-precursor",
        }
    }

    /// Parses a [`PulseAnomalyKind::name`] back.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "stall-storm" => Some(PulseAnomalyKind::StallStorm),
            "retry-burst" => Some(PulseAnomalyKind::RetryBurst),
            "utilization-cliff" => Some(PulseAnomalyKind::UtilizationCliff),
            "livelock-precursor" => Some(PulseAnomalyKind::LivelockPrecursor),
            _ => None,
        }
    }
}

/// One detected anomaly, annotated with the window that tripped it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulseAnomaly {
    /// Which detector fired.
    pub kind: PulseAnomalyKind,
    /// First cycle of the offending window.
    pub start: u64,
    /// One past the last cycle of the offending window.
    pub end: u64,
    /// The observed value that crossed the threshold.
    pub value: u64,
    /// The threshold it crossed.
    pub threshold: u64,
}

impl std::fmt::Display for PulseAnomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} in [{}, {}): {} (threshold {})",
            self.kind.name(),
            self.start,
            self.end,
            self.value,
            self.threshold
        )
    }
}

/// Detector thresholds and ring sizing. The defaults are tuned so a
/// fault-free small-catalog run stays quiet while the seeded dschaos
/// drop plans the CI smoke uses reliably trip the retry detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulseConfig {
    /// Initial window length in cycles.
    pub window: u64,
    /// Ring capacity in windows; when full, windows coalesce pairwise
    /// and the window length doubles. Must be an even number ≥ 2.
    pub capacity: usize,
    /// Store-buffer stalls in one window that count as a stall storm.
    pub stall_storm_min: u64,
    /// Push retries in one window that count as a retry burst.
    pub retry_burst_min: u64,
    /// Minimum previous-window message count for a cliff comparison.
    pub cliff_floor: u64,
    /// Consecutive ack-free retrying windows before the livelock
    /// precursor fires.
    pub livelock_windows: u32,
}

/// The default sampling window in cycles (`dspulse`, serve, dstrace).
pub const DEFAULT_PULSE_WINDOW: u64 = 1000;

impl Default for PulseConfig {
    fn default() -> Self {
        PulseConfig {
            window: DEFAULT_PULSE_WINDOW,
            capacity: 1024,
            stall_storm_min: 64,
            retry_burst_min: 16,
            cliff_floor: 200,
            livelock_windows: 2,
        }
    }
}

impl PulseConfig {
    /// A default config at `window` cycles per window.
    pub fn with_window(window: u64) -> Self {
        PulseConfig {
            window,
            ..PulseConfig::default()
        }
    }
}

/// The finished time series a run reports: per-window counter deltas
/// and gauge samples (struct-of-arrays), the final cumulative totals,
/// and every anomaly the online detectors flagged.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseSeries {
    /// The window length sampling started at.
    pub base_window: u64,
    /// The final window length (`base_window << coalescings`).
    pub window: u64,
    /// How many times the ring coalesced.
    pub coalescings: u32,
    /// `counters[c][w]`: delta of counter `c` over window `w`. Outer
    /// length is [`PULSE_COUNTERS`]; windows are contiguous from
    /// cycle 0.
    pub counters: Vec<Vec<u64>>,
    /// `gauges[g][w]`: gauge `g` sampled at the close of window `w`
    /// (max over merged windows after coalescing). Outer length is
    /// [`PULSE_GAUGES`].
    pub gauges: Vec<Vec<u64>>,
    /// Final cumulative counter totals (what the deltas sum to).
    pub totals: PulseTotals,
    /// Anomalies in detection order.
    pub anomalies: Vec<PulseAnomaly>,
}

impl PulseSeries {
    /// Number of closed windows.
    pub fn len(&self) -> usize {
        self.counters.first().map_or(0, Vec::len)
    }

    /// Whether the series holds no windows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cycle bounds `[start, end)` of window `w`.
    pub fn window_bounds(&self, w: usize) -> (u64, u64) {
        (w as u64 * self.window, (w as u64 + 1) * self.window)
    }

    /// One counter series by [`ctr`] index.
    pub fn counter(&self, c: usize) -> &[u64] {
        &self.counters[c]
    }

    /// One gauge series by [`gauge`] index.
    pub fn gauge(&self, g: usize) -> &[u64] {
        &self.gauges[g]
    }

    /// Proves the conservation invariant from the stored data alone:
    /// every counter's per-window deltas sum exactly to its final
    /// total, the shapes are consistent, and the window geometry is
    /// coherent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated identity.
    pub fn check_conservation(&self) -> Result<(), String> {
        if self.counters.len() != PULSE_COUNTERS {
            return Err(format!(
                "expected {PULSE_COUNTERS} counter series, found {}",
                self.counters.len()
            ));
        }
        if self.gauges.len() != PULSE_GAUGES {
            return Err(format!(
                "expected {PULSE_GAUGES} gauge series, found {}",
                self.gauges.len()
            ));
        }
        if self.window != self.base_window << self.coalescings {
            return Err(format!(
                "window {} is not base_window {} << {} coalescings",
                self.window, self.base_window, self.coalescings
            ));
        }
        let len = self.len();
        for (c, series) in self.counters.iter().enumerate() {
            if series.len() != len {
                return Err(format!(
                    "counter {} has {} windows, expected {len}",
                    PULSE_COUNTER_NAMES[c],
                    series.len()
                ));
            }
            let sum: u64 = series.iter().sum();
            if sum != self.totals.counters[c] {
                return Err(format!(
                    "counter {} windows sum to {sum}, final total is {}",
                    PULSE_COUNTER_NAMES[c], self.totals.counters[c]
                ));
            }
        }
        for (g, series) in self.gauges.iter().enumerate() {
            if series.len() != len {
                return Err(format!(
                    "gauge {} has {} windows, expected {len}",
                    PULSE_GAUGE_NAMES[g],
                    series.len()
                ));
            }
        }
        Ok(())
    }

    /// Downsamples to at most `max` windows by pairwise merging
    /// (counters add, gauges max), exactly like ring coalescing —
    /// conservation survives. Used to bound streamed telemetry.
    pub fn downsampled(&self, max: usize) -> PulseSeries {
        let max = max.max(1);
        let mut out = self.clone();
        while out.len() > max {
            for series in &mut out.counters {
                *series = merge_pairs(series, u64::saturating_add);
            }
            for series in &mut out.gauges {
                *series = merge_pairs(series, u64::max);
            }
            out.window *= 2;
            out.coalescings += 1;
        }
        out
    }
}

/// Merges adjacent pairs with `f`; a trailing odd element survives
/// as its own (shorter) window.
fn merge_pairs(series: &[u64], f: impl Fn(u64, u64) -> u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(series.len().div_ceil(2));
    let mut it = series.chunks(2);
    for pair in &mut it {
        out.push(match pair {
            [a, b] => f(*a, *b),
            [a] => *a,
            _ => unreachable!(),
        });
    }
    out
}

/// The online sampler the runtime drives: call
/// [`PulseSampler::needs_sample`] per event (one compare) and
/// [`PulseSampler::observe`] with a fresh snapshot only when it says
/// so; [`PulseSampler::finish`] closes the final partial window.
#[derive(Debug, Clone)]
pub struct PulseSampler {
    cfg: PulseConfig,
    window: u64,
    coalescings: u32,
    counters: Vec<Vec<u64>>,
    gauges: Vec<Vec<u64>>,
    /// Totals at the open window's start.
    base: PulseTotals,
    /// Closed windows so far (`counters[*].len()`).
    closed: usize,
    anomalies: Vec<PulseAnomaly>,
    /// Anomalies not yet drained by [`PulseSampler::take_fresh_anomalies`].
    fresh: usize,
    /// Previous window's total message count (cliff detector).
    prev_msgs: Option<u64>,
    /// Consecutive windows with retries but no acks (livelock
    /// precursor).
    livelock_run: u32,
}

impl PulseSampler {
    /// A sampler with `cfg`'s window, ring bound and thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero or the capacity is odd or < 2.
    pub fn new(cfg: PulseConfig) -> Self {
        assert!(cfg.window > 0, "pulse window must be positive");
        assert!(
            cfg.capacity >= 2 && cfg.capacity.is_multiple_of(2),
            "pulse ring capacity must be an even number >= 2"
        );
        PulseSampler {
            window: cfg.window,
            cfg,
            coalescings: 0,
            counters: vec![Vec::new(); PULSE_COUNTERS],
            gauges: vec![Vec::new(); PULSE_GAUGES],
            base: PulseTotals::default(),
            closed: 0,
            anomalies: Vec::new(),
            fresh: 0,
            prev_msgs: None,
            livelock_run: 0,
        }
    }

    /// The current (possibly coalesced) window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// The window length sampling started at.
    pub fn base_window(&self) -> u64 {
        self.cfg.window
    }

    /// Whether `cycle` lies beyond the open window, i.e. whether the
    /// caller must snapshot totals and call [`PulseSampler::observe`].
    /// One compare — the per-event cost of an armed sampler.
    #[inline]
    pub fn needs_sample(&self, cycle: u64) -> bool {
        cycle >= (self.closed as u64 + 1) * self.window
    }

    /// Notes that the simulation reached `cycle` (pre-event) with
    /// cumulative snapshot `totals`, closing every window that ended.
    /// Quiet windows close with all-zero deltas, keeping the series
    /// dense.
    pub fn observe(&mut self, cycle: u64, totals: PulseTotals) {
        while self.needs_sample(cycle) {
            self.close(totals);
        }
    }

    /// Closes the final (partial) window at end of run.
    pub fn finish(&mut self, cycle: u64, totals: PulseTotals) {
        self.observe(cycle, totals);
        self.close(totals);
    }

    fn close(&mut self, totals: PulseTotals) {
        let mut delta = [0u64; PULSE_COUNTERS];
        for (c, d) in delta.iter_mut().enumerate() {
            *d = totals.counters[c] - self.base.counters[c];
            self.counters[c].push(*d);
        }
        for g in 0..PULSE_GAUGES {
            self.gauges[g].push(totals.gauges[g]);
        }
        let start = self.closed as u64 * self.window;
        let end = start + self.window;
        self.base = totals;
        self.closed += 1;
        self.detect(&delta, start, end);
        if self.closed == self.cfg.capacity {
            self.coalesce();
        }
    }

    /// Pairwise-merges the ring: counters add, gauges max, the window
    /// doubles. O(ring) work amortised over capacity/2 closes.
    fn coalesce(&mut self) {
        for series in &mut self.counters {
            *series = merge_pairs(series, u64::saturating_add);
        }
        for series in &mut self.gauges {
            *series = merge_pairs(series, u64::max);
        }
        self.window *= 2;
        self.coalescings += 1;
        self.closed /= 2;
    }

    /// Runs the four detectors on a just-closed window.
    fn detect(&mut self, delta: &[u64; PULSE_COUNTERS], start: u64, end: u64) {
        if delta[ctr::SB_STALLS] >= self.cfg.stall_storm_min {
            self.push_anomaly(PulseAnomaly {
                kind: PulseAnomalyKind::StallStorm,
                start,
                end,
                value: delta[ctr::SB_STALLS],
                threshold: self.cfg.stall_storm_min,
            });
        }
        if delta[ctr::PUSHES_RETRIED] >= self.cfg.retry_burst_min {
            self.push_anomaly(PulseAnomaly {
                kind: PulseAnomalyKind::RetryBurst,
                start,
                end,
                value: delta[ctr::PUSHES_RETRIED],
                threshold: self.cfg.retry_burst_min,
            });
        }
        let msgs = delta[ctr::COH_MSGS] + delta[ctr::DIRECT_MSGS] + delta[ctr::GPU_MSGS];
        if let Some(prev) = self.prev_msgs {
            if prev >= self.cfg.cliff_floor && msgs * 10 <= prev {
                self.push_anomaly(PulseAnomaly {
                    kind: PulseAnomalyKind::UtilizationCliff,
                    start,
                    end,
                    value: msgs,
                    threshold: prev / 10,
                });
            }
        }
        self.prev_msgs = Some(msgs);
        if delta[ctr::PUSHES_RETRIED] > 0 && delta[ctr::DIRECT_PUSHES] == 0 {
            self.livelock_run += 1;
            if self.livelock_run == self.cfg.livelock_windows {
                self.push_anomaly(PulseAnomaly {
                    kind: PulseAnomalyKind::LivelockPrecursor,
                    start,
                    end,
                    value: delta[ctr::PUSHES_RETRIED],
                    threshold: u64::from(self.cfg.livelock_windows),
                });
            }
        } else {
            self.livelock_run = 0;
        }
    }

    fn push_anomaly(&mut self, a: PulseAnomaly) {
        self.anomalies.push(a);
    }

    /// Anomalies detected since the last drain — the runtime forwards
    /// these to the tracer (and so to any attached flight recorder)
    /// the moment they fire, before any later watchdog abort.
    pub fn take_fresh_anomalies(&mut self) -> Vec<PulseAnomaly> {
        let fresh = self.anomalies[self.fresh..].to_vec();
        self.fresh = self.anomalies.len();
        fresh
    }

    /// All anomalies so far.
    pub fn anomalies(&self) -> &[PulseAnomaly] {
        &self.anomalies
    }

    /// Consumes the sampler into its finished [`PulseSeries`]. Call
    /// after [`PulseSampler::finish`]; the base snapshot is then the
    /// final cumulative totals.
    pub fn into_series(self) -> PulseSeries {
        PulseSeries {
            base_window: self.cfg.window,
            window: self.window,
            coalescings: self.coalescings,
            counters: self.counters,
            gauges: self.gauges,
            totals: self.base,
            anomalies: self.anomalies,
        }
    }
}

/// The legacy epoch view of a pulse series: one [`EpochSample`] per
/// pulse window, carrying the nine counters the old opt-in epoch
/// sampler tracked (a strict subset of the pulse counters). This is
/// what `RunReport::epochs` and `dstrace --format epochs` are now —
/// a derived view, not a second sampling path.
pub fn epoch_view(series: &PulseSeries) -> Vec<crate::EpochSample> {
    (0..series.len())
        .map(|w| crate::EpochSample {
            index: w as u64,
            delta: crate::EpochTotals {
                gpu_l2_accesses: series.counters[ctr::GPU_L2_ACCESSES][w],
                gpu_l2_misses: series.counters[ctr::GPU_L2_MISSES][w],
                cpu_l2_accesses: series.counters[ctr::CPU_L2_ACCESSES][w],
                cpu_l2_misses: series.counters[ctr::CPU_L2_MISSES][w],
                coh_msgs: series.counters[ctr::COH_MSGS][w],
                direct_msgs: series.counters[ctr::DIRECT_MSGS][w],
                gpu_msgs: series.counters[ctr::GPU_MSGS][w],
                dram_accesses: series.counters[ctr::DRAM_READS][w]
                    + series.counters[ctr::DRAM_WRITES][w],
                direct_pushes: series.counters[ctr::DIRECT_PUSHES][w],
            },
        })
        .collect()
}

/// Sparkline glyph ramp, lowest to highest.
const SPARK_RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a unicode sparkline at most `width` glyphs wide
/// (downsampling by max over even chunks), scaled to the series max.
/// An all-zero series renders as a flat baseline.
pub fn sparkline(values: &[u64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let width = width.min(values.len());
    let chunk = values.len().div_ceil(width);
    let buckets: Vec<u64> = values
        .chunks(chunk)
        .map(|c| c.iter().copied().max().unwrap_or(0))
        .collect();
    let max = buckets.iter().copied().max().unwrap_or(0);
    buckets
        .iter()
        .map(|&v| {
            // Scale so only a true max hits the top glyph.
            match (v * (SPARK_RAMP.len() as u64 - 1) + max / 2).checked_div(max) {
                Some(level) => SPARK_RAMP[level as usize],
                None => SPARK_RAMP[0],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals_with(c: usize, v: u64) -> PulseTotals {
        let mut t = PulseTotals::default();
        t.counters[c] = v;
        t
    }

    #[test]
    fn deltas_attribute_to_the_window_they_happened_in() {
        let mut s = PulseSampler::new(PulseConfig::with_window(10));
        s.observe(3, totals_with(ctr::COH_MSGS, 4));
        assert_eq!(s.closed, 0, "open window, nothing closed");
        s.observe(10, totals_with(ctr::COH_MSGS, 6));
        assert_eq!(s.closed, 1);
        s.finish(12, totals_with(ctr::COH_MSGS, 7));
        let series = s.into_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series.counter(ctr::COH_MSGS), &[6, 1]);
        assert_eq!(series.totals.counters[ctr::COH_MSGS], 7);
        series.check_conservation().unwrap();
    }

    #[test]
    fn quiet_windows_stay_dense_with_zero_deltas() {
        let mut s = PulseSampler::new(PulseConfig::with_window(10));
        s.observe(35, PulseTotals::default());
        assert_eq!(s.closed, 3);
        s.finish(35, PulseTotals::default());
        let series = s.into_series();
        assert_eq!(series.len(), 4);
        assert!(series.counter(ctr::EVENTS).iter().all(|&d| d == 0));
    }

    #[test]
    fn ring_coalesces_to_bounded_memory() {
        let cfg = PulseConfig {
            window: 10,
            capacity: 8,
            ..PulseConfig::default()
        };
        let mut s = PulseSampler::new(cfg);
        // 100 windows' worth of activity: one event per window.
        let mut t = PulseTotals::default();
        for w in 0..100u64 {
            t.counters[ctr::EVENTS] = w + 1;
            s.observe(w * 10 + 5, t);
        }
        t.counters[ctr::EVENTS] = 100;
        s.finish(999, t);
        let series = s.into_series();
        assert!(series.len() <= 8, "ring stays bounded: {}", series.len());
        assert!(series.coalescings >= 4);
        assert_eq!(series.window, 10 << series.coalescings);
        series.check_conservation().unwrap();
        let sum: u64 = series.counter(ctr::EVENTS).iter().sum();
        assert_eq!(sum, 100, "coalescing conserves counters");
    }

    #[test]
    fn gauges_keep_max_across_coalescing() {
        let cfg = PulseConfig {
            window: 10,
            capacity: 4,
            ..PulseConfig::default()
        };
        let mut s = PulseSampler::new(cfg);
        let mut t = PulseTotals::default();
        for w in 0..8u64 {
            t.gauges[gauge::QUEUE_DEPTH] = w;
            s.observe((w + 1) * 10, t);
        }
        s.finish(80, t);
        let series = s.into_series();
        assert!(series.len() <= 4);
        let max = series.gauge(gauge::QUEUE_DEPTH).iter().copied().max();
        assert_eq!(max, Some(7), "max survives merging");
    }

    #[test]
    fn retry_burst_and_livelock_precursor_fire() {
        let mut s = PulseSampler::new(PulseConfig::with_window(10));
        let mut t = PulseTotals::default();
        // Window 0: a burst of 20 retries, no acks.
        t.counters[ctr::PUSHES_RETRIED] = 20;
        s.observe(10, t);
        // Window 1: 5 more retries, still no acks.
        t.counters[ctr::PUSHES_RETRIED] = 25;
        s.observe(20, t);
        s.finish(20, t);
        let kinds: Vec<_> = s.anomalies().iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&PulseAnomalyKind::RetryBurst));
        assert!(kinds.contains(&PulseAnomalyKind::LivelockPrecursor));
        let burst = s
            .anomalies()
            .iter()
            .find(|a| a.kind == PulseAnomalyKind::RetryBurst)
            .unwrap();
        assert_eq!((burst.start, burst.end, burst.value), (0, 10, 20));
    }

    #[test]
    fn acks_reset_the_livelock_run() {
        let mut s = PulseSampler::new(PulseConfig::with_window(10));
        let mut t = PulseTotals::default();
        t.counters[ctr::PUSHES_RETRIED] = 1;
        s.observe(10, t); // retrying, no ack: run = 1
        t.counters[ctr::PUSHES_RETRIED] = 2;
        t.counters[ctr::DIRECT_PUSHES] = 1;
        s.observe(20, t); // an ack landed: run resets
        t.counters[ctr::PUSHES_RETRIED] = 3;
        s.observe(30, t); // run = 1 again
        s.finish(30, t);
        assert!(s
            .anomalies()
            .iter()
            .all(|a| a.kind != PulseAnomalyKind::LivelockPrecursor));
    }

    #[test]
    fn stall_storm_and_cliff_fire() {
        let mut s = PulseSampler::new(PulseConfig::with_window(10));
        let mut t = PulseTotals::default();
        t.counters[ctr::SB_STALLS] = 64;
        t.counters[ctr::GPU_MSGS] = 500;
        s.observe(10, t); // stall storm; msgs baseline 500
        t.counters[ctr::GPU_MSGS] = 510;
        s.observe(20, t); // 10 msgs after 500: cliff
        s.finish(20, t);
        let kinds: Vec<_> = s.anomalies().iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&PulseAnomalyKind::StallStorm));
        assert!(kinds.contains(&PulseAnomalyKind::UtilizationCliff));
    }

    #[test]
    fn fresh_anomalies_drain_once() {
        let mut s = PulseSampler::new(PulseConfig::with_window(10));
        let mut t = PulseTotals::default();
        t.counters[ctr::PUSHES_RETRIED] = 20;
        t.counters[ctr::DIRECT_PUSHES] = 1;
        s.observe(10, t);
        assert_eq!(s.take_fresh_anomalies().len(), 1);
        assert!(s.take_fresh_anomalies().is_empty());
        assert_eq!(s.anomalies().len(), 1);
    }

    #[test]
    fn downsampled_conserves_counters() {
        let mut s = PulseSampler::new(PulseConfig::with_window(10));
        let mut t = PulseTotals::default();
        for w in 0..37u64 {
            t.counters[ctr::EVENTS] += w;
            s.observe((w + 1) * 10, t);
        }
        s.finish(370, t);
        let series = s.into_series();
        let small = series.downsampled(8);
        assert!(small.len() <= 8);
        small.check_conservation().unwrap();
        assert_eq!(
            small.counter(ctr::EVENTS).iter().sum::<u64>(),
            series.counter(ctr::EVENTS).iter().sum::<u64>()
        );
    }

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[0, 0, 0], 3), "▁▁▁");
        let line = sparkline(&[0, 1, 2, 4, 8], 5);
        assert_eq!(line.chars().count(), 5);
        assert!(line.ends_with('█'));
        // Downsampling keeps the peak visible.
        let wide = sparkline(&(0..100u64).collect::<Vec<_>>(), 10);
        assert_eq!(wide.chars().count(), 10);
        assert!(wide.ends_with('█'));
    }

    #[test]
    #[should_panic(expected = "pulse window must be positive")]
    fn zero_window_panics() {
        let _ = PulseSampler::new(PulseConfig::with_window(0));
    }
}
