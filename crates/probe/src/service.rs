//! Service-side metrics for a long-running simulation server.
//!
//! `ds-serve` wraps the runner in an HTTP job API; this module is the
//! probe-side home of its load metrics so they share the
//! [`Histogram`] machinery (power-of-two buckets, exact sum/min/max,
//! p50/p95/p99) with the simulator's latency reports. The struct is
//! deliberately plain — the server owns locking and the HTTP
//! rendering; this type only accumulates.

use std::fmt;

use ds_sim::Histogram;

/// Request-latency histograms (microseconds) plus load counters for
/// the job API. One instance lives behind the server's metrics lock;
/// every handler records its wall-clock service time here.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// `POST /jobs` handling latency (admission + enqueue), µs.
    pub submit: Histogram,
    /// `GET /jobs/<id>` handling latency, µs.
    pub status: Histogram,
    /// `GET /jobs/<id>/results` handling latency, µs.
    pub results: Histogram,
    /// Per-task queue wait: enqueue to a worker picking it up, µs.
    pub task_wait: Histogram,
    /// Per-task service time inside a worker (cache hit or compute), µs.
    pub task_service: Histogram,
    /// HTTP requests handled (any endpoint, including errors).
    pub requests: u64,
    /// Submissions refused by admission control (queue full).
    pub rejected: u64,
    /// Jobs accepted by admission control.
    pub jobs_accepted: u64,
    /// Jobs whose every task reached a terminal outcome.
    pub jobs_completed: u64,
    /// Tasks that reached a terminal outcome.
    pub tasks_completed: u64,
    /// Tasks whose execution path panicked (isolated per item; the
    /// task is marked `panicked` and the job still completes).
    pub worker_panics: u64,
    /// Worker threads respawned by their supervisor after a panic
    /// escaped the per-item isolation.
    pub workers_respawned: u64,
}

impl ServiceMetrics {
    /// Canonical histogram names, also used by serialized forms.
    pub const SUBMIT: &'static str = "http_submit_us";
    /// Name of [`ServiceMetrics::status`].
    pub const STATUS: &'static str = "http_status_us";
    /// Name of [`ServiceMetrics::results`].
    pub const RESULTS: &'static str = "http_results_us";
    /// Name of [`ServiceMetrics::task_wait`].
    pub const TASK_WAIT: &'static str = "task_wait_us";
    /// Name of [`ServiceMetrics::task_service`].
    pub const TASK_SERVICE: &'static str = "task_service_us";

    /// Five empty histograms, all counters zero.
    pub fn new() -> Self {
        ServiceMetrics {
            submit: Histogram::new(Self::SUBMIT),
            status: Histogram::new(Self::STATUS),
            results: Histogram::new(Self::RESULTS),
            task_wait: Histogram::new(Self::TASK_WAIT),
            task_service: Histogram::new(Self::TASK_SERVICE),
            requests: 0,
            rejected: 0,
            jobs_accepted: 0,
            jobs_completed: 0,
            tasks_completed: 0,
            worker_panics: 0,
            workers_respawned: 0,
        }
    }

    /// The histograms in declaration order, for uniform reporting.
    pub fn histograms(&self) -> [&Histogram; 5] {
        [
            &self.submit,
            &self.status,
            &self.results,
            &self.task_wait,
            &self.task_service,
        ]
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Formats an optional statistic: the value, or `-` when the
/// histogram was empty and the statistic does not exist.
fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |n| n.to_string())
}

impl fmt::Display for ServiceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "requests={} rejected={} jobs_accepted={} jobs_completed={} tasks_completed={} \
             worker_panics={} workers_respawned={}",
            self.requests,
            self.rejected,
            self.jobs_accepted,
            self.jobs_completed,
            self.tasks_completed,
            self.worker_panics,
            self.workers_respawned
        )?;
        for (i, h) in self.histograms().iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "{}: n={} mean={:.1} min={} p50={} p95={} p99={} max={}",
                h.name(),
                h.samples(),
                h.mean(),
                opt(h.min()),
                opt(h.percentile(50.0)),
                opt(h.percentile(95.0)),
                opt(h.percentile(99.0)),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_counters_and_all_five_histograms() {
        let mut m = ServiceMetrics::new();
        m.requests = 3;
        m.rejected = 1;
        m.submit.record(120);
        let text = m.to_string();
        assert!(text.starts_with("requests=3 rejected=1"), "{text}");
        assert_eq!(text.lines().count(), 6);
        assert!(text.contains("http_submit_us: n=1"), "{text}");
        assert!(text.contains("task_service_us: n=0"), "{text}");
    }
}
