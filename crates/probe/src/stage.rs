//! Per-transaction stage accounting: where each request's cycles go.
//!
//! A *transaction* is one tracked request — a GPU load (SM issue to
//! data back at the SM) or a CPU direct-store push (store-buffer
//! enqueue to PutX-Ack). The runtime allocates a transaction id at the
//! start of each and calls into a [`StageTracker`] at every hand-off;
//! the tracker accrues the elapsed cycles into the stage the
//! transaction was *leaving*. Because each stage's interval ends
//! exactly where the next begins, the per-stage sums telescope: for
//! every completed transaction, the sum over stages equals the
//! end-to-end latency — cycle accounting with no residue.
//!
//! Like [`crate::LatencyReport`], the tracker runs unconditionally
//! (updates are a hash-map probe plus integer adds) and never feeds
//! back into timing, so it cannot perturb a simulation result.

/// Which request lifecycle a transaction (or stage) belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnPath {
    /// A GPU load: SM issue to data arriving back at the SM.
    GpuLoad,
    /// A CPU direct-store push: enqueue to PutX acknowledgement.
    Push,
}

impl TxnPath {
    /// Stable lower-case name used by the sinks and reports.
    pub fn name(self) -> &'static str {
        match self {
            TxnPath::GpuLoad => "gpu_load",
            TxnPath::Push => "push",
        }
    }
}

/// One stage of a transaction's lifecycle. The first eleven belong to
/// the GPU load path, the last three to the direct-store push path;
/// a transaction only ever visits stages of its own path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// SM issue, TLB walk and L1 lookup (the whole latency for an L1
    /// hit).
    SmL1,
    /// Request crossing the GPU-internal NoC toward an L2 slice.
    GpuNocReq,
    /// Waiting in the slice's slot queue plus the tag lookup.
    SliceQueue,
    /// Stalled because the slice's MSHR file was full.
    MshrStall,
    /// Waiting on an MSHR as a secondary (merged) miss.
    MshrWait,
    /// Coherence request crossing the CPU-GPU crossbar to the hub.
    CohReq,
    /// At the hub/directory: conflict queueing, lookup and probes.
    HubDir,
    /// Queued at a DRAM bank behind earlier accesses.
    DramQueue,
    /// DRAM bank actively servicing (row activate + burst).
    DramService,
    /// Data response crossing back to the GPU L2 slice.
    RespNoc,
    /// Fill at the slice and data return to the issuing SM.
    SliceToSm,
    /// Sitting in the CPU store buffer awaiting drain.
    SbWait,
    /// GetX + PutX crossing the direct network, including slot-retry
    /// queueing at the target slice.
    DirectNoc,
    /// Slice processing the PutX and the acknowledgement hop back.
    DirectAck,
}

impl Stage {
    /// Every stage, load path first, in pipeline order. Array order is
    /// the canonical serialization order for breakdowns.
    pub const ALL: [Stage; 14] = [
        Stage::SmL1,
        Stage::GpuNocReq,
        Stage::SliceQueue,
        Stage::MshrStall,
        Stage::MshrWait,
        Stage::CohReq,
        Stage::HubDir,
        Stage::DramQueue,
        Stage::DramService,
        Stage::RespNoc,
        Stage::SliceToSm,
        Stage::SbWait,
        Stage::DirectNoc,
        Stage::DirectAck,
    ];

    /// Number of stages ([`Stage::ALL`] length).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lower-case name used by the sinks and serialized forms.
    pub fn name(self) -> &'static str {
        match self {
            Stage::SmL1 => "sm_l1",
            Stage::GpuNocReq => "gpu_noc_req",
            Stage::SliceQueue => "slice_queue",
            Stage::MshrStall => "mshr_stall",
            Stage::MshrWait => "mshr_wait",
            Stage::CohReq => "coh_req",
            Stage::HubDir => "hub_dir",
            Stage::DramQueue => "dram_queue",
            Stage::DramService => "dram_service",
            Stage::RespNoc => "resp_noc",
            Stage::SliceToSm => "slice_to_sm",
            Stage::SbWait => "sb_wait",
            Stage::DirectNoc => "direct_noc",
            Stage::DirectAck => "direct_ack",
        }
    }

    /// Which lifecycle the stage belongs to.
    pub fn path(self) -> TxnPath {
        match self {
            Stage::SbWait | Stage::DirectNoc | Stage::DirectAck => TxnPath::Push,
            _ => TxnPath::GpuLoad,
        }
    }

    /// Position in [`Stage::ALL`], the canonical index for fixed-size
    /// per-stage arrays. `ALL` lists the variants in declaration
    /// order, so the discriminant is the index.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Aggregated cycle accounting over all completed transactions of a
/// run: per-stage cycle totals plus per-path counts and end-to-end
/// cycle sums. The per-path sums equal the sums of that path's stages
/// exactly (telescoping intervals, see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Total cycles accrued per stage, indexed by [`Stage::index`].
    pub cycles: [u64; Stage::COUNT],
    /// Completed GPU-load transactions.
    pub loads: u64,
    /// Summed end-to-end cycles of completed loads.
    pub load_cycles: u64,
    /// Completed direct-store push transactions.
    pub pushes: u64,
    /// Summed end-to-end cycles of completed pushes, counted from
    /// store-buffer *enqueue* (unlike `push_e2e`, which starts at
    /// drain).
    pub push_cycles: u64,
}

impl StageBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        StageBreakdown {
            cycles: [0; Stage::COUNT],
            loads: 0,
            load_cycles: 0,
            pushes: 0,
            push_cycles: 0,
        }
    }

    /// Cycles accrued in `stage`.
    pub fn stage_cycles(&self, stage: Stage) -> u64 {
        self.cycles[stage.index()]
    }

    /// Sum of stage cycles over one path. Equals `load_cycles` /
    /// `push_cycles` for any breakdown built from completed
    /// transactions only.
    pub fn path_stage_sum(&self, path: TxnPath) -> u64 {
        Stage::ALL
            .iter()
            .filter(|s| s.path() == path)
            .map(|&s| self.stage_cycles(s))
            .sum()
    }
}

impl Default for StageBreakdown {
    fn default() -> Self {
        Self::new()
    }
}

/// A transaction currently between `begin` and `finish`.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    /// Stage the transaction is currently in.
    stage: Stage,
    /// Cycle it entered the current stage.
    entered: u64,
    /// Cycle the transaction began (entered its first stage).
    begun: u64,
}

/// The live side of stage accounting: tracks in-flight transactions
/// and folds each completed one into a [`StageBreakdown`].
///
/// Determinism: the map is only ever probed by key and aggregated into
/// fixed arrays — iteration order is never observed — so results are
/// identical regardless of hasher or insertion history.
#[derive(Debug, Clone, Default)]
pub struct StageTracker {
    inflight: std::collections::HashMap<u64, Inflight>,
    breakdown: StageBreakdown,
    /// Runtime shed switch (`--probe-level minimal`): when set, every
    /// update is an early return and the breakdown stays empty.
    /// Inverted so `derive(Default)` yields an *enabled* tracker.
    disabled: bool,
}

impl StageTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns collection on or off (the `--probe-level` runtime
    /// switch). Disabling never perturbs simulated timing — updates
    /// were observation-only to begin with.
    pub fn set_enabled(&mut self, on: bool) {
        self.disabled = !on;
    }

    /// Whether collection is on.
    pub fn is_enabled(&self) -> bool {
        !self.disabled
    }

    /// Starts tracking `txn` in `stage` at `cycle`.
    pub fn begin(&mut self, txn: u64, stage: Stage, cycle: u64) {
        if self.disabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxStages);
        self.inflight.insert(
            txn,
            Inflight {
                stage,
                entered: cycle,
                begun: cycle,
            },
        );
    }

    /// Moves `txn` into `stage` at `cycle`, accruing the interval
    /// since the last hand-off into the stage it was leaving. Unknown
    /// transaction ids are ignored, so callers may pass ids for
    /// requests that are not tracked (e.g. GPU stores).
    pub fn advance(&mut self, txn: u64, stage: Stage, cycle: u64) {
        if self.disabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxStages);
        if let Some(f) = self.inflight.get_mut(&txn) {
            self.breakdown.cycles[f.stage.index()] += cycle.saturating_sub(f.entered);
            f.stage = stage;
            f.entered = cycle;
        }
    }

    /// Completes `txn` at `cycle`: accrues the final interval and
    /// folds the whole transaction into the breakdown. Unknown ids
    /// are ignored.
    pub fn finish(&mut self, txn: u64, cycle: u64) {
        if self.disabled {
            return;
        }
        let _tax = crate::prof::span(crate::prof::HostPhase::TaxStages);
        if let Some(f) = self.inflight.remove(&txn) {
            self.breakdown.cycles[f.stage.index()] += cycle.saturating_sub(f.entered);
            let total = cycle.saturating_sub(f.begun);
            match f.stage.path() {
                TxnPath::GpuLoad => {
                    self.breakdown.loads += 1;
                    self.breakdown.load_cycles += total;
                }
                TxnPath::Push => {
                    self.breakdown.pushes += 1;
                    self.breakdown.push_cycles += total;
                }
            }
        }
    }

    /// The aggregate so far (completed transactions only).
    pub fn breakdown(&self) -> &StageBreakdown {
        &self.breakdown
    }

    /// Number of transactions begun but not finished.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Snapshot of every in-flight transaction as `(txn, stage name,
    /// cycle it entered that stage)`, sorted by transaction id — the
    /// deterministic dump the protocol watchdog prints on abort.
    pub fn inflight_census(&self) -> Vec<(u64, &'static str, u64)> {
        let mut out: Vec<_> = self
            .inflight
            .iter()
            .map(|(&txn, f)| (txn, f.stage.name(), f.entered))
            .collect();
        out.sort_unstable_by_key(|&(txn, _, _)| txn);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_paths_and_indices_are_consistent() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Stage::SmL1.name(), "sm_l1");
        assert_eq!(Stage::SmL1.path(), TxnPath::GpuLoad);
        assert_eq!(Stage::SbWait.path(), TxnPath::Push);
        assert_eq!(Stage::COUNT, 14);
    }

    #[test]
    fn telescoping_sum_equals_end_to_end() {
        let mut t = StageTracker::new();
        t.begin(7, Stage::SmL1, 100);
        t.advance(7, Stage::GpuNocReq, 104);
        t.advance(7, Stage::SliceQueue, 110);
        t.advance(7, Stage::SliceToSm, 150);
        t.finish(7, 163);
        let b = t.breakdown();
        assert_eq!(b.stage_cycles(Stage::SmL1), 4);
        assert_eq!(b.stage_cycles(Stage::GpuNocReq), 6);
        assert_eq!(b.stage_cycles(Stage::SliceQueue), 40);
        assert_eq!(b.stage_cycles(Stage::SliceToSm), 13);
        assert_eq!(b.loads, 1);
        assert_eq!(b.load_cycles, 63);
        assert_eq!(b.path_stage_sum(TxnPath::GpuLoad), 63);
        assert_eq!(t.inflight(), 0);
    }

    #[test]
    fn unknown_and_revisited_transactions_are_safe() {
        let mut t = StageTracker::new();
        t.advance(99, Stage::HubDir, 10); // never begun: no-op
        t.finish(99, 20);
        assert_eq!(t.breakdown().loads, 0);

        // Re-entering a stage already visited accrues again.
        t.begin(1, Stage::SliceQueue, 0);
        t.advance(1, Stage::MshrStall, 5);
        t.advance(1, Stage::SliceQueue, 9);
        t.finish(1, 12);
        let b = t.breakdown();
        assert_eq!(b.stage_cycles(Stage::SliceQueue), 5 + 3);
        assert_eq!(b.stage_cycles(Stage::MshrStall), 4);
        assert_eq!(b.load_cycles, 12);
    }

    #[test]
    fn push_path_counts_separately() {
        let mut t = StageTracker::new();
        t.begin(2, Stage::SbWait, 1000);
        t.advance(2, Stage::DirectNoc, 1020);
        t.advance(2, Stage::DirectAck, 1030);
        t.finish(2, 1036);
        let b = t.breakdown();
        assert_eq!(b.pushes, 1);
        assert_eq!(b.push_cycles, 36);
        assert_eq!(b.loads, 0);
        assert_eq!(b.path_stage_sum(TxnPath::Push), 36);
    }
}
