//! Host-time self-profiling: where does the wall-clock go?
//!
//! Every other layer in this crate observes *simulated* time; this
//! module observes *host* time, so the event loop can be optimized
//! from measurement rather than guesswork (ROADMAP item 1) and the
//! cost of the always-on instrumentation — the "observability tax" —
//! is itself a first-class, reported number.
//!
//! The design is a scoped span profiler with thread-local
//! accumulators:
//!
//! - [`span`] returns a guard; the interval between construction and
//!   drop is attributed to one [`HostPhase`]. Spans nest: a child's
//!   total time is subtracted from its parent, so per-phase numbers
//!   are *self* (exclusive) time and their sum can never exceed the
//!   run's wall-clock.
//! - When profiling is disabled (the default), [`span`] is one
//!   relaxed atomic load and a branch — no clock read, no
//!   thread-local touch — so the simulator's default speed is
//!   unaffected.
//! - All state is thread-local. A simulation runs to completion on
//!   one thread (the runner's parallelism is across tasks, not within
//!   one), so [`run_start`]/[`take_profile`] bracket one run with no
//!   cross-thread synchronization at all.
//!
//! Host profiling never feeds back into simulated timing: enabling it
//! cannot change a single simulated cycle, only measure where the
//! host spends its own.
//!
//! The module also owns the runtime [`ProbeLevel`] switch that lets
//! `dsrun`/`dsserve` shed the optional observability layers
//! (`LineLens`, `StageTracker`) without recompiling.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::Instant;

/// One host-time bucket. The first seven are the simulator's hot
/// phases; the `Tax*` buckets isolate the cost of each observability
/// hook so the tax is measured, not estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostPhase {
    /// Popping the next event off the event queue.
    EventPop,
    /// Scheduling an event into the queue.
    EventPush,
    /// Cache tag/array lookups (CPU L2 access, GPU L2 slice demand).
    CacheLookup,
    /// Hammer protocol message handling at hub, CPU L2 and slices.
    Protocol,
    /// The direct-store push path (store-buffer drain, PutX at the
    /// slice, ack at the CPU, retry timeouts).
    PushPath,
    /// NoC send paths across all three networks.
    NocTick,
    /// DRAM bank timing (queue + service computation).
    DramTick,
    /// Observability tax: `StageTracker` begin/advance/finish.
    TaxStages,
    /// Observability tax: `LineLens` per-line event recording.
    TaxLens,
    /// Observability tax: the always-on latency histograms.
    TaxHistograms,
    /// Observability tax: pulse window sampling (snapshot + close +
    /// anomaly detection; the epoch series is a derived view over the
    /// same windows). The serialized name stays `tax_epochs` so older
    /// committed baselines keep parsing.
    TaxEpochs,
}

impl HostPhase {
    /// Every phase, hot path first, in canonical serialization order.
    pub const ALL: [HostPhase; 11] = [
        HostPhase::EventPop,
        HostPhase::EventPush,
        HostPhase::CacheLookup,
        HostPhase::Protocol,
        HostPhase::PushPath,
        HostPhase::NocTick,
        HostPhase::DramTick,
        HostPhase::TaxStages,
        HostPhase::TaxLens,
        HostPhase::TaxHistograms,
        HostPhase::TaxEpochs,
    ];

    /// Number of phases ([`HostPhase::ALL`] length).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable lower-case name used in serialized forms.
    pub fn name(self) -> &'static str {
        match self {
            HostPhase::EventPop => "event_pop",
            HostPhase::EventPush => "event_push",
            HostPhase::CacheLookup => "cache_lookup",
            HostPhase::Protocol => "protocol",
            HostPhase::PushPath => "push_path",
            HostPhase::NocTick => "noc_tick",
            HostPhase::DramTick => "dram_tick",
            HostPhase::TaxStages => "tax_stages",
            HostPhase::TaxLens => "tax_lens",
            HostPhase::TaxHistograms => "tax_histograms",
            HostPhase::TaxEpochs => "tax_epochs",
        }
    }

    /// Position in [`HostPhase::ALL`] (declaration order, so the
    /// discriminant is the index).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this bucket measures observability overhead rather
    /// than simulator work.
    pub fn is_tax(self) -> bool {
        matches!(
            self,
            HostPhase::TaxStages
                | HostPhase::TaxLens
                | HostPhase::TaxHistograms
                | HostPhase::TaxEpochs
        )
    }

    /// Looks a phase up by its serialized [`HostPhase::name`].
    pub fn from_name(name: &str) -> Option<HostPhase> {
        Self::ALL.iter().copied().find(|p| p.name() == name)
    }
}

/// Runtime switch for the optional observability layers. Ordered:
/// each level collects strictly more than the one below it. The
/// always-on latency histograms are part of the reported results and
/// stay on at every level; only *simulated-cycle* outputs are
/// level-invariant (bit-identical), observability aggregates
/// (stages, lens) are empty at levels that shed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProbeLevel {
    /// Sheds both `StageTracker` and `LineLens` collection.
    Minimal = 0,
    /// Sheds `LineLens`; keeps per-transaction stage accounting.
    Stages = 1,
    /// Everything on (the default).
    Full = 2,
}

impl ProbeLevel {
    /// All levels, cheapest first.
    pub const ALL: [ProbeLevel; 3] = [ProbeLevel::Minimal, ProbeLevel::Stages, ProbeLevel::Full];

    /// Stable lower-case name (the `--probe-level` operand).
    pub fn name(self) -> &'static str {
        match self {
            ProbeLevel::Minimal => "minimal",
            ProbeLevel::Stages => "stages",
            ProbeLevel::Full => "full",
        }
    }

    /// Parses a `--probe-level` operand.
    pub fn parse(s: &str) -> Option<ProbeLevel> {
        Self::ALL.iter().copied().find(|l| l.name() == s)
    }

    fn from_u8(v: u8) -> ProbeLevel {
        match v {
            0 => ProbeLevel::Minimal,
            1 => ProbeLevel::Stages,
            _ => ProbeLevel::Full,
        }
    }
}

impl fmt::Display for ProbeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Master switch for host profiling (process-global; off by default).
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Process-global probe level (default [`ProbeLevel::Full`]).
static LEVEL: AtomicU8 = AtomicU8::new(ProbeLevel::Full as u8);

/// Turns host profiling on or off process-wide. Flip only between
/// runs: a span opened while enabled must drop while still enabled
/// to be counted (toggling mid-run loses, never corrupts, samples).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether host profiling is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the process-global probe level. Systems read it once at
/// construction; changing it never affects a run already built.
pub fn set_level(level: ProbeLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The process-global probe level.
pub fn level() -> ProbeLevel {
    ProbeLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// Per-thread accumulator state.
struct ProfState {
    /// Exclusive (self) nanoseconds per phase.
    self_nanos: [u64; HostPhase::COUNT],
    /// Span count per phase.
    counts: [u64; HostPhase::COUNT],
    /// Open spans: `(phase index, child nanos so far)`.
    stack: Vec<(usize, u64)>,
    /// Wall-clock anchor stamped by [`run_start`].
    run_started: Option<Instant>,
}

impl ProfState {
    const fn new() -> Self {
        ProfState {
            self_nanos: [0; HostPhase::COUNT],
            counts: [0; HostPhase::COUNT],
            stack: Vec::new(),
            run_started: None,
        }
    }
}

thread_local! {
    static STATE: RefCell<ProfState> = const { RefCell::new(ProfState::new()) };
}

/// An open span; dropping it attributes the elapsed interval to the
/// phase given to [`span`]. Nested spans subtract their total from
/// the parent's self time.
#[must_use = "a span measures the interval until it is dropped"]
pub struct Span {
    /// `None` when profiling is disabled — the guard is then inert
    /// and construction never read the clock.
    start: Option<Instant>,
}

/// Opens a span over `phase`. When profiling is disabled this is one
/// relaxed load and a branch.
#[inline]
pub fn span(phase: HostPhase) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span { start: None };
    }
    STATE.with(|s| s.borrow_mut().stack.push((phase.index(), 0)));
    Span {
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let total = start.elapsed().as_nanos() as u64;
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            // The stack can only be empty if `run_start` reset state
            // while this span was open (a misuse); drop the sample.
            let Some((idx, child)) = st.stack.pop() else {
                return;
            };
            st.self_nanos[idx] += total.saturating_sub(child);
            st.counts[idx] += 1;
            if let Some(parent) = st.stack.last_mut() {
                parent.1 += total;
            }
        });
    }
}

/// Resets this thread's accumulators and stamps the wall-clock
/// anchor. Call at the top of each simulation run.
pub fn run_start() {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        *st = ProfState::new();
        st.run_started = Some(Instant::now());
    });
}

/// Harvests this thread's profile since [`run_start`], resetting the
/// accumulators. Wall-clock is measured here, so call it as the last
/// step of the run being measured.
pub fn take_profile() -> HostProfile {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let wall_nanos = st
            .run_started
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let profile = HostProfile {
            wall_nanos,
            self_nanos: st.self_nanos,
            counts: st.counts,
        };
        *st = ProfState::new();
        profile
    })
}

/// One run's host-time profile: wall-clock plus per-phase exclusive
/// time and span counts, indexed by [`HostPhase::index`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HostProfile {
    /// Wall-clock nanoseconds between [`run_start`] and
    /// [`take_profile`].
    pub wall_nanos: u64,
    /// Exclusive (self) nanoseconds per phase.
    pub self_nanos: [u64; HostPhase::COUNT],
    /// Number of spans per phase.
    pub counts: [u64; HostPhase::COUNT],
}

impl HostProfile {
    /// Self nanoseconds attributed to `phase`.
    pub fn phase_nanos(&self, phase: HostPhase) -> u64 {
        self.self_nanos[phase.index()]
    }

    /// Span count for `phase`.
    pub fn phase_count(&self, phase: HostPhase) -> u64 {
        self.counts[phase.index()]
    }

    /// Sum of self time over every phase. By construction (nesting
    /// subtracts child time) this can never exceed the wall-clock on
    /// a correctly bracketed run.
    pub fn total_self_nanos(&self) -> u64 {
        self.self_nanos.iter().sum()
    }

    /// Sum of self time over the `Tax*` buckets — the observability
    /// tax.
    pub fn tax_nanos(&self) -> u64 {
        HostPhase::ALL
            .iter()
            .filter(|p| p.is_tax())
            .map(|&p| self.phase_nanos(p))
            .sum()
    }

    /// Wall-clock not attributed to any span (dispatch plumbing,
    /// allocation, everything unmeasured).
    pub fn untracked_nanos(&self) -> u64 {
        self.wall_nanos.saturating_sub(self.total_self_nanos())
    }

    /// Folded-stack lines (`inferno` / speedscope collapsed format):
    /// one line per non-zero phase, tax buckets nested under a `tax`
    /// frame, plus an `untracked` frame so the stack sums to
    /// wall-clock.
    pub fn folded(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in HostPhase::ALL {
            let nanos = self.phase_nanos(p);
            if nanos == 0 {
                continue;
            }
            if p.is_tax() {
                out.push(format!("sim;tax;{} {}", p.name(), nanos));
            } else {
                out.push(format!("sim;{} {}", p.name(), nanos));
            }
        }
        let untracked = self.untracked_nanos();
        if untracked > 0 {
            out.push(format!("sim;untracked {untracked}"));
        }
        out
    }

    /// Validates the profile's internal invariants: per-phase sums
    /// must not exceed wall-clock, and no phase may have time without
    /// spans.
    ///
    /// # Errors
    ///
    /// A message naming the violated invariant.
    pub fn check(&self) -> Result<(), String> {
        let total = self.total_self_nanos();
        if total > self.wall_nanos {
            return Err(format!(
                "phase self-time sum {total} ns exceeds wall-clock {} ns",
                self.wall_nanos
            ));
        }
        for p in HostPhase::ALL {
            if self.phase_nanos(p) > 0 && self.phase_count(p) == 0 {
                return Err(format!("phase {} has time but zero spans", p.name()));
            }
        }
        Ok(())
    }

    /// Merges another profile into this one (summing wall-clock and
    /// every bucket) — aggregation across the runs of a catalog.
    pub fn merge(&mut self, other: &HostProfile) {
        self.wall_nanos += other.wall_nanos;
        for i in 0..HostPhase::COUNT {
            self.self_nanos[i] += other.self_nanos[i];
            self.counts[i] += other.counts[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_and_indices_are_consistent() {
        for (i, p) in HostPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert_eq!(HostPhase::from_name(p.name()), Some(*p));
        }
        assert_eq!(HostPhase::COUNT, 11);
        assert!(HostPhase::TaxLens.is_tax());
        assert!(!HostPhase::EventPop.is_tax());
    }

    #[test]
    fn probe_level_parses_and_orders() {
        assert_eq!(ProbeLevel::parse("full"), Some(ProbeLevel::Full));
        assert_eq!(ProbeLevel::parse("stages"), Some(ProbeLevel::Stages));
        assert_eq!(ProbeLevel::parse("minimal"), Some(ProbeLevel::Minimal));
        assert_eq!(ProbeLevel::parse("FULL"), None);
        assert!(ProbeLevel::Minimal < ProbeLevel::Stages);
        assert!(ProbeLevel::Stages < ProbeLevel::Full);
        assert_eq!(ProbeLevel::Full.to_string(), "full");
    }

    #[test]
    fn disabled_spans_record_nothing() {
        // Profiling is off by default; state must stay untouched so
        // the default-path cost is just the branch.
        run_start();
        {
            let _s = span(HostPhase::EventPop);
        }
        let p = take_profile();
        assert_eq!(p.total_self_nanos(), 0);
        assert_eq!(p.phase_count(HostPhase::EventPop), 0);
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        set_enabled(true);
        run_start();
        {
            let _outer = span(HostPhase::Protocol);
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span(HostPhase::TaxLens);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let p = take_profile();
        set_enabled(false);
        assert_eq!(p.phase_count(HostPhase::Protocol), 1);
        assert_eq!(p.phase_count(HostPhase::TaxLens), 1);
        assert!(p.phase_nanos(HostPhase::Protocol) > 0);
        assert!(p.phase_nanos(HostPhase::TaxLens) > 0);
        // Self-time: the parent must not also carry the child's time.
        // Sleeps are 2ms each; parent self must be well under the
        // combined 4ms.
        assert!(p.phase_nanos(HostPhase::Protocol) < 3_500_000);
        p.check().expect("invariants hold");
        assert!(p.total_self_nanos() <= p.wall_nanos);
    }

    #[test]
    fn folded_output_sums_to_wall() {
        let mut p = HostProfile {
            wall_nanos: 100,
            ..HostProfile::default()
        };
        p.self_nanos[HostPhase::EventPop.index()] = 40;
        p.counts[HostPhase::EventPop.index()] = 4;
        p.self_nanos[HostPhase::TaxStages.index()] = 10;
        p.counts[HostPhase::TaxStages.index()] = 1;
        let folded = p.folded();
        assert_eq!(
            folded,
            vec![
                "sim;event_pop 40".to_string(),
                "sim;tax;tax_stages 10".to_string(),
                "sim;untracked 50".to_string(),
            ]
        );
        let sum: u64 = folded
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, p.wall_nanos);
    }

    #[test]
    fn check_flags_violations() {
        let mut p = HostProfile {
            wall_nanos: 10,
            ..HostProfile::default()
        };
        p.self_nanos[0] = 20;
        p.counts[0] = 1;
        assert!(p.check().is_err());
        p.wall_nanos = 30;
        p.counts[0] = 0;
        assert!(p.check().is_err());
        p.counts[0] = 1;
        assert!(p.check().is_ok());
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = HostProfile {
            wall_nanos: 5,
            ..HostProfile::default()
        };
        a.self_nanos[1] = 3;
        a.counts[1] = 2;
        let mut b = HostProfile {
            wall_nanos: 7,
            ..HostProfile::default()
        };
        b.self_nanos[1] = 4;
        b.counts[1] = 1;
        a.merge(&b);
        assert_eq!(a.wall_nanos, 12);
        assert_eq!(a.self_nanos[1], 7);
        assert_eq!(a.counts[1], 3);
    }
}
