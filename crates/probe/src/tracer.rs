//! The tracer trait and its two stock implementations.

use crate::TraceEvent;

/// A consumer of [`TraceEvent`]s.
///
/// The simulator is *generic* over its tracer, so the choice is made
/// at compile time: with [`NullTracer`] (the default) the associated
/// `ENABLED` constant is `false` and every emission site — including
/// the argument computation guarded behind `ENABLED` — is dead code
/// the optimizer removes. Tracing a run costs nothing unless you ask
/// for it.
pub trait Tracer {
    /// Whether this tracer wants events at all. Emission sites check
    /// this constant before building the event, so a disabled tracer
    /// has no hot-path cost.
    const ENABLED: bool = true;

    /// Consumes one event. Called only when [`Tracer::ENABLED`] is
    /// true (guarded at the emission site).
    fn record(&mut self, event: TraceEvent);
}

/// The zero-overhead default: discards everything at compile time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Collects every event in memory, in emission order, for the sinks.
///
/// ```
/// use ds_probe::{BufferTracer, Component, TraceEvent, TraceKind, Tracer};
///
/// let mut t = BufferTracer::new();
/// t.record(TraceEvent {
///     cycle: 7,
///     component: Component::Hub,
///     line: Some(3),
///     kind: TraceKind::HubStart { write: true },
/// });
/// assert_eq!(t.events().len(), 1);
/// assert_eq!(t.events()[0].cycle, 7);
/// ```
#[derive(Debug, Default, Clone)]
pub struct BufferTracer {
    events: Vec<TraceEvent>,
}

impl BufferTracer {
    /// An empty buffer.
    pub fn new() -> Self {
        BufferTracer::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the buffer, yielding the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl Tracer for BufferTracer {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Component, TraceKind};

    #[test]
    fn null_tracer_is_disabled_and_buffer_enabled() {
        fn enabled<T: Tracer>() -> bool {
            T::ENABLED
        }
        assert!(!enabled::<NullTracer>());
        assert!(enabled::<BufferTracer>());
    }

    #[test]
    fn buffer_preserves_order() {
        let mut t = BufferTracer::new();
        for cycle in [5, 1, 9] {
            t.record(TraceEvent {
                cycle,
                component: Component::Cpu,
                line: None,
                kind: TraceKind::TlbMiss,
            });
        }
        let cycles: Vec<u64> = t.into_events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![5, 1, 9], "emission order, not sorted");
    }
}
