//! The typed trace record: what happened, where, and when.

use crate::pulse::PulseAnomalyKind;
use crate::stage::Stage;

/// Which network a [`Component::Net`] event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetId {
    /// The MESI/Hammer coherence crossbar (CPU L2 ↔ hub ↔ GPU L2).
    Coherence,
    /// The dedicated direct-store push network.
    Direct,
    /// The GPU-internal SM ↔ L2-slice crossbar.
    GpuInternal,
}

impl NetId {
    /// Stable lower-case name used by the sinks.
    pub fn name(self) -> &'static str {
        match self {
            NetId::Coherence => "coh",
            NetId::Direct => "direct",
            NetId::GpuInternal => "gpu",
        }
    }
}

/// The modelled component an event originates from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The in-order CPU core.
    Cpu,
    /// The CPU store buffer.
    StoreBuffer,
    /// The CPU-side TLB.
    CpuTlb,
    /// A per-SM GPU TLB.
    GpuTlb {
        /// SM index.
        sm: u16,
    },
    /// The CPU L1 data cache.
    CpuL1,
    /// The CPU L2 (coherent).
    CpuL2,
    /// A per-SM GPU L1.
    GpuL1 {
        /// SM index.
        sm: u16,
    },
    /// A GPU L2 slice (coherent).
    GpuL2 {
        /// Slice index.
        slice: u8,
    },
    /// A streaming multiprocessor.
    Sm {
        /// SM index.
        sm: u16,
    },
    /// The coherence hub / directory at the memory controller.
    Hub,
    /// A DRAM bank.
    DramBank {
        /// Bank index.
        bank: u16,
    },
    /// A network crossbar (see [`NetId`]).
    Net {
        /// Which crossbar.
        net: NetId,
    },
    /// Kernel lifecycle events (launch/retire).
    Kernel,
    /// Transaction-lifecycle events (stage marks), not tied to one
    /// physical component.
    Txn,
    /// The pulse sampler (window-close anomaly annotations), not tied
    /// to one physical component.
    Pulse,
}

impl Component {
    /// Stable lower-case component name used by the sinks.
    pub fn name(self) -> &'static str {
        match self {
            Component::Cpu => "cpu",
            Component::StoreBuffer => "store_buffer",
            Component::CpuTlb => "cpu_tlb",
            Component::GpuTlb { .. } => "gpu_tlb",
            Component::CpuL1 => "cpu_l1",
            Component::CpuL2 => "cpu_l2",
            Component::GpuL1 { .. } => "gpu_l1",
            Component::GpuL2 { .. } => "gpu_l2",
            Component::Sm { .. } => "sm",
            Component::Hub => "hub",
            Component::DramBank { .. } => "dram",
            Component::Net { net } => match net {
                NetId::Coherence => "net_coh",
                NetId::Direct => "net_direct",
                NetId::GpuInternal => "net_gpu",
            },
            Component::Kernel => "kernel",
            Component::Txn => "txn",
            Component::Pulse => "pulse",
        }
    }

    /// The sub-unit index (SM, slice, bank) when the component is
    /// replicated.
    pub fn unit(self) -> Option<u64> {
        match self {
            Component::GpuTlb { sm } | Component::GpuL1 { sm } | Component::Sm { sm } => {
                Some(u64::from(sm))
            }
            Component::GpuL2 { slice } => Some(u64::from(slice)),
            Component::DramBank { bank } => Some(u64::from(bank)),
            _ => None,
        }
    }
}

/// What happened. Interval-shaped kinds (network serialization, DRAM
/// bank busy) carry their endpoints so the Chrome sink can render
/// occupancy tracks without re-deriving timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Demand hit; `push_hit` marks a hit on a line installed by a
    /// direct-store push and not yet re-fetched.
    Hit {
        /// Hit on a pushed line.
        push_hit: bool,
    },
    /// Demand miss.
    Miss {
        /// The access was a store.
        write: bool,
        /// First-ever access to the line (cold miss).
        compulsory: bool,
    },
    /// A direct-store push installed this line in a GPU L2 slice.
    PushFill,
    /// A push invalidated an older pushed copy of the same line.
    PushOverwrite,
    /// A push found its set full of pushed lines and bypassed to DRAM.
    PushBypass,
    /// The store buffer released one entry toward memory.
    SbDrain {
        /// Entry drains over the direct network (vs. coherent L2).
        direct: bool,
    },
    /// A direct-store push fully completed (PutX acknowledged).
    PushDone {
        /// Cycles from store-buffer drain to acknowledgement.
        latency: u64,
    },
    /// Address translation missed the TLB (page-walk penalty charged).
    TlbMiss,
    /// One message traversed a crossbar link. `start..depart` is the
    /// serialization interval on the link; `arrive` adds propagation.
    NetMsg {
        /// Source port index.
        src: u8,
        /// Destination port index.
        dst: u8,
        /// Carries a full cache line (vs. control-sized).
        data: bool,
        /// Cycle serialization began.
        start: u64,
        /// Cycle the tail flit left the link.
        depart: u64,
        /// Cycle the message reaches the destination.
        arrive: u64,
    },
    /// One DRAM access occupied its bank for `start..done`.
    DramAccess {
        /// The access was a write.
        write: bool,
        /// The row buffer already held the row.
        row_hit: bool,
        /// Cycle the bank started servicing.
        start: u64,
        /// Cycle the data burst completed.
        done: u64,
    },
    /// The hub began a coherence transaction.
    HubStart {
        /// The request was a GetX (vs. GetS).
        write: bool,
    },
    /// The hub retired a coherence transaction (unblock received).
    HubDone {
        /// Cycles from request arrival to unblock.
        latency: u64,
    },
    /// A kernel began executing on the SMs.
    KernelBegin {
        /// Kernel sequence number.
        kernel: u32,
    },
    /// A kernel retired (all warps done).
    KernelEnd {
        /// Kernel sequence number.
        kernel: u32,
    },
    /// A GPU load's data arrived back at its SM.
    LoadDone {
        /// Warp index within the kernel.
        warp: u32,
        /// Load-to-use latency in cycles.
        latency: u64,
    },
    /// A tracked transaction entered `stage` (leaving its previous
    /// stage at this cycle).
    StageMark {
        /// Transaction id.
        txn: u64,
        /// Stage entered.
        stage: Stage,
    },
    /// A tracked transaction completed.
    TxnDone {
        /// Transaction id.
        txn: u64,
    },
    /// A pulse anomaly detector fired on a closed sampling window.
    /// Emitted the moment the window closes, so an attached flight
    /// recorder retains the precursor even if the run later aborts.
    PulseAnomaly {
        /// Which detector fired.
        anomaly: PulseAnomalyKind,
        /// First cycle of the offending window.
        start: u64,
        /// One past the last cycle of the offending window.
        end: u64,
        /// The observed value that crossed the threshold.
        value: u64,
        /// The threshold it crossed.
        threshold: u64,
    },
}

impl TraceKind {
    /// Stable lower-case kind name used by the sinks.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Hit { .. } => "hit",
            TraceKind::Miss { .. } => "miss",
            TraceKind::PushFill => "push_fill",
            TraceKind::PushOverwrite => "push_overwrite",
            TraceKind::PushBypass => "push_bypass",
            TraceKind::SbDrain { .. } => "sb_drain",
            TraceKind::PushDone { .. } => "push_done",
            TraceKind::TlbMiss => "tlb_miss",
            TraceKind::NetMsg { .. } => "net_msg",
            TraceKind::DramAccess { .. } => "dram_access",
            TraceKind::HubStart { .. } => "hub_start",
            TraceKind::HubDone { .. } => "hub_done",
            TraceKind::KernelBegin { .. } => "kernel_begin",
            TraceKind::KernelEnd { .. } => "kernel_end",
            TraceKind::LoadDone { .. } => "load_done",
            TraceKind::StageMark { .. } => "stage_mark",
            TraceKind::TxnDone { .. } => "txn_done",
            TraceKind::PulseAnomaly { .. } => "pulse_anomaly",
        }
    }
}

/// One structured trace record. `Copy` and allocation-free by design:
/// recording an event is a handful of word moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle the event was recorded at.
    pub cycle: u64,
    /// Originating component.
    pub component: Component,
    /// Cache-line index the event concerns, when there is one.
    pub line: Option<u64>,
    /// What happened.
    pub kind: TraceKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_units_extracted() {
        assert_eq!(Component::GpuL2 { slice: 2 }.name(), "gpu_l2");
        assert_eq!(Component::GpuL2 { slice: 2 }.unit(), Some(2));
        assert_eq!(Component::Hub.unit(), None);
        assert_eq!(Component::Net { net: NetId::Direct }.name(), "net_direct");
        assert_eq!(TraceKind::PushFill.name(), "push_fill");
        assert_eq!(NetId::GpuInternal.name(), "gpu");
    }
}
