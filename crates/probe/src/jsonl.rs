//! The JSONL sink: one JSON object per event, one event per line.
//!
//! The format is deliberately flat and stable — fixed key order,
//! integers and booleans only — so traces diff cleanly and the
//! determinism guarantee ("same run, same bytes") is testable at the
//! byte level. Detail fields of the event kind are flattened into the
//! top-level object.

use std::fmt::Write;

use crate::{TraceEvent, TraceKind};

/// Renders one event as a single JSON line (no trailing newline).
pub fn render_event(e: &TraceEvent) -> String {
    let mut s = String::with_capacity(96);
    write!(
        s,
        "{{\"cycle\":{},\"component\":\"{}\"",
        e.cycle,
        e.component.name()
    )
    .unwrap();
    if let Some(unit) = e.component.unit() {
        write!(s, ",\"unit\":{unit}").unwrap();
    }
    write!(s, ",\"kind\":\"{}\"", e.kind.name()).unwrap();
    if let Some(line) = e.line {
        write!(s, ",\"line\":{line}").unwrap();
    }
    match e.kind {
        TraceKind::Hit { push_hit } => write!(s, ",\"push_hit\":{push_hit}").unwrap(),
        TraceKind::Miss { write, compulsory } => {
            write!(s, ",\"write\":{write},\"compulsory\":{compulsory}").unwrap()
        }
        TraceKind::PushFill | TraceKind::PushOverwrite | TraceKind::PushBypass => {}
        TraceKind::SbDrain { direct } => write!(s, ",\"direct\":{direct}").unwrap(),
        TraceKind::PushDone { latency } => write!(s, ",\"latency\":{latency}").unwrap(),
        TraceKind::TlbMiss => {}
        TraceKind::NetMsg {
            src,
            dst,
            data,
            start,
            depart,
            arrive,
        } => write!(
            s,
            ",\"src\":{src},\"dst\":{dst},\"data\":{data},\"start\":{start},\
\"depart\":{depart},\"arrive\":{arrive}"
        )
        .unwrap(),
        TraceKind::DramAccess {
            write,
            row_hit,
            start,
            done,
        } => write!(
            s,
            ",\"write\":{write},\"row_hit\":{row_hit},\"start\":{start},\"done\":{done}"
        )
        .unwrap(),
        TraceKind::HubStart { write } => write!(s, ",\"write\":{write}").unwrap(),
        TraceKind::HubDone { latency } => write!(s, ",\"latency\":{latency}").unwrap(),
        TraceKind::KernelBegin { kernel } | TraceKind::KernelEnd { kernel } => {
            write!(s, ",\"kernel\":{kernel}").unwrap()
        }
        TraceKind::LoadDone { warp, latency } => {
            write!(s, ",\"warp\":{warp},\"latency\":{latency}").unwrap()
        }
        TraceKind::StageMark { txn, stage } => {
            write!(s, ",\"txn\":{txn},\"stage\":\"{}\"", stage.name()).unwrap()
        }
        TraceKind::TxnDone { txn } => write!(s, ",\"txn\":{txn}").unwrap(),
        TraceKind::PulseAnomaly {
            anomaly,
            start,
            end,
            value,
            threshold,
        } => write!(
            s,
            ",\"anomaly\":\"{}\",\"start\":{start},\"end\":{end},\"value\":{value},\
\"threshold\":{threshold}",
            anomaly.name()
        )
        .unwrap(),
    }
    s.push('}');
    s
}

/// Renders a whole trace as JSONL: one object per line, trailing
/// newline after the last.
pub fn render(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        out.push_str(&render_event(e));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Component, NetId};

    #[test]
    fn lines_are_flat_json_objects_with_stable_keys() {
        let events = [
            TraceEvent {
                cycle: 12,
                component: Component::GpuL2 { slice: 1 },
                line: Some(99),
                kind: TraceKind::Hit { push_hit: true },
            },
            TraceEvent {
                cycle: 15,
                component: Component::Net { net: NetId::Direct },
                line: Some(99),
                kind: TraceKind::NetMsg {
                    src: 4,
                    dst: 1,
                    data: true,
                    start: 15,
                    depart: 17,
                    arrive: 21,
                },
            },
        ];
        let text = render(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            r#"{"cycle":12,"component":"gpu_l2","unit":1,"kind":"hit","line":99,"push_hit":true}"#
        );
        assert_eq!(
            lines[1],
            r#"{"cycle":15,"component":"net_direct","kind":"net_msg","line":99,"src":4,"dst":1,"data":true,"start":15,"depart":17,"arrive":21}"#
        );
        assert!(text.ends_with('\n'));
    }
}
