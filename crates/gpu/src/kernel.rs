//! Kernel traces: the warp-granular memory-operation IR.

use ds_mem::{VirtAddr, LINE_BYTES};

/// One warp-level operation.
///
/// Memory operations are expressed at coalesced line granularity: a
/// fully coalesced warp load is one line; a strided access pattern
/// expands to several (`count` lines `stride_lines` apart). The
/// [`coalesce`] helper produces these from per-thread element
/// addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpOp {
    /// A coalesced global-memory load touching `count` lines starting
    /// at the line containing `base`, each `stride_lines` lines apart.
    GlobalLoad {
        /// First accessed address.
        base: VirtAddr,
        /// Number of distinct lines.
        count: u16,
        /// Distance between consecutive lines, in lines.
        stride_lines: u32,
    },
    /// A coalesced global-memory store with the same shape.
    GlobalStore {
        /// First accessed address.
        base: VirtAddr,
        /// Number of distinct lines.
        count: u16,
        /// Distance between consecutive lines, in lines.
        stride_lines: u32,
    },
    /// `count` accesses to the SM's software-managed shared memory
    /// (fixed low latency, never reaches the cache hierarchy).
    Shared {
        /// Number of shared-memory accesses.
        count: u16,
    },
    /// `cycles` of arithmetic.
    Compute(u32),
}

impl WarpOp {
    /// A fully coalesced (unit-stride) load of `count` consecutive
    /// lines.
    pub fn global_load(base: VirtAddr, count: u16) -> Self {
        WarpOp::GlobalLoad {
            base,
            count,
            stride_lines: 1,
        }
    }

    /// A fully coalesced (unit-stride) store of `count` consecutive
    /// lines.
    pub fn global_store(base: VirtAddr, count: u16) -> Self {
        WarpOp::GlobalStore {
            base,
            count,
            stride_lines: 1,
        }
    }

    /// The virtual line-base addresses this operation touches, in
    /// order; empty for non-global operations.
    pub fn touched_lines(&self) -> Vec<VirtAddr> {
        match *self {
            WarpOp::GlobalLoad {
                base,
                count,
                stride_lines,
            }
            | WarpOp::GlobalStore {
                base,
                count,
                stride_lines,
            } => {
                let aligned = base.as_u64() / LINE_BYTES * LINE_BYTES;
                (0..u64::from(count))
                    .map(|i| {
                        VirtAddr::new(aligned + i * u64::from(stride_lines.max(1)) * LINE_BYTES)
                    })
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    /// Whether this is a global memory operation.
    pub fn is_global(&self) -> bool {
        matches!(self, WarpOp::GlobalLoad { .. } | WarpOp::GlobalStore { .. })
    }
}

/// Collapses per-thread element addresses into the unique lines the
/// hardware coalescer would issue, preserving first-touch order.
///
/// # Examples
///
/// Thirty-two threads reading consecutive 4-byte elements coalesce
/// into a single 128-byte line access:
///
/// ```
/// use ds_gpu::coalesce;
/// use ds_mem::VirtAddr;
///
/// let per_thread = (0..32).map(|t| VirtAddr::new(t * 4));
/// assert_eq!(coalesce(per_thread).len(), 1);
///
/// let strided = (0..32).map(|t| VirtAddr::new(t * 128));
/// assert_eq!(coalesce(strided).len(), 32);
/// ```
pub fn coalesce<I: IntoIterator<Item = VirtAddr>>(addrs: I) -> Vec<VirtAddr> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for a in addrs {
        let line = VirtAddr::new(a.as_u64() / LINE_BYTES * LINE_BYTES);
        if seen.insert(line) {
            out.push(line);
        }
    }
    out
}

/// A complete kernel: one operation list per warp.
///
/// Grids are flattened at generation time — thread-block structure only
/// matters to the simulator through which warps share an SM, and warp
/// assignment is handled by the dispatcher in `ds-core`.
#[derive(Debug, Clone, Default)]
pub struct KernelTrace {
    name: String,
    warps: Vec<Vec<WarpOp>>,
}

impl KernelTrace {
    /// Creates an empty kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelTrace {
            name: name.into(),
            warps: Vec::new(),
        }
    }

    /// The kernel's name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a warp with the given operation list; returns its index.
    pub fn push_warp(&mut self, ops: Vec<WarpOp>) -> usize {
        self.warps.push(ops);
        self.warps.len() - 1
    }

    /// Number of warps.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }

    /// The operation list of warp `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    pub fn warp_ops(&self, w: usize) -> &[WarpOp] {
        &self.warps[w]
    }

    /// Total operations across all warps.
    pub fn total_ops(&self) -> usize {
        self.warps.iter().map(Vec::len).sum()
    }

    /// Total global-memory line touches across all warps (an upper
    /// bound on L1 accesses).
    pub fn total_global_lines(&self) -> u64 {
        self.warps
            .iter()
            .flatten()
            .filter_map(|op| match op {
                WarpOp::GlobalLoad { count, .. } | WarpOp::GlobalStore { count, .. } => {
                    Some(u64::from(*count))
                }
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touched_lines_are_aligned_and_strided() {
        let op = WarpOp::GlobalLoad {
            base: VirtAddr::new(130),
            count: 3,
            stride_lines: 2,
        };
        assert_eq!(
            op.touched_lines(),
            vec![
                VirtAddr::new(128),
                VirtAddr::new(128 + 256),
                VirtAddr::new(128 + 512)
            ]
        );
    }

    #[test]
    fn zero_stride_is_clamped() {
        let op = WarpOp::GlobalLoad {
            base: VirtAddr::new(0),
            count: 2,
            stride_lines: 0,
        };
        assert_eq!(
            op.touched_lines(),
            vec![VirtAddr::new(0), VirtAddr::new(128)]
        );
    }

    #[test]
    fn non_global_ops_touch_nothing() {
        assert!(WarpOp::Compute(4).touched_lines().is_empty());
        assert!(WarpOp::Shared { count: 8 }.touched_lines().is_empty());
        assert!(!WarpOp::Shared { count: 8 }.is_global());
        assert!(WarpOp::global_store(VirtAddr::new(0), 1).is_global());
    }

    #[test]
    fn coalesce_dedups_and_preserves_order() {
        let addrs = [300u64, 4, 260, 130, 0].map(VirtAddr::new);
        assert_eq!(
            coalesce(addrs),
            vec![VirtAddr::new(256), VirtAddr::new(0), VirtAddr::new(128)]
        );
    }

    #[test]
    fn kernel_accounting() {
        let mut k = KernelTrace::new("k");
        k.push_warp(vec![
            WarpOp::global_load(VirtAddr::new(0), 2),
            WarpOp::Compute(1),
        ]);
        k.push_warp(vec![WarpOp::global_store(VirtAddr::new(0), 1)]);
        assert_eq!(k.warp_count(), 2);
        assert_eq!(k.total_ops(), 3);
        assert_eq!(k.total_global_lines(), 3);
        assert_eq!(k.warp_ops(1).len(), 1);
        assert_eq!(k.name(), "k");
    }
}
