//! # ds-gpu — the GPU side of the integrated chip
//!
//! Models the paper's Table I GPU: 16 Fermi-like SMs with 32 lanes,
//! per-SM L1 caches (16 KB, 4-way, plus 48 KB software-managed shared
//! memory) and a shared, sliced L2. The coherent L2-slice controllers
//! live in `ds-core` next to the protocol; this crate provides the
//! structures beneath them:
//!
//! * [`KernelTrace`] / [`WarpOp`] — the warp-granular memory-operation
//!   IR that workload generators compile kernels into,
//! * [`coalesce`] — the memory coalescer collapsing per-thread element
//!   accesses into unique line accesses,
//! * [`Sm`] — a streaming multiprocessor: warp contexts, loose
//!   round-robin issue, latency hiding by switching among ready warps,
//! * [`GpuL1`] — the non-coherent write-through per-SM L1 that is
//!   flash-invalidated at kernel launch (paper §III.A).
//!
//! # Examples
//!
//! A one-warp kernel that loads two lines and computes:
//!
//! ```
//! use ds_gpu::{KernelTrace, Sm, SmIssue, WarpOp};
//! use ds_mem::VirtAddr;
//! use ds_sim::Cycle;
//!
//! let mut k = KernelTrace::new("demo");
//! k.push_warp(vec![
//!     WarpOp::global_load(VirtAddr::new(0), 2),
//!     WarpOp::Compute(10),
//! ]);
//! let mut sm = Sm::new(0, 48);
//! sm.assign(&k, 0..1);
//! let SmIssue { warp, op } = sm.issue(Cycle::ZERO).expect("warp ready");
//! assert_eq!(warp, 0);
//! assert!(matches!(op, WarpOp::GlobalLoad { .. }));
//! ```

pub mod kernel;
pub mod l1;
pub mod sm;

pub use kernel::{coalesce, KernelTrace, WarpOp};
pub use l1::{GpuL1, L1Valid};
pub use sm::{Sm, SmIssue, SmStats};
