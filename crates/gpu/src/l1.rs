//! The per-SM GPU L1 data cache.
//!
//! Per gem5-gpu's MOESI_hammer configuration (and the paper's §III.A),
//! GPU L1s are *not* kept hardware-coherent: they are write-through
//! (dirty data written through on stores) and flash-invalidated when a
//! kernel starts executing, which is how software re-establishes
//! coherence at kernel boundaries.

use ds_cache::{CacheArray, CacheGeometry, CacheStats, LineState, MissKind, ReplacementPolicy};
use ds_mem::LineAddr;

/// The single-bit line state of the non-coherent GPU L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Valid;

impl LineState for L1Valid {
    fn is_valid(&self) -> bool {
        true
    }
}

/// A write-through, write-no-allocate GPU L1 data cache.
///
/// # Examples
///
/// ```
/// use ds_cache::CacheGeometry;
/// use ds_gpu::GpuL1;
/// use ds_mem::LineAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut l1 = GpuL1::new(CacheGeometry::new(16 * 1024, 4)?);
/// let line = LineAddr::from_index(9);
/// assert!(!l1.load(line), "cold miss");
/// l1.fill(line);
/// assert!(l1.load(line));
/// l1.flash_invalidate(); // kernel launch
/// assert!(!l1.load(line));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GpuL1 {
    array: CacheArray<L1Valid>,
    stats: CacheStats,
}

impl GpuL1 {
    /// Creates an empty L1 with the given geometry (Table I: 16 KB,
    /// 4-way).
    pub fn new(geom: CacheGeometry) -> Self {
        GpuL1 {
            array: CacheArray::new(geom, ReplacementPolicy::Lru),
            stats: CacheStats::new(),
        }
    }

    /// Performs a load lookup; returns whether it hit. Misses are
    /// recorded (with compulsory classification) and the caller fetches
    /// the line from the L2 slice, then calls [`GpuL1::fill`].
    pub fn load(&mut self, line: LineAddr) -> bool {
        if self.array.access(line).is_some() {
            self.stats.record_hit();
            true
        } else {
            // Flash invalidation makes L1 "compulsory" classification
            // uninteresting; still recorded for completeness.
            self.stats.record_miss(MissKind::NonCompulsory);
            false
        }
    }

    /// Performs a store. Write-through and write-no-allocate: the
    /// store updates the line if present and always proceeds to the L2
    /// slice; it never allocates here.
    pub fn store(&mut self, line: LineAddr) {
        if self.array.access(line).is_some() {
            self.stats.record_hit();
        } else {
            self.stats.record_miss(MissKind::NonCompulsory);
        }
    }

    /// Installs a line fetched from the L2 slice.
    pub fn fill(&mut self, line: LineAddr) {
        if self.array.fill(line, L1Valid).is_some() {
            self.stats.evictions.incr();
        }
    }

    /// Drops every line (at kernel launch).
    pub fn flash_invalidate(&mut self) -> usize {
        self.array.invalidate_all()
    }

    /// Invalidates one line (e.g. when the L2 slice loses it to a
    /// CPU-side probe, conservatively mirrored here).
    pub fn invalidate(&mut self, line: LineAddr) {
        self.array.invalidate(line);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resident line count.
    pub fn occupancy(&self) -> u64 {
        self.array.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> GpuL1 {
        GpuL1::new(CacheGeometry::new(16 * 1024, 4).unwrap())
    }

    #[test]
    fn miss_fill_hit_cycle() {
        let mut c = l1();
        let line = LineAddr::from_index(5);
        assert!(!c.load(line));
        c.fill(line);
        assert!(c.load(line));
        assert_eq!(c.stats().hits.value(), 1);
        assert_eq!(c.stats().misses.value(), 1);
    }

    #[test]
    fn stores_never_allocate() {
        let mut c = l1();
        let line = LineAddr::from_index(5);
        c.store(line);
        assert_eq!(c.occupancy(), 0, "write-no-allocate");
        assert!(!c.load(line));
    }

    #[test]
    fn stores_hit_resident_lines() {
        let mut c = l1();
        let line = LineAddr::from_index(5);
        c.fill(line);
        c.store(line);
        assert_eq!(c.stats().hits.value(), 1);
    }

    #[test]
    fn flash_invalidate_clears_everything() {
        let mut c = l1();
        for i in 0..10 {
            c.fill(LineAddr::from_index(i));
        }
        assert_eq!(c.flash_invalidate(), 10);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn capacity_evictions_are_counted() {
        let mut c = l1();
        // 16KB 4-way = 32 sets; lines i*32 all land in set 0.
        for i in 0..5 {
            c.fill(LineAddr::from_index(i * 32));
        }
        assert_eq!(c.stats().evictions.value(), 1);
        assert_eq!(c.occupancy(), 4);
    }

    #[test]
    fn single_line_invalidate() {
        let mut c = l1();
        let line = LineAddr::from_index(1);
        c.fill(line);
        c.invalidate(line);
        assert!(!c.load(line));
    }
}
