//! The streaming multiprocessor model.
//!
//! Each SM holds a set of resident warps (bounded by the occupancy
//! limit) and issues one operation per cycle from a ready warp, in
//! loose round-robin order. Warps blocked on memory or multi-cycle
//! operations are skipped — switching among ready warps is the latency
//! hiding that makes shared-memory benchmarks insensitive to L2
//! behaviour (paper §IV.C).
//!
//! The SM handles compute and shared-memory operations internally;
//! global memory operations are returned to the caller (`ds-core`),
//! which drives them through the L1/L2 hierarchy and reports
//! completions back via [`Sm::mem_arrived`].

use std::collections::VecDeque;

use ds_sim::{Counter, Cycle};

use crate::{KernelTrace, WarpOp};

/// Cycles before a shared-memory access completes (bank access plus
/// pipeline), plus one cycle per additional access in the operation.
const SHARED_BASE_LATENCY: u64 = 24;

/// An operation issued by [`Sm::issue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmIssue {
    /// Index of the issuing warp (kernel-wide numbering).
    pub warp: usize,
    /// The issued operation.
    pub op: WarpOp,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpState {
    Ready,
    WaitMem { outstanding: u32 },
    WaitUntil(Cycle),
    Done,
}

#[derive(Debug)]
struct WarpCtx {
    id: usize,
    ops: Vec<WarpOp>,
    pc: usize,
    state: WarpState,
}

/// Per-SM statistics.
#[derive(Debug, Clone)]
pub struct SmStats {
    /// Operations issued.
    pub ops_issued: Counter,
    /// Global loads issued.
    pub global_loads: Counter,
    /// Global stores issued.
    pub global_stores: Counter,
    /// Shared-memory operations issued.
    pub shared_ops: Counter,
    /// Compute operations issued.
    pub compute_ops: Counter,
}

impl SmStats {
    fn new() -> Self {
        SmStats {
            ops_issued: Counter::new("sm_ops"),
            global_loads: Counter::new("sm_global_loads"),
            global_stores: Counter::new("sm_global_stores"),
            shared_ops: Counter::new("sm_shared_ops"),
            compute_ops: Counter::new("sm_compute_ops"),
        }
    }
}

/// A streaming multiprocessor. See the [module docs](self) for the
/// scheduling model and the crate-level example for basic use.
#[derive(Debug)]
pub struct Sm {
    id: usize,
    max_resident: usize,
    warps: Vec<WarpCtx>,
    resident: Vec<usize>,
    pending: VecDeque<usize>,
    rr_cursor: usize,
    newly_finished: usize,
    stats: SmStats,
}

impl Sm {
    /// Creates SM number `id` with an occupancy limit of
    /// `max_resident` warps.
    ///
    /// # Panics
    ///
    /// Panics if `max_resident` is zero.
    pub fn new(id: usize, max_resident: usize) -> Self {
        assert!(max_resident > 0, "SM must hold at least one warp");
        Sm {
            id,
            max_resident,
            warps: Vec::new(),
            resident: Vec::new(),
            pending: VecDeque::new(),
            rr_cursor: 0,
            newly_finished: 0,
            stats: SmStats::new(),
        }
    }

    /// This SM's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// Assigns the kernel's warps `range` to this SM. Warps beyond the
    /// occupancy limit queue and become resident as earlier warps
    /// complete (modelling wave-by-wave thread-block dispatch).
    pub fn assign(&mut self, trace: &KernelTrace, range: std::ops::Range<usize>) {
        for w in range {
            let local = self.warps.len();
            let ops = trace.warp_ops(w).to_vec();
            // A warp with no work retires immediately (generators can
            // legitimately produce empty warps when an array has fewer
            // lines than the kernel has warps).
            if ops.is_empty() {
                self.warps.push(WarpCtx {
                    id: w,
                    ops,
                    pc: 0,
                    state: WarpState::Done,
                });
                self.newly_finished += 1;
                continue;
            }
            self.warps.push(WarpCtx {
                id: w,
                ops,
                pc: 0,
                state: WarpState::Ready,
            });
            if self.resident.len() < self.max_resident {
                self.resident.push(local);
            } else {
                self.pending.push_back(local);
            }
        }
    }

    /// Removes all warps (between kernels).
    pub fn reset(&mut self) {
        self.warps.clear();
        self.resident.clear();
        self.pending.clear();
        self.rr_cursor = 0;
        self.newly_finished = 0;
    }

    fn promote_timers(&mut self, now: Cycle) {
        let resident: Vec<usize> = self.resident.clone();
        for w in resident {
            if let WarpState::WaitUntil(t) = self.warps[w].state {
                if t <= now {
                    self.warps[w].state = WarpState::Ready;
                    self.retire_if_done(w);
                }
            }
        }
    }

    fn retire_if_done(&mut self, local: usize) {
        if self.warps[local].pc >= self.warps[local].ops.len()
            && self.warps[local].state != WarpState::Done
        {
            self.warps[local].state = WarpState::Done;
            self.newly_finished += 1;
            if let Some(pos) = self.resident.iter().position(|&r| r == local) {
                self.resident.remove(pos);
                if let Some(next) = self.pending.pop_front() {
                    self.resident.push(next);
                }
            }
        }
    }

    /// Issues one operation from a ready warp, if any.
    ///
    /// Compute and shared-memory operations are retired internally
    /// (the warp sleeps for their latency). Global operations are
    /// returned for the caller to drive through the memory hierarchy:
    /// loads leave the warp blocked until the caller reports
    /// [`Sm::mem_arrived`] once per touched line; stores do not block
    /// the warp (write-through, fire-and-forget).
    pub fn issue(&mut self, now: Cycle) -> Option<SmIssue> {
        self.promote_timers(now);
        let n = self.resident.len();
        for step in 0..n {
            let slot = (self.rr_cursor + step) % n;
            let local = self.resident[slot];
            if self.warps[local].state != WarpState::Ready {
                continue;
            }
            self.rr_cursor = (slot + 1) % n.max(1);
            let ctx = &mut self.warps[local];
            let op = ctx.ops[ctx.pc];
            ctx.pc += 1;
            self.stats.ops_issued.incr();
            match op {
                WarpOp::Compute(c) => {
                    self.stats.compute_ops.incr();
                    ctx.state = WarpState::WaitUntil(now + u64::from(c));
                }
                WarpOp::Shared { count } => {
                    self.stats.shared_ops.incr();
                    ctx.state = WarpState::WaitUntil(now + SHARED_BASE_LATENCY + u64::from(count));
                }
                WarpOp::GlobalLoad { count, .. } => {
                    self.stats.global_loads.incr();
                    ctx.state = WarpState::WaitMem {
                        outstanding: u32::from(count),
                    };
                }
                WarpOp::GlobalStore { .. } => {
                    self.stats.global_stores.incr();
                    // Stores do not block.
                }
            }
            let warp = self.warps[local].id;
            // Warps still Ready after the issue (stores) retire here;
            // sleeping warps retire when their timer elapses, blocked
            // warps when their last memory response arrives.
            if self.warps[local].state == WarpState::Ready {
                self.retire_if_done(local);
            }
            return Some(SmIssue { warp, op });
        }
        None
    }

    /// Reports one memory completion for `warp` (kernel-wide index).
    ///
    /// # Panics
    ///
    /// Panics if the warp is not blocked on memory.
    pub fn mem_arrived(&mut self, warp: usize) {
        let local = self
            .warps
            .iter()
            .position(|w| w.id == warp)
            .unwrap_or_else(|| panic!("warp {warp} not on SM {}", self.id));
        match &mut self.warps[local].state {
            WarpState::WaitMem { outstanding } => {
                assert!(*outstanding > 0, "warp {warp} has no outstanding requests");
                *outstanding -= 1;
                if *outstanding == 0 {
                    self.warps[local].state = WarpState::Ready;
                    self.retire_if_done(local);
                }
            }
            other => panic!("warp {warp} not waiting on memory (state {other:?})"),
        }
    }

    /// Whether any warp can issue at time `now`.
    pub fn has_ready(&mut self, now: Cycle) -> bool {
        self.promote_timers(now);
        self.resident
            .iter()
            .any(|&w| self.warps[w].state == WarpState::Ready)
    }

    /// The earliest time a sleeping warp wakes, if all non-done warps
    /// are timer-blocked.
    pub fn earliest_wake(&self) -> Option<Cycle> {
        self.resident
            .iter()
            .filter_map(|&w| match self.warps[w].state {
                WarpState::WaitUntil(t) => Some(t),
                _ => None,
            })
            .min()
    }

    /// Whether every assigned warp has run to completion.
    pub fn all_done(&self) -> bool {
        self.warps.iter().all(|w| w.state == WarpState::Done)
    }

    /// Number of warps assigned to this SM (resident + queued + done).
    pub fn assigned_warps(&self) -> usize {
        self.warps.len()
    }

    /// Returns (and resets) the number of warps that completed since
    /// the last call — the hook the system model uses to track kernel
    /// completion without scanning every warp.
    pub fn take_finished(&mut self) -> usize {
        std::mem::take(&mut self.newly_finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_mem::VirtAddr;

    fn one_warp_kernel(ops: Vec<WarpOp>) -> KernelTrace {
        let mut k = KernelTrace::new("t");
        k.push_warp(ops);
        k
    }

    #[test]
    fn compute_only_warp_runs_to_completion() {
        let k = one_warp_kernel(vec![WarpOp::Compute(5), WarpOp::Compute(3)]);
        let mut sm = Sm::new(0, 4);
        sm.assign(&k, 0..1);
        let mut now = Cycle::ZERO;
        let i1 = sm.issue(now).unwrap();
        assert_eq!(i1.op, WarpOp::Compute(5));
        assert!(sm.issue(now).is_none(), "warp is sleeping");
        now = sm.earliest_wake().unwrap();
        assert_eq!(now, Cycle::new(5));
        let i2 = sm.issue(now).unwrap();
        assert_eq!(i2.op, WarpOp::Compute(3));
        now = sm.earliest_wake().unwrap();
        sm.promote_timers(now);
        assert!(sm.all_done());
    }

    #[test]
    fn load_blocks_until_all_lines_arrive() {
        let k = one_warp_kernel(vec![
            WarpOp::global_load(VirtAddr::new(0), 2),
            WarpOp::Compute(1),
        ]);
        let mut sm = Sm::new(0, 4);
        sm.assign(&k, 0..1);
        sm.issue(Cycle::ZERO).unwrap();
        assert!(sm.issue(Cycle::ZERO).is_none());
        sm.mem_arrived(0);
        assert!(sm.issue(Cycle::new(10)).is_none(), "one line still pending");
        sm.mem_arrived(0);
        assert!(sm.issue(Cycle::new(20)).is_some());
    }

    #[test]
    fn stores_do_not_block() {
        let k = one_warp_kernel(vec![
            WarpOp::global_store(VirtAddr::new(0), 1),
            WarpOp::Compute(1),
        ]);
        let mut sm = Sm::new(0, 4);
        sm.assign(&k, 0..1);
        assert!(matches!(
            sm.issue(Cycle::ZERO).unwrap().op,
            WarpOp::GlobalStore { .. }
        ));
        assert!(
            sm.issue(Cycle::ZERO).is_some(),
            "warp still ready after store"
        );
    }

    #[test]
    fn round_robin_hides_memory_latency() {
        let mut k = KernelTrace::new("t");
        k.push_warp(vec![WarpOp::global_load(VirtAddr::new(0), 1)]);
        k.push_warp(vec![WarpOp::Compute(2)]);
        let mut sm = Sm::new(0, 4);
        sm.assign(&k, 0..2);
        let first = sm.issue(Cycle::ZERO).unwrap();
        assert_eq!(first.warp, 0);
        // Warp 0 is blocked on memory; warp 1 issues next cycle.
        let second = sm.issue(Cycle::new(1)).unwrap();
        assert_eq!(second.warp, 1);
    }

    #[test]
    fn occupancy_limit_queues_warps() {
        let mut k = KernelTrace::new("t");
        for _ in 0..3 {
            k.push_warp(vec![WarpOp::Compute(1)]);
        }
        let mut sm = Sm::new(0, 2);
        sm.assign(&k, 0..3);
        let w0 = sm.issue(Cycle::ZERO).unwrap().warp;
        let w1 = sm.issue(Cycle::ZERO).unwrap().warp;
        assert_eq!((w0, w1), (0, 1));
        assert!(sm.issue(Cycle::ZERO).is_none(), "warp 2 not yet resident");
        // Warp 0 and 1 finish at cycle 1; warp 2 becomes resident.
        let w2 = sm.issue(Cycle::new(1)).unwrap().warp;
        assert_eq!(w2, 2);
        sm.promote_timers(Cycle::new(5));
        assert!(sm.all_done());
        assert_eq!(sm.assigned_warps(), 3);
    }

    #[test]
    fn shared_ops_sleep_the_warp() {
        let k = one_warp_kernel(vec![WarpOp::Shared { count: 8 }]);
        let mut sm = Sm::new(0, 4);
        sm.assign(&k, 0..1);
        sm.issue(Cycle::ZERO).unwrap();
        assert_eq!(
            sm.earliest_wake(),
            Some(Cycle::new(SHARED_BASE_LATENCY + 8))
        );
    }

    #[test]
    #[should_panic(expected = "not waiting on memory")]
    fn stray_mem_arrival_panics() {
        let k = one_warp_kernel(vec![WarpOp::Compute(1)]);
        let mut sm = Sm::new(0, 4);
        sm.assign(&k, 0..1);
        sm.mem_arrived(0);
    }

    #[test]
    fn reset_clears_state() {
        let k = one_warp_kernel(vec![WarpOp::Compute(1)]);
        let mut sm = Sm::new(3, 4);
        sm.assign(&k, 0..1);
        sm.reset();
        assert_eq!(sm.assigned_warps(), 0);
        assert!(sm.all_done(), "vacuously done");
        assert_eq!(sm.id(), 3);
    }
}
