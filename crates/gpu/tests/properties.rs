//! Property-based tests of the SM scheduler: arbitrary warp programs
//! always run to completion with exact memory-response pairing.

use proptest::prelude::*;

use ds_gpu::{KernelTrace, Sm, WarpOp};
use ds_mem::VirtAddr;
use ds_sim::Cycle;

#[derive(Debug, Clone, Copy)]
enum GenOp {
    Load { lines: u16 },
    Store { lines: u16 },
    Compute { cycles: u32 },
    Shared { count: u16 },
}

fn op_strategy() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u16..6).prop_map(|lines| GenOp::Load { lines }),
        (1u16..6).prop_map(|lines| GenOp::Store { lines }),
        (1u32..30).prop_map(|cycles| GenOp::Compute { cycles }),
        (1u16..40).prop_map(|count| GenOp::Shared { count }),
    ]
}

fn to_warp_ops(ops: &[GenOp]) -> Vec<WarpOp> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            let base = VirtAddr::new((i as u64) * 128 * 64);
            match *op {
                GenOp::Load { lines } => WarpOp::global_load(base, lines),
                GenOp::Store { lines } => WarpOp::global_store(base, lines),
                GenOp::Compute { cycles } => WarpOp::Compute(cycles),
                GenOp::Shared { count } => WarpOp::Shared { count },
            }
        })
        .collect()
}

proptest! {
    /// Driving any set of warp programs with an immediate-response
    /// memory model retires every warp, with one `mem_arrived` per
    /// touched load line and no warp left behind by the occupancy
    /// window.
    #[test]
    fn every_warp_retires(
        warps in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..12),
            1..20
        ),
        max_resident in 1usize..8
    ) {
        let mut trace = KernelTrace::new("prop");
        for w in &warps {
            trace.push_warp(to_warp_ops(w));
        }
        let mut sm = Sm::new(0, max_resident);
        sm.assign(&trace, 0..warps.len());
        let mut finished = sm.take_finished();

        let mut now = Cycle::ZERO;
        let mut issued = 0u64;
        let mut responses = 0u64;
        let budget = 2_000_000u64;
        while !sm.all_done() {
            prop_assert!(now.as_u64() < budget, "SM livelocked");
            if let Some(issue) = sm.issue(now) {
                issued += 1;
                if let WarpOp::GlobalLoad { count, .. } = issue.op {
                    // Immediate memory: respond to every line at once.
                    for _ in 0..count {
                        sm.mem_arrived(issue.warp);
                        responses += 1;
                    }
                }
                now += 1;
            } else if let Some(wake) = sm.earliest_wake() {
                now = wake.max(now + 1);
            } else {
                now += 1;
            }
            finished += sm.take_finished();
        }
        finished += sm.take_finished();
        let total_ops: u64 = warps.iter().map(|w| w.len() as u64).sum();
        prop_assert_eq!(issued, total_ops);
        let total_load_lines: u64 = warps
            .iter()
            .flatten()
            .map(|op| match op {
                GenOp::Load { lines } => u64::from(*lines),
                _ => 0,
            })
            .sum();
        prop_assert_eq!(responses, total_load_lines);
        prop_assert_eq!(sm.assigned_warps(), warps.len());
        // Every warp was reported finished exactly once.
        prop_assert_eq!(finished, warps.len());
    }

    /// Kernel trace accounting: total_global_lines equals the sum of
    /// touched lines across all ops.
    #[test]
    fn trace_line_accounting(
        warps in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 0..10),
            1..10
        )
    ) {
        let mut trace = KernelTrace::new("acct");
        for w in &warps {
            trace.push_warp(to_warp_ops(w));
        }
        let expect: u64 = warps
            .iter()
            .flatten()
            .map(|op| match op {
                GenOp::Load { lines } | GenOp::Store { lines } => u64::from(*lines),
                _ => 0,
            })
            .sum();
        prop_assert_eq!(trace.total_global_lines(), expect);
        let by_hand: u64 = (0..trace.warp_count())
            .flat_map(|w| trace.warp_ops(w).iter())
            .map(|op| op.touched_lines().len() as u64)
            .sum();
        prop_assert_eq!(by_hand, expect);
    }
}
