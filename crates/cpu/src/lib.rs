//! # ds-cpu — CPU-side models
//!
//! Everything the CPU contributes to the direct-store mechanism
//! (paper §III.C–§III.E):
//!
//! * [`DirectWindow`] — the reserved high-order virtual-address range
//!   in which GPU-homed data lives,
//! * [`AddressSpace`] — simulated `malloc` and `mmap(MAP_FIXED)`
//!   allocators plus the demand-paged page table; direct-window pages
//!   map to a disjoint physical-frame pool so physical addresses remain
//!   classifiable,
//! * [`Tlb`] — the translation look-aside buffer with the paper's added
//!   high-order-address comparison logic that flags stores for
//!   forwarding to the GPU L2,
//! * [`Program`] / [`CpuOp`] — the memory-operation IR executed by the
//!   in-order CPU core model in `ds-core`,
//! * [`StoreBuffer`] — the finite store buffer whose occupancy converts
//!   increased store latency into the (mild) CPU-side cost the paper
//!   describes in §III.B.
//!
//! # Examples
//!
//! The TLB's direct-range detection in action:
//!
//! ```
//! use ds_cpu::{AddressSpace, DirectWindow, Tlb};
//! use ds_mem::VirtAddr;
//!
//! let window = DirectWindow::paper_default();
//! let mut space = AddressSpace::new(window);
//! let ordinary = space.malloc(4096).expect("heap allocation");
//! let homed = space
//!     .mmap_fixed(window.base(), 4096)
//!     .expect("window is free");
//!
//! let mut tlb = Tlb::new(64, window);
//! assert!(!tlb.lookup(ordinary).is_direct);
//! assert!(tlb.lookup(homed).is_direct, "TLB flags GPU-homed stores");
//! ```

pub mod program;
pub mod store_buffer;
pub mod tlb;
pub mod vm;

pub use program::{CpuOp, Program};
pub use store_buffer::{StoreBuffer, StoreEntry};
pub use tlb::{Tlb, TlbLookup, TlbStats};
pub use vm::{AddressSpace, DirectWindow, MmapError, PageTable};
