//! The CPU program IR.
//!
//! Workload generators (the `ds-workloads` crate) compile each
//! benchmark's CPU side — producing input arrays for the GPU, launching
//! kernels, optionally reading results back — into a flat sequence of
//! [`CpuOp`]s executed by the in-order core model in `ds-core`.
//!
//! The IR is memory-centric: arithmetic between memory operations is
//! abstracted as [`CpuOp::Compute`] cycles, the standard trace-driven
//! simplification (only relative memory behaviour matters for the
//! paper's comparisons).

use ds_mem::{VirtAddr, LINE_BYTES};

/// One operation of the CPU program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuOp {
    /// Load from a virtual address (blocks the in-order core until the
    /// value returns).
    Load(VirtAddr),
    /// Store to a virtual address (retires into the store buffer).
    Store(VirtAddr),
    /// `n` cycles of non-memory work.
    Compute(u32),
    /// Launch GPU kernel number `idx` (asynchronous, like a CUDA
    /// kernel launch).
    Launch(usize),
    /// Block until every launched kernel has completed
    /// (`cudaDeviceSynchronize`).
    WaitGpu,
}

/// A CPU program: an ordered list of [`CpuOp`]s with builder helpers
/// for the patterns workload generators need.
///
/// # Examples
///
/// The canonical producer-consumer shape — write an array, launch the
/// kernel that reads it, wait:
///
/// ```
/// use ds_cpu::{CpuOp, Program};
/// use ds_mem::VirtAddr;
///
/// let mut p = Program::new();
/// p.store_array(VirtAddr::new(0x1000), 1024, 2);
/// p.push(CpuOp::Launch(0));
/// p.push(CpuOp::WaitGpu);
/// assert!(p.len() > 2);
/// assert_eq!(p.stores(), 1024 / 128 * 1); // one store per touched line
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    ops: Vec<CpuOp>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one operation.
    pub fn push(&mut self, op: CpuOp) {
        self.ops.push(op);
    }

    /// Appends a sequential write of `bytes` starting at `base`,
    /// touching each 128-byte line once, with `compute_per_line` cycles
    /// of work between lines.
    ///
    /// Element-level stores within a line coalesce in the store buffer
    /// anyway, so generators emit one store per line and model the
    /// per-element arithmetic as compute (see `DESIGN.md`).
    pub fn store_array(&mut self, base: VirtAddr, bytes: u64, compute_per_line: u32) {
        let lines = bytes.div_ceil(LINE_BYTES);
        for i in 0..lines {
            if compute_per_line > 0 {
                self.ops.push(CpuOp::Compute(compute_per_line));
            }
            self.ops.push(CpuOp::Store(base.offset(i * LINE_BYTES)));
        }
    }

    /// Appends a sequential read of `bytes` starting at `base`, one
    /// load per line.
    pub fn load_array(&mut self, base: VirtAddr, bytes: u64, compute_per_line: u32) {
        let lines = bytes.div_ceil(LINE_BYTES);
        for i in 0..lines {
            if compute_per_line > 0 {
                self.ops.push(CpuOp::Compute(compute_per_line));
            }
            self.ops.push(CpuOp::Load(base.offset(i * LINE_BYTES)));
        }
    }

    /// The operations in execution order.
    pub fn ops(&self) -> &[CpuOp] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of store operations.
    pub fn stores(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, CpuOp::Store(_)))
            .count() as u64
    }

    /// Number of load operations.
    pub fn loads(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, CpuOp::Load(_)))
            .count() as u64
    }

    /// Number of kernel launches.
    pub fn launches(&self) -> u64 {
        self.ops
            .iter()
            .filter(|op| matches!(op, CpuOp::Launch(_)))
            .count() as u64
    }
}

impl Extend<CpuOp> for Program {
    fn extend<T: IntoIterator<Item = CpuOp>>(&mut self, iter: T) {
        self.ops.extend(iter);
    }
}

impl FromIterator<CpuOp> for Program {
    fn from_iter<T: IntoIterator<Item = CpuOp>>(iter: T) -> Self {
        Program {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_array_touches_each_line_once() {
        let mut p = Program::new();
        p.store_array(VirtAddr::new(0), 4 * LINE_BYTES, 0);
        assert_eq!(p.stores(), 4);
        let addrs: Vec<u64> = p
            .ops()
            .iter()
            .filter_map(|op| match op {
                CpuOp::Store(a) => Some(a.as_u64()),
                _ => None,
            })
            .collect();
        assert_eq!(addrs, vec![0, 128, 256, 384]);
    }

    #[test]
    fn partial_line_rounds_up() {
        let mut p = Program::new();
        p.store_array(VirtAddr::new(0), LINE_BYTES + 1, 0);
        assert_eq!(p.stores(), 2);
    }

    #[test]
    fn compute_interleaves() {
        let mut p = Program::new();
        p.store_array(VirtAddr::new(0), 2 * LINE_BYTES, 5);
        assert_eq!(
            p.ops()[0..2],
            [CpuOp::Compute(5), CpuOp::Store(VirtAddr::new(0))]
        );
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn counting_helpers() {
        let p: Program = [
            CpuOp::Load(VirtAddr::new(0)),
            CpuOp::Store(VirtAddr::new(128)),
            CpuOp::Launch(0),
            CpuOp::Launch(1),
            CpuOp::WaitGpu,
        ]
        .into_iter()
        .collect();
        assert_eq!(p.loads(), 1);
        assert_eq!(p.stores(), 1);
        assert_eq!(p.launches(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut p = Program::new();
        p.extend([CpuOp::WaitGpu]);
        assert_eq!(p.len(), 1);
    }
}
