//! The translation look-aside buffer with direct-range detection.
//!
//! Paper §III.E: "We modify the TLB by adding logic to detect
//! high-order virtual addresses ... When detected, the TLB sends a
//! signal to the MMU indicating to the CPU's L1 cache controller to
//! forward the store onto the GPU L2 cache."
//!
//! The model is a fully-associative LRU TLB in front of the
//! [`PageTable`](crate::PageTable); the added detection logic is the
//! single threshold comparison of [`DirectWindow::contains`].

use std::collections::HashMap;

use ds_mem::{PageNum, VirtAddr};
use ds_sim::Counter;

use crate::DirectWindow;

/// The outcome of a TLB lookup, before the page walk (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbLookup {
    /// The virtual page looked up.
    pub vpn: PageNum,
    /// The cached translation, `None` on a TLB miss (the MMU must walk
    /// the page table and [`Tlb::fill`] the result).
    pub ppn: Option<PageNum>,
    /// The direct-store signal: the address lies in the reserved
    /// GPU-homed window. Raised on hits *and* misses — the comparison
    /// is on the virtual address itself.
    pub is_direct: bool,
}

impl TlbLookup {
    /// Whether the translation was cached.
    pub fn is_hit(&self) -> bool {
        self.ppn.is_some()
    }
}

/// TLB statistics.
#[derive(Debug, Clone)]
pub struct TlbStats {
    /// Lookups that found a cached translation.
    pub hits: Counter,
    /// Lookups requiring a page walk.
    pub misses: Counter,
    /// Lookups whose address fell in the direct window.
    pub direct_detections: Counter,
}

impl TlbStats {
    fn new() -> Self {
        TlbStats {
            hits: Counter::new("tlb_hits"),
            misses: Counter::new("tlb_misses"),
            direct_detections: Counter::new("tlb_direct_detections"),
        }
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits.value() + self.misses.value()
    }
}

/// A fully-associative LRU TLB with the paper's direct-range detector.
///
/// See the crate-level example for typical use.
#[derive(Debug)]
pub struct Tlb {
    capacity: usize,
    window: DirectWindow,
    entries: HashMap<PageNum, (PageNum, u64)>,
    clock: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB holding at most `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, window: DirectWindow) -> Self {
        assert!(capacity > 0, "TLB capacity must be non-zero");
        Tlb {
            capacity,
            window,
            entries: HashMap::new(),
            clock: 0,
            stats: TlbStats::new(),
        }
    }

    /// Looks up `va`, returning the cached translation (if any) and the
    /// direct-window signal.
    pub fn lookup(&mut self, va: VirtAddr) -> TlbLookup {
        let vpn = va.page();
        let is_direct = self.window.contains(va);
        if is_direct {
            self.stats.direct_detections.incr();
        }
        self.clock += 1;
        let ppn = match self.entries.get_mut(&vpn) {
            Some((ppn, stamp)) => {
                *stamp = self.clock;
                self.stats.hits.incr();
                Some(*ppn)
            }
            None => {
                self.stats.misses.incr();
                None
            }
        };
        TlbLookup {
            vpn,
            ppn,
            is_direct,
        }
    }

    /// Installs a translation after a page walk, evicting the LRU entry
    /// if full.
    pub fn fill(&mut self, vpn: PageNum, ppn: PageNum) {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&vpn) {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, s))| *s) {
                self.entries.remove(&victim);
            }
        }
        self.clock += 1;
        self.entries.insert(vpn, (ppn, self.clock));
    }

    /// Drops every cached translation (e.g. on a simulated context
    /// switch).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Current number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_mem::PAGE_BYTES;

    fn tlb(cap: usize) -> Tlb {
        Tlb::new(cap, DirectWindow::paper_default())
    }

    fn va(page: u64) -> VirtAddr {
        VirtAddr::new(page * PAGE_BYTES)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tlb(4);
        let l = t.lookup(va(3));
        assert!(!l.is_hit());
        t.fill(l.vpn, PageNum::new(99));
        let l2 = t.lookup(va(3).offset(5));
        assert_eq!(l2.ppn, Some(PageNum::new(99)));
        assert_eq!(t.stats().hits.value(), 1);
        assert_eq!(t.stats().misses.value(), 1);
        assert_eq!(t.stats().lookups(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut t = tlb(2);
        t.fill(PageNum::new(1), PageNum::new(1));
        t.fill(PageNum::new(2), PageNum::new(2));
        // Touch page 1 so page 2 is LRU.
        t.lookup(va(1));
        t.fill(PageNum::new(3), PageNum::new(3));
        assert!(t.lookup(va(1)).is_hit());
        assert!(!t.lookup(va(2)).is_hit());
        assert!(t.lookup(va(3)).is_hit());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn refilling_resident_page_does_not_evict() {
        let mut t = tlb(2);
        t.fill(PageNum::new(1), PageNum::new(1));
        t.fill(PageNum::new(2), PageNum::new(2));
        t.fill(PageNum::new(1), PageNum::new(1));
        assert!(t.lookup(va(2)).is_hit());
    }

    #[test]
    fn direct_detection_is_orthogonal_to_hit_miss() {
        let mut t = tlb(2);
        let base = DirectWindow::paper_default().base();
        let l = t.lookup(base);
        assert!(l.is_direct && !l.is_hit());
        t.fill(l.vpn, PageNum::new(7));
        let l2 = t.lookup(base);
        assert!(l2.is_direct && l2.is_hit());
        assert_eq!(t.stats().direct_detections.value(), 2);
        // Ordinary addresses never raise the signal.
        assert!(!t.lookup(va(1)).is_direct);
    }

    #[test]
    fn flush_clears() {
        let mut t = tlb(4);
        t.fill(PageNum::new(1), PageNum::new(1));
        assert!(!t.is_empty());
        t.flush();
        assert!(t.is_empty());
        assert!(!t.lookup(va(1)).is_hit());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = tlb(0);
    }
}
