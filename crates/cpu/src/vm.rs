//! Simulated virtual memory: allocators and the page table.

use std::collections::HashMap;
use std::fmt;

use ds_mem::{PageNum, PhysAddr, VirtAddr, PAGE_BYTES};

/// The reserved high-order virtual-address window for GPU-homed data
/// (paper §III.D: "specifies the argument addr to high-order address
/// bits and sets flags to MAP_FIXED").
///
/// Detection is a single comparison of the store's address against the
/// window base — the "wiring to a logic gate" hardware cost of §IV.E.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectWindow {
    base: VirtAddr,
}

impl DirectWindow {
    /// The window used throughout the reproduction: everything at or
    /// above `0x7f00_0000_0000`.
    pub fn paper_default() -> Self {
        DirectWindow {
            base: VirtAddr::new(0x7f00_0000_0000),
        }
    }

    /// Creates a window starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned.
    pub fn starting_at(base: VirtAddr) -> Self {
        assert!(
            base.as_u64().is_multiple_of(PAGE_BYTES),
            "direct window base must be page-aligned"
        );
        DirectWindow { base }
    }

    /// The first address of the window.
    pub fn base(&self) -> VirtAddr {
        self.base
    }

    /// The high-order-bits comparison the modified TLB performs.
    #[inline]
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.base
    }
}

impl fmt::Display for DirectWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "direct window [{}, ...)", self.base)
    }
}

/// First physical frame of the pool backing direct-window pages.
///
/// Keeping GPU-homed data in a disjoint frame pool lets every layer
/// below the TLB (caches, the coherence checker) classify a *physical*
/// address without a reverse page-table walk.
pub const DIRECT_FRAME_BASE: u64 = 1 << 24; // frames, i.e. 64 GB into PA space

/// Whether a physical address backs direct-window (GPU-homed) data.
pub fn pa_is_direct(pa: PhysAddr) -> bool {
    pa.page().index() >= DIRECT_FRAME_BASE
}

/// Line-granularity variant of [`pa_is_direct`] (the signature the
/// coherence checker consumes).
pub fn pa_is_direct_line(line: ds_mem::LineAddr) -> bool {
    pa_is_direct(line.base())
}

/// The demand-paged virtual-to-physical map.
///
/// Frames are allocated on first touch: ordinary pages from a bump
/// pool starting at frame 0, direct-window pages from
/// [`DIRECT_FRAME_BASE`].
#[derive(Debug, Default)]
pub struct PageTable {
    map: HashMap<PageNum, PageNum>,
    next_normal: u64,
    next_direct: u64,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            map: HashMap::new(),
            next_normal: 0,
            next_direct: DIRECT_FRAME_BASE,
        }
    }

    /// Translates a virtual page, allocating a frame on first touch.
    pub fn translate_or_alloc(&mut self, vpn: PageNum, is_direct: bool) -> PageNum {
        if let Some(&ppn) = self.map.get(&vpn) {
            return ppn;
        }
        let frame = if is_direct {
            let f = self.next_direct;
            self.next_direct += 1;
            f
        } else {
            let f = self.next_normal;
            self.next_normal += 1;
            f
        };
        let ppn = PageNum::new(frame);
        self.map.insert(vpn, ppn);
        ppn
    }

    /// Translates a virtual page that must already be mapped.
    pub fn translate(&self, vpn: PageNum) -> Option<PageNum> {
        self.map.get(&vpn).copied()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }
}

/// Errors from the simulated `mmap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmapError {
    /// A `MAP_FIXED` request overlaps an existing mapping.
    Overlap {
        /// Requested base.
        addr: VirtAddr,
        /// Requested length.
        len: u64,
    },
    /// Requested base is not page-aligned.
    Unaligned {
        /// Requested base.
        addr: VirtAddr,
    },
    /// Zero-length request.
    ZeroLength,
    /// The heap bump allocator would collide with the direct window.
    OutOfMemory,
}

impl fmt::Display for MmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmapError::Overlap { addr, len } => {
                write!(
                    f,
                    "MAP_FIXED region {addr}+{len:#x} overlaps an existing mapping"
                )
            }
            MmapError::Unaligned { addr } => write!(f, "mmap base {addr} is not page-aligned"),
            MmapError::ZeroLength => write!(f, "zero-length allocation"),
            MmapError::OutOfMemory => write!(f, "heap exhausted"),
        }
    }
}

impl std::error::Error for MmapError {}

/// A process address space: the `malloc` heap, the `mmap(MAP_FIXED)`
/// regions the translator creates, and the page table behind both.
///
/// # Examples
///
/// Overlapping `MAP_FIXED` regions are rejected — the property the
/// translator relies on when laying out variables back to back
/// (§III.C: "there is no overlapping starting virtual addresses for
/// all variables"):
///
/// ```
/// use ds_cpu::{AddressSpace, DirectWindow, MmapError};
/// use ds_mem::VirtAddr;
///
/// let w = DirectWindow::paper_default();
/// let mut space = AddressSpace::new(w);
/// space.mmap_fixed(w.base(), 8192).expect("fresh window");
/// let clash = space.mmap_fixed(w.base().offset(4096), 4096);
/// assert!(matches!(clash, Err(MmapError::Overlap { .. })));
/// ```
#[derive(Debug)]
pub struct AddressSpace {
    window: DirectWindow,
    page_table: PageTable,
    heap_next: VirtAddr,
    regions: Vec<(VirtAddr, u64)>,
}

impl AddressSpace {
    /// Heap base for `malloc` allocations.
    const HEAP_BASE: u64 = 0x1000_0000;

    /// Creates an address space with an empty heap and no mappings.
    pub fn new(window: DirectWindow) -> Self {
        AddressSpace {
            window,
            page_table: PageTable::new(),
            heap_next: VirtAddr::new(Self::HEAP_BASE),
            regions: Vec::new(),
        }
    }

    /// The direct window this space was created with.
    pub fn window(&self) -> DirectWindow {
        self.window
    }

    /// Simulated `malloc`: bump allocation on the ordinary heap,
    /// 16-byte aligned.
    ///
    /// # Errors
    ///
    /// Returns [`MmapError::ZeroLength`] for empty requests and
    /// [`MmapError::OutOfMemory`] if the heap would reach the direct
    /// window.
    pub fn malloc(&mut self, len: u64) -> Result<VirtAddr, MmapError> {
        if len == 0 {
            return Err(MmapError::ZeroLength);
        }
        let base = self.heap_next;
        let aligned = len.div_ceil(16) * 16;
        let next = base.checked_offset(aligned).ok_or(MmapError::OutOfMemory)?;
        if self.window.contains(next) {
            return Err(MmapError::OutOfMemory);
        }
        self.heap_next = next;
        Ok(base)
    }

    /// Simulated `mmap(addr, len, ..., MAP_FIXED, ...)`.
    ///
    /// # Errors
    ///
    /// Rejects unaligned bases, zero lengths and overlaps with existing
    /// fixed mappings.
    pub fn mmap_fixed(&mut self, addr: VirtAddr, len: u64) -> Result<VirtAddr, MmapError> {
        if len == 0 {
            return Err(MmapError::ZeroLength);
        }
        if !addr.as_u64().is_multiple_of(PAGE_BYTES) {
            return Err(MmapError::Unaligned { addr });
        }
        let len = len.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        let end = addr.as_u64() + len;
        for &(base, rlen) in &self.regions {
            let rend = base.as_u64() + rlen;
            if addr.as_u64() < rend && base.as_u64() < end {
                return Err(MmapError::Overlap { addr, len });
            }
        }
        self.regions.push((addr, len));
        Ok(addr)
    }

    /// Whether `va` is in the direct (GPU-homed) window.
    pub fn is_direct(&self, va: VirtAddr) -> bool {
        self.window.contains(va)
    }

    /// Translates `va`, allocating a backing frame on first touch, and
    /// returns the physical address.
    pub fn translate(&mut self, va: VirtAddr) -> PhysAddr {
        let is_direct = self.is_direct(va);
        let ppn = self.page_table.translate_or_alloc(va.page(), is_direct);
        ppn.phys_addr(va.page_offset())
    }

    /// Read access to the page table (for the TLB's walk path).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// The fixed mappings created so far, in creation order.
    pub fn regions(&self) -> &[(VirtAddr, u64)] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> AddressSpace {
        AddressSpace::new(DirectWindow::paper_default())
    }

    #[test]
    fn malloc_is_bump_and_aligned() {
        let mut s = space();
        let a = s.malloc(10).unwrap();
        let b = s.malloc(10).unwrap();
        assert_eq!(a.as_u64() % 16, 0);
        assert_eq!(b.as_u64() - a.as_u64(), 16);
        assert!(!s.is_direct(a));
    }

    #[test]
    fn malloc_rejects_zero() {
        assert_eq!(space().malloc(0), Err(MmapError::ZeroLength));
    }

    #[test]
    fn mmap_fixed_places_exactly() {
        let mut s = space();
        let base = DirectWindow::paper_default().base();
        assert_eq!(s.mmap_fixed(base, 100).unwrap(), base);
        assert!(s.is_direct(base));
        assert_eq!(s.regions().len(), 1);
        // Rounded to page granularity.
        assert_eq!(s.regions()[0].1, PAGE_BYTES);
    }

    #[test]
    fn mmap_fixed_rejects_unaligned_and_overlap() {
        let mut s = space();
        let base = DirectWindow::paper_default().base();
        assert!(matches!(
            s.mmap_fixed(base.offset(8), 100),
            Err(MmapError::Unaligned { .. })
        ));
        s.mmap_fixed(base, 2 * PAGE_BYTES).unwrap();
        assert!(matches!(
            s.mmap_fixed(base.offset(PAGE_BYTES), PAGE_BYTES),
            Err(MmapError::Overlap { .. })
        ));
        // Adjacent (non-overlapping) is fine.
        assert!(s
            .mmap_fixed(base.offset(2 * PAGE_BYTES), PAGE_BYTES)
            .is_ok());
    }

    #[test]
    fn translation_separates_frame_pools() {
        let mut s = space();
        let heap = s.malloc(64).unwrap();
        let direct_base = DirectWindow::paper_default().base();
        s.mmap_fixed(direct_base, PAGE_BYTES).unwrap();

        let pa_heap = s.translate(heap);
        let pa_direct = s.translate(direct_base);
        assert!(!pa_is_direct(pa_heap));
        assert!(pa_is_direct(pa_direct));
    }

    #[test]
    fn translation_is_stable_and_offset_preserving() {
        let mut s = space();
        let va = s.malloc(PAGE_BYTES * 2).unwrap();
        let pa1 = s.translate(va.offset(123));
        let pa2 = s.translate(va.offset(123));
        assert_eq!(pa1, pa2);
        assert_eq!(pa1.page_offset(), (va.as_u64() + 123) % PAGE_BYTES);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut s = space();
        let va = VirtAddr::new(AddressSpace::HEAP_BASE);
        let pa0 = s.translate(va);
        let pa1 = s.translate(va.offset(PAGE_BYTES));
        assert_ne!(pa0.page(), pa1.page());
        assert_eq!(s.page_table_mut().mapped_pages(), 2);
    }

    #[test]
    fn window_comparison_is_a_simple_threshold() {
        let w = DirectWindow::paper_default();
        assert!(!w.contains(VirtAddr::new(w.base().as_u64() - 1)));
        assert!(w.contains(w.base()));
        assert!(w.contains(VirtAddr::new(u64::MAX)));
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_window_base_panics() {
        let _ = DirectWindow::starting_at(VirtAddr::new(100));
    }

    #[test]
    fn error_display() {
        let e = MmapError::Overlap {
            addr: VirtAddr::new(0x1000),
            len: 4096,
        };
        assert!(e.to_string().contains("overlaps"));
        assert!(MmapError::OutOfMemory.to_string().contains("heap"));
    }
}
