//! The CPU store buffer.
//!
//! Stores retire from the in-order core into this finite buffer and
//! drain to the memory system in the background. Same-line stores
//! coalesce into one entry, so element-granular writes to a line cost
//! one drain. Direct-store entries drain over the dedicated network —
//! their higher latency is absorbed here, which is exactly the §III.B
//! trade: "increased CPU store latency (to which most programs are
//! less sensitive)".

use std::collections::VecDeque;

use ds_mem::LineAddr;
use ds_sim::Counter;

/// One coalesced store-buffer entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreEntry {
    /// The written line.
    pub line: LineAddr,
    /// Whether the TLB flagged this store for direct forwarding to the
    /// GPU L2.
    pub is_direct: bool,
}

/// A finite, coalescing FIFO store buffer.
///
/// # Examples
///
/// ```
/// use ds_cpu::StoreBuffer;
/// use ds_mem::LineAddr;
///
/// let mut sb = StoreBuffer::new(2);
/// let l = LineAddr::from_index(1);
/// assert!(sb.push(l, false));
/// assert!(sb.push(l, false), "same-line store coalesces, buffer not full");
/// assert_eq!(sb.len(), 1);
/// assert!(sb.push(LineAddr::from_index(2), true));
/// assert!(!sb.push(LineAddr::from_index(3), false), "buffer full");
/// ```
#[derive(Debug)]
pub struct StoreBuffer {
    capacity: usize,
    entries: VecDeque<StoreEntry>,
    merges: Counter,
    drains: Counter,
    full_stalls: Counter,
}

impl StoreBuffer {
    /// Creates an empty buffer with room for `capacity` distinct lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer capacity must be non-zero");
        StoreBuffer {
            capacity,
            entries: VecDeque::new(),
            merges: Counter::new("sb_merges"),
            drains: Counter::new("sb_drains"),
            full_stalls: Counter::new("sb_full_stalls"),
        }
    }

    /// Attempts to insert a store. Returns `false` (and records a
    /// stall) if the buffer is full and the store does not coalesce.
    ///
    /// A store to a line already buffered with the same direct-ness
    /// merges; a direct/non-direct mismatch on the same line is
    /// impossible by construction (a line's window membership is a
    /// property of its address).
    pub fn push(&mut self, line: LineAddr, is_direct: bool) -> bool {
        if let Some(e) = self.entries.iter().find(|e| e.line == line) {
            debug_assert_eq!(
                e.is_direct, is_direct,
                "a line cannot be both direct and ordinary"
            );
            self.merges.incr();
            return true;
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls.incr();
            return false;
        }
        self.entries.push_back(StoreEntry { line, is_direct });
        true
    }

    /// The oldest entry, if any (the next to drain).
    pub fn head(&self) -> Option<StoreEntry> {
        self.entries.front().copied()
    }

    /// Removes and returns the oldest entry.
    pub fn pop(&mut self) -> Option<StoreEntry> {
        let e = self.entries.pop_front();
        if e.is_some() {
            self.drains.incr();
        }
        e
    }

    /// Whether a store to `line` is buffered (store-to-load forwarding
    /// check).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|e| e.line == line)
    }

    /// Buffered entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty (all stores globally visible).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a non-coalescing store would stall.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Stores merged into existing entries.
    pub fn merges(&self) -> u64 {
        self.merges.value()
    }

    /// Entries drained to the memory system.
    pub fn drains(&self) -> u64 {
        self.drains.value()
    }

    /// Inserts refused because the buffer was full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn fifo_drain_order() {
        let mut sb = StoreBuffer::new(4);
        sb.push(line(3), false);
        sb.push(line(1), true);
        assert_eq!(
            sb.pop(),
            Some(StoreEntry {
                line: line(3),
                is_direct: false
            })
        );
        assert_eq!(
            sb.head(),
            Some(StoreEntry {
                line: line(1),
                is_direct: true
            })
        );
        assert_eq!(sb.drains(), 1);
    }

    #[test]
    fn coalescing_does_not_grow() {
        let mut sb = StoreBuffer::new(2);
        for _ in 0..10 {
            assert!(sb.push(line(7), false));
        }
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.merges(), 9);
    }

    #[test]
    fn full_buffer_stalls_new_lines_but_merges_old() {
        let mut sb = StoreBuffer::new(1);
        assert!(sb.push(line(1), false));
        assert!(!sb.push(line(2), false));
        assert_eq!(sb.full_stalls(), 1);
        assert!(sb.push(line(1), false), "merge succeeds even when full");
        assert!(sb.is_full());
    }

    #[test]
    fn contains_for_forwarding() {
        let mut sb = StoreBuffer::new(2);
        sb.push(line(5), false);
        assert!(sb.contains(line(5)));
        assert!(!sb.contains(line(6)));
        sb.pop();
        assert!(!sb.contains(line(5)));
        assert!(sb.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = StoreBuffer::new(0);
    }
}
