//! Property-based tests for the TLB, address space and store buffer.

use std::collections::HashMap;
use std::collections::VecDeque;

use proptest::prelude::*;

use ds_cpu::{AddressSpace, DirectWindow, StoreBuffer, Tlb};
use ds_mem::{LineAddr, PageNum, VirtAddr, PAGE_BYTES};

proptest! {
    /// The TLB agrees with an unbounded reference map: a hit always
    /// returns the reference's translation; capacity is respected.
    #[test]
    fn tlb_is_a_cache_of_the_reference(
        pages in proptest::collection::vec(0u64..40, 1..200),
        capacity in 1usize..16
    ) {
        let mut tlb = Tlb::new(capacity, DirectWindow::paper_default());
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut next_frame = 100u64;
        for &p in &pages {
            let va = VirtAddr::new(p * PAGE_BYTES + 7);
            let look = tlb.lookup(va);
            prop_assert_eq!(look.vpn, PageNum::new(p));
            match look.ppn {
                Some(ppn) => {
                    // A hit must match what we previously installed.
                    prop_assert_eq!(ppn.index(), reference[&p]);
                }
                None => {
                    let frame = *reference.entry(p).or_insert_with(|| {
                        next_frame += 1;
                        next_frame
                    });
                    tlb.fill(PageNum::new(p), PageNum::new(frame));
                }
            }
            prop_assert!(tlb.len() <= capacity);
        }
    }

    /// Demand paging is a function: the same virtual address always
    /// maps to the same physical address; distinct pages get distinct
    /// frames; window pages map into the direct frame pool.
    #[test]
    fn address_space_translation_properties(
        addrs in proptest::collection::vec((0u64..1 << 24, any::<bool>()), 1..100)
    ) {
        let window = DirectWindow::paper_default();
        let mut space = AddressSpace::new(window);
        let mut seen: HashMap<u64, u64> = HashMap::new();
        for &(off, direct) in &addrs {
            let va = if direct {
                window.base().offset(off)
            } else {
                VirtAddr::new(0x1000_0000 + off)
            };
            let pa = space.translate(va);
            prop_assert_eq!(pa.page_offset(), va.page_offset());
            prop_assert_eq!(ds_cpu::vm::pa_is_direct(pa), direct);
            if let Some(&prev) = seen.get(&va.page().index()) {
                prop_assert_eq!(prev, pa.page().index());
            } else {
                prop_assert!(
                    !seen.values().any(|&f| f == pa.page().index()),
                    "frame reused across pages"
                );
                seen.insert(va.page().index(), pa.page().index());
            }
        }
    }

    /// The store buffer matches a reference coalescing FIFO.
    #[test]
    fn store_buffer_matches_reference(
        ops in proptest::collection::vec((0u64..12, any::<bool>()), 1..200),
        capacity in 1usize..8
    ) {
        let mut sb = StoreBuffer::new(capacity);
        let mut reference: VecDeque<u64> = VecDeque::new();
        for &(line_raw, pop) in &ops {
            if pop {
                let got = sb.pop().map(|e| e.line.index());
                prop_assert_eq!(got, reference.pop_front());
            } else {
                let line = LineAddr::from_index(line_raw);
                let accepted = sb.push(line, false);
                if reference.contains(&line_raw) {
                    prop_assert!(accepted, "coalescing push must succeed");
                } else if reference.len() < capacity {
                    prop_assert!(accepted);
                    reference.push_back(line_raw);
                } else {
                    prop_assert!(!accepted, "full buffer must refuse");
                }
            }
            prop_assert_eq!(sb.len(), reference.len());
        }
    }
}
