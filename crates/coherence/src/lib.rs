//! # ds-coherence — the Hammer protocol and the direct-store extension
//!
//! This crate implements the coherence layer of the reproduction:
//!
//! * [`HammerState`] — the five stable states of AMD's Hammer protocol
//!   as described in the paper's §III.F: `MM`, `M`, `O`, `S`, `I`,
//! * [`transition`] / [`transition_table`] — the pure state-transition
//!   function, including the paper's **bold** remote-store additions
//!   (`I/S/M/MM + RemoteStore → I`) and the **blue dashed** GPU-L2 edge
//!   (`I + PutXArrive → MM`); dumping the table regenerates Fig. 3,
//! * [`Agent`] and [`CohMsg`] — the coherent endpoints of the simulated
//!   chip and the messages they exchange,
//! * [`Hub`] — the memory-side broadcast engine that serializes one
//!   transaction per line (Hammer has no directory: requests broadcast
//!   probes to every other cache),
//! * [`ProtocolChecker`] — cross-cache invariant validation used by the
//!   test-suite and by debug builds of the full system model.
//!
//! Timing lives in `ds-core`; everything here is untimed protocol
//! logic, which is what makes it exhaustively testable.
//!
//! # Examples
//!
//! The paper's headline modification — a remote store leaves the CPU
//! cache in `I` and pushes the data out — falls directly out of the
//! transition function:
//!
//! ```
//! use ds_coherence::{transition, Action, HammerState, ProtocolEvent};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let t = transition(HammerState::I, ProtocolEvent::RemoteStore)?;
//! assert_eq!(t.stable_next(), Some(HammerState::I));
//! assert!(t.actions.contains(&Action::ForwardDirect));
//! # Ok(())
//! # }
//! ```

pub mod check;
pub mod hub;
pub mod msg;
pub mod table;

pub use check::{CheckError, ProtocolChecker};
pub use hub::{Hub, HubAction, HubStats, ReqKind};
pub use msg::{Agent, CohMsg, DirectMsg, ProbeKind, GPU_L2_SLICES};
pub use table::{
    transition, transition_table, Action, HammerState, NextState, ProtocolError, ProtocolEvent,
    TableRow, Transition,
};
