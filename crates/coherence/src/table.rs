//! The state-transition function of the modified Hammer protocol
//! (paper Fig. 3).
//!
//! The five stable states follow the paper's §III.F description:
//!
//! * `MM` — exclusive hold, potentially locally modified (conventional
//!   `M`),
//! * `M`  — exclusive but *not* written (conventional `E`); stores are
//!   not allowed in `M` and silently upgrade to `MM`,
//! * `O`  — owns the block, unmodified relative to sharers, sharers may
//!   exist,
//! * `S`  — most-recent correct copy, read-only, other sharers may
//!   exist,
//! * `I`  — invalid.
//!
//! The direct-store modification adds the **RemoteStore** event (bold
//! in Fig. 3): from `I`, `S`, `M` and `MM` the cache forwards the store
//! over the dedicated network and ends in `I`. At the GPU L2, the
//! arriving **PutX** takes the line from `I` to `MM` (the blue dashed
//! edge). Per the paper, remote stores are *not* defined from `O`.

use std::fmt;

use ds_cache::LineState;

/// A stable Hammer protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HammerState {
    /// Invalid.
    I,
    /// Shared, read-only.
    S,
    /// Owned: supplies data, sharers may exist.
    O,
    /// Exclusive clean (conventional E). Stores are not allowed here.
    M,
    /// Exclusive, potentially modified (conventional M).
    MM,
}

impl HammerState {
    /// All stable states, in Fig. 3's order.
    pub const ALL: [HammerState; 5] = [
        HammerState::I,
        HammerState::S,
        HammerState::O,
        HammerState::M,
        HammerState::MM,
    ];

    /// Whether a local load hits in this state.
    pub fn can_read(self) -> bool {
        !matches!(self, HammerState::I)
    }

    /// Whether a local store hits in this state without any protocol
    /// action. Only `MM` allows stores (stores in `M` silently upgrade).
    pub fn can_write(self) -> bool {
        matches!(self, HammerState::MM)
    }

    /// Whether this cache is responsible for supplying data on a probe.
    pub fn is_owner(self) -> bool {
        matches!(self, HammerState::O | HammerState::M | HammerState::MM)
    }

    /// Whether an eviction from this state must write data back.
    pub fn needs_writeback(self) -> bool {
        matches!(self, HammerState::O | HammerState::MM)
    }
}

impl LineState for HammerState {
    fn is_valid(&self) -> bool {
        !matches!(self, HammerState::I)
    }
}

impl fmt::Display for HammerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HammerState::I => "I",
            HammerState::S => "S",
            HammerState::O => "O",
            HammerState::M => "M",
            HammerState::MM => "MM",
        };
        write!(f, "{s}")
    }
}

/// An event applied to a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolEvent {
    /// Local processor load.
    Load,
    /// Local processor store to ordinary memory.
    Store,
    /// Local processor store to the direct-store (GPU-homed) range —
    /// the paper's added event.
    RemoteStore,
    /// Another agent requested read access (the hub's GETS probe).
    ProbeShared,
    /// Another agent requested exclusive access (the hub's GETX probe).
    ProbeInv,
    /// The line was selected as a victim.
    Replacement,
    /// A pushed direct-store line arrived (GPU L2 only) — the paper's
    /// blue dashed transition.
    PutXArrive,
}

impl ProtocolEvent {
    /// All events, request events first.
    pub const ALL: [ProtocolEvent; 7] = [
        ProtocolEvent::Load,
        ProtocolEvent::Store,
        ProtocolEvent::RemoteStore,
        ProtocolEvent::ProbeShared,
        ProtocolEvent::ProbeInv,
        ProtocolEvent::Replacement,
        ProtocolEvent::PutXArrive,
    ];
}

impl fmt::Display for ProtocolEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolEvent::Load => "Load",
            ProtocolEvent::Store => "Store",
            ProtocolEvent::RemoteStore => "RemoteStore",
            ProtocolEvent::ProbeShared => "ProbeShared",
            ProtocolEvent::ProbeInv => "ProbeInv",
            ProtocolEvent::Replacement => "Replacement",
            ProtocolEvent::PutXArrive => "PutXArrive",
        };
        write!(f, "{s}")
    }
}

/// A protocol action the cache controller must perform alongside a
/// state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// The access completes locally.
    Hit,
    /// Issue a GETS request to the hub.
    IssueGetS,
    /// Issue a GETX request to the hub.
    IssueGetX,
    /// Forward the store over the dedicated direct network
    /// (the paper issues a GETX then a PUTX on that network).
    ForwardDirect,
    /// Supply the line's data in the probe reply.
    SupplyData,
    /// Acknowledge the probe without data.
    SendAck,
    /// Write the (dirty) line back toward memory.
    WritebackData,
    /// Drop the line silently.
    SilentDrop,
    /// Install the pushed line (GPU L2 on PutX).
    InstallPushed,
}

/// The next state of a transition: either immediate, or dependent on
/// whether the returned data grants shared or exclusive permission
/// (Hammer grants exclusive on a GETS when no other cache holds a
/// copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NextState {
    /// The state changes immediately.
    Imm(HammerState),
    /// The state is decided by the data response.
    OnData {
        /// State if the response grants shared permission.
        shared: HammerState,
        /// State if the response grants exclusive permission.
        exclusive: HammerState,
    },
}

/// The full outcome of applying an event to a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Where the line ends up.
    pub next: NextState,
    /// What the controller must do.
    pub actions: Vec<Action>,
}

impl Transition {
    fn imm(next: HammerState, actions: &[Action]) -> Self {
        Transition {
            next: NextState::Imm(next),
            actions: actions.to_vec(),
        }
    }

    /// The next state if it does not depend on a data response.
    pub fn stable_next(&self) -> Option<HammerState> {
        match self.next {
            NextState::Imm(s) => Some(s),
            NextState::OnData { .. } => None,
        }
    }
}

/// Error for `(state, event)` pairs the protocol does not define.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolError {
    /// The state the undefined event was applied in.
    pub state: HammerState,
    /// The undefined event.
    pub event: ProtocolEvent,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol does not define event {} in state {}",
            self.event, self.state
        )
    }
}

impl std::error::Error for ProtocolError {}

/// Applies `event` to a line in `state`.
///
/// # Errors
///
/// Returns [`ProtocolError`] for pairs the protocol leaves undefined:
/// `RemoteStore` from `O` (the paper only adds remote stores from
/// `I`, `S`, `M` and `MM`) and `PutXArrive` from any state but `I`
/// (the hub guarantees pushes find the line invalid by first issuing
/// GETX).
pub fn transition(state: HammerState, event: ProtocolEvent) -> Result<Transition, ProtocolError> {
    use Action::*;
    use HammerState::*;
    use ProtocolEvent::*;

    let t = match (state, event) {
        // ----- loads -----
        (I, Load) => Transition {
            next: NextState::OnData {
                shared: S,
                exclusive: M,
            },
            actions: vec![IssueGetS],
        },
        (S, Load) | (O, Load) | (M, Load) | (MM, Load) => Transition::imm(state, &[Hit]),

        // ----- ordinary stores -----
        (I, Store) => Transition::imm(MM, &[IssueGetX]),
        (S, Store) | (O, Store) => Transition::imm(MM, &[IssueGetX]),
        // Stores are not allowed in M: silent local upgrade, no traffic.
        (M, Store) => Transition::imm(MM, &[Hit]),
        (MM, Store) => Transition::imm(MM, &[Hit]),

        // ----- remote (direct) stores: the bold Fig. 3 additions -----
        (I, RemoteStore) => Transition::imm(I, &[ForwardDirect]),
        (S, RemoteStore) | (M, RemoteStore) | (MM, RemoteStore) => {
            Transition::imm(I, &[ForwardDirect])
        }
        (O, RemoteStore) => return Err(ProtocolError { state, event }),

        // ----- probes -----
        (I, ProbeShared) | (I, ProbeInv) => Transition::imm(I, &[SendAck]),
        (S, ProbeShared) => Transition::imm(S, &[SendAck]),
        (S, ProbeInv) => Transition::imm(I, &[SendAck]),
        (O, ProbeShared) => Transition::imm(O, &[SupplyData]),
        (O, ProbeInv) => Transition::imm(I, &[SupplyData]),
        (M, ProbeShared) => Transition::imm(O, &[SupplyData]),
        (M, ProbeInv) => Transition::imm(I, &[SupplyData]),
        (MM, ProbeShared) => Transition::imm(O, &[SupplyData]),
        (MM, ProbeInv) => Transition::imm(I, &[SupplyData]),

        // ----- replacement -----
        (I, Replacement) => return Err(ProtocolError { state, event }),
        (S, Replacement) => Transition::imm(I, &[SilentDrop]),
        // M is clean-exclusive: memory is up to date, drop silently.
        (M, Replacement) => Transition::imm(I, &[SilentDrop]),
        (O, Replacement) | (MM, Replacement) => Transition::imm(I, &[WritebackData]),

        // ----- direct-store push at the GPU L2: the blue dashed edge -----
        (I, PutXArrive) => Transition::imm(MM, &[InstallPushed]),
        (_, PutXArrive) => return Err(ProtocolError { state, event }),
    };
    Ok(t)
}

/// One row of the printable protocol table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRow {
    /// Starting stable state.
    pub state: HammerState,
    /// Applied event.
    pub event: ProtocolEvent,
    /// The resulting transition (`None` for undefined pairs).
    pub outcome: Option<Transition>,
    /// Whether this row is part of the paper's direct-store
    /// modification: bold (`RemoteStore` rows) or the blue dashed GPU
    /// L2 edge (`PutXArrive`).
    pub is_direct_store_addition: bool,
}

/// Enumerates the complete `(state, event)` table — the machine-checked
/// equivalent of the paper's Fig. 3 diagram. The `fig3_protocol`
/// binary in `ds-bench` pretty-prints it.
pub fn transition_table() -> Vec<TableRow> {
    let mut rows = Vec::new();
    for &state in &HammerState::ALL {
        for &event in &ProtocolEvent::ALL {
            let outcome = transition(state, event).ok();
            rows.push(TableRow {
                state,
                event,
                outcome,
                is_direct_store_addition: matches!(
                    event,
                    ProtocolEvent::RemoteStore | ProtocolEvent::PutXArrive
                ),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use Action::*;
    use HammerState::*;
    use ProtocolEvent::*;

    #[test]
    fn loads_hit_in_every_valid_state() {
        for s in [S, O, M, MM] {
            let t = transition(s, Load).unwrap();
            assert_eq!(t.stable_next(), Some(s));
            assert_eq!(t.actions, vec![Hit]);
        }
    }

    #[test]
    fn load_miss_state_depends_on_response() {
        let t = transition(I, Load).unwrap();
        assert_eq!(
            t.next,
            NextState::OnData {
                shared: S,
                exclusive: M
            }
        );
        assert_eq!(t.actions, vec![IssueGetS]);
    }

    #[test]
    fn stores_always_end_in_mm() {
        for s in [I, S, O, M, MM] {
            let t = transition(s, Store).unwrap();
            assert_eq!(t.stable_next(), Some(MM));
        }
    }

    #[test]
    fn store_in_m_is_a_silent_upgrade() {
        let t = transition(M, Store).unwrap();
        assert_eq!(
            t.actions,
            vec![Hit],
            "E-like state upgrades without traffic"
        );
    }

    #[test]
    fn remote_stores_always_end_invalid() {
        // The paper: "All remote stores that begin from these states
        // always go to state I."
        for s in [I, S, M, MM] {
            let t = transition(s, RemoteStore).unwrap();
            assert_eq!(t.stable_next(), Some(I));
            assert_eq!(t.actions, vec![ForwardDirect]);
        }
    }

    #[test]
    fn remote_store_from_o_is_undefined() {
        let e = transition(O, RemoteStore).unwrap_err();
        assert_eq!(e.state, O);
        assert!(e.to_string().contains("RemoteStore"));
    }

    #[test]
    fn putx_installs_only_from_i() {
        let t = transition(I, PutXArrive).unwrap();
        assert_eq!(t.stable_next(), Some(MM));
        assert_eq!(t.actions, vec![InstallPushed]);
        for s in [S, O, M, MM] {
            assert!(transition(s, PutXArrive).is_err());
        }
    }

    #[test]
    fn owners_supply_data_on_probes() {
        for s in [O, M, MM] {
            assert!(s.is_owner());
            let t = transition(s, ProbeInv).unwrap();
            assert_eq!(t.actions, vec![SupplyData]);
            assert_eq!(t.stable_next(), Some(I));
        }
        let t = transition(S, ProbeInv).unwrap();
        assert_eq!(t.actions, vec![SendAck]);
    }

    #[test]
    fn probe_shared_downgrades_exclusives_to_owned() {
        for s in [M, MM] {
            let t = transition(s, ProbeShared).unwrap();
            assert_eq!(t.stable_next(), Some(O));
        }
        // O keeps ownership.
        assert_eq!(transition(O, ProbeShared).unwrap().stable_next(), Some(O));
    }

    #[test]
    fn replacement_writebacks_match_dirtiness() {
        assert_eq!(
            transition(MM, Replacement).unwrap().actions,
            vec![WritebackData]
        );
        assert_eq!(
            transition(O, Replacement).unwrap().actions,
            vec![WritebackData]
        );
        assert_eq!(
            transition(M, Replacement).unwrap().actions,
            vec![SilentDrop]
        );
        assert_eq!(
            transition(S, Replacement).unwrap().actions,
            vec![SilentDrop]
        );
        assert!(transition(I, Replacement).is_err());
    }

    #[test]
    fn permissions_are_consistent() {
        assert!(!I.can_read());
        for s in [S, O, M, MM] {
            assert!(s.can_read());
        }
        for s in [I, S, O, M] {
            assert!(!s.can_write());
        }
        assert!(MM.can_write());
        assert!(MM.needs_writeback());
        assert!(O.needs_writeback());
        assert!(!M.needs_writeback());
        assert!(!S.needs_writeback());
    }

    #[test]
    fn table_covers_full_cross_product() {
        let table = transition_table();
        assert_eq!(table.len(), 5 * 7);
        let additions: Vec<&TableRow> = table
            .iter()
            .filter(|r| r.is_direct_store_addition && r.outcome.is_some())
            .collect();
        // 4 bold RemoteStore rows + 1 blue PutXArrive row.
        assert_eq!(additions.len(), 5);
    }

    #[test]
    fn display_names_are_short() {
        assert_eq!(MM.to_string(), "MM");
        assert_eq!(I.to_string(), "I");
        assert_eq!(RemoteStore.to_string(), "RemoteStore");
    }
}
