//! Cross-cache coherence invariant checking.
//!
//! The timed system model snapshots the state of every coherent cache
//! and hands it to [`ProtocolChecker::check`] (after every simulated
//! phase in tests, and under `debug_assertions` in the full runs).
//! Violations indicate protocol bugs, not workload behaviour.

use std::collections::HashMap;

use ds_mem::LineAddr;

use crate::{Agent, HammerState};

/// A coherence invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckError {
    /// More than one agent holds the line in an owner state (`O`, `M`,
    /// `MM`).
    MultipleOwners {
        /// The offending line.
        line: LineAddr,
        /// Every agent holding the line in an owner state.
        owners: Vec<Agent>,
    },
    /// An agent holds the line exclusively (`M`/`MM`) while another
    /// agent holds any valid copy.
    ExclusiveWithSharers {
        /// The offending line.
        line: LineAddr,
        /// The exclusive holder.
        exclusive: Agent,
        /// The other holder.
        other: Agent,
    },
    /// A direct-store (GPU-homed) line is valid in a CPU cache, which
    /// §III.E forbids ("this special data range can never be cached on
    /// the CPU side").
    DirectLineInCpuCache {
        /// The offending line.
        line: LineAddr,
        /// Its state in the CPU cache.
        state: HammerState,
    },
    /// A GPU-homed line is cached by the wrong L2 slice.
    WrongSlice {
        /// The offending line.
        line: LineAddr,
        /// The slice that holds it.
        holder: Agent,
        /// The slice that homes it.
        home: Agent,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::MultipleOwners { line, owners } => {
                write!(f, "{line} has multiple owners: ")?;
                for (i, o) in owners.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{o}")?;
                }
                Ok(())
            }
            CheckError::ExclusiveWithSharers {
                line,
                exclusive,
                other,
            } => write!(
                f,
                "{line} exclusive in {exclusive} but also valid in {other}"
            ),
            CheckError::DirectLineInCpuCache { line, state } => {
                write!(f, "direct-store {line} cached on CPU in state {state}")
            }
            CheckError::WrongSlice { line, holder, home } => {
                write!(f, "{line} held by {holder} but homed at {home}")
            }
        }
    }
}

impl std::error::Error for CheckError {}

/// Validates global coherence invariants over a snapshot of every
/// coherent cache's `(line, state)` pairs.
///
/// # Examples
///
/// ```
/// use ds_coherence::{Agent, HammerState, ProtocolChecker};
/// use ds_mem::LineAddr;
///
/// let mut checker = ProtocolChecker::new();
/// let l = LineAddr::from_index(4); // homed at slice 0
/// checker.observe(Agent::CpuL2, l, HammerState::S);
/// checker.observe(Agent::GpuL2(0), l, HammerState::S);
/// assert!(checker.check().is_empty(), "two sharers are fine");
/// ```
#[derive(Debug, Default)]
pub struct ProtocolChecker {
    holders: HashMap<LineAddr, Vec<(Agent, HammerState)>>,
    direct_test: Option<fn(LineAddr) -> bool>,
}

impl ProtocolChecker {
    /// Creates an empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a predicate identifying direct-store (GPU-homed)
    /// lines, enabling the CPU-cache exclusion check.
    pub fn with_direct_range(mut self, is_direct: fn(LineAddr) -> bool) -> Self {
        self.direct_test = Some(is_direct);
        self
    }

    /// Records that `agent` holds `line` in `state`. Invalid states are
    /// ignored.
    pub fn observe(&mut self, agent: Agent, line: LineAddr, state: HammerState) {
        if state != HammerState::I {
            self.holders.entry(line).or_default().push((agent, state));
        }
    }

    /// Runs all invariants, returning every violation found.
    pub fn check(&self) -> Vec<CheckError> {
        let mut errors = Vec::new();
        for (&line, holders) in &self.holders {
            let owners: Vec<Agent> = holders
                .iter()
                .filter(|(_, s)| s.is_owner())
                .map(|&(a, _)| a)
                .collect();
            if owners.len() > 1 {
                errors.push(CheckError::MultipleOwners {
                    line,
                    owners: owners.clone(),
                });
            }
            for &(agent, state) in holders {
                if matches!(state, HammerState::M | HammerState::MM) {
                    for &(other, _) in holders.iter().filter(|&&(a, _)| a != agent) {
                        errors.push(CheckError::ExclusiveWithSharers {
                            line,
                            exclusive: agent,
                            other,
                        });
                    }
                }
                if let Some(is_direct) = self.direct_test {
                    if is_direct(line) {
                        if agent == Agent::CpuL2 {
                            errors.push(CheckError::DirectLineInCpuCache { line, state });
                        }
                        let home = Agent::slice_of(line);
                        if matches!(agent, Agent::GpuL2(_)) && agent != home {
                            errors.push(CheckError::WrongSlice {
                                line,
                                holder: agent,
                                home,
                            });
                        }
                    }
                }
            }
        }
        errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn clean_sharing_passes() {
        let mut c = ProtocolChecker::new();
        c.observe(Agent::CpuL2, line(0), HammerState::S);
        c.observe(Agent::GpuL2(0), line(0), HammerState::S);
        c.observe(Agent::GpuL2(1), line(1), HammerState::MM);
        assert!(c.check().is_empty());
    }

    #[test]
    fn owner_plus_sharers_passes() {
        let mut c = ProtocolChecker::new();
        c.observe(Agent::CpuL2, line(0), HammerState::O);
        c.observe(Agent::GpuL2(0), line(0), HammerState::S);
        assert!(c.check().is_empty());
    }

    #[test]
    fn two_owners_flagged() {
        let mut c = ProtocolChecker::new();
        c.observe(Agent::CpuL2, line(0), HammerState::O);
        c.observe(Agent::GpuL2(0), line(0), HammerState::MM);
        let errs = c.check();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::MultipleOwners { .. })));
    }

    #[test]
    fn exclusive_with_sharer_flagged() {
        let mut c = ProtocolChecker::new();
        c.observe(Agent::CpuL2, line(0), HammerState::MM);
        c.observe(Agent::GpuL2(0), line(0), HammerState::S);
        let errs = c.check();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::ExclusiveWithSharers { .. })));
    }

    #[test]
    fn direct_line_in_cpu_cache_flagged() {
        let mut c = ProtocolChecker::new().with_direct_range(|_| true);
        c.observe(Agent::CpuL2, line(0), HammerState::S);
        let errs = c.check();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::DirectLineInCpuCache { .. })));
    }

    #[test]
    fn direct_line_in_wrong_slice_flagged() {
        let mut c = ProtocolChecker::new().with_direct_range(|_| true);
        // Line 0 homes at slice 0; put it in slice 2.
        c.observe(Agent::GpuL2(2), line(0), HammerState::MM);
        let errs = c.check();
        assert!(errs
            .iter()
            .any(|e| matches!(e, CheckError::WrongSlice { .. })));
    }

    #[test]
    fn invalid_states_are_ignored() {
        let mut c = ProtocolChecker::new();
        c.observe(Agent::CpuL2, line(0), HammerState::I);
        c.observe(Agent::GpuL2(0), line(0), HammerState::MM);
        assert!(c.check().is_empty());
    }

    #[test]
    fn error_messages_mention_line() {
        let e = CheckError::MultipleOwners {
            line: line(2),
            owners: vec![Agent::CpuL2, Agent::GpuL2(0)],
        };
        assert!(e.to_string().contains("0x100"));
        assert!(e.to_string().contains("cpu-l2"));
    }
}
