//! The memory-side broadcast hub.
//!
//! Hammer keeps no directory: a request reaching the memory controller
//! broadcasts probes to every other cache and speculatively fetches
//! from DRAM; the hub aggregates probe replies and grants the data to
//! the requester with shared or exclusive permission. One transaction
//! per line is in flight at a time — conflicting requests queue in
//! arrival order, which is how the protocol serializes racing writers.
//!
//! The hub is an *untimed* state machine: each `on_*` method returns
//! the [`HubAction`]s the surrounding timed model must perform
//! (sending probes over the network, starting DRAM accesses, granting
//! data). This keeps the protocol logic deterministic and directly
//! unit-testable.

use std::collections::{HashMap, HashSet, VecDeque};

use ds_mem::LineAddr;
use ds_sim::Counter;

use crate::{Agent, ProbeKind};

/// The two demand request kinds the hub serves. Writebacks
/// ([`Hub::on_put`]) are not transactions — they complete immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// Read request; may be granted exclusive if no cache holds a copy.
    GetS,
    /// Exclusive (write) request; every other copy is invalidated.
    GetX,
}

impl std::fmt::Display for ReqKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReqKind::GetS => write!(f, "GETS"),
            ReqKind::GetX => write!(f, "GETX"),
        }
    }
}

/// An action the timed model must perform on the hub's behalf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HubAction {
    /// Send a probe to a cache over the coherence network.
    SendProbe {
        /// Destination cache.
        to: Agent,
        /// Probed line.
        line: LineAddr,
        /// Shared or invalidate.
        kind: ProbeKind,
    },
    /// Begin a speculative DRAM read for the line on behalf of
    /// transaction `txn` (echoed back via [`Hub::on_mem_done`] so
    /// stale completions for finished transactions are discarded).
    StartMemRead {
        /// Fetched line.
        line: LineAddr,
        /// Transaction identifier.
        txn: u64,
    },
    /// Write the line back to DRAM (writeback or dirty probe data).
    MemWrite {
        /// Written line.
        line: LineAddr,
    },
    /// Grant the line to the requester.
    SendData {
        /// Destination (the transaction's requester).
        to: Agent,
        /// Granted line.
        line: LineAddr,
        /// Whether exclusive permission is granted.
        exclusive: bool,
        /// Whether DRAM supplied the data (false: a cache owner did).
        from_mem: bool,
    },
}

/// Aggregate hub statistics.
#[derive(Debug, Clone)]
pub struct HubStats {
    /// Transactions started (GETS + GETX).
    pub transactions: Counter,
    /// Probes broadcast.
    pub probes_sent: Counter,
    /// Speculative DRAM reads issued.
    pub mem_reads: Counter,
    /// DRAM writes issued (writebacks + dirty probe data).
    pub mem_writes: Counter,
    /// Requests that queued behind an in-flight same-line transaction.
    pub conflicts: Counter,
    /// Speculative DRAM reads whose result was discarded because a
    /// cache owner supplied the data first.
    pub mem_discards: Counter,
    /// Writebacks arriving while a transaction on the line was in
    /// flight.
    pub racy_writebacks: Counter,
    /// Probes the directory filter suppressed (always zero in
    /// broadcast mode).
    pub probes_filtered: Counter,
}

impl HubStats {
    fn new() -> Self {
        HubStats {
            transactions: Counter::new("hub_transactions"),
            probes_sent: Counter::new("hub_probes_sent"),
            mem_reads: Counter::new("hub_mem_reads"),
            mem_writes: Counter::new("hub_mem_writes"),
            conflicts: Counter::new("hub_conflicts"),
            mem_discards: Counter::new("hub_mem_discards"),
            racy_writebacks: Counter::new("hub_racy_writebacks"),
            probes_filtered: Counter::new("hub_probes_filtered"),
        }
    }
}

#[derive(Debug)]
struct Txn {
    id: u64,
    kind: ReqKind,
    upgrade: bool,
    requester: Agent,
    pending_probes: usize,
    owner_data: bool,
    any_copy_retained: bool,
    mem_done: bool,
    data_sent: bool,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    kind: ReqKind,
    upgrade: bool,
    requester: Agent,
}

/// The broadcast hub. See the [module documentation](self) for the
/// protocol it implements and `ds-core` for the timed embedding.
///
/// # Examples
///
/// A GETS finding no cached copy is granted exclusive from memory:
///
/// ```
/// use ds_coherence::{Agent, Hub, HubAction, ReqKind};
/// use ds_mem::LineAddr;
///
/// let mut hub = Hub::new();
/// let line = LineAddr::from_index(7);
/// let actions = hub.on_request(ReqKind::GetS, line, Agent::CpuL2);
/// // Four probes (one per GPU L2 slice) plus the speculative memory read.
/// assert_eq!(actions.len(), 5);
/// for a in &actions[..4] {
///     assert!(matches!(a, HubAction::SendProbe { .. }));
/// }
/// // All probes miss...
/// for slice in 0..4 {
///     let done = hub.on_probe_reply(line, Agent::GpuL2(slice), false, false);
///     assert!(done.is_empty());
/// }
/// // ...so the memory data completes the transaction, exclusively.
/// let grant = hub.on_mem_done(line, 0);
/// assert_eq!(
///     grant,
///     vec![HubAction::SendData {
///         to: Agent::CpuL2,
///         line,
///         exclusive: true,
///         from_mem: true
///     }]
/// );
/// ```
#[derive(Debug)]
pub struct Hub {
    inflight: HashMap<LineAddr, Txn>,
    queued: HashMap<LineAddr, VecDeque<Pending>>,
    next_txn: u64,
    /// When `Some`, the hub runs in *directory-filtered* mode: it
    /// tracks a conservative superset of each line's holders and
    /// probes only those, instead of broadcasting — the
    /// directory-style optimization of heterogeneous system coherence
    /// (Power et al., MICRO'13), which the paper discusses as related
    /// work. `None` is faithful Hammer broadcast.
    directory: Option<HashMap<LineAddr, HashSet<Agent>>>,
    stats: HubStats,
}

impl Hub {
    /// Creates an idle hub.
    pub fn new() -> Self {
        Hub {
            inflight: HashMap::new(),
            queued: HashMap::new(),
            next_txn: 0,
            directory: None,
            stats: HubStats::new(),
        }
    }

    /// Creates a hub with the directory filter enabled: probes go only
    /// to caches the directory believes may hold the line, eliminating
    /// most broadcast traffic (see the `ablate_directory` study).
    pub fn new_with_directory() -> Self {
        let mut hub = Self::new();
        hub.directory = Some(HashMap::new());
        hub
    }

    /// Whether the directory filter is active.
    pub fn has_directory(&self) -> bool {
        self.directory.is_some()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &HubStats {
        &self.stats
    }

    /// Whether a transaction on `line` is in flight.
    pub fn busy(&self, line: LineAddr) -> bool {
        self.inflight.contains_key(&line)
    }

    /// Number of transactions currently in flight.
    pub fn inflight_count(&self) -> usize {
        self.inflight.len()
    }

    /// Handles a GETS/GETX arriving from `requester`.
    ///
    /// Returns the probe broadcast plus speculative memory read, or
    /// nothing if the request queued behind an in-flight transaction.
    pub fn on_request(
        &mut self,
        kind: ReqKind,
        line: LineAddr,
        requester: Agent,
    ) -> Vec<HubAction> {
        self.on_request_upgrade(kind, line, requester, false)
    }

    /// Like [`Hub::on_request`], with the GETX upgrade flag: an
    /// upgrading requester already holds the data, so the hub skips the
    /// speculative memory fetch and grants as soon as every probe has
    /// been acknowledged.
    pub fn on_request_upgrade(
        &mut self,
        kind: ReqKind,
        line: LineAddr,
        requester: Agent,
        upgrade: bool,
    ) -> Vec<HubAction> {
        debug_assert!(!upgrade || kind == ReqKind::GetX, "only GETX can upgrade");
        if self.busy(line) {
            self.stats.conflicts.incr();
            self.queued.entry(line).or_default().push_back(Pending {
                kind,
                upgrade,
                requester,
            });
            return Vec::new();
        }
        self.start(kind, line, requester, upgrade)
    }

    fn start(
        &mut self,
        kind: ReqKind,
        line: LineAddr,
        requester: Agent,
        upgrade: bool,
    ) -> Vec<HubAction> {
        self.stats.transactions.incr();
        let probe_kind = match kind {
            ReqKind::GetS => ProbeKind::Shared,
            ReqKind::GetX => ProbeKind::Invalidate,
        };
        let mut actions = Vec::new();
        let mut pending = 0;
        for cache in Agent::caches() {
            if cache == requester {
                continue;
            }
            if let Some(dir) = &self.directory {
                let may_hold = dir.get(&line).is_some_and(|h| h.contains(&cache));
                if !may_hold {
                    self.stats.probes_filtered.incr();
                    continue;
                }
            }
            actions.push(HubAction::SendProbe {
                to: cache,
                line,
                kind: probe_kind,
            });
            pending += 1;
        }
        self.stats.probes_sent.add(pending as u64);
        let id = self.next_txn;
        self.next_txn += 1;
        if !upgrade {
            actions.push(HubAction::StartMemRead { line, txn: id });
            self.stats.mem_reads.incr();
        }
        self.inflight.insert(
            line,
            Txn {
                id,
                kind,
                upgrade,
                requester,
                pending_probes: pending,
                owner_data: false,
                any_copy_retained: false,
                mem_done: false,
                data_sent: false,
            },
        );
        actions
    }

    /// Handles a probe reply.
    ///
    /// `with_data` marks an owner response; `retains_copy` marks a
    /// sharer that keeps its copy (relevant to GETS exclusivity).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is in flight for `line` — probe replies
    /// can only exist for lines the hub probed.
    pub fn on_probe_reply(
        &mut self,
        line: LineAddr,
        _from: Agent,
        with_data: bool,
        retains_copy: bool,
    ) -> Vec<HubAction> {
        let txn = self
            .inflight
            .get_mut(&line)
            .unwrap_or_else(|| panic!("probe reply for idle {line}"));
        assert!(txn.pending_probes > 0, "excess probe reply for {line}");
        txn.pending_probes -= 1;
        txn.owner_data |= with_data;
        txn.any_copy_retained |= retains_copy;
        let invalidating = txn.kind == ReqKind::GetX;
        let mut actions = Vec::new();
        if with_data && invalidating {
            // The owner invalidated: its dirty data must reach memory
            // (on a GETS the owner retains the line in O and memory
            // may stay stale).
            actions.push(HubAction::MemWrite { line });
            self.stats.mem_writes.incr();
        }
        actions.extend(self.try_grant(line));
        actions
    }

    /// Handles the completion of the speculative DRAM read issued by
    /// transaction `txn`. Completions for transactions that already
    /// finished (a cache owner supplied the data and the requester
    /// unblocked first) are counted and discarded.
    pub fn on_mem_done(&mut self, line: LineAddr, txn: u64) -> Vec<HubAction> {
        match self.inflight.get_mut(&line) {
            Some(t) if t.id == txn => {
                t.mem_done = true;
                if t.owner_data {
                    self.stats.mem_discards.incr();
                }
                self.try_grant(line)
            }
            _ => {
                self.stats.mem_discards.incr();
                Vec::new()
            }
        }
    }

    fn try_grant(&mut self, line: LineAddr) -> Vec<HubAction> {
        let Some(txn) = self.inflight.get_mut(&line) else {
            return Vec::new();
        };
        if txn.data_sent || txn.pending_probes > 0 {
            return Vec::new();
        }
        let ready = txn.owner_data || txn.mem_done || txn.upgrade;
        if !ready {
            return Vec::new();
        }
        txn.data_sent = true;
        let exclusive = match txn.kind {
            ReqKind::GetX => true,
            ReqKind::GetS => !txn.any_copy_retained && !txn.owner_data,
        };
        let (requester, kind) = (txn.requester, txn.kind);
        if let Some(dir) = &mut self.directory {
            let holders = dir.entry(line).or_default();
            if kind == ReqKind::GetX {
                holders.clear();
            }
            holders.insert(requester);
        }
        vec![HubAction::SendData {
            to: requester,
            line,
            exclusive,
            from_mem: !txn.owner_data,
        }]
    }

    /// Handles a writeback (PUT). Completes immediately; if a
    /// transaction on the line is in flight the write still lands (the
    /// reproduction tracks states, not data values — see `DESIGN.md`).
    pub fn on_put(&mut self, line: LineAddr, dirty: bool, requester: Agent) -> Vec<HubAction> {
        if self.busy(line) {
            self.stats.racy_writebacks.incr();
        }
        if let Some(dir) = &mut self.directory {
            if let Some(holders) = dir.get_mut(&line) {
                holders.remove(&requester);
                if holders.is_empty() {
                    dir.remove(&line);
                }
            }
        }
        if dirty {
            self.stats.mem_writes.incr();
            vec![HubAction::MemWrite { line }]
        } else {
            Vec::new()
        }
    }

    /// Handles the requester's unblock, freeing the line and starting
    /// the next queued request, if any.
    ///
    /// # Panics
    ///
    /// Panics if no transaction is in flight for `line` or its data
    /// grant has not been sent yet.
    pub fn on_unblock(&mut self, line: LineAddr) -> Vec<HubAction> {
        let txn = self
            .inflight
            .remove(&line)
            .unwrap_or_else(|| panic!("unblock for idle {line}"));
        assert!(txn.data_sent, "unblock before data grant for {line}");
        let next = self.queued.get_mut(&line).and_then(VecDeque::pop_front);
        if self.queued.get(&line).is_some_and(VecDeque::is_empty) {
            self.queued.remove(&line);
        }
        match next {
            Some(p) => self.start(p.kind, line, p.requester, p.upgrade),
            None => Vec::new(),
        }
    }
}

impl Default for Hub {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    fn reply_all_misses(hub: &mut Hub, l: LineAddr, except: Agent) -> Vec<HubAction> {
        let mut acts = Vec::new();
        for cache in Agent::caches() {
            if cache != except {
                acts.extend(hub.on_probe_reply(l, cache, false, false));
            }
        }
        acts
    }

    #[test]
    fn gets_with_no_copies_grants_exclusive_from_memory() {
        let mut hub = Hub::new();
        let l = line(1);
        let acts = hub.on_request(ReqKind::GetS, l, Agent::CpuL2);
        let probes = acts
            .iter()
            .filter(|a| matches!(a, HubAction::SendProbe { .. }))
            .count();
        assert_eq!(probes, 4, "broadcast to all four GPU slices");
        assert!(acts.contains(&HubAction::StartMemRead { line: l, txn: 0 }));
        assert!(reply_all_misses(&mut hub, l, Agent::CpuL2).is_empty());
        let grant = hub.on_mem_done(l, 0);
        assert_eq!(
            grant,
            vec![HubAction::SendData {
                to: Agent::CpuL2,
                line: l,
                exclusive: true,
                from_mem: true
            }]
        );
    }

    #[test]
    fn gets_with_owner_grants_shared_and_writes_back() {
        let mut hub = Hub::new();
        let l = line(2);
        hub.on_request(ReqKind::GetS, l, Agent::GpuL2(2));
        // CPU L2 is the owner and keeps an O copy: no memory write is
        // needed, the dirty data stays with the owner.
        let acts = hub.on_probe_reply(l, Agent::CpuL2, true, true);
        assert!(!acts.contains(&HubAction::MemWrite { line: l }));
        // Remaining slices miss.
        let mut grant = Vec::new();
        for s in [0u8, 1, 3] {
            grant.extend(hub.on_probe_reply(l, Agent::GpuL2(s), false, false));
        }
        assert_eq!(
            grant,
            vec![HubAction::SendData {
                to: Agent::GpuL2(2),
                line: l,
                exclusive: false,
                from_mem: false
            }]
        );
        // The late memory completion is discarded.
        assert!(hub.on_mem_done(l, 0).is_empty());
        assert_eq!(hub.stats().mem_discards.value(), 1);
    }

    #[test]
    fn getx_is_always_exclusive() {
        let mut hub = Hub::new();
        let l = line(3);
        hub.on_request(ReqKind::GetX, l, Agent::CpuL2);
        // A slice had the line shared; it invalidates (retains nothing).
        hub.on_probe_reply(l, Agent::GpuL2(3), false, false);
        for s in [0u8, 1, 2] {
            hub.on_probe_reply(l, Agent::GpuL2(s), false, false);
        }
        let grant = hub.on_mem_done(l, 0);
        assert!(matches!(
            grant[..],
            [HubAction::SendData {
                exclusive: true,
                ..
            }]
        ));
    }

    #[test]
    fn mem_before_probes_waits_for_probes() {
        let mut hub = Hub::new();
        let l = line(4);
        hub.on_request(ReqKind::GetS, l, Agent::CpuL2);
        assert!(
            hub.on_mem_done(l, 0).is_empty(),
            "must wait for all probe replies"
        );
        let grant = reply_all_misses(&mut hub, l, Agent::CpuL2);
        assert_eq!(grant.len(), 1);
    }

    #[test]
    fn conflicting_request_queues_until_unblock() {
        let mut hub = Hub::new();
        let l = line(5);
        hub.on_request(ReqKind::GetS, l, Agent::CpuL2);
        let second = hub.on_request(ReqKind::GetX, l, Agent::GpuL2(1));
        assert!(second.is_empty());
        assert_eq!(hub.stats().conflicts.value(), 1);

        reply_all_misses(&mut hub, l, Agent::CpuL2);
        hub.on_mem_done(l, 0);
        let restarted = hub.on_unblock(l);
        // The queued GETX starts: probes to CpuL2 and the other slices.
        let probes: Vec<&HubAction> = restarted
            .iter()
            .filter(|a| matches!(a, HubAction::SendProbe { .. }))
            .collect();
        assert_eq!(probes.len(), 4);
        assert!(hub.busy(l));
    }

    #[test]
    fn clean_writeback_produces_no_mem_traffic() {
        let mut hub = Hub::new();
        assert!(hub.on_put(line(6), false, Agent::CpuL2).is_empty());
        assert_eq!(
            hub.on_put(line(6), true, Agent::CpuL2),
            vec![HubAction::MemWrite { line: line(6) }]
        );
    }

    #[test]
    fn racy_writeback_is_counted() {
        let mut hub = Hub::new();
        let l = line(7);
        hub.on_request(ReqKind::GetS, l, Agent::CpuL2);
        hub.on_put(l, true, Agent::GpuL2(0));
        assert_eq!(hub.stats().racy_writebacks.value(), 1);
    }

    #[test]
    fn stale_mem_completion_is_discarded() {
        let mut hub = Hub::new();
        let l = line(10);
        hub.on_request(ReqKind::GetS, l, Agent::CpuL2);
        // Owner supplies data; probes complete; requester unblocks.
        hub.on_probe_reply(l, Agent::CpuL2, true, true);
        for s in [0u8, 1, 2] {
            hub.on_probe_reply(l, Agent::GpuL2(s), false, false);
        }
        hub.on_unblock(l);
        // The speculative DRAM read for txn 0 lands late: ignored.
        assert!(hub.on_mem_done(l, 0).is_empty());
        assert!(hub.stats().mem_discards.value() >= 1);
        // A new transaction on the same line is unaffected.
        hub.on_request(ReqKind::GetX, l, Agent::GpuL2(0));
        assert!(hub.busy(l));
        assert!(hub.on_mem_done(l, 0).is_empty(), "wrong txn id ignored");
    }

    #[test]
    fn directory_filters_probes_after_learning() {
        let mut hub = Hub::new_with_directory();
        let l = line(20);
        // First GETS: directory knows nothing -> probes everyone...
        // no: it probes NOBODY (empty directory means no holder can
        // exist, memory is authoritative on first touch).
        let acts = hub.on_request(ReqKind::GetS, l, Agent::CpuL2);
        let probes = acts
            .iter()
            .filter(|a| matches!(a, HubAction::SendProbe { .. }))
            .count();
        assert_eq!(probes, 0, "cold line needs no probes under a directory");
        let grant = hub.on_mem_done(l, 0);
        assert!(matches!(grant[..], [HubAction::SendData { .. }]));
        hub.on_unblock(l);

        // Now the GPU requests exclusive: only the known holder (CPU)
        // is probed.
        let acts = hub.on_request(ReqKind::GetX, l, Agent::GpuL2(0));
        let probed: Vec<Agent> = acts
            .iter()
            .filter_map(|a| match a {
                HubAction::SendProbe { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(probed, vec![Agent::CpuL2]);
        assert!(hub.stats().probes_filtered.value() >= 7);
        hub.on_probe_reply(l, Agent::CpuL2, true, false);
        let grant = hub.on_mem_done(l, 1);
        // Owner data arrived; memory completion may or may not carry
        // the grant depending on ordering — drive to completion.
        let _ = grant;
        hub.on_unblock(l);

        // After the GETX the CPU is no longer a holder.
        let acts = hub.on_request(ReqKind::GetS, l, Agent::CpuL2);
        let probed: Vec<Agent> = acts
            .iter()
            .filter_map(|a| match a {
                HubAction::SendProbe { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(
            probed,
            vec![Agent::GpuL2(0)],
            "only the new owner is probed"
        );
    }

    #[test]
    fn directory_forgets_evicted_holders() {
        let mut hub = Hub::new_with_directory();
        let l = line(21);
        hub.on_request(ReqKind::GetS, l, Agent::GpuL2(2));
        hub.on_mem_done(l, 0);
        hub.on_unblock(l);
        // The slice writes the line back: holder forgotten.
        hub.on_put(l, true, Agent::GpuL2(2));
        let acts = hub.on_request(ReqKind::GetS, l, Agent::CpuL2);
        assert!(
            !acts
                .iter()
                .any(|a| matches!(a, HubAction::SendProbe { .. })),
            "evicted holder must not be probed"
        );
    }

    #[test]
    fn broadcast_mode_reports_no_filtering() {
        let mut hub = Hub::new();
        assert!(!hub.has_directory());
        hub.on_request(ReqKind::GetS, line(22), Agent::CpuL2);
        assert_eq!(hub.stats().probes_filtered.value(), 0);
    }

    #[test]
    #[should_panic(expected = "unblock for idle")]
    fn unblock_of_idle_line_panics() {
        let mut hub = Hub::new();
        hub.on_unblock(line(8));
    }

    #[test]
    #[should_panic(expected = "probe reply for idle")]
    fn stray_probe_reply_panics() {
        let mut hub = Hub::new();
        hub.on_probe_reply(line(9), Agent::CpuL2, false, false);
    }
}
