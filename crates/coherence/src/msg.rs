//! Coherent agents and wire messages.

use std::fmt;

use ds_mem::LineAddr;

/// Number of GPU L2 slices in the paper's configuration (Table I:
/// "2MB, 16 ways, 4 slices").
pub const GPU_L2_SLICES: usize = 4;

/// A coherent endpoint of the simulated chip.
///
/// Per gem5-gpu's MOESI_hammer configuration (and the paper's §III.A),
/// GPU L1s are *not* coherence agents — they are write-through and
/// flash-invalidated at kernel launch. The coherent caches are the
/// CPU's private L2 and the four address-interleaved GPU L2 slices;
/// the memory controller hosts the broadcast hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Agent {
    /// The CPU's private L2 (its L1s sit beneath it, inclusion
    /// maintained locally).
    CpuL2,
    /// GPU L2 slice `0..GPU_L2_SLICES`.
    GpuL2(u8),
    /// The memory-side controller hosting the [`Hub`](crate::Hub).
    MemCtrl,
}

impl Agent {
    /// All cache agents (excludes the memory controller).
    pub fn caches() -> impl Iterator<Item = Agent> {
        std::iter::once(Agent::CpuL2).chain((0..GPU_L2_SLICES as u8).map(Agent::GpuL2))
    }

    /// The GPU L2 slice that homes `line` (line-interleaved).
    pub fn slice_of(line: LineAddr) -> Agent {
        Agent::GpuL2(slice_index(line))
    }

    /// A dense index for port/array addressing: CpuL2 = 0, slices are
    /// 1..=4, MemCtrl = 5.
    pub fn port_index(self) -> usize {
        match self {
            Agent::CpuL2 => 0,
            Agent::GpuL2(s) => 1 + s as usize,
            Agent::MemCtrl => 1 + GPU_L2_SLICES,
        }
    }

    /// Total number of ports ([`Agent::port_index`] range).
    pub const PORTS: usize = 2 + GPU_L2_SLICES;
}

impl fmt::Display for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Agent::CpuL2 => write!(f, "cpu-l2"),
            Agent::GpuL2(s) => write!(f, "gpu-l2[{s}]"),
            Agent::MemCtrl => write!(f, "mem"),
        }
    }
}

/// The raw index of the GPU L2 slice homing `line` (line-interleaved).
pub fn slice_index(line: LineAddr) -> u8 {
    (line.index() % GPU_L2_SLICES as u64) as u8
}

/// The flavour of a hub-issued probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// GETS probe: owner supplies data and downgrades to `O`.
    Shared,
    /// GETX probe: every holder invalidates; owner supplies data.
    Invalidate,
}

impl fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeKind::Shared => write!(f, "probe-shared"),
            ProbeKind::Invalidate => write!(f, "probe-inv"),
        }
    }
}

/// A message on the coherence network.
///
/// The direct-store network carries its own two messages (the GETX /
/// PUTX pair of §III.F); those are represented by
/// [`DirectMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CohMsg {
    /// Cache → hub: read request.
    GetS {
        /// The requested line.
        line: LineAddr,
        /// Requesting cache.
        requester: Agent,
    },
    /// Cache → hub: write (exclusive) request. `upgrade` marks a
    /// requester that already holds a valid (S/O) copy and needs only
    /// invalidations — no data response, no speculative memory fetch.
    GetX {
        /// The requested line.
        line: LineAddr,
        /// Requesting cache.
        requester: Agent,
        /// Whether this is a data-less upgrade.
        upgrade: bool,
    },
    /// Cache → hub: writeback / eviction notice.
    Put {
        /// The evicted line.
        line: LineAddr,
        /// Whether data travels with the message.
        dirty: bool,
        /// Evicting cache.
        requester: Agent,
    },
    /// Hub → cache: probe on behalf of a request.
    Probe {
        /// The probed line.
        line: LineAddr,
        /// Shared or invalidate.
        kind: ProbeKind,
    },
    /// Cache → hub: probe response.
    ProbeReply {
        /// The probed line.
        line: LineAddr,
        /// Responding cache.
        from: Agent,
        /// Whether the reply carries the line's data (the responder
        /// was an owner).
        with_data: bool,
        /// Whether the responder retains a copy after the probe (a
        /// sharer surviving a `ProbeShared`); the hub grants exclusive
        /// permission on a GETS only when nobody does.
        retains_copy: bool,
    },
    /// Hub → requester: the data grant completing a transaction.
    Data {
        /// The granted line.
        line: LineAddr,
        /// Whether exclusive permission is granted.
        exclusive: bool,
        /// Whether DRAM (rather than a cache owner) supplied the data.
        from_mem: bool,
    },
    /// Requester → hub: transaction complete; unblock the line.
    Unblock {
        /// The completed line.
        line: LineAddr,
    },
}

impl CohMsg {
    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match *self {
            CohMsg::GetS { line, .. }
            | CohMsg::GetX { line, .. }
            | CohMsg::Put { line, .. }
            | CohMsg::Probe { line, .. }
            | CohMsg::ProbeReply { line, .. }
            | CohMsg::Data { line, .. }
            | CohMsg::Unblock { line } => line,
        }
    }

    /// Whether the message carries a data payload (for link sizing).
    pub fn carries_data(&self) -> bool {
        match *self {
            CohMsg::Put { dirty, .. } => dirty,
            CohMsg::ProbeReply { with_data, .. } => with_data,
            CohMsg::Data { .. } => true,
            _ => false,
        }
    }
}

/// A message on the dedicated direct-store network (§III.G).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectMsg {
    /// The exclusivity request the CPU issues before pushing
    /// ("the CPU will issue GETX command").
    GetX {
        /// The pushed line.
        line: LineAddr,
    },
    /// The pushed store data ("the store will be issued as PUTX").
    PutX {
        /// The pushed line.
        line: LineAddr,
    },
    /// Slice → CPU: push accepted (retires the store-buffer entry).
    PutXAck {
        /// The pushed line.
        line: LineAddr,
    },
    /// CPU → slice: uncacheable read of GPU-homed data (CPU loads from
    /// the direct range can never allocate in CPU caches).
    ReadReq {
        /// The requested line.
        line: LineAddr,
    },
    /// Slice → CPU: uncacheable read data.
    ReadResp {
        /// The requested line.
        line: LineAddr,
    },
}

impl DirectMsg {
    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match *self {
            DirectMsg::GetX { line }
            | DirectMsg::PutX { line }
            | DirectMsg::PutXAck { line }
            | DirectMsg::ReadReq { line }
            | DirectMsg::ReadResp { line } => line,
        }
    }

    /// Whether the message carries a data payload.
    pub fn carries_data(&self) -> bool {
        matches!(self, DirectMsg::PutX { .. } | DirectMsg::ReadResp { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_port_indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for a in Agent::caches().chain(std::iter::once(Agent::MemCtrl)) {
            assert!(a.port_index() < Agent::PORTS);
            assert!(seen.insert(a.port_index()));
        }
        assert_eq!(seen.len(), Agent::PORTS);
    }

    #[test]
    fn slice_interleaving_covers_all_slices() {
        let mut hit = [false; GPU_L2_SLICES];
        for i in 0..16u64 {
            match Agent::slice_of(LineAddr::from_index(i)) {
                Agent::GpuL2(s) => hit[s as usize] = true,
                other => panic!("slice_of returned {other}"),
            }
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn consecutive_lines_rotate_slices() {
        let s0 = Agent::slice_of(LineAddr::from_index(0));
        let s1 = Agent::slice_of(LineAddr::from_index(1));
        assert_ne!(s0, s1);
        // Same line always maps to the same slice.
        assert_eq!(s0, Agent::slice_of(LineAddr::from_index(0)));
    }

    #[test]
    fn msg_line_accessor_is_total() {
        let l = LineAddr::from_index(9);
        let msgs = [
            CohMsg::GetS {
                line: l,
                requester: Agent::CpuL2,
            },
            CohMsg::Probe {
                line: l,
                kind: ProbeKind::Shared,
            },
            CohMsg::Data {
                line: l,
                exclusive: true,
                from_mem: false,
            },
            CohMsg::Unblock { line: l },
        ];
        for m in msgs {
            assert_eq!(m.line(), l);
        }
    }

    #[test]
    fn data_payload_flags() {
        let l = LineAddr::from_index(1);
        assert!(CohMsg::Data {
            line: l,
            exclusive: false,
            from_mem: true
        }
        .carries_data());
        assert!(!CohMsg::Unblock { line: l }.carries_data());
        assert!(CohMsg::Put {
            line: l,
            dirty: true,
            requester: Agent::CpuL2
        }
        .carries_data());
        assert!(!CohMsg::Put {
            line: l,
            dirty: false,
            requester: Agent::CpuL2
        }
        .carries_data());
        assert!(DirectMsg::PutX { line: l }.carries_data());
        assert!(!DirectMsg::GetX { line: l }.carries_data());
        assert_eq!(DirectMsg::PutXAck { line: l }.line(), l);
    }

    #[test]
    fn display_names() {
        assert_eq!(Agent::CpuL2.to_string(), "cpu-l2");
        assert_eq!(Agent::GpuL2(2).to_string(), "gpu-l2[2]");
        assert_eq!(ProbeKind::Invalidate.to_string(), "probe-inv");
    }
}
