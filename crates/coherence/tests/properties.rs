//! Property-based tests of the protocol: the transition function's
//! global invariants and the hub's serialization discipline under
//! random request interleavings.

use proptest::prelude::*;

use ds_coherence::{
    transition, Action, Agent, HammerState, Hub, HubAction, NextState, ProtocolEvent, ReqKind,
};
use ds_mem::LineAddr;

fn any_state() -> impl Strategy<Value = HammerState> {
    prop_oneof![
        Just(HammerState::I),
        Just(HammerState::S),
        Just(HammerState::O),
        Just(HammerState::M),
        Just(HammerState::MM),
    ]
}

fn any_event() -> impl Strategy<Value = ProtocolEvent> {
    prop_oneof![
        Just(ProtocolEvent::Load),
        Just(ProtocolEvent::Store),
        Just(ProtocolEvent::RemoteStore),
        Just(ProtocolEvent::ProbeShared),
        Just(ProtocolEvent::ProbeInv),
        Just(ProtocolEvent::Replacement),
        Just(ProtocolEvent::PutXArrive),
    ]
}

proptest! {
    /// Structural invariants of every defined transition: probes and
    /// replacements never *gain* permissions, invalidating events end
    /// in I, remote stores end in I, and writable outcomes only arise
    /// from store-class events.
    #[test]
    fn transition_invariants(state in any_state(), event in any_event()) {
        let Ok(t) = transition(state, event) else {
            // Undefined pairs are precisely the documented ones.
            prop_assert!(matches!(
                (state, event),
                (HammerState::O, ProtocolEvent::RemoteStore)
                    | (HammerState::I, ProtocolEvent::Replacement)
                    | (HammerState::S, ProtocolEvent::PutXArrive)
                    | (HammerState::O, ProtocolEvent::PutXArrive)
                    | (HammerState::M, ProtocolEvent::PutXArrive)
                    | (HammerState::MM, ProtocolEvent::PutXArrive)
            ));
            return Ok(());
        };
        match event {
            ProtocolEvent::ProbeInv | ProtocolEvent::Replacement => {
                prop_assert_eq!(t.stable_next(), Some(HammerState::I));
            }
            ProtocolEvent::ProbeShared => {
                let next = t.stable_next().unwrap();
                prop_assert!(!next.can_write(), "probe must strip write permission");
            }
            ProtocolEvent::RemoteStore => {
                prop_assert_eq!(t.stable_next(), Some(HammerState::I));
                prop_assert_eq!(t.actions.clone(), vec![Action::ForwardDirect]);
            }
            ProtocolEvent::Store => {
                prop_assert_eq!(t.stable_next(), Some(HammerState::MM));
            }
            ProtocolEvent::Load => match t.next {
                NextState::Imm(n) => prop_assert_eq!(n, state),
                NextState::OnData { shared, exclusive } => {
                    prop_assert_eq!(shared, HammerState::S);
                    prop_assert_eq!(exclusive, HammerState::M);
                }
            },
            ProtocolEvent::PutXArrive => {
                prop_assert_eq!(t.stable_next(), Some(HammerState::MM));
            }
        }
        // Dirty states never silently drop on replacement.
        if event == ProtocolEvent::Replacement && state.needs_writeback() {
            prop_assert_eq!(t.actions.clone(), vec![Action::WritebackData]);
        }
    }
}

#[derive(Debug, Clone)]
struct Req {
    line: u64,
    write: bool,
    agent_idx: u8,
}

fn req_strategy() -> impl Strategy<Value = Req> {
    (0u64..6, any::<bool>(), 0u8..5).prop_map(|(line, write, agent_idx)| Req {
        line,
        write,
        agent_idx,
    })
}

fn agent(idx: u8) -> Agent {
    if idx == 0 {
        Agent::CpuL2
    } else {
        Agent::GpuL2(idx - 1)
    }
}

proptest! {
    /// Random request sequences, each driven to completion: the hub
    /// always grants, never probes the requester, pairs every grant
    /// with one transaction, and returns to idle.
    #[test]
    fn hub_completes_random_requests(
        reqs in proptest::collection::vec(req_strategy(), 1..60)
    ) {
        let mut hub = Hub::new();
        let mut grants = 0u64;
        for r in &reqs {
            let who = agent(r.agent_idx);
            let kind = if r.write { ReqKind::GetX } else { ReqKind::GetS };
            let line = LineAddr::from_index(r.line);
            prop_assert!(!hub.busy(line), "fully drained between requests");
            let actions = hub.on_request(kind, line, who);

            let mut probed: Vec<Agent> = Vec::new();
            let mut mem: Option<u64> = None;
            for a in &actions {
                match *a {
                    HubAction::SendProbe { to, line: l, .. } => {
                        prop_assert_eq!(l, line);
                        prop_assert_ne!(to, who, "requester probed itself");
                        probed.push(to);
                    }
                    HubAction::StartMemRead { line: l, txn } => {
                        prop_assert_eq!(l, line);
                        mem = Some(txn);
                    }
                    _ => {}
                }
            }
            // Every non-requesting cache is probed exactly once.
            let mut expect: Vec<Agent> = Agent::caches().filter(|c| *c != who).collect();
            expect.sort();
            probed.sort();
            prop_assert_eq!(probed.clone(), expect);

            // All probes miss; memory (if fetched) completes.
            let mut granted = Vec::new();
            for p in probed {
                granted.extend(hub.on_probe_reply(line, p, false, false));
            }
            if let Some(txn) = mem {
                granted.extend(hub.on_mem_done(line, txn));
            }
            let grant = granted
                .iter()
                .find_map(|a| match *a {
                    HubAction::SendData { to, exclusive, .. } => Some((to, exclusive)),
                    _ => None,
                })
                .expect("transaction must grant");
            prop_assert_eq!(grant.0, who);
            if kind == ReqKind::GetX {
                prop_assert!(grant.1, "GETX grants exclusive");
            }
            grants += 1;
            let restarted = hub.on_unblock(line);
            prop_assert!(restarted.is_empty(), "nothing was queued");
        }
        prop_assert_eq!(hub.inflight_count(), 0);
        prop_assert_eq!(hub.stats().transactions.value(), grants);
    }
}
