//! A small explicit-state model checker for the modified Hammer
//! protocol.
//!
//! For a single line, the coherent world is two agents — the CPU L2
//! and the line's home GPU L2 slice — plus memory, because the hub
//! serializes one transaction per line and foreign slices can never
//! hold the line. This test exhaustively explores every state
//! reachable from `(I, I)` under all demand events, probes, pushes and
//! replacements, checking at each state:
//!
//! * **coherence**: never two owners; an exclusive (M/MM) copy never
//!   coexists with any other valid copy;
//! * **freshness**: a read never returns stale data — whenever an
//!   agent loads, the latest value is either in memory, locally
//!   cached, or held by an owner that the protocol makes supply it;
//! * **no lost updates**: evicting the last fresh copy writes it back.
//!
//! The exploration is tiny (tens of states) but it is *complete* for
//! the per-line protocol, which unit tests of individual transitions
//! cannot claim.

use std::collections::{HashSet, VecDeque};

use ds_coherence::{transition, Action, HammerState, ProtocolEvent};

/// Who holds the most recent value of the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Fresh {
    Memory,
    Cpu,
    Gpu,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct World {
    cpu: HammerState,
    gpu: HammerState,
    fresh: Fresh,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Event {
    CpuLoad,
    CpuStore,
    /// Direct-store push (CPU remote store to the GPU-homed window).
    CpuRemoteStore,
    GpuLoad,
    GpuStore,
    CpuReplace,
    GpuReplace,
}

const EVENTS: [Event; 7] = [
    Event::CpuLoad,
    Event::CpuStore,
    Event::CpuRemoteStore,
    Event::GpuLoad,
    Event::GpuStore,
    Event::CpuReplace,
    Event::GpuReplace,
];

/// Applies a probe to `holder` via the protocol table, returning
/// (next state, supplied data).
fn probe(holder: HammerState, inv: bool) -> (HammerState, bool) {
    if holder == HammerState::I {
        return (HammerState::I, false);
    }
    let ev = if inv {
        ProtocolEvent::ProbeInv
    } else {
        ProtocolEvent::ProbeShared
    };
    let t = transition(holder, ev).expect("probes are defined on valid states");
    (
        t.stable_next().expect("probes are immediate"),
        t.actions.contains(&Action::SupplyData),
    )
}

/// One agent performs a coherent load; returns the successor world.
/// `cpu_side` selects which agent loads.
fn coherent_load(w: World, cpu_side: bool) -> World {
    let (me, other) = if cpu_side {
        (w.cpu, w.gpu)
    } else {
        (w.gpu, w.cpu)
    };
    if me.can_read() {
        return w; // hit
    }
    // GETS: probe the other side; owner supplies and downgrades.
    let (other_next, supplied) = probe(other, false);
    // Freshness check: if the other agent held the only fresh copy, the
    // protocol must have made it supply the data.
    let other_fresh = if cpu_side { Fresh::Gpu } else { Fresh::Cpu };
    if w.fresh == other_fresh {
        assert!(
            supplied,
            "stale read: freshest copy at {other_fresh:?} but no data supplied in {w:?}"
        );
    }
    let exclusive = other_next == HammerState::I && !supplied;
    let me_next = if exclusive {
        HammerState::M
    } else {
        HammerState::S
    };
    let mut next = w;
    if cpu_side {
        next.cpu = me_next;
        next.gpu = other_next;
    } else {
        next.gpu = me_next;
        next.cpu = other_next;
    }
    next
}

/// One agent performs a coherent store.
fn coherent_store(w: World, cpu_side: bool) -> World {
    let (me, other) = if cpu_side {
        (w.cpu, w.gpu)
    } else {
        (w.gpu, w.cpu)
    };
    let me_next = match me {
        HammerState::MM => HammerState::MM,
        HammerState::M => {
            // Silent upgrade (Fig. 3: M + Store -> MM).
            let t = transition(HammerState::M, ProtocolEvent::Store).unwrap();
            t.stable_next().unwrap()
        }
        _ => {
            // GETX: invalidate the other side; its dirty data reaches
            // memory (hub MemWrite on invalidating supply).
            HammerState::MM
        }
    };
    let mut next = w;
    if me != HammerState::MM && me != HammerState::M {
        let (other_next, supplied) = probe(other, true);
        if cpu_side {
            next.gpu = other_next;
        } else {
            next.cpu = other_next;
        }
        if supplied {
            next.fresh = Fresh::Memory; // hub writes owner data back
        }
    }
    if cpu_side {
        next.cpu = me_next;
        next.fresh = Fresh::Cpu;
    } else {
        next.gpu = me_next;
        next.fresh = Fresh::Gpu;
    }
    next
}

fn step(w: World, e: Event) -> Option<World> {
    match e {
        Event::CpuLoad => Some(coherent_load(w, true)),
        Event::GpuLoad => Some(coherent_load(w, false)),
        Event::CpuStore => Some(coherent_store(w, true)),
        Event::GpuStore => Some(coherent_store(w, false)),
        Event::CpuRemoteStore => {
            // The direct-store path: CPU never caches the line (the
            // window is CPU-uncacheable, so cpu == I on this path);
            // the home slice invalidates any copy, then I -> MM.
            if w.cpu != HammerState::I {
                return None; // unreachable by construction
            }
            let t = transition(HammerState::I, ProtocolEvent::RemoteStore).unwrap();
            assert_eq!(t.actions, vec![Action::ForwardDirect]);
            let install = transition(HammerState::I, ProtocolEvent::PutXArrive).unwrap();
            Some(World {
                cpu: HammerState::I,
                gpu: install.stable_next().unwrap(),
                fresh: Fresh::Gpu,
            })
        }
        Event::CpuReplace | Event::GpuReplace => {
            let cpu_side = e == Event::CpuReplace;
            let me = if cpu_side { w.cpu } else { w.gpu };
            if me == HammerState::I {
                return None;
            }
            let t = transition(me, ProtocolEvent::Replacement).unwrap();
            let mut next = w;
            let my_fresh = if cpu_side { Fresh::Cpu } else { Fresh::Gpu };
            if t.actions.contains(&Action::WritebackData) {
                if w.fresh == my_fresh {
                    next.fresh = Fresh::Memory;
                }
            } else {
                // Silent drop: losing the only fresh copy would be a
                // data-loss bug.
                assert!(
                    w.fresh != my_fresh,
                    "lost update: silent drop of the freshest copy in {w:?}"
                );
            }
            if cpu_side {
                next.cpu = HammerState::I;
            } else {
                next.gpu = HammerState::I;
            }
            Some(next)
        }
    }
}

fn check_invariants(w: World) {
    let owners = [w.cpu, w.gpu].iter().filter(|s| s.is_owner()).count();
    assert!(owners <= 1, "two owners in {w:?}");
    let exclusive = |s: HammerState| matches!(s, HammerState::M | HammerState::MM);
    if exclusive(w.cpu) {
        assert_eq!(w.gpu, HammerState::I, "exclusive CPU with GPU copy: {w:?}");
    }
    if exclusive(w.gpu) {
        assert_eq!(w.cpu, HammerState::I, "exclusive GPU with CPU copy: {w:?}");
    }
    // A dirty (MM/O) copy is exactly where freshness should live; if
    // neither agent is dirty, memory must be fresh OR a clean-exclusive
    // holder matches the fresh token (M after an exclusive grant).
    match w.fresh {
        Fresh::Cpu => assert!(w.cpu.can_read(), "fresh token on invalid CPU copy: {w:?}"),
        Fresh::Gpu => assert!(w.gpu.can_read(), "fresh token on invalid GPU copy: {w:?}"),
        Fresh::Memory => {}
    }
}

#[test]
fn exhaustive_single_line_exploration_is_safe() {
    let start = World {
        cpu: HammerState::I,
        gpu: HammerState::I,
        fresh: Fresh::Memory,
    };
    let mut seen: HashSet<World> = HashSet::new();
    let mut queue: VecDeque<World> = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    let mut transitions = 0u64;
    while let Some(w) = queue.pop_front() {
        check_invariants(w);
        for &e in &EVENTS {
            if let Some(next) = step(w, e) {
                transitions += 1;
                check_invariants(next);
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
    }
    // The interesting part is that this terminates with every state
    // checked; the exact count documents the protocol's size.
    assert!(
        seen.len() >= 10 && seen.len() <= 64,
        "unexpected reachable-state count: {}",
        seen.len()
    );
    assert!(transitions > seen.len() as u64);
}

#[test]
fn every_reachable_state_can_reach_a_store() {
    // Liveness-ish sanity: from any reachable state, a CPU store and a
    // GPU store both succeed (no stuck states).
    let start = World {
        cpu: HammerState::I,
        gpu: HammerState::I,
        fresh: Fresh::Memory,
    };
    let mut seen = HashSet::new();
    let mut queue = VecDeque::from([start]);
    seen.insert(start);
    while let Some(w) = queue.pop_front() {
        let after_cpu = coherent_store(w, true);
        assert!(after_cpu.cpu.can_write());
        let after_gpu = coherent_store(w, false);
        assert!(after_gpu.gpu.can_write());
        for &e in &EVENTS {
            if let Some(next) = step(w, e) {
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
    }
}
