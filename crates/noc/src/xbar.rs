//! Crossbar built from per-destination links.

use ds_sim::Cycle;

use crate::{Link, MsgClass, SendInfo};

/// A port on an [`Xbar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

impl std::fmt::Display for PortId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// Aggregate crossbar statistics, split by message class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XbarStats {
    /// Control messages routed.
    pub control_msgs: u64,
    /// Data messages routed.
    pub data_msgs: u64,
    /// Total bytes moved.
    pub bytes: u64,
}

impl XbarStats {
    /// Total messages of either class.
    pub fn total_msgs(&self) -> u64 {
        self.control_msgs + self.data_msgs
    }
}

/// An input-queued crossbar: one [`Link`] per (source, destination)
/// pair, so distinct flows never contend and same-pair traffic
/// serializes.
///
/// This matches the abstraction level of the paper's evaluation: the
/// interesting congestion for the CCSM-vs-direct-store comparison is
/// per-flow serialization of data responses, not router
/// micro-architecture.
///
/// # Examples
///
/// ```
/// use ds_noc::{MsgClass, PortId, Xbar};
/// use ds_sim::Cycle;
///
/// let mut net = Xbar::new(3, 20, 16);
/// let arr = net.send(Cycle::ZERO, PortId(0), PortId(2), MsgClass::Data);
/// assert!(arr > Cycle::new(20));
/// assert_eq!(net.stats().data_msgs, 1);
/// ```
#[derive(Debug)]
pub struct Xbar {
    ports: usize,
    links: Vec<Link>,
    stats: XbarStats,
}

impl Xbar {
    /// Creates a crossbar over `ports` endpoints where every hop has
    /// the given latency and bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero or bandwidth is zero.
    pub fn new(ports: usize, hop_latency: u64, bytes_per_cycle: u64) -> Self {
        assert!(ports > 0, "crossbar needs at least one port");
        let links = (0..ports * ports)
            .map(|_| Link::new(hop_latency, bytes_per_cycle))
            .collect();
        Xbar {
            ports,
            links,
            stats: XbarStats::default(),
        }
    }

    /// Number of endpoints.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Routes one message, returning its arrival time.
    ///
    /// # Panics
    ///
    /// Panics if either port is out of range.
    pub fn send(&mut self, now: Cycle, src: PortId, dst: PortId, class: MsgClass) -> Cycle {
        self.send_info(now, src, dst, class).arrival
    }

    /// Like [`Xbar::send`] but exposing the link's full timing
    /// ([`SendInfo`]) for instrumentation. Identical state mutation —
    /// `send` delegates here.
    ///
    /// # Panics
    ///
    /// Panics if either port is out of range.
    pub fn send_info(&mut self, now: Cycle, src: PortId, dst: PortId, class: MsgClass) -> SendInfo {
        assert!(
            src.0 < self.ports && dst.0 < self.ports,
            "port out of range"
        );
        match class {
            MsgClass::Control => self.stats.control_msgs += 1,
            MsgClass::Data => self.stats.data_msgs += 1,
        }
        self.stats.bytes += class.bytes();
        self.links[src.0 * self.ports + dst.0].send_bytes_info(now, class.bytes())
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> XbarStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_flows_do_not_contend() {
        let mut x = Xbar::new(4, 10, 16);
        let a = x.send(Cycle::ZERO, PortId(0), PortId(1), MsgClass::Data);
        let b = x.send(Cycle::ZERO, PortId(2), PortId(3), MsgClass::Data);
        assert_eq!(a, b);
    }

    #[test]
    fn same_flow_serializes() {
        let mut x = Xbar::new(2, 10, 16);
        let a = x.send(Cycle::ZERO, PortId(0), PortId(1), MsgClass::Data);
        let b = x.send(Cycle::ZERO, PortId(0), PortId(1), MsgClass::Data);
        assert!(b > a);
    }

    #[test]
    fn stats_split_by_class() {
        let mut x = Xbar::new(2, 1, 16);
        x.send(Cycle::ZERO, PortId(0), PortId(1), MsgClass::Control);
        x.send(Cycle::ZERO, PortId(1), PortId(0), MsgClass::Data);
        x.send(Cycle::ZERO, PortId(1), PortId(0), MsgClass::Data);
        let s = x.stats();
        assert_eq!(s.control_msgs, 1);
        assert_eq!(s.data_msgs, 2);
        assert_eq!(s.total_msgs(), 3);
        assert_eq!(s.bytes, 8 + 2 * 136);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_port_panics() {
        let mut x = Xbar::new(2, 1, 16);
        x.send(Cycle::ZERO, PortId(0), PortId(2), MsgClass::Control);
    }

    #[test]
    fn self_loop_is_allowed() {
        // Degenerate but harmless; some higher-level code routes a
        // slice-to-itself message during ablations.
        let mut x = Xbar::new(1, 3, 16);
        let t = x.send(Cycle::ZERO, PortId(0), PortId(0), MsgClass::Control);
        assert_eq!(t, Cycle::new(4));
    }
}
