//! Point-to-point link with latency and bandwidth.

use ds_sim::{Counter, Cycle};

use ds_mem::LINE_BYTES;

/// Coherence message classes, sized per the common two-flit convention:
/// control messages are one 8-byte flit; data messages additionally
/// carry a full 128-byte line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Requests, probes, acks, unblocks: 8 bytes.
    Control,
    /// Responses and writebacks carrying a line: 8 + 128 bytes.
    Data,
}

impl MsgClass {
    /// Wire size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MsgClass::Control => 8,
            MsgClass::Data => 8 + LINE_BYTES,
        }
    }
}

impl std::fmt::Display for MsgClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsgClass::Control => write!(f, "ctrl"),
            MsgClass::Data => write!(f, "data"),
        }
    }
}

/// The timing of one message through a [`Link`], for instrumentation:
/// `start..depart` is the serialization interval during which the link
/// is occupied; `arrival` adds the propagation latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendInfo {
    /// Cycle serialization began (after waiting for the link).
    pub start: Cycle,
    /// Cycle the tail flit left the link (`busy_until` afterwards).
    pub depart: Cycle,
    /// Cycle the message reaches the far end.
    pub arrival: Cycle,
}

/// A unidirectional link with fixed propagation latency and finite
/// bandwidth.
///
/// A message injected at time `t` begins serialization when the link
/// is free, occupies it for `ceil(bytes / bytes_per_cycle)` cycles and
/// arrives one propagation latency after serialization completes.
///
/// # Examples
///
/// ```
/// use ds_noc::{Link, MsgClass};
/// use ds_sim::Cycle;
///
/// let mut idle = Link::new(10, 16);
/// let arrival = idle.send(Cycle::new(100), MsgClass::Control);
/// assert_eq!(arrival, Cycle::new(100 + 1 + 10)); // 1 serialization + 10 latency
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    latency: u64,
    bytes_per_cycle: u64,
    busy_until: Cycle,
    sent: Counter,
    bytes: Counter,
}

impl Link {
    /// Creates an idle link.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(latency: u64, bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "link bandwidth must be non-zero");
        Link {
            latency,
            bytes_per_cycle,
            busy_until: Cycle::ZERO,
            sent: Counter::new("link_msgs"),
            bytes: Counter::new("link_bytes"),
        }
    }

    /// Propagation latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Sends a message of class `class` at time `now`; returns its
    /// arrival time at the far end.
    pub fn send(&mut self, now: Cycle, class: MsgClass) -> Cycle {
        self.send_bytes(now, class.bytes())
    }

    /// Sends an arbitrary-size payload (used by tests and by
    /// variable-size transfers in ablation studies).
    pub fn send_bytes(&mut self, now: Cycle, bytes: u64) -> Cycle {
        self.send_bytes_info(now, bytes).arrival
    }

    /// Like [`Link::send_bytes`] but exposing the full timing, so
    /// tracers can render link-occupancy intervals. Identical state
    /// mutation — `send` delegates here.
    pub fn send_bytes_info(&mut self, now: Cycle, bytes: u64) -> SendInfo {
        let start = now.max(self.busy_until);
        let ser = bytes.div_ceil(self.bytes_per_cycle).max(1);
        self.busy_until = start + ser;
        self.sent.incr();
        self.bytes.add(bytes);
        SendInfo {
            start,
            depart: self.busy_until,
            arrival: self.busy_until + self.latency,
        }
    }

    /// Messages sent over this link so far.
    pub fn messages_sent(&self) -> u64 {
        self.sent.value()
    }

    /// Bytes sent over this link so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes.value()
    }

    /// The earliest time a new message could begin serialization.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_class_sizes() {
        assert_eq!(MsgClass::Control.bytes(), 8);
        assert_eq!(MsgClass::Data.bytes(), 136);
        assert_eq!(MsgClass::Control.to_string(), "ctrl");
    }

    #[test]
    fn idle_link_adds_serialization_plus_latency() {
        let mut l = Link::new(20, 16);
        // Control: 8 bytes over 16 B/cyc -> 1 cycle serialization.
        assert_eq!(l.send(Cycle::ZERO, MsgClass::Control), Cycle::new(21));
        // Data: 136 bytes -> ceil(136/16) = 9 cycles, after the first
        // message's serialization slot (busy until cycle 1).
        assert_eq!(l.send(Cycle::ZERO, MsgClass::Data), Cycle::new(1 + 9 + 20));
    }

    #[test]
    fn back_to_back_messages_pipeline() {
        let mut l = Link::new(20, 16);
        let t1 = l.send(Cycle::ZERO, MsgClass::Control);
        let t2 = l.send(Cycle::ZERO, MsgClass::Control);
        // Latency overlaps; only serialization serializes.
        assert_eq!(t2 - t1, 1);
    }

    #[test]
    fn late_sender_not_delayed_by_old_traffic() {
        let mut l = Link::new(5, 16);
        l.send(Cycle::ZERO, MsgClass::Data);
        let t = l.send(Cycle::new(1000), MsgClass::Control);
        assert_eq!(t, Cycle::new(1006));
    }

    #[test]
    fn accounting() {
        let mut l = Link::new(1, 8);
        l.send(Cycle::ZERO, MsgClass::Control);
        l.send(Cycle::ZERO, MsgClass::Data);
        assert_eq!(l.messages_sent(), 2);
        assert_eq!(l.bytes_sent(), 8 + 136);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = Link::new(1, 0);
    }
}
