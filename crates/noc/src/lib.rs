//! # ds-noc — interconnect models
//!
//! Two networks connect the components of the simulated chip
//! (paper Fig. 2, right):
//!
//! 1. the **coherence network** — the baseline interconnect carrying
//!    requests, probes, acks and data between the CPU cache hierarchy,
//!    the GPU L2 slices and the memory controller, modelled as a
//!    crossbar of point-to-point [`Link`]s, and
//! 2. the **direct network** (§III.G) — the paper's added dedicated
//!    connection from the CPU L1 controller straight to the GPU L2
//!    slices, over which remote stores travel. It "has exactly the same
//!    characteristics as the network used in many cache coherence
//!    systems" — so it is built from the same [`Link`] model.
//!
//! Both model per-hop latency plus bandwidth-limited serialization:
//! a link busy with an earlier flit delays later ones.
//!
//! # Examples
//!
//! ```
//! use ds_noc::{Link, MsgClass};
//! use ds_sim::Cycle;
//!
//! let mut link = Link::new(20, 16); // 20-cycle latency, 16 B/cycle
//! let a = link.send(Cycle::ZERO, MsgClass::Control);
//! let b = link.send(Cycle::ZERO, MsgClass::Data);
//! assert!(b > a, "data flit serializes behind the control flit");
//! ```

pub mod link;
pub mod xbar;

pub use link::{Link, MsgClass, SendInfo};
pub use xbar::{PortId, Xbar, XbarStats};
