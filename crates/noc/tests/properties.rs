//! Property-based tests for links and crossbars.

use proptest::prelude::*;

use ds_noc::{Link, MsgClass, PortId, Xbar};
use ds_sim::Cycle;

proptest! {
    /// Link arrivals are monotone in send order, conserve bandwidth
    /// (no two serialization windows overlap) and always include the
    /// propagation latency.
    #[test]
    fn link_serialization_invariants(
        sends in proptest::collection::vec((0u64..500, any::<bool>()), 1..80),
        latency in 0u64..50,
        bw in 1u64..64
    ) {
        let mut link = Link::new(latency, bw);
        let mut sends = sends;
        sends.sort_by_key(|&(t, _)| t);
        let mut last_arrival = Cycle::ZERO;
        let mut busy = Cycle::ZERO;
        for &(t, data) in &sends {
            let class = if data { MsgClass::Data } else { MsgClass::Control };
            let arrival = link.send(Cycle::new(t), class);
            let ser = class.bytes().div_ceil(bw).max(1);
            // Arrival >= issue + serialization + latency.
            prop_assert!(arrival.as_u64() >= t + ser + latency);
            // FIFO per link.
            prop_assert!(arrival >= last_arrival);
            // Serialization windows never overlap.
            let start = arrival.as_u64() - latency - ser;
            prop_assert!(start >= busy.as_u64());
            busy = Cycle::new(arrival.as_u64() - latency);
            last_arrival = arrival;
        }
        prop_assert_eq!(link.messages_sent(), sends.len() as u64);
    }

    /// Crossbar statistics exactly account for every routed message,
    /// and disjoint flows never interfere.
    #[test]
    fn xbar_accounting(
        msgs in proptest::collection::vec((0usize..4, 0usize..4, any::<bool>()), 1..60)
    ) {
        let mut x = Xbar::new(4, 5, 16);
        let mut ctrl = 0u64;
        let mut data = 0u64;
        let mut bytes = 0u64;
        for &(src, dst, is_data) in &msgs {
            let class = if is_data { MsgClass::Data } else { MsgClass::Control };
            let arrival = x.send(Cycle::ZERO, PortId(src), PortId(dst), class);
            prop_assert!(arrival > Cycle::new(5 - 1));
            if is_data { data += 1; } else { ctrl += 1; }
            bytes += class.bytes();
        }
        let s = x.stats();
        prop_assert_eq!(s.control_msgs, ctrl);
        prop_assert_eq!(s.data_msgs, data);
        prop_assert_eq!(s.bytes, bytes);
        prop_assert_eq!(s.total_msgs(), msgs.len() as u64);
    }
}
