//! Simulated time.
//!
//! All timing in the simulator is expressed in [`Cycle`]s of a single
//! global clock domain (see `DESIGN.md`: gem5-gpu's separate CPU, GPU
//! and DRAM clocks are folded into per-component latencies, which does
//! not affect the relative CCSM vs. direct-store comparisons the paper
//! reports).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in clock cycles ("ticks" in the
/// paper's terminology).
///
/// `Cycle` is a transparent newtype over `u64` providing saturating-free
/// checked semantics: additions that overflow panic in debug builds, as
/// a simulation running for `2^64` cycles is always a bug.
///
/// # Examples
///
/// ```
/// use ds_sim::Cycle;
///
/// let start = Cycle::new(100);
/// let finish = start + 28;
/// assert_eq!(finish.as_u64(), 128);
/// assert_eq!(finish - start, 28);
/// assert!(finish > start);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of time.
    pub const ZERO: Cycle = Cycle(0);

    /// The maximum representable time; useful as an "infinitely far in
    /// the future" sentinel.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle at absolute time `t`.
    #[inline]
    pub const fn new(t: u64) -> Self {
        Cycle(t)
    }

    /// Returns the absolute time as a raw integer.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the later of two times.
    ///
    /// This is the workhorse for modelling resource occupancy:
    /// `start = now.max(busy_until)`.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two times.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the number of cycles from `earlier` to `self`, or zero
    /// if `earlier` is actually later (no negative durations).
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;

    /// Duration between two times.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self >= rhs, "negative cycle duration: {self} - {rhs}");
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(t: u64) -> Self {
        Cycle(t)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Cycle::ZERO.as_u64(), 0);
        assert_eq!(Cycle::new(42).as_u64(), 42);
        assert_eq!(Cycle::from(7u64), Cycle::new(7));
    }

    #[test]
    fn arithmetic() {
        let c = Cycle::new(10);
        assert_eq!((c + 5).as_u64(), 15);
        let mut m = c;
        m += 3;
        assert_eq!(m.as_u64(), 13);
        assert_eq!(m - c, 3);
    }

    #[test]
    fn ordering_and_max() {
        let a = Cycle::new(3);
        let b = Cycle::new(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn saturating_since_never_negative() {
        let a = Cycle::new(3);
        let b = Cycle::new(9);
        assert_eq!(b.saturating_since(a), 6);
        assert_eq!(a.saturating_since(b), 0);
    }

    #[test]
    #[should_panic(expected = "negative cycle duration")]
    #[cfg(debug_assertions)]
    fn negative_duration_panics() {
        let _ = Cycle::new(1) - Cycle::new(2);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(5).to_string(), "@5");
    }
}
