//! Deterministic time-ordered event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A discrete-event priority queue.
///
/// Events are delivered in non-decreasing time order. Events scheduled
/// for the *same* cycle are delivered in the order they were pushed
/// (FIFO), which makes every simulation built on this queue fully
/// deterministic — a property the reproduction relies on for
/// regression-testing exact tick counts.
///
/// # Examples
///
/// ```
/// use ds_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), "b");
/// q.push(Cycle::new(3), "a");
/// q.push(Cycle::new(5), "c");
/// assert_eq!(q.pop(), Some((Cycle::new(3), "a")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "b")));
/// assert_eq!(q.pop(), Some((Cycle::new(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    pushed: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            pushed: 0,
        }
    }

    /// Schedules `event` for delivery at absolute time `at`.
    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.pushed += 1;
        self.heap.push(Reverse(Entry {
            time: at,
            seq,
            event,
        }));
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Returns the delivery time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed (a cheap simulation-effort
    /// metric used by the benchmark harness).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(9), 9);
        q.push(Cycle::new(1), 1);
        q.push(Cycle::new(4), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 4, 9]);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), "late");
        q.push(Cycle::new(2), "early");
        assert_eq!(q.pop().map(|(_, e)| e), Some("early"));
        q.push(Cycle::new(5), "mid");
        assert_eq!(q.pop().map(|(_, e)| e), Some("mid"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("late"));
    }

    #[test]
    fn accounting() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(3), ());
        q.push(Cycle::new(8), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle::new(3)));
        assert_eq!(q.total_pushed(), 2);
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.len(), 1);
    }
}
