//! # ds-sim — event-driven simulation kernel
//!
//! The foundation substrate for the `direct-store` reproduction of
//! *"A Simple Cache Coherence Scheme for Integrated CPU-GPU Systems"*
//! (DAC 2020). Everything above this crate — caches, coherence, DRAM,
//! CPU and GPU models — is driven by the deterministic discrete-event
//! machinery defined here.
//!
//! The crate provides:
//!
//! * [`Cycle`] — a newtype for simulated time,
//! * [`EventQueue`] — a deterministic time-ordered event queue with
//!   FIFO tie-breaking for simultaneous events,
//! * [`Component`], [`Outbox`] and [`Mesh`] — a small message-passing
//!   harness for composing independent simulation components,
//! * statistics primitives ([`Counter`], [`Histogram`]) and math
//!   helpers ([`geomean`]).
//!
//! # Examples
//!
//! Driving a two-component ping/pong simulation:
//!
//! ```
//! use ds_sim::{Component, Cycle, Mesh, NodeId, Outbox};
//!
//! struct Echo;
//! impl Component<u32> for Echo {
//!     fn handle(&mut self, _now: Cycle, msg: u32, from: NodeId, out: &mut Outbox<u32>) {
//!         if msg > 0 {
//!             out.send_after(1, from, msg - 1);
//!         }
//!     }
//! }
//!
//! let mut mesh = Mesh::new();
//! let a = mesh.add(Echo);
//! let b = mesh.add(Echo);
//! mesh.inject(Cycle::ZERO, a, b, 10);
//! let end = mesh.run_to_completion();
//! assert_eq!(end, Cycle::new(10));
//! ```

pub mod cycle;
pub mod event;
pub mod mesh;
pub mod stats;

#[cfg(test)]
mod proptests;

pub use cycle::Cycle;
pub use event::EventQueue;
pub use mesh::{Component, Mesh, NodeId, Outbox};
pub use stats::{geomean, Counter, Histogram, RateStat};
