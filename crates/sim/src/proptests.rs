//! Property-based tests for the event queue and statistics helpers.

use proptest::prelude::*;

use crate::{geomean, Cycle, EventQueue, Histogram};

proptest! {
    /// Events always come out in non-decreasing time order, FIFO
    /// within a time.
    #[test]
    fn queue_orders_any_sequence(times in proptest::collection::vec(0u64..1000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle::new(t), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for equal times");
                }
            }
            last = Some((t, i));
        }
    }

    /// Interleaved push/pop never loses or duplicates events.
    #[test]
    fn queue_conserves_events(
        times in proptest::collection::vec(0u64..100, 1..100),
        pop_every in 1usize..5
    ) {
        let mut q = EventQueue::new();
        let mut popped = 0u64;
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle::new(t), t);
            if i % pop_every == 0 && q.pop().is_some() {
                popped += 1;
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len() as u64);
        prop_assert_eq!(q.total_pushed(), times.len() as u64);
    }

    /// The geometric mean lies between min and max of its (positive)
    /// inputs and is scale-covariant.
    #[test]
    fn geomean_bounds_and_scaling(values in proptest::collection::vec(0.01f64..100.0, 1..50)) {
        let g = geomean(values.iter().copied());
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min * 0.999 && g <= max * 1.001);
        let g2 = geomean(values.iter().map(|v| v * 2.0));
        prop_assert!((g2 - 2.0 * g).abs() < 1e-9 * g2.max(1.0));
    }

    /// Histogram totals always reconcile with recorded samples.
    #[test]
    fn histogram_accounting(values in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let mut h = Histogram::new("p");
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.samples(), values.len() as u64);
        let bucket_total: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
        prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
    }
}
