//! Statistics primitives shared by every model in the simulator.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use ds_sim::Counter;
///
/// let mut hits = Counter::new("hits");
/// hits.incr();
/// hits.add(4);
/// assert_eq!(hits.value(), 5);
/// assert_eq!(hits.name(), "hits");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a stable display name.
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Display name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero (used between simulation phases).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A ratio of two counters, e.g. a miss rate.
///
/// `RateStat` owns nothing; it formats a numerator/denominator pair
/// captured at reporting time.
///
/// ```
/// use ds_sim::RateStat;
///
/// let miss_rate = RateStat::new(25, 200);
/// assert!((miss_rate.as_f64() - 0.125).abs() < 1e-12);
/// assert_eq!(miss_rate.to_string(), "12.50% (25/200)");
/// assert_eq!(RateStat::new(3, 0).as_f64(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateStat {
    numerator: u64,
    denominator: u64,
}

impl RateStat {
    /// Captures a numerator/denominator pair.
    pub const fn new(numerator: u64, denominator: u64) -> Self {
        RateStat {
            numerator,
            denominator,
        }
    }

    /// The ratio as a float; zero when the denominator is zero.
    pub fn as_f64(self) -> f64 {
        if self.denominator == 0 {
            0.0
        } else {
            self.numerator as f64 / self.denominator as f64
        }
    }

    /// Numerator captured at construction.
    pub fn numerator(self) -> u64 {
        self.numerator
    }

    /// Denominator captured at construction.
    pub fn denominator(self) -> u64 {
        self.denominator
    }
}

impl fmt::Display for RateStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}% ({}/{})",
            self.as_f64() * 100.0,
            self.numerator,
            self.denominator
        )
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also counts
/// zero. Cheap enough to keep per memory request.
///
/// ```
/// use ds_sim::Histogram;
///
/// let mut h = Histogram::new("load_latency");
/// for v in [1, 2, 3, 100, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.samples(), 5);
/// assert_eq!(h.mean(), (1.0 + 2.0 + 3.0 + 200.0) / 5.0);
/// assert!(h.max() == 100);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    name: &'static str,
    buckets: [u64; 64],
    samples: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: [0; 64],
            samples: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[idx.min(63)] += 1;
        self.samples += 1;
        self.sum += u128::from(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean of recorded samples, zero if empty.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Minimum recorded sample; `None` if the histogram is empty (an
    /// empty histogram has no minimum, and returning a sentinel value
    /// would be indistinguishable from a real zero-cycle sample).
    pub fn min(&self) -> Option<u64> {
        if self.samples == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Maximum recorded sample; zero if empty. Unlike [`Histogram::min`]
    /// the sentinel is unambiguous here only by convention — callers
    /// needing to distinguish "empty" from "all-zero samples" must
    /// check [`Histogram::samples`] first.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact sum of all recorded samples. Zero if empty — for a sum
    /// that is the mathematically correct value, not a sentinel.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The `p`-th percentile at bucket granularity: the floor of the
    /// bucket containing the sample of rank `ceil(p/100 * n)` (ranks
    /// counted from 1 in ascending order). `None` if the histogram is
    /// empty — there is no sample to report. `p` is clamped to
    /// `[0, 100]`; `p = 0` reports the lowest non-empty bucket and
    /// `p = 100` the highest.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples as f64).ceil() as u64;
        let rank = rank.clamp(1, self.samples);
        let mut seen = 0u64;
        for (floor, count) in self.iter() {
            seen += count;
            if seen >= rank {
                return Some(floor);
            }
        }
        Some(self.max) // unreachable: bucket counts sum to `samples`
    }

    /// Restores a histogram from previously serialized parts: the
    /// non-empty `(bucket_floor, count)` pairs as produced by
    /// [`Histogram::iter`], plus the exact sum, min and max. `min` is
    /// the [`Histogram::min`] accessor value, `min().unwrap_or(0)`
    /// (the value is ignored when the bucket pairs are empty).
    ///
    /// Fails on an unrecognized bucket floor (must be 0 or a power of
    /// two below 2^64).
    pub fn restore(
        name: &'static str,
        bucket_pairs: impl IntoIterator<Item = (u64, u64)>,
        sum: u128,
        min: u64,
        max: u64,
    ) -> Result<Self, String> {
        let mut h = Histogram::new(name);
        for (floor, count) in bucket_pairs {
            let idx = match floor {
                0 => 0,
                f if f.is_power_of_two() => f.trailing_zeros() as usize,
                f => return Err(format!("bad histogram bucket floor {f}")),
            };
            h.buckets[idx] += count;
            h.samples += count;
        }
        h.sum = sum;
        h.min = if h.samples == 0 { u64::MAX } else { min };
        h.max = max;
        Ok(h)
    }

    /// Folds `other`'s samples into `self` (bucket-wise addition with
    /// exact sum/min/max). Merging an empty histogram is a no-op; in
    /// particular an empty `other` must not contribute its `u64::MAX`
    /// min sentinel. The names need not match — the merged histogram
    /// keeps its own.
    pub fn merge(&mut self, other: &Histogram) {
        if other.samples == 0 {
            return;
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.samples += other.samples;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Display name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Iterates over `(bucket_floor, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.1} max={}",
            self.name,
            self.samples,
            self.mean(),
            self.max
        )
    }
}

/// Geometric mean of a sequence of strictly positive values.
///
/// The paper reports the geometric mean of per-benchmark speedups and
/// miss rates (Figs. 4 and 5); zero and negative inputs are skipped the
/// same way the paper "ignores benchmarks with zero percent speedup".
///
/// ```
/// use ds_sim::geomean;
///
/// assert_eq!(geomean([2.0, 8.0]), 4.0);
/// assert_eq!(geomean([0.0, 2.0, 8.0]), 4.0); // zeros ignored
/// assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
/// ```
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.to_string(), "x=0");
    }

    #[test]
    fn rate_stat_handles_zero_denominator() {
        assert_eq!(RateStat::new(5, 0).as_f64(), 0.0);
        assert_eq!(RateStat::new(1, 4).as_f64(), 0.25);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new("h");
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        // 0 and 1 land in bucket 0; 2 and 3 in bucket [2,4); 1024 alone.
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.samples(), 5);
    }

    #[test]
    fn histogram_empty_has_no_percentile_or_min() {
        let h = Histogram::new("empty");
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(100.0), None);
        assert_eq!(h.min(), None);
        // Documented sentinels for the non-Option accessors.
        assert_eq!(h.sum(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn histogram_percentile_single_sample() {
        let mut h = Histogram::new("one");
        h.record(37); // bucket [32, 64)
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(32), "p={p}");
        }
        assert_eq!(h.min(), Some(37));
        assert_eq!(h.max(), 37);
    }

    #[test]
    fn histogram_zero_sample_is_distinct_from_empty() {
        let mut h = Histogram::new("zero");
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.percentile(50.0), Some(0));
        assert_eq!(h.sum(), 0);
        assert_eq!(h.samples(), 1);
    }

    #[test]
    fn histogram_percentile_bucket_boundaries() {
        let mut h = Histogram::new("edges");
        h.record(4); // bucket [4, 8)
        h.record(8); // bucket [8, 16)
                     // Rank 1 of 2 covers up to p=50; rank 2 starts just above.
        assert_eq!(h.percentile(50.0), Some(4));
        assert_eq!(h.percentile(50.1), Some(8));
        assert_eq!(h.percentile(100.0), Some(8));
        assert_eq!(h.min(), Some(4));

        // A skewed distribution: p99 must land in the tail bucket only
        // when the tail holds at least 1% of the mass.
        let mut h = Histogram::new("skew");
        for _ in 0..99 {
            h.record(10); // bucket [8, 16)
        }
        h.record(1000); // bucket [512, 1024)
        assert_eq!(h.percentile(50.0), Some(8));
        assert_eq!(
            h.percentile(99.0),
            Some(8),
            "rank ceil(0.99*100)=99 is still 10"
        );
        assert_eq!(h.percentile(99.5), Some(512));
    }

    #[test]
    fn histogram_percentile_out_of_range_p_is_clamped() {
        let mut h = Histogram::new("clamp");
        h.record(1);
        h.record(100);
        assert_eq!(h.percentile(-5.0), Some(0), "p<0 behaves like p=0");
        assert_eq!(h.percentile(250.0), Some(64), "p>100 behaves like p=100");
    }

    #[test]
    fn histogram_restore_round_trips() {
        let mut h = Histogram::new("rt");
        for v in [0, 1, 5, 5, 700, u64::MAX] {
            h.record(v);
        }
        let pairs: Vec<(u64, u64)> = h.iter().collect();
        let r = Histogram::restore("rt", pairs, h.sum, h.min().unwrap_or(0), h.max()).unwrap();
        assert_eq!(format!("{r:?}"), format!("{h:?}"));

        let empty = Histogram::new("rt");
        let r = Histogram::restore("rt", [], 0, 0, 0).unwrap();
        assert_eq!(format!("{r:?}"), format!("{empty:?}"));

        assert!(Histogram::restore("rt", [(3, 1)], 3, 3, 3).is_err());
    }

    #[test]
    fn histogram_merge_of_disjoint_ranges() {
        // Low latencies in one histogram, high in the other: the merge
        // must interleave correctly across non-overlapping buckets.
        let mut low = Histogram::new("low");
        for v in [1, 2, 3] {
            low.record(v);
        }
        let mut high = Histogram::new("high");
        for v in [1 << 20, 1 << 30] {
            high.record(v);
        }
        low.merge(&high);
        assert_eq!(low.samples(), 5);
        assert_eq!(low.sum(), u128::from(1u64 + 2 + 3 + (1 << 20) + (1 << 30)));
        assert_eq!(low.min(), Some(1));
        assert_eq!(low.max(), 1 << 30);
        assert_eq!(low.name(), "low", "merge keeps the receiver's name");
        // p50 lands in the low range, p99 in the high range.
        assert_eq!(low.percentile(50.0), Some(2));
        assert_eq!(low.percentile(99.0), Some(1 << 30));
        // Equivalent to recording everything into one histogram.
        let mut all = Histogram::new("all");
        for v in [1, 2, 3, 1 << 20, 1 << 30] {
            all.record(v);
        }
        let pairs: Vec<_> = low.iter().collect();
        assert_eq!(pairs, all.iter().collect::<Vec<_>>());
    }

    #[test]
    fn histogram_merge_with_empty_sides() {
        let mut h = Histogram::new("h");
        h.record(7);
        // Empty other: a strict no-op — notably its u64::MAX min
        // sentinel must not leak into the merge.
        h.merge(&Histogram::new("empty"));
        assert_eq!(h.samples(), 1);
        assert_eq!(h.min(), Some(7));
        // Empty receiver: adopts other's stats wholesale.
        let mut empty = Histogram::new("empty");
        empty.merge(&h);
        assert_eq!(empty.samples(), 1);
        assert_eq!(empty.min(), Some(7));
        assert_eq!(empty.max(), 7);
        // Empty-with-empty stays empty, sentinels intact.
        let mut a = Histogram::new("a");
        a.merge(&Histogram::new("b"));
        assert_eq!(a.samples(), 0);
        assert_eq!(a.min(), None);
        assert_eq!(a.percentile(50.0), None);
    }

    #[test]
    fn histogram_saturated_samples_land_in_the_top_bucket() {
        let mut h = Histogram::new("sat");
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1 << 63);
        // All three share bucket 63 (floor 2^63).
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![(1 << 63, 3)]);
        assert_eq!(h.percentile(0.0), Some(1 << 63));
        assert_eq!(h.percentile(100.0), Some(1 << 63));
        assert_eq!(h.max(), u64::MAX);
        let mut other = Histogram::new("other");
        other.record(0);
        other.merge(&h);
        assert_eq!(other.samples(), 4);
        assert_eq!(other.percentile(100.0), Some(1 << 63));
        assert_eq!(other.sum(), 2 * u128::from(u64::MAX) + (1 << 63));
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([1.05, 1.10, 1.37]);
        let expected = (1.05f64 * 1.10 * 1.37).powf(1.0 / 3.0);
        assert!((g - expected).abs() < 1e-12);
    }

    #[test]
    fn geomean_skips_nonpositive() {
        assert_eq!(geomean([-1.0, 0.0]), 0.0);
        assert_eq!(geomean([-1.0, 4.0]), 4.0);
    }
}
