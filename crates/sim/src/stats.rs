//! Statistics primitives shared by every model in the simulator.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use ds_sim::Counter;
///
/// let mut hits = Counter::new("hits");
/// hits.incr();
/// hits.add(4);
/// assert_eq!(hits.value(), 5);
/// assert_eq!(hits.name(), "hits");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a stable display name.
    pub const fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Display name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Resets to zero (used between simulation phases).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A ratio of two counters, e.g. a miss rate.
///
/// `RateStat` owns nothing; it formats a numerator/denominator pair
/// captured at reporting time.
///
/// ```
/// use ds_sim::RateStat;
///
/// let miss_rate = RateStat::new(25, 200);
/// assert!((miss_rate.as_f64() - 0.125).abs() < 1e-12);
/// assert_eq!(miss_rate.to_string(), "12.50% (25/200)");
/// assert_eq!(RateStat::new(3, 0).as_f64(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateStat {
    numerator: u64,
    denominator: u64,
}

impl RateStat {
    /// Captures a numerator/denominator pair.
    pub const fn new(numerator: u64, denominator: u64) -> Self {
        RateStat {
            numerator,
            denominator,
        }
    }

    /// The ratio as a float; zero when the denominator is zero.
    pub fn as_f64(self) -> f64 {
        if self.denominator == 0 {
            0.0
        } else {
            self.numerator as f64 / self.denominator as f64
        }
    }

    /// Numerator captured at construction.
    pub fn numerator(self) -> u64 {
        self.numerator
    }

    /// Denominator captured at construction.
    pub fn denominator(self) -> u64 {
        self.denominator
    }
}

impl fmt::Display for RateStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}% ({}/{})",
            self.as_f64() * 100.0,
            self.numerator,
            self.denominator
        )
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also counts
/// zero. Cheap enough to keep per memory request.
///
/// ```
/// use ds_sim::Histogram;
///
/// let mut h = Histogram::new("load_latency");
/// for v in [1, 2, 3, 100, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.samples(), 5);
/// assert_eq!(h.mean(), (1.0 + 2.0 + 3.0 + 200.0) / 5.0);
/// assert!(h.max() == 100);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    name: &'static str,
    buckets: [u64; 64],
    samples: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: [0; 64],
            samples: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[idx.min(63)] += 1;
        self.samples += 1;
        self.sum += u128::from(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean of recorded samples, zero if empty.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Maximum recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Display name given at construction.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Iterates over `(bucket_floor, count)` pairs for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} mean={:.1} max={}",
            self.name,
            self.samples,
            self.mean(),
            self.max
        )
    }
}

/// Geometric mean of a sequence of strictly positive values.
///
/// The paper reports the geometric mean of per-benchmark speedups and
/// miss rates (Figs. 4 and 5); zero and negative inputs are skipped the
/// same way the paper "ignores benchmarks with zero percent speedup".
///
/// ```
/// use ds_sim::geomean;
///
/// assert_eq!(geomean([2.0, 8.0]), 4.0);
/// assert_eq!(geomean([0.0, 2.0, 8.0]), 4.0); // zeros ignored
/// assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
/// ```
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.to_string(), "x=0");
    }

    #[test]
    fn rate_stat_handles_zero_denominator() {
        assert_eq!(RateStat::new(5, 0).as_f64(), 0.0);
        assert_eq!(RateStat::new(1, 4).as_f64(), 0.25);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new("h");
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        // 0 and 1 land in bucket 0; 2 and 3 in bucket [2,4); 1024 alone.
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.samples(), 5);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean([1.05, 1.10, 1.37]);
        let expected = (1.05f64 * 1.10 * 1.37).powf(1.0 / 3.0);
        assert!((g - expected).abs() < 1e-12);
    }

    #[test]
    fn geomean_skips_nonpositive() {
        assert_eq!(geomean([-1.0, 0.0]), 0.0);
        assert_eq!(geomean([-1.0, 4.0]), 4.0);
    }
}
