//! A small message-passing harness for composing simulation components.
//!
//! The full system model in `ds-core` drives its own event loop for
//! performance and borrow-checker ergonomics, but unit tests, examples
//! and small experiments use [`Mesh`]: a registry of boxed
//! [`Component`]s exchanging typed messages through an [`EventQueue`].

use crate::{Cycle, EventQueue};

/// Identifies a component registered in a [`Mesh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Raw index of this node within its mesh.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Collects messages a component emits while handling an event.
///
/// Deferred sends keep `handle` free of re-entrancy: all messages are
/// enqueued by the mesh after the handler returns.
#[derive(Debug)]
pub struct Outbox<M> {
    staged: Vec<(u64, NodeId, M)>,
}

impl<M> Outbox<M> {
    fn new() -> Self {
        Outbox { staged: Vec::new() }
    }

    /// Sends `msg` to `dst`, arriving `delay` cycles from now.
    pub fn send_after(&mut self, delay: u64, dst: NodeId, msg: M) {
        self.staged.push((delay, dst, msg));
    }

    /// Sends `msg` to `dst` in the same cycle (delivered after all
    /// already-queued events for this cycle).
    pub fn send_now(&mut self, dst: NodeId, msg: M) {
        self.send_after(0, dst, msg);
    }
}

/// A simulation component that reacts to typed messages.
pub trait Component<M> {
    /// Handles `msg`, arriving at time `now` from node `from`.
    /// Responses are staged into `out`.
    fn handle(&mut self, now: Cycle, msg: M, from: NodeId, out: &mut Outbox<M>);
}

/// A registry of components plus the event queue that connects them.
///
/// See the crate-level documentation for a complete example.
pub struct Mesh<M> {
    components: Vec<Box<dyn Component<M>>>,
    queue: EventQueue<(NodeId, NodeId, M)>,
    now: Cycle,
}

impl<M> std::fmt::Debug for Mesh<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mesh")
            .field("components", &self.components.len())
            .field("pending", &self.queue.len())
            .field("now", &self.now)
            .finish()
    }
}

impl<M> Mesh<M> {
    /// Creates an empty mesh at time zero.
    pub fn new() -> Self {
        Mesh {
            components: Vec::new(),
            queue: EventQueue::new(),
            now: Cycle::ZERO,
        }
    }

    /// Registers a component, returning its address.
    pub fn add(&mut self, c: impl Component<M> + 'static) -> NodeId {
        self.components.push(Box::new(c));
        NodeId(self.components.len() - 1)
    }

    /// Registers a component that needs to know its own address (for
    /// reply-to fields in messages): the constructor closure receives
    /// the [`NodeId`] the component will live at.
    ///
    /// ```
    /// use ds_sim::{Component, Cycle, Mesh, NodeId, Outbox};
    ///
    /// struct Echoer {
    ///     me: NodeId,
    /// }
    /// impl Component<(NodeId, u32)> for Echoer {
    ///     fn handle(
    ///         &mut self,
    ///         _now: Cycle,
    ///         (reply_to, n): (NodeId, u32),
    ///         _from: NodeId,
    ///         out: &mut Outbox<(NodeId, u32)>,
    ///     ) {
    ///         if n > 0 {
    ///             out.send_after(1, reply_to, (self.me, n - 1));
    ///         }
    ///     }
    /// }
    ///
    /// let mut mesh = Mesh::new();
    /// let a = mesh.add_cyclic(|me| Echoer { me });
    /// let b = mesh.add_cyclic(|me| Echoer { me });
    /// mesh.inject(Cycle::ZERO, a, b, (a, 4));
    /// assert_eq!(mesh.run_to_completion(), Cycle::new(4));
    /// ```
    pub fn add_cyclic<C: Component<M> + 'static>(
        &mut self,
        build: impl FnOnce(NodeId) -> C,
    ) -> NodeId {
        let id = NodeId(self.components.len());
        self.components.push(Box::new(build(id)));
        id
    }

    /// Injects an external message into the mesh.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulation time.
    pub fn inject(&mut self, at: Cycle, from: NodeId, dst: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject event in the past");
        self.queue.push(at, (from, dst, msg));
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Runs until no events remain, returning the time of the last
    /// delivered event.
    pub fn run_to_completion(&mut self) -> Cycle {
        while self.step() {}
        self.now
    }

    /// Delivers the next event, if any. Returns `false` when idle.
    pub fn step(&mut self) -> bool {
        let Some((t, (from, dst, msg))) = self.queue.pop() else {
            return false;
        };
        self.now = t;
        let mut out = Outbox::new();
        self.components[dst.index()].handle(t, msg, from, &mut out);
        for (delay, next_dst, next_msg) in out.staged {
            self.queue.push(t + delay, (dst, next_dst, next_msg));
        }
        true
    }
}

impl<M> Default for Mesh<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forwards a countdown token around a ring.
    struct Ring {
        next: Option<NodeId>,
        seen: u32,
    }

    impl Component<u32> for Ring {
        fn handle(&mut self, _now: Cycle, msg: u32, _from: NodeId, out: &mut Outbox<u32>) {
            self.seen += 1;
            if msg > 0 {
                if let Some(next) = self.next {
                    out.send_after(2, next, msg - 1);
                }
            }
        }
    }

    #[test]
    fn token_ring_terminates_with_correct_time() {
        let mut mesh = Mesh::new();
        let a = mesh.add(Ring {
            next: None,
            seen: 0,
        });
        let b = mesh.add(Ring {
            next: Some(a),
            seen: 0,
        });
        // a -> b not wired; we inject at b, b forwards to a, a stops.
        mesh.inject(Cycle::ZERO, a, b, 1);
        let end = mesh.run_to_completion();
        assert_eq!(end, Cycle::new(2));
    }

    #[test]
    fn zero_delay_messages_delivered_same_cycle() {
        struct Immediate {
            fired: bool,
        }
        impl Component<()> for Immediate {
            fn handle(&mut self, now: Cycle, _m: (), from: NodeId, out: &mut Outbox<()>) {
                if !self.fired {
                    self.fired = true;
                    out.send_now(from, ());
                }
                assert_eq!(now, Cycle::ZERO);
            }
        }
        let mut mesh = Mesh::new();
        let a = mesh.add(Immediate { fired: false });
        let b = mesh.add(Immediate { fired: false });
        mesh.inject(Cycle::ZERO, a, b, ());
        assert_eq!(mesh.run_to_completion(), Cycle::ZERO);
    }

    #[test]
    fn add_cyclic_gives_components_their_own_id() {
        struct SelfAware {
            me: NodeId,
            confirmed: bool,
        }
        impl Component<NodeId> for SelfAware {
            fn handle(&mut self, _n: Cycle, claimed: NodeId, _f: NodeId, _o: &mut Outbox<NodeId>) {
                self.confirmed = claimed == self.me;
                assert!(self.confirmed);
            }
        }
        let mut mesh = Mesh::new();
        let id = mesh.add_cyclic(|me| SelfAware {
            me,
            confirmed: false,
        });
        mesh.inject(Cycle::ZERO, id, id, id);
        mesh.run_to_completion();
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn injecting_into_the_past_panics() {
        struct Nop;
        impl Component<()> for Nop {
            fn handle(&mut self, _: Cycle, _: (), _: NodeId, _: &mut Outbox<()>) {}
        }
        let mut mesh = Mesh::new();
        let a = mesh.add(Nop);
        mesh.inject(Cycle::new(5), a, a, ());
        mesh.run_to_completion();
        mesh.inject(Cycle::new(1), a, a, ());
    }
}
